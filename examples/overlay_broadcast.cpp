// An application on top of the peer-sampling service: epidemic rumor
// dissemination (the paper's §1 motivation for peer sampling — protocols
// like bimodal multicast assume every peer can talk to its sample).
//
//   ./examples/overlay_broadcast [--peers 400] [--nat-pct 80] [--fanout 3]
//
// Each infected peer pushes the rumor to `fanout` peers drawn from its
// sampling service every period. With the NAT-oblivious baseline many of
// those pushes silently die at NAT boxes; with Nylon the rumor reaches
// (almost) everyone. The example only uses the public API:
// peer_sampling_service::sample() plus the transport's dry-run oracle as
// the "can I actually send this" check an application-level messenger
// would experience.
#include <iostream>
#include <vector>

#include "metrics/reachability.h"
#include "runtime/scenario.h"
#include "runtime/table_printer.h"
#include "util/flags.h"

namespace {

/// Simulates one epidemic push round on top of the overlay: every
/// infected peer samples `fanout` targets and infects those it could
/// actually exchange messages with (per the reachability oracle).
double run_epidemic(nylon::runtime::scenario& world, int fanout,
                    int max_rounds, std::vector<int>* coverage_curve) {
  using namespace nylon;
  const auto oracle = world.oracle();
  std::vector<bool> infected(world.peers().size(), false);
  // Patient zero: the first alive peer.
  std::size_t count = 0;
  for (std::size_t i = 0; i < world.peers().size(); ++i) {
    if (world.transport().alive(static_cast<net::node_id>(i))) {
      infected[i] = true;
      count = 1;
      break;
    }
  }
  std::size_t alive = world.alive_count();
  for (int round = 0; round < max_rounds && count < alive; ++round) {
    std::vector<std::size_t> newly;
    for (std::size_t i = 0; i < world.peers().size(); ++i) {
      if (!infected[i]) continue;
      auto& peer = world.peer_at(static_cast<net::node_id>(i));
      for (int f = 0; f < fanout; ++f) {
        const auto target = peer.sample();
        if (!target) continue;
        if (target->id >= world.peers().size()) continue;
        if (infected[target->id]) continue;
        // The push only lands if the overlay can actually deliver it.
        if (!oracle.can_shuffle(static_cast<net::node_id>(i), *target)) {
          continue;
        }
        newly.push_back(target->id);
      }
    }
    for (const std::size_t id : newly) {
      if (!infected[id]) {
        infected[id] = true;
        ++count;
      }
    }
    if (coverage_curve) {
      coverage_curve->push_back(static_cast<int>(count));
    }
  }
  return 100.0 * static_cast<double>(count) / static_cast<double>(alive);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nylon;

  util::flag_set flags;
  const auto* peers = flags.add_int("peers", 400, "population size");
  const auto* nat_pct = flags.add_double("nat-pct", 80.0, "% natted peers");
  const auto* fanout = flags.add_int("fanout", 3, "push fanout per round");
  const auto* rounds = flags.add_int("rounds", 12, "epidemic rounds");
  const auto* warmup = flags.add_int("warmup", 80, "overlay warm-up periods");
  const auto* seed = flags.add_int("seed", 5, "rng seed");
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << flags.usage("overlay_broadcast");
    return 1;
  }

  std::cout << "Rumor dissemination over a peer-sampling overlay ("
            << *peers << " peers, " << *nat_pct << "% natted, fanout "
            << *fanout << "):\n\n";

  runtime::text_table table({"round", "baseline coverage", "nylon coverage"});
  std::vector<int> baseline_curve;
  std::vector<int> nylon_curve;
  double baseline_final = 0.0;
  double nylon_final = 0.0;

  for (const auto kind :
       {core::protocol_kind::reference, core::protocol_kind::nylon}) {
    runtime::experiment_config cfg;
    cfg.peer_count = static_cast<std::size_t>(*peers);
    cfg.natted_fraction = *nat_pct / 100.0;
    cfg.protocol = kind;
    cfg.seed = static_cast<std::uint64_t>(*seed);
    runtime::scenario world(cfg);
    world.run_periods(*warmup);
    auto* curve = kind == core::protocol_kind::reference ? &baseline_curve
                                                         : &nylon_curve;
    const double final_coverage = run_epidemic(
        world, static_cast<int>(*fanout), static_cast<int>(*rounds), curve);
    if (kind == core::protocol_kind::reference) {
      baseline_final = final_coverage;
    } else {
      nylon_final = final_coverage;
    }
  }

  const std::size_t table_rows =
      std::max(baseline_curve.size(), nylon_curve.size());
  for (std::size_t r = 0; r < table_rows; ++r) {
    const auto cell = [&](const std::vector<int>& curve) {
      if (r < curve.size()) return std::to_string(curve[r]);
      return curve.empty() ? std::string("-")
                           : std::to_string(curve.back());
    };
    table.add_row({std::to_string(r + 1), cell(baseline_curve),
                   cell(nylon_curve)});
  }
  table.print(std::cout);

  std::cout << "\nFinal coverage: baseline "
            << runtime::fmt(baseline_final) << "% vs Nylon "
            << runtime::fmt(nylon_final) << "% of alive peers.\n"
            << "The baseline's pushes die at NAT boxes and its samples "
               "miss natted peers;\n"
            << "Nylon delivers the rumor to (nearly) the whole overlay.\n";
  return 0;
}
