// Quickstart: build a small NATed deployment, run Nylon, and inspect what
// the peer-sampling service delivers.
//
//   ./examples/quickstart [--peers 300] [--nat-pct 80] [--periods 120]
//
// Prints the overlay health (connectivity, staleness, randomness of the
// samples) and one peer's view, exercising the whole public API surface:
// experiment_config -> scenario -> peer_sampling_service -> metrics.
#include <cstdio>
#include <iostream>

#include "metrics/bandwidth.h"
#include "metrics/graph_analysis.h"
#include "metrics/randomness.h"
#include "runtime/scenario.h"
#include "runtime/table_printer.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace nylon;

  util::flag_set flags;
  const auto* peers = flags.add_int("peers", 300, "population size");
  const auto* nat_pct = flags.add_double("nat-pct", 80.0, "% natted peers");
  const auto* periods = flags.add_int("periods", 120, "shuffle periods");
  const auto* view_size = flags.add_int("view", 15, "view size");
  const auto* seed = flags.add_int("seed", 1, "rng seed");
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << flags.usage("quickstart");
    return 1;
  }

  // 1. Describe the deployment (defaults follow the paper's §5 settings).
  runtime::experiment_config cfg;
  cfg.peer_count = static_cast<std::size_t>(*peers);
  cfg.natted_fraction = *nat_pct / 100.0;
  cfg.protocol = core::protocol_kind::nylon;
  cfg.gossip.view_size = static_cast<std::size_t>(*view_size);
  cfg.seed = static_cast<std::uint64_t>(*seed);

  // 2. Build and run it.
  std::cout << "Running Nylon with " << cfg.peer_count << " peers, "
            << *nat_pct << "% behind NATs, for " << *periods
            << " shuffle periods...\n";
  runtime::scenario world(cfg);
  world.transport().reset_traffic();
  world.run_periods(*periods);

  // 3. Ask the sampling service for peers, like an application would.
  gossip::peer& app_peer = world.peer_at(0);
  std::cout << "\nPeer 0 samples five peers through the service API:\n";
  for (int i = 0; i < 5; ++i) {
    if (const auto peer = app_peer.sample()) {
      std::cout << "  -> peer " << peer->id << " at "
                << net::to_string(peer->addr) << " ("
                << nat::to_string(peer->type) << ")\n";
    }
  }

  // 4. Measure overlay health.
  const auto oracle = world.oracle();
  const auto clusters =
      metrics::measure_clusters(world.transport(), world.peers(), oracle);
  const auto views =
      metrics::measure_views(world.transport(), world.peers(), oracle);
  const auto bandwidth = metrics::measure_bandwidth(
      world.transport(), world.peers(),
      *periods * cfg.gossip.shuffle_period);

  // Randomness of the delivered samples: one sample per peer per pass so
  // consecutive stream elements come from independent views.
  std::vector<std::uint32_t> sampled;
  for (int k = 0; k < 10; ++k) {
    for (const auto& p : world.peers()) {
      if (auto s = p->sample()) sampled.push_back(s->id);
    }
  }
  const auto battery = metrics::run_battery(sampled, cfg.peer_count);

  runtime::text_table table({"metric", "value"});
  table.add_row({"alive peers", std::to_string(clusters.alive_peers)});
  table.add_row({"biggest cluster %", runtime::fmt(clusters.biggest_cluster_pct)});
  table.add_row({"clusters", std::to_string(clusters.cluster_count)});
  table.add_row({"stale view entries %", runtime::fmt(views.stale_pct, 2)});
  table.add_row({"natted among usable %", runtime::fmt(views.fresh_natted_pct)});
  table.add_row({"bytes/s per peer", runtime::fmt(bandwidth.all_bytes_per_s)});
  table.add_row({"chi-square p-value", runtime::fmt(battery.frequency.p_value, 3)});
  table.add_row({"sampling uniform?", battery.passed() ? "yes" : "no"});
  std::cout << "\n";
  table.print(std::cout);

  std::cout << "\nDone. Try --nat-pct 90 or compare --help for knobs.\n";
  return 0;
}
