// The paper's motivation, as a runnable study: take the same deployment
// (80% of peers behind NATs by default) and run it once with the classic
// NAT-oblivious peer sampling protocol and once with Nylon, side by side.
//
//   ./examples/nat_impact_study [--peers 500] [--nat-pct 80] [--periods 150]
//
// Shows exactly the failure modes §3 describes — stale references, natted
// peers missing from samples, shrinking biggest cluster — and how Nylon
// removes them at a modest bandwidth cost.
#include <iostream>

#include "metrics/bandwidth.h"
#include "metrics/graph_analysis.h"
#include "runtime/scenario.h"
#include "runtime/table_printer.h"
#include "util/flags.h"

namespace {

struct study_result {
  double cluster_pct = 0.0;
  std::size_t clusters = 0;
  double stale_pct = 0.0;
  double natted_usable_pct = 0.0;
  double bytes_per_s = 0.0;
  double shuffle_success_pct = 0.0;
};

study_result run_study(nylon::core::protocol_kind kind, std::size_t peers,
                       double natted_fraction, int periods,
                       std::uint64_t seed) {
  using namespace nylon;
  runtime::experiment_config cfg;
  cfg.peer_count = peers;
  cfg.natted_fraction = natted_fraction;
  cfg.protocol = kind;
  cfg.seed = seed;
  runtime::scenario world(cfg);

  const int warmup = periods / 2;
  world.run_periods(warmup);
  world.transport().reset_traffic();
  world.run_periods(periods - warmup);

  const auto oracle = world.oracle();
  const auto clusters =
      metrics::measure_clusters(world.transport(), world.peers(), oracle);
  const auto views =
      metrics::measure_views(world.transport(), world.peers(), oracle);
  const auto bandwidth = metrics::measure_bandwidth(
      world.transport(), world.peers(),
      (periods - warmup) * cfg.gossip.shuffle_period);

  std::uint64_t initiated = 0;
  std::uint64_t responses = 0;
  for (const auto& p : world.peers()) {
    initiated += p->stats().initiated;
    responses += p->stats().responses_received;
  }

  study_result out;
  out.cluster_pct = clusters.biggest_cluster_pct;
  out.clusters = clusters.cluster_count;
  out.stale_pct = views.stale_pct;
  out.natted_usable_pct = views.fresh_natted_pct;
  out.bytes_per_s = bandwidth.all_bytes_per_s;
  out.shuffle_success_pct =
      initiated > 0
          ? 100.0 * static_cast<double>(responses) /
                static_cast<double>(initiated)
          : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nylon;

  util::flag_set flags;
  const auto* peers = flags.add_int("peers", 500, "population size");
  const auto* nat_pct = flags.add_double("nat-pct", 80.0, "% natted peers");
  const auto* periods = flags.add_int("periods", 150, "shuffle periods");
  const auto* seed = flags.add_int("seed", 7, "rng seed");
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << flags.usage("nat_impact_study");
    return 1;
  }

  std::cout << "Same deployment (" << *peers << " peers, " << *nat_pct
            << "% natted), two protocols:\n\n";

  const auto baseline =
      run_study(core::protocol_kind::reference, static_cast<std::size_t>(*peers),
                *nat_pct / 100.0, static_cast<int>(*periods),
                static_cast<std::uint64_t>(*seed));
  const auto nylon_result =
      run_study(core::protocol_kind::nylon, static_cast<std::size_t>(*peers),
                *nat_pct / 100.0, static_cast<int>(*periods),
                static_cast<std::uint64_t>(*seed));

  runtime::text_table table(
      {"metric", "baseline (Fig.1)", "nylon", "ideal"});
  table.add_row({"biggest cluster %", runtime::fmt(baseline.cluster_pct),
                 runtime::fmt(nylon_result.cluster_pct), "100"});
  table.add_row({"clusters", std::to_string(baseline.clusters),
                 std::to_string(nylon_result.clusters), "1"});
  table.add_row({"stale view entries %", runtime::fmt(baseline.stale_pct),
                 runtime::fmt(nylon_result.stale_pct), "0"});
  table.add_row({"natted among usable %",
                 runtime::fmt(baseline.natted_usable_pct),
                 runtime::fmt(nylon_result.natted_usable_pct),
                 runtime::fmt(*nat_pct, 0)});
  table.add_row({"shuffle success %",
                 runtime::fmt(baseline.shuffle_success_pct),
                 runtime::fmt(nylon_result.shuffle_success_pct), "100"});
  table.add_row({"bytes/s per peer", runtime::fmt(baseline.bytes_per_s),
                 runtime::fmt(nylon_result.bytes_per_s), "-"});
  table.print(std::cout);

  std::cout << "\nReading: the baseline's sample of the network is broken "
               "(stale, public-biased),\n"
            << "while Nylon pays a moderate bandwidth premium to keep the "
               "sample usable.\n";
  return 0;
}
