// Fig. 10 as an interactive experiment: warm a Nylon overlay up, kill a
// large fraction of the peers at once, and watch the overlay heal.
//
//   ./examples/churn_resilience [--peers 500] [--nat-pct 60]
//                               [--departures 50] [--watch-periods 40]
//                               [--json heal.json]
//
// The whole experiment is one workload::program (steady → mass departure
// → steady) whose engine samples a time series of the biggest cluster,
// staleness and dead view entries after the massive departure.
#include <algorithm>
#include <iostream>

#include "metrics/graph_analysis.h"
#include "runtime/scenario.h"
#include "runtime/table_printer.h"
#include "util/flags.h"
#include "workload/engine.h"
#include "workload/report.h"

int main(int argc, char** argv) {
  using namespace nylon;

  util::flag_set flags;
  const auto* peers = flags.add_int("peers", 500, "population size");
  const auto* nat_pct = flags.add_double("nat-pct", 60.0, "% natted peers");
  const auto* departures =
      flags.add_double("departures", 50.0, "% of peers leaving at once");
  const auto* warmup = flags.add_int("warmup", 60, "periods before the churn");
  const auto* watch =
      flags.add_int("watch-periods", 40, "periods observed after the churn");
  const auto* seed = flags.add_int("seed", 3, "rng seed");
  const auto* json_path =
      flags.add_string("json", "", "also write the trajectory to this file");
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << flags.usage("churn_resilience");
    return 1;
  }
  if (*watch <= 0 || *warmup < 0 || *peers <= 0 || *departures < 0.0 ||
      *departures > 100.0) {
    std::cerr << "need --watch-periods > 0, --warmup >= 0, --peers > 0 and "
                 "--departures in [0, 100]\n";
    return 1;
  }

  runtime::experiment_config cfg;
  cfg.peer_count = static_cast<std::size_t>(*peers);
  cfg.natted_fraction = *nat_pct / 100.0;
  cfg.protocol = core::protocol_kind::nylon;
  cfg.seed = static_cast<std::uint64_t>(*seed);
  runtime::scenario world(cfg);

  std::cout << "Warming up " << cfg.peer_count << " peers (" << *nat_pct
            << "% natted) for " << *warmup << " periods...\n";
  const sim::sim_time period = cfg.gossip.shuffle_period;
  world.run_periods(*warmup);

  auto prog = workload::program{}
                  .then(workload::mass_departure(*departures / 100.0))
                  .then(workload::steady(*watch * period));

  runtime::text_table table({"period", "alive", "biggest cluster %",
                             "clusters", "stale %", "dead refs %"});
  const sim::sim_time t0 = world.scheduler().now();
  const auto add_row = [&](const workload::snapshot& s) {
    const double dead_pct =
        s.views.total_entries > 0
            ? 100.0 * static_cast<double>(s.views.dead_entries) /
                  static_cast<double>(s.views.total_entries)
            : 0.0;
    table.add_row({std::to_string((s.at - t0) / period), std::to_string(s.alive),
                   runtime::fmt(s.clusters.biggest_cluster_pct),
                   std::to_string(s.clusters.cluster_count),
                   runtime::fmt(s.views.stale_pct), runtime::fmt(dead_pct)});
  };

  const int step = std::max<int>(1, static_cast<int>(*watch / 8));
  workload::engine_options opts;
  opts.sample_interval = step * period;  // plus phase-end snapshots
  workload::engine eng(world, std::move(prog), opts);
  eng.run();

  std::cout << "Boom: " << eng.departed() << " peers left simultaneously ("
            << *departures << "%). Watching the overlay heal:\n\n";
  sim::sim_time last_at = -1;  // phase boundaries duplicate sample times
  for (const workload::snapshot& s : eng.trajectory()) {
    if (s.at == last_at) continue;
    last_at = s.at;
    add_row(s);
  }
  table.print(std::cout);

  if (!json_path->empty()) {
    workload::bench_report report("churn_resilience");
    report.param("peers", *peers);
    report.param("nat_pct", *nat_pct);
    report.param("departures_pct", *departures);
    report.add("trajectory", workload::to_json(eng.trajectory()));
    report.save(*json_path);
    std::cout << "\nTrajectory written to " << *json_path << "\n";
  }

  std::cout << "\nThe dead references age out of the views within a few "
               "periods and the\n"
            << "survivors re-knit into a single cluster (paper Fig. 10: no "
               "partition up to 50%\n"
            << "departures, graceful degradation beyond).\n";
  return 0;
}
