// Fig. 10 as an interactive experiment: warm a Nylon overlay up, kill a
// large fraction of the peers at once, and watch the overlay heal.
//
//   ./examples/churn_resilience [--peers 500] [--nat-pct 60]
//                               [--departures 50] [--watch-periods 40]
//
// Prints a time series of the biggest cluster, staleness and dead view
// entries after the massive departure.
#include <iostream>

#include "metrics/graph_analysis.h"
#include "runtime/scenario.h"
#include "runtime/table_printer.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace nylon;

  util::flag_set flags;
  const auto* peers = flags.add_int("peers", 500, "population size");
  const auto* nat_pct = flags.add_double("nat-pct", 60.0, "% natted peers");
  const auto* departures =
      flags.add_double("departures", 50.0, "% of peers leaving at once");
  const auto* warmup = flags.add_int("warmup", 60, "periods before the churn");
  const auto* watch =
      flags.add_int("watch-periods", 40, "periods observed after the churn");
  const auto* seed = flags.add_int("seed", 3, "rng seed");
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << flags.usage("churn_resilience");
    return 1;
  }

  runtime::experiment_config cfg;
  cfg.peer_count = static_cast<std::size_t>(*peers);
  cfg.natted_fraction = *nat_pct / 100.0;
  cfg.protocol = core::protocol_kind::nylon;
  cfg.seed = static_cast<std::uint64_t>(*seed);
  runtime::scenario world(cfg);

  std::cout << "Warming up " << cfg.peer_count << " peers (" << *nat_pct
            << "% natted) for " << *warmup << " periods...\n";
  world.run_periods(*warmup);

  const std::size_t removed = world.remove_fraction(*departures / 100.0);
  std::cout << "Boom: " << removed << " peers left simultaneously ("
            << *departures << "%). Watching the overlay heal:\n\n";

  runtime::text_table table({"period", "alive", "biggest cluster %",
                             "clusters", "stale %", "dead refs %"});
  const auto snapshot = [&](int period) {
    const auto oracle = world.oracle();
    const auto clusters =
        metrics::measure_clusters(world.transport(), world.peers(), oracle);
    const auto views =
        metrics::measure_views(world.transport(), world.peers(), oracle);
    const double dead_pct =
        views.total_entries > 0
            ? 100.0 * static_cast<double>(views.dead_entries) /
                  static_cast<double>(views.total_entries)
            : 0.0;
    table.add_row({std::to_string(period), std::to_string(world.alive_count()),
                   runtime::fmt(clusters.biggest_cluster_pct),
                   std::to_string(clusters.cluster_count),
                   runtime::fmt(views.stale_pct),
                   runtime::fmt(dead_pct)});
  };

  snapshot(0);
  const int step = std::max<int>(1, static_cast<int>(*watch / 8));
  for (int period = step; period <= *watch; period += step) {
    world.run_periods(step);
    snapshot(period);
  }
  table.print(std::cout);

  std::cout << "\nThe dead references age out of the views within a few "
               "periods and the\n"
            << "survivors re-knit into a single cluster (paper Fig. 10: no "
               "partition up to 50%\n"
            << "departures, graceful degradation beyond).\n";
  return 0;
}
