#include "wire/codec.h"

#include <cstring>
#include <vector>

#include "nat/nat_type.h"
#include "util/contracts.h"

namespace nylon::wire {

namespace {

// --- little-endian cursors --------------------------------------------------

void put8(std::byte*& p, std::uint8_t v) noexcept {
  *p++ = static_cast<std::byte>(v);
}

void put16(std::byte*& p, std::uint16_t v) noexcept {
  put8(p, static_cast<std::uint8_t>(v));
  put8(p, static_cast<std::uint8_t>(v >> 8));
}

void put32(std::byte*& p, std::uint32_t v) noexcept {
  put16(p, static_cast<std::uint16_t>(v));
  put16(p, static_cast<std::uint16_t>(v >> 16));
}

std::uint8_t get8(const std::byte*& p) noexcept {
  return std::to_integer<std::uint8_t>(*p++);
}

std::uint16_t get16(const std::byte*& p) noexcept {
  const std::uint16_t lo = get8(p);
  return static_cast<std::uint16_t>(lo | (get8(p) << 8));
}

std::uint32_t get32(const std::byte*& p) noexcept {
  const std::uint32_t lo = get16(p);
  return lo | (static_cast<std::uint32_t>(get16(p)) << 16);
}

// --- layout -----------------------------------------------------------------

constexpr std::size_t wide_port_extra = 2;  ///< port u16 -> u32

std::size_t descriptor_bytes(std::uint8_t flags) noexcept {
  return gossip::descriptor_wire_bytes +
         ((flags & flag_wide_ports) != 0 ? wide_port_extra : 0);
}

std::size_t entry_bytes(std::uint8_t flags) noexcept {
  return descriptor_bytes(flags) + ((flags & flag_wide_age) != 0 ? 4 : 2) +
         ((flags & flag_wide_ttl) != 0 ? 4 : 2);
}

/// Body bytes before the entry tail: kind echo + 3 descriptors +
/// count + hops.
std::size_t body_prefix_bytes(std::uint8_t flags) noexcept {
  return 1 + 3 * descriptor_bytes(flags) + 2 + 1;
}

std::size_t body_size_for(std::uint8_t flags, std::size_t count) noexcept {
  return body_prefix_bytes(flags) + count * entry_bytes(flags);
}

// --- field encoders ---------------------------------------------------------

void put_descriptor(std::byte*& p, const gossip::node_descriptor& d,
                    std::uint8_t flags) {
  put32(p, d.id);
  put32(p, d.addr.ip.value);
  if ((flags & flag_wide_ports) != 0) {
    put32(p, d.addr.port);
  } else {
    NYLON_EXPECTS(d.addr.port <= 0xFFFF);
    put16(p, static_cast<std::uint16_t>(d.addr.port));
  }
  put8(p, static_cast<std::uint8_t>(d.type));
  put8(p, 0);  // pad
}

gossip::node_descriptor get_descriptor(const std::byte*& p, std::uint8_t flags,
                                       decode_error& err) noexcept {
  gossip::node_descriptor d;
  d.id = get32(p);
  d.addr.ip.value = get32(p);
  d.addr.port = (flags & flag_wide_ports) != 0 ? get32(p) : get16(p);
  const std::uint8_t type_byte = get8(p);
  const std::uint8_t pad = get8(p);
  if (type_byte > static_cast<std::uint8_t>(nat::nat_type::symmetric) ||
      pad != 0) {
    err = decode_error::bad_body;
  }
  d.type = static_cast<nat::nat_type>(type_byte);
  return d;
}

}  // namespace

std::uint8_t frame_flags_for(const gossip::gossip_message& msg) noexcept {
  const auto wide_port = [](const gossip::node_descriptor& d) noexcept {
    return d.addr.port > 0xFFFF;
  };
  std::uint8_t flags = 0;
  if (wide_port(msg.sender) || wide_port(msg.src) || wide_port(msg.dest)) {
    flags |= flag_wide_ports;
  }
  for (const gossip::view_entry& e : msg.entries) {
    if (wide_port(e.peer)) flags |= flag_wide_ports;
    if (e.route_ttl > 0xFFFF) flags |= flag_wide_ttl;
    if (e.age > 0xFFFF) flags |= flag_wide_age;
  }
  return flags;
}

std::size_t encoded_body_size(const gossip::gossip_message& msg) noexcept {
  return body_size_for(frame_flags_for(msg), msg.entries.size());
}

net::arena_ref<const encoded_frame> encode(const gossip::gossip_message& msg) {
  const std::uint8_t flags = frame_flags_for(msg);
  const std::size_t count = msg.entries.size();
  const std::size_t body = body_size_for(flags, count);
  NYLON_EXPECTS(count <= 0xFFFF);
  NYLON_EXPECTS(body <= max_body_bytes);

  // Frame-size honesty: the nominal encoding is byte-for-byte the size
  // the transport bills (payload::wire_size), and each wide flag adds
  // exactly its documented widening — bandwidth accounting can never
  // drift from real bytes.
  std::size_t expected = msg.wire_size();
  if ((flags & flag_wide_ports) != 0) expected += wide_port_extra * (3 + count);
  if ((flags & flag_wide_ttl) != 0) expected += 2 * count;
  if ((flags & flag_wide_age) != 0) expected += 2 * count;
  NYLON_ENSURES(body == expected);

  const std::size_t frame_bytes = frame_header_bytes + body;
  void* memory =
      net::arena_detail::allocate(sizeof(encoded_frame) + frame_bytes);
  auto* frame = ::new (memory)
      encoded_frame(msg.wire_kind(), static_cast<std::uint32_t>(msg.wire_size()),
                    static_cast<std::uint32_t>(frame_bytes));
  auto* out = const_cast<std::byte*>(frame->bytes().data());

  std::byte* p = out;
  put16(p, frame_magic);
  put8(p, frame_version);
  put8(p, static_cast<std::uint8_t>(msg.wire_kind()));
  put8(p, flags);
  put8(p, 0);  // reserved
  put16(p, static_cast<std::uint16_t>(body));
  put32(p, 0);  // checksum, patched below

  put8(p, static_cast<std::uint8_t>(msg.wire_kind()));
  put_descriptor(p, msg.sender, flags);
  put_descriptor(p, msg.src, flags);
  put_descriptor(p, msg.dest, flags);
  put16(p, static_cast<std::uint16_t>(count));
  put8(p, msg.hops);
  for (const gossip::view_entry& e : msg.entries) {
    put_descriptor(p, e.peer, flags);
    if ((flags & flag_wide_age) != 0) {
      put32(p, e.age);
    } else {
      put16(p, static_cast<std::uint16_t>(e.age));
    }
    NYLON_EXPECTS(e.route_ttl >= 0 && e.route_ttl <= 0xFFFFFFFF);
    if ((flags & flag_wide_ttl) != 0) {
      put32(p, static_cast<std::uint32_t>(e.route_ttl));
    } else {
      put16(p, static_cast<std::uint16_t>(e.route_ttl));
    }
  }
  NYLON_ENSURES(p == out + frame_bytes);

  const std::uint32_t checksum = frame_checksum({out, frame_bytes});
  std::byte* c = out + 8;
  put32(c, checksum);
  return net::arena_ref<const encoded_frame>::adopt(frame);
}

decode_result decode(std::span<const std::byte> frame) {
  const auto fail = [](decode_error e) { return decode_result{e, nullptr}; };
  if (frame.size() < frame_header_bytes) return fail(decode_error::truncated);

  const std::byte* p = frame.data();
  if (get16(p) != frame_magic) return fail(decode_error::bad_magic);
  if (get8(p) != frame_version) return fail(decode_error::bad_version);
  const std::uint8_t kind_byte = get8(p);
  if (kind_byte >= static_cast<std::uint8_t>(net::message_kind::other)) {
    return fail(decode_error::bad_kind);
  }
  const std::uint8_t flags = get8(p);
  const std::uint8_t reserved = get8(p);
  const std::size_t length = get16(p);
  const std::uint32_t stored_checksum = get32(p);
  if (frame_header_bytes + length > frame.size()) {
    return fail(decode_error::truncated);
  }
  if (frame_header_bytes + length < frame.size()) {
    return fail(decode_error::trailing_bytes);
  }
  if (frame_checksum(frame) != stored_checksum) {
    return fail(decode_error::bad_checksum);
  }
  // Checksum verified: any failure past this point is a forged frame
  // violating an encoder invariant, not line noise.
  if ((flags & ~known_flags) != 0 || reserved != 0) {
    return fail(decode_error::bad_body);
  }
  if (length < body_prefix_bytes(flags)) return fail(decode_error::bad_length);

  decode_error err = decode_error::none;
  gossip::gossip_message msg;
  if (get8(p) != kind_byte) return fail(decode_error::bad_body);
  msg.kind = static_cast<gossip::message_kind>(kind_byte);
  msg.sender = get_descriptor(p, flags, err);
  msg.src = get_descriptor(p, flags, err);
  msg.dest = get_descriptor(p, flags, err);
  const std::size_t count = get16(p);
  msg.hops = get8(p);
  if (err != decode_error::none) return fail(err);
  if (length != body_size_for(flags, count)) {
    return fail(decode_error::bad_length);
  }

  // Entry scratch: decode runs inside delivery on the destination
  // shard's thread, so a thread-local vector gives allocation-free
  // steady state without cross-shard sharing.
  static thread_local std::vector<gossip::view_entry> scratch;
  scratch.clear();
  scratch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    gossip::view_entry e;
    e.peer = get_descriptor(p, flags, err);
    e.age = (flags & flag_wide_age) != 0 ? get32(p) : get16(p);
    e.route_ttl = (flags & flag_wide_ttl) != 0 ? get32(p) : get16(p);
    scratch.push_back(e);
  }
  if (err != decode_error::none) return fail(err);
  NYLON_ENSURES(p == frame.data() + frame.size());
  msg.entries = scratch;

  // Canonical-form check: the flags must be exactly the ones this
  // message needs. Guarantees encode(decode(f)) == f bit-for-bit and
  // rejects forged frames padding fields they don't need.
  if (frame_flags_for(msg) != flags) return fail(decode_error::bad_body);

  return {decode_error::none, gossip::make_message(msg)};
}

namespace {

class gossip_frame_codec final : public net::frame_codec {
 public:
  net::payload_ptr encode(const net::payload& body) const override {
    const auto* msg = dynamic_cast<const gossip::gossip_message*>(&body);
    // v1 frames cover the gossip protocol; test doubles and probes
    // (`other` kinds) cannot ride a bytes-carrying transport.
    NYLON_EXPECTS(msg != nullptr);
    return wire::encode(*msg);
  }

  net::payload_ptr decode(std::span<const std::byte> bytes) const override {
    decode_result result = wire::decode(bytes);
    if (result.error != decode_error::none) return nullptr;
    return std::move(result.message);
  }
};

}  // namespace

const net::frame_codec& gossip_codec() noexcept {
  static const gossip_frame_codec codec;
  return codec;
}

}  // namespace nylon::wire
