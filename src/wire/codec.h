// Symmetric encode/decode between gossip messages and v1 wire frames.
//
// Body layout (after the 12-byte frame header; integers little-endian):
//
//   kind       u8   echoes the header kind (cheap cross-check)
//   sender     descriptor
//   src        descriptor
//   dest       descriptor
//   count      u16  number of view entries
//   hops       u8
//   entries    count * entry
//
//   descriptor = id u32, ip u32, port u16*, nat_type u8, pad u8 (0)
//   entry      = descriptor, age u16*, route_ttl u16*
//
// Fields marked * widen to u32 when the frame's matching wide flag is
// set (wire/frame.h). With no flags set the body is exactly
// gossip_message::wire_size() bytes — the frame-size honesty contract
// that keeps bandwidth accounting equal to real bytes; encode() asserts
// it on every frame.
//
// Arena ownership: encode() returns the frame as a payload in its own
// arena block (bytes co-allocated behind the encoded_frame object), so
// a frame rides the transport's delivery leases exactly like any other
// payload. decode() builds a fresh gossip_message block via
// gossip::make_message; the caller owns the only reference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "gossip/messages.h"
#include "net/message.h"
#include "net/payload_arena.h"
#include "wire/frame.h"

namespace nylon::wire {

/// A serialized frame as an arena payload. `wire_size()` and
/// `wire_kind()` report the *inner* message's nominal size and kind, so
/// transport accounting is invariant under serialization (the frame
/// header is simulator overhead, not protocol bytes — DESIGN.md).
class encoded_frame final : public net::frame_payload {
 public:
  [[nodiscard]] std::size_t wire_size() const noexcept override {
    return nominal_size_;
  }
  [[nodiscard]] std::string_view type_name() const noexcept override {
    return net::to_string(kind_);
  }
  [[nodiscard]] net::message_kind wire_kind() const noexcept override {
    return kind_;
  }
  /// The full frame: header + body.
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept override {
    return {reinterpret_cast<const std::byte*>(this + 1), frame_bytes_};
  }

  encoded_frame(net::message_kind kind, std::uint32_t nominal_size,
                std::uint32_t frame_bytes) noexcept
      : kind_(kind), nominal_size_(nominal_size), frame_bytes_(frame_bytes) {}

 private:
  net::message_kind kind_;
  std::uint32_t nominal_size_;
  std::uint32_t frame_bytes_;
};

/// The flags `msg` needs for a lossless encoding (wire/frame.h).
[[nodiscard]] std::uint8_t frame_flags_for(
    const gossip::gossip_message& msg) noexcept;

/// Body bytes of `msg`'s canonical encoding (honors its wide flags).
[[nodiscard]] std::size_t encoded_body_size(
    const gossip::gossip_message& msg) noexcept;

/// Serializes `msg` into a checksummed frame in one arena block.
/// Contracts: entry count <= u16, body <= max_body_bytes, every
/// route_ttl in [0, u32 max].
[[nodiscard]] net::arena_ref<const encoded_frame> encode(
    const gossip::gossip_message& msg);

/// decode() outcome: `message` is non-null iff `error` is none.
struct decode_result {
  decode_error error = decode_error::none;
  net::arena_ref<const gossip::gossip_message> message;
};

/// Parses one frame. Strict and canonical: the input must be exactly
/// one well-formed frame (no trailing bytes), every invariant the
/// encoder maintains is checked, and any violation yields a typed
/// error — malformed input can never reach a protocol handler.
[[nodiscard]] decode_result decode(std::span<const std::byte> frame);

/// The frame codec a transport installs for sim-frames / udp modes
/// (stateless singleton).
[[nodiscard]] const net::frame_codec& gossip_codec() noexcept;

}  // namespace nylon::wire
