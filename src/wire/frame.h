// The v1 wire format: the binary frame every gossip payload serializes
// into when a transport carries real bytes (sim-frames mode, the UDP
// backend) instead of in-memory structs.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//        0     2  magic      0x4E59 ("NY")
//        2     1  version    1
//        3     1  kind       net::message_kind (request..pong)
//        4     1  flags      wide-field extensions (see frame_flags)
//        5     1  reserved   must be 0
//        6     2  length     body bytes following the header
//        8     4  checksum   FNV-1a-32 over header (checksum field read
//                            as zero) + body
//       12   ...  body       see wire/codec.h
//
// Versioning rules: `version` bumps on any change to the header layout
// or to a body encoding; decoders reject unknown versions with
// decode_error::bad_version (no cross-version compatibility shims at
// v1). `flags` extends the v1 body without a version bump: each bit
// widens a nominal field, unknown bits are a decode error. `reserved`
// must be zero so it stays available for future use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace nylon::wire {

/// "NY", little-endian on the wire.
inline constexpr std::uint16_t frame_magic = 0x4E59;

inline constexpr std::uint8_t frame_version = 1;

/// Header bytes preceding every body.
inline constexpr std::size_t frame_header_bytes = 12;

/// The body length field is 16-bit, which also matches the largest
/// payload a real UDP datagram can carry (65507 bytes).
inline constexpr std::size_t max_body_bytes = 0xFFFF;

/// Wide-field body extensions. The simulator keeps a few fields wider
/// than their nominal wire width (32-bit monotonic ports, millisecond
/// route TTLs up to the 90 s hole timeout, unbounded ages); when any
/// value in a message exceeds its nominal field, the matching flag is
/// set and *every* occurrence of that field in the body widens from
/// u16 to u32. Encoding is canonical: a flag is set iff some value
/// requires it, so encode(decode(frame)) is byte-identical.
enum frame_flags : std::uint8_t {
  flag_wide_ports = 0x01,  ///< all endpoint ports u16 -> u32
  flag_wide_ttl = 0x02,    ///< all entry route TTLs u16 -> u32
  flag_wide_age = 0x04,    ///< all entry ages u16 -> u32
};

inline constexpr std::uint8_t known_flags =
    flag_wide_ports | flag_wide_ttl | flag_wide_age;

/// Typed decode failures. Decoding never aborts and never reads out of
/// bounds: every malformed input maps to one of these.
enum class decode_error : std::uint8_t {
  none,            ///< frame decoded successfully
  truncated,       ///< shorter than the header, or body shorter than `length`
  bad_magic,       ///< first two bytes are not 0x4E59
  bad_version,     ///< unknown version byte
  bad_kind,        ///< kind byte is not a protocol message kind
  bad_length,      ///< `length` inconsistent with flags + entry count
  bad_checksum,    ///< FNV-1a-32 mismatch (bit flip somewhere)
  bad_body,        ///< body violates an invariant (kind echo, NAT type, pad,
                   ///< flags) despite a correct checksum
  trailing_bytes,  ///< valid frame followed by extra bytes
};

[[nodiscard]] std::string_view to_string(decode_error e) noexcept;

/// FNV-1a-32 of a whole frame (header + body) with the checksum field
/// (offset 8, 4 bytes) read as zero. Exposed for tests that forge or
/// mutate frames.
[[nodiscard]] std::uint32_t frame_checksum(
    std::span<const std::byte> frame) noexcept;

}  // namespace nylon::wire
