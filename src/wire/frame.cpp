#include "wire/frame.h"

namespace nylon::wire {

std::string_view to_string(decode_error e) noexcept {
  switch (e) {
    case decode_error::none: return "none";
    case decode_error::truncated: return "truncated";
    case decode_error::bad_magic: return "bad_magic";
    case decode_error::bad_version: return "bad_version";
    case decode_error::bad_kind: return "bad_kind";
    case decode_error::bad_length: return "bad_length";
    case decode_error::bad_checksum: return "bad_checksum";
    case decode_error::bad_body: return "bad_body";
    case decode_error::trailing_bytes: return "trailing_bytes";
  }
  return "?";
}

std::uint32_t frame_checksum(std::span<const std::byte> frame) noexcept {
  constexpr std::uint32_t fnv_offset = 2166136261u;
  constexpr std::uint32_t fnv_prime = 16777619u;
  std::uint32_t hash = fnv_offset;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    // The checksum field hashes as zero so the stored value can be
    // patched in after the pass.
    const std::uint8_t byte =
        (i >= 8 && i < 12) ? 0 : std::to_integer<std::uint8_t>(frame[i]);
    hash = (hash ^ byte) * fnv_prime;
  }
  return hash;
}

}  // namespace nylon::wire
