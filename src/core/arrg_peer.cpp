#include "core/arrg_peer.h"

#include <algorithm>
#include <utility>

#include "util/contracts.h"

namespace nylon::core {

using gossip::gossip_message;
using gossip::message_kind;
using gossip::node_descriptor;
using gossip::view_entry;

arrg_peer::arrg_peer(net::transport& transport, util::rng& rng,
                     gossip::protocol_config cfg, std::size_t cache_size)
    : gossip::peer(transport, rng, cfg), cache_size_(cache_size) {
  NYLON_EXPECTS(cache_size > 0);
}

std::vector<node_descriptor> arrg_peer::cache_snapshot() const {
  return {cache_.begin(), cache_.end()};
}

void arrg_peer::remember_success(const node_descriptor& peer) {
  if (peer.id == id()) return;
  const auto existing = std::find_if(
      cache_.begin(), cache_.end(),
      [&](const node_descriptor& d) { return d.id == peer.id; });
  if (existing != cache_.end()) cache_.erase(existing);
  cache_.push_front(peer);
  if (cache_.size() > cache_size_) cache_.pop_back();
}

void arrg_peer::initiate_shuffle() {
  if (view_.empty() && cache_.empty()) {
    ++stats_.empty_view_skips;
    return;
  }
  // Fallback rule: the previous attempt went unanswered -> pick the
  // target from the cache of previously responsive peers instead.
  node_descriptor target;
  const bool previous_failed = awaiting_response_ != net::nil_node;
  if (previous_failed && !cache_.empty()) {
    ++cache_fallbacks_;
    target = cache_[rng_.index(cache_.size())];
  } else if (!view_.empty()) {
    target = view_.select(cfg_.selection, rng_).peer;
  } else {
    target = cache_[rng_.index(cache_.size())];
  }

  ++stats_.initiated;
  const std::vector<view_entry>& buffer = build_buffer();
  gossip_message msg;
  msg.kind = message_kind::request;
  msg.sender = self();
  msg.src = self();
  msg.dest = target;
  msg.entries = buffer;
  transport_.send(id(), target.addr, make_message(msg));
  awaiting_response_ = target.id;
  last_sent_.assign(buffer.begin(), buffer.end());
  view_.increase_age();
}

void arrg_peer::handle_message(const net::datagram& dgram,
                               const gossip_message& msg) {
  switch (msg.kind) {
    case message_kind::request: {
      ++stats_.requests_received;
      remember_success(msg.src);
      std::vector<view_entry> sent;
      if (cfg_.propagation == gossip::propagation_policy::pushpull) {
        sent = build_buffer();  // copied out of the shared scratch
        gossip_message response;
        response.kind = message_kind::response;
        response.sender = self();
        response.src = self();
        response.dest = msg.src;
        response.entries = sent;
        transport_.send(id(), dgram.source, make_message(response));
      }
      view_.merge(msg.entries, sent, cfg_.merge, id(), rng_);
      view_.increase_age();
      return;
    }
    case message_kind::response: {
      ++stats_.responses_received;
      remember_success(msg.src);
      if (msg.src.id == awaiting_response_) {
        awaiting_response_ = net::nil_node;
      }
      view_.merge(msg.entries, last_sent_, cfg_.merge, id(), rng_);
      last_sent_.clear();
      return;
    }
    case message_kind::open_hole:
    case message_kind::ping:
    case message_kind::pong:
      return;  // not part of this baseline
  }
}

}  // namespace nylon::core
