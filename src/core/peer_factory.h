// Uniform construction of the three peer implementations, so scenarios
// and benches can sweep protocols by name.
#pragma once

#include <memory>
#include <string_view>

#include "gossip/peer.h"
#include "gossip/policies.h"
#include "net/transport.h"
#include "util/rng.h"

namespace nylon::core {

/// Which protocol a peer runs.
enum class protocol_kind : std::uint8_t {
  reference,  ///< the NAT-oblivious Fig. 1 baseline
  nylon,      ///< the paper's contribution (Fig. 6)
  arrg,       ///< the cache-fallback baseline of Drost et al. [6]
};

[[nodiscard]] std::string_view to_string(protocol_kind k) noexcept;

/// Creates a peer of the requested kind. The caller wires it up:
/// transport.add_node -> attach -> bootstrap -> start.
[[nodiscard]] std::unique_ptr<gossip::peer> make_peer(
    protocol_kind kind, net::transport& transport, util::rng& rng,
    const gossip::protocol_config& cfg);

}  // namespace nylon::core
