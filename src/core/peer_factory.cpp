#include "core/peer_factory.h"

#include "core/arrg_peer.h"
#include "core/nylon_peer.h"
#include "gossip/generic_peer.h"

namespace nylon::core {

std::string_view to_string(protocol_kind k) noexcept {
  switch (k) {
    case protocol_kind::reference: return "reference";
    case protocol_kind::nylon: return "nylon";
    case protocol_kind::arrg: return "arrg";
  }
  return "?";
}

std::unique_ptr<gossip::peer> make_peer(protocol_kind kind,
                                        net::transport& transport,
                                        util::rng& rng,
                                        const gossip::protocol_config& cfg) {
  switch (kind) {
    case protocol_kind::reference:
      return std::make_unique<gossip::generic_peer>(transport, rng, cfg);
    case protocol_kind::nylon:
      return std::make_unique<nylon_peer>(transport, rng, cfg);
    case protocol_kind::arrg:
      return std::make_unique<arrg_peer>(transport, rng, cfg);
  }
  return nullptr;
}

}  // namespace nylon::core
