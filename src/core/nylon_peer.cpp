#include "core/nylon_peer.h"

#include <algorithm>
#include <utility>

#include "util/contracts.h"

namespace nylon::core {

using gossip::gossip_message;
using gossip::message_kind;
using gossip::node_descriptor;
using gossip::view_entry;

nylon_peer::nylon_peer(net::transport& transport, util::rng& rng,
                       gossip::protocol_config cfg)
    : gossip::peer(transport, rng,
                   [&] {
                     // Nylon's basis is pushpull (§4); the other two
                     // dimensions remain configurable for ablations.
                     cfg.propagation = gossip::propagation_policy::pushpull;
                     return cfg;
                   }()),
      routing_(transport.config().hole_timeout) {
  // Pending maps track at most a few in-flight shuffles/punches, but
  // starting at 32 slots keeps their growth out of `hash_rehashes`.
  pending_requests_.reserve(16);
  pending_punches_.reserve(16);
}

void nylon_peer::attach(net::node_id id) {
  peer::attach(id);
  // Public peers are the relay hubs — every OPEN_HOLE and relayed
  // shuffle they forward touches a direct entry for its sender — so
  // their steady-state table runs well past a natted peer's.
  const std::size_t contacts = transport_.config().expected_contacts;
  routing_.reserve(nat::is_natted(self().type) ? contacts : 2 * contacts);
}

bool nylon_peer::directly_addressable(const node_descriptor& d) noexcept {
  return d.type == nat::nat_type::open || d.type == nat::nat_type::full_cone;
}

bool nylon_peer::must_relay_request(
    const node_descriptor& target) const noexcept {
  // Fig. 6 line 5: (target is SYM and self is PRC) or self is SYM.
  using nat::nat_type;
  const nat_type self_type = self().type;
  return (target.type == nat_type::symmetric &&
          self_type == nat_type::port_restricted_cone) ||
         self_type == nat_type::symmetric;
}

bool nylon_peer::must_relay_response(
    const node_descriptor& src) const noexcept {
  // Fig. 6 line 20: (src is SYM and self != public) or
  //                 (self is SYM and src != public).
  using nat::nat_type;
  const nat_type self_type = self().type;
  const bool self_public = !nat::is_natted(self_type);
  const bool src_public = !nat::is_natted(src.type);
  return (src.type == nat_type::symmetric && !self_public) ||
         (self_type == nat_type::symmetric && !src_public);
}

void nylon_peer::initiate_shuffle() {
  // Fig. 6 lines 1-14.
  const sim::sim_time now = transport_.now_for(id());
  routing_.purge_expired(now);  // line 14 (equivalent placement)
  drop_unroutable_entries(now);
  prune_pending();
  if (view_.empty()) {
    ++stats_.empty_view_skips;
    return;
  }
  const node_descriptor target = view_.select(cfg_.selection, rng_).peer;
  const auto hop = routing_.next_rvp(target.id, now);

  if (directly_addressable(target) || (hop && hop->rvp == target.id)) {
    // Line 3: target public or next_RVP(target) == target.
    ++stats_.initiated;
    ++nylon_stats_.direct_shuffles;
    gossip_message msg;
    msg.kind = message_kind::request;
    msg.sender = self();
    msg.src = self();
    msg.dest = target;
    msg.entries = build_buffer();
    net::arena_ref<const gossip_message> body = make_message(msg);
    if (hop && hop->rvp == target.id) {
      send_via_hop(*hop, body);
    } else {
      transport_.send(id(), target.addr, body);
    }
    remember_request(target.id, std::move(body));
  } else if (must_relay_request(target)) {
    // Lines 5-7: relay the REQUEST through the chain.
    if (!hop) {
      ++stats_.no_route_skips;
    } else {
      ++stats_.initiated;
      ++nylon_stats_.relayed_shuffles;
      gossip_message msg;
      msg.kind = message_kind::request;
      msg.sender = self();
      msg.src = self();
      msg.dest = target;
      msg.entries = build_buffer();
      net::arena_ref<const gossip_message> body = make_message(msg);
      send_via_hop(*hop, body);
      remember_request(target.id, std::move(body));
    }
  } else {
    // Lines 8-12: reactive hole punching.
    if (!hop) {
      ++stats_.no_route_skips;
    } else {
      ++stats_.initiated;
      ++nylon_stats_.punches_started;
      gossip_message open;
      open.kind = message_kind::open_hole;
      open.sender = self();
      open.src = self();
      open.dest = target;
      send_via_hop(*hop, std::move(open));
      if (nat::is_natted(self().type)) {
        // Line 11-12: open our own hole towards the target. The PING is
        // usually dropped by the target's NAT; its purpose is the rule it
        // creates in *our* NAT, which the PONG will traverse.
        gossip_message ping;
        ping.kind = message_kind::ping;
        ping.sender = self();
        ping.src = self();
        ping.dest = target;
        transport_.send(id(), target.addr, make_message(ping));
      }
      // Keep the first punch's timestamp if one is already outstanding
      // (emplace semantics). Times are stored +1 so the table's
      // default-constructed 0 means "fresh entry" even at sim time 0.
      sim::sim_time& started = pending_punches_.insert_or_get(target.id);
      if (started == 0) started = now + 1;
    }
  }
  // The scratch is only meaningful within this call (the punch path may
  // not have consumed it; a REQUEST handled later must not see it).
  ttl_scratch_valid_ = false;
  view_.increase_age();  // line 13
}

void nylon_peer::send_via_hop(const next_hop& hop, net::payload_ptr body) {
  // Sending refreshes the hop's NAT rule for us, so the link bookkeeping
  // may be refreshed too. Chained-route TTLs are NOT refreshed here: a
  // pointer's downstream chain can die invisibly, so pointers must expire
  // at their learnt TTL (first-giver discipline, see routing_table.h).
  const sim::sim_time now = transport_.now_for(id());
  routing_.touch_direct(hop.rvp, hop.address, now);
  transport_.send(id(), hop.address, std::move(body));
}

void nylon_peer::send_via_hop(const next_hop& hop, gossip_message msg) {
  send_via_hop(hop, make_message(msg));
}

void nylon_peer::forward(const gossip_message& msg) {
  const sim::sim_time now = transport_.now_for(id());
  if (msg.hops >= max_forward_hops) {
    ++stats_.forward_drops;
    return;
  }
  const auto hop = routing_.next_rvp(msg.dest.id, now);
  if (!hop) {
    ++stats_.forward_drops;
    return;
  }
  gossip_message copy = msg;
  copy.sender = self();
  copy.hops = static_cast<std::uint8_t>(msg.hops + 1);
  ++stats_.messages_forwarded;
  send_via_hop(*hop, std::move(copy));
}

void nylon_peer::handle_message(const net::datagram& dgram,
                                const gossip_message& msg) {
  const sim::sim_time now = transport_.now_for(id());
  // Fig. 6 lines 16/28/36/42/45: any message makes its immediate sender a
  // direct contact for a full hole timeout.
  if (msg.sender.id != id()) {
    routing_.touch_direct(msg.sender.id, dgram.source, now);
  }
  // Reverse route towards the originator of a forwarded message (DESIGN.md
  // fidelity note 3): we can reach `src` back through the hop that
  // delivered this message.
  if (msg.src.id != id() && msg.src.id != msg.sender.id &&
      gossip::valid(msg.src)) {
    routing_.learn_route(msg.src.id, msg.sender.id,
                         now + routing_.hole_timeout(), now);
  }

  switch (msg.kind) {
    case message_kind::request: {
      if (msg.dest.id != id()) {  // lines 17-19
        forward(msg);
        return;
      }
      ++stats_.requests_received;
      if (msg.hops > 0) {
        nylon_stats_.relay_chain_hops.add(static_cast<double>(msg.hops));
      }
      gossip_message response;
      response.kind = message_kind::response;
      response.sender = self();
      response.src = self();
      response.dest = msg.src;
      response.entries = build_buffer();
      const net::arena_ref<const gossip_message> reply = make_message(response);
      if (must_relay_response(msg.src)) {  // lines 20-22
        const auto hop = routing_.next_rvp(msg.src.id, now);
        if (hop) {
          send_via_hop(*hop, reply);
        } else {
          ++nylon_stats_.response_route_drops;
        }
      } else {  // lines 23-24: direct reply to the observed endpoint
        transport_.send(id(), dgram.source, reply);
      }
      merge_and_learn(msg, reply->entries);  // lines 25-26
      return;
    }

    case message_kind::response: {
      if (msg.dest.id != id()) {  // lines 29-31
        forward(msg);
        return;
      }
      ++stats_.responses_received;
      std::span<const view_entry> sent;
      net::arena_ref<const gossip_message> request;  // keeps `sent` alive
      if (pending_request* pending = pending_requests_.find(msg.src.id)) {
        request = std::move(pending->sent_msg);
        pending_requests_.erase(msg.src.id);
        if (request) sent = request->entries;
      }
      merge_and_learn(msg, sent);  // lines 33-34
      return;
    }

    case message_kind::open_hole: {
      if (msg.dest.id != id()) {  // lines 39-40
        forward(msg);
        return;
      }
      // Lines 37-38: the chain delivered the punch request; answer the
      // originator directly (its own PING opened the way for this PONG).
      nylon_stats_.punch_chain_hops.add(static_cast<double>(msg.hops));
      gossip_message pong;
      pong.kind = message_kind::pong;
      pong.sender = self();
      pong.src = self();
      pong.dest = msg.src;
      transport_.send(id(), msg.src.addr, make_message(pong));
      return;
    }

    case message_kind::ping: {
      // Lines 41-43: reply to the observed endpoint.
      gossip_message pong;
      pong.kind = message_kind::pong;
      pong.sender = self();
      pong.src = self();
      pong.dest = msg.sender;
      transport_.send(id(), dgram.source, make_message(pong));
      return;
    }

    case message_kind::pong: {
      // Lines 44-46: the hole is open — run the deferred shuffle. Answer
      // only the first PONG per outstanding punch (a PING that slipped
      // through can produce a second one).
      if (!pending_punches_.erase(msg.sender.id)) return;
      ++nylon_stats_.punches_completed;
      gossip_message request;
      request.kind = message_kind::request;
      request.sender = self();
      request.src = self();
      request.dest = msg.sender;
      request.entries = build_buffer();
      net::arena_ref<const gossip_message> body = make_message(request);
      transport_.send(id(), dgram.source, body);
      remember_request(msg.sender.id, std::move(body));
      return;
    }
  }
}

void nylon_peer::merge_and_learn(const gossip_message& msg,
                                 std::span<const view_entry> sent) {
  const sim::sim_time now = transport_.now_for(id());
  // update_routing_table (Fig. 6 line 26, prose of §4): the shuffle
  // partner becomes the RVP for every entry it handed over — usable only
  // when the partner is itself directly reachable (DESIGN.md note 5: a
  // fully relayed exchange provides no usable first hop, so natted
  // entries we cannot bind a route for are not merged either).
  const bool partner_direct = routing_.is_direct(msg.src.id, now);
  if (partner_direct) {
    for (const view_entry& e : msg.entries) {
      if (e.peer.id == id() || e.peer.id == msg.src.id) continue;
      if (directly_addressable(e.peer)) continue;  // no RVP needed
      const sim::sim_time advertised =
          std::clamp<sim::sim_time>(e.route_ttl, 0, routing_.hole_timeout());
      if (advertised <= 0) continue;
      // A full-timeout advertisement means the partner holds a fresh
      // direct hole to this entry: authoritative, replaces stale chains.
      // (Replacing on *any* fresher copy was tried and re-introduces the
      // pointer-cycle instability — see EXPERIMENTS.md's Fig. 9 notes.)
      const bool authoritative =
          advertised >= routing_.hole_timeout() - cfg_.shuffle_period;
      routing_.learn_route(e.peer.id, msg.src.id, now + advertised, now,
                           authoritative);
    }
    view_.merge(msg.entries, sent, cfg_.merge, id(), rng_);
    return;
  }
  std::vector<view_entry> usable;
  usable.reserve(msg.entries.size());
  for (const view_entry& e : msg.entries) {
    if (directly_addressable(e.peer) ||
        routing_.next_rvp(e.peer.id, now).has_value()) {
      usable.push_back(e);
    } else {
      ++nylon_stats_.merge_entries_filtered;
    }
  }
  view_.merge(usable, sent, cfg_.merge, id(), rng_);
}

void nylon_peer::decorate_buffer(std::vector<view_entry>& buffer) {
  const sim::sim_time now = transport_.now_for(id());
  if (ttl_scratch_valid_ && buffer.size() == ttl_scratch_.size() + 1 &&
      buffer.front().peer.id == id()) {
    // Fast path for initiate_shuffle: drop_unroutable_entries just
    // resolved every view entry; reuse those TTLs instead of probing the
    // routing table a second time.
    ttl_scratch_valid_ = false;
    buffer.front().route_ttl = routing_.hole_timeout();
    for (std::size_t i = 1; i < buffer.size(); ++i) {
      buffer[i].route_ttl = ttl_scratch_[i - 1];
    }
  } else {
    ttl_scratch_valid_ = false;
    for (view_entry& e : buffer) {
      if (e.peer.id == id() || directly_addressable(e.peer)) {
        e.route_ttl = routing_.hole_timeout();
      } else {
        e.route_ttl = routing_.remaining_ttl(e.peer.id, now);
      }
    }
  }
  // Never hand out a natted reference we cannot route to ourselves: the
  // receiver would bind its route through us, so the reference would be
  // dead on arrival — pure view pollution (DESIGN.md fidelity note 6).
  const std::size_t before = buffer.size();
  std::erase_if(buffer, [&](const view_entry& e) {
    return e.peer.id != id() && !directly_addressable(e.peer) &&
           e.route_ttl <= 0;
  });
  nylon_stats_.buffer_entries_filtered += before - buffer.size();
}

void nylon_peer::drop_unroutable_entries(sim::sim_time now) {
  // The paper observes "no stale references in peer views" (§5): a view
  // entry whose route has expired is unusable for gossip, so Nylon drops
  // it and lets the next merge refill the slot.
  std::vector<net::node_id> unroutable;
  ttl_scratch_.clear();
  for (const view_entry& e : view_.entries()) {
    if (directly_addressable(e.peer)) {
      ttl_scratch_.push_back(routing_.hole_timeout());
      continue;
    }
    const routing_table::route_status status =
        routing_.resolve(e.peer.id, now);
    if (status.reachable) {
      ttl_scratch_.push_back(status.ttl);
    } else {
      unroutable.push_back(e.peer.id);
    }
  }
  ttl_scratch_valid_ = true;
  for (const net::node_id dead : unroutable) {
    view_.remove(dead);
    ++nylon_stats_.unroutable_entries_dropped;
  }
}

void nylon_peer::remember_request(
    net::node_id target, net::arena_ref<const gossip_message> sent) {
  pending_requests_.insert_or_get(target) =
      pending_request{std::move(sent), transport_.now_for(id())};
}

void nylon_peer::prune_pending() {
  const sim::sim_time horizon = transport_.now_for(id()) -
                                pending_ttl_periods * cfg_.shuffle_period;
  pending_requests_.erase_if([&](net::node_id, const pending_request& item) {
    return item.sent_at < horizon;
  });
  pending_punches_.erase_if([&](net::node_id, sim::sim_time started) {
    if (started - 1 >= horizon) return false;  // stored +1; see header
    ++nylon_stats_.punches_expired;
    return true;
  });
}

}  // namespace nylon::core
