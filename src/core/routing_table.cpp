#include "core/routing_table.h"

#include <algorithm>

#include "obs/counters.h"
#include "util/contracts.h"

namespace nylon::core {

routing_table::routing_table(sim::sim_time hole_timeout,
                             std::size_t expected_contacts)
    : hole_timeout_(hole_timeout) {
  NYLON_EXPECTS(hole_timeout > 0);
  table_.reserve(expected_contacts);
}

void routing_table::touch_direct(net::node_id p, const net::endpoint& addr,
                                 sim::sim_time now) {
  route_entry& e = table_.insert_or_get(p);
  obs::count_peak(obs::counter::route_table_peak, table_.size());
  e.direct_address = addr;
  e.direct_expires = now + hole_timeout_;
  note_expiry(e.direct_expires);
}

void routing_table::learn_route(net::node_id dest, net::node_id rvp,
                                sim::sim_time expires, sim::sim_time now,
                                bool authoritative) {
  NYLON_EXPECTS(dest != rvp);
  route_entry& e = table_.insert_or_get(dest);
  obs::count_peak(obs::counter::route_table_peak, table_.size());
  const bool existing_valid =
      e.rvp != net::nil_node && e.route_expires >= now;
  if (!existing_valid || (authoritative && expires > e.route_expires)) {
    e.rvp = rvp;
    e.route_expires = expires;
    note_expiry(expires);
  }
  // else: first-giver-wins — see the header for why this keeps chains
  // acyclic.
}

void routing_table::refresh_routes_via(net::node_id rvp, sim::sim_time now) {
  table_.for_each([&](net::node_id, route_entry& e) {
    if (e.rvp == rvp && e.route_expires >= now) {
      e.route_expires = now + hole_timeout_;
    }
  });
}

void routing_table::forget(net::node_id dest) { table_.erase(dest); }

void routing_table::purge_expired(sim::sim_time now) {
  if (now <= next_expiry_) return;  // nothing can have expired yet
  // Queries reject expired entries themselves, so the sweep is pure
  // garbage collection — run it at most once per hole timeout. Lingering
  // expired entries are invisible (every read re-checks expiry) and
  // bounded by one timeout's worth of learns, which the per-class
  // `expected_contacts` reserve is sized to absorb (sweeping more often
  // shrinks the table but costs more than the garbage does).
  if (now < last_sweep_ + hole_timeout_) return;
  last_sweep_ = now;
  sim::sim_time next = sim::time_never;
  table_.erase_if([&](net::node_id, route_entry& e) {
    // An entry survives while either layer is live; the dead layer is
    // reset to its vacant state (what erasing from the old per-layer map
    // did), so introspection never counts it again.
    bool live = false;
    if (e.direct_expires >= now) {
      next = std::min(next, e.direct_expires);
      live = true;
    } else {
      e.direct_expires = -1;
    }
    if (e.rvp != net::nil_node && e.route_expires >= now) {
      next = std::min(next, e.route_expires);
      live = true;
    } else {
      e.rvp = net::nil_node;
      e.route_expires = 0;
    }
    return !live;
  });
  next_expiry_ = next;
}

bool routing_table::is_direct(net::node_id dest, sim::sim_time now) const {
  return live_direct(dest, now) != nullptr;
}

std::optional<next_hop> routing_table::next_rvp(net::node_id dest,
                                                sim::sim_time now) const {
  const route_entry* e = table_.find(dest);
  if (e == nullptr) return std::nullopt;
  if (e->direct_expires >= now) return next_hop{dest, e->direct_address};
  if (e->rvp == net::nil_node || e->route_expires < now) return std::nullopt;
  const route_entry* hop = live_direct(e->rvp, now);
  if (hop == nullptr) {
    // The RVP itself is no longer reachable; the chain is broken here.
    return std::nullopt;
  }
  return next_hop{e->rvp, hop->direct_address};
}

sim::sim_time routing_table::remaining_ttl(net::node_id dest,
                                           sim::sim_time now) const {
  const route_entry* e = table_.find(dest);
  if (e == nullptr) return 0;
  if (e->direct_expires >= now) return e->direct_expires - now;
  if (e->rvp == net::nil_node || e->route_expires < now) return 0;
  const route_entry* hop = live_direct(e->rvp, now);
  if (hop == nullptr) return 0;
  // Minimum along the chain as seen from here: the learnt expiry already
  // carries the upstream minimum; the local link to the RVP caps it.
  return std::min(e->route_expires, hop->direct_expires) - now;
}

routing_table::route_status routing_table::resolve(net::node_id dest,
                                                   sim::sim_time now) const {
  const route_entry* e = table_.find(dest);
  if (e == nullptr) return {};
  if (e->direct_expires >= now) return {true, e->direct_expires - now};
  if (e->rvp == net::nil_node || e->route_expires < now) return {};
  const route_entry* hop = live_direct(e->rvp, now);
  if (hop == nullptr) return {};
  return {true, std::min(e->route_expires, hop->direct_expires) - now};
}

std::size_t routing_table::direct_count(sim::sim_time now) const {
  std::size_t count = 0;
  table_.for_each([&](net::node_id, const route_entry& e) {
    if (e.direct_expires >= now) ++count;
  });
  return count;
}

std::size_t routing_table::route_count(sim::sim_time now) const {
  std::size_t count = 0;
  table_.for_each([&](net::node_id, const route_entry& e) {
    if (e.rvp != net::nil_node && e.route_expires >= now) ++count;
  });
  return count;
}

}  // namespace nylon::core
