#include "core/routing_table.h"

#include <algorithm>

#include "util/contracts.h"

namespace nylon::core {

routing_table::routing_table(sim::sim_time hole_timeout)
    : hole_timeout_(hole_timeout) {
  NYLON_EXPECTS(hole_timeout > 0);
}

void routing_table::touch_direct(net::node_id p, const net::endpoint& addr,
                                 sim::sim_time now) {
  direct_contact& contact = direct_.insert_or_get(p);
  contact.address = addr;
  contact.expires = now + hole_timeout_;
  note_expiry(contact.expires);
}

void routing_table::learn_route(net::node_id dest, net::node_id rvp,
                                sim::sim_time expires, sim::sim_time now,
                                bool authoritative) {
  NYLON_EXPECTS(dest != rvp);
  chained_route& route = routes_.insert_or_get(dest);
  const bool existing_valid =
      route.rvp != net::nil_node && route.expires >= now;
  if (!existing_valid || (authoritative && expires > route.expires)) {
    route.rvp = rvp;
    route.expires = expires;
    note_expiry(expires);
  }
  // else: first-giver-wins — see the header for why this keeps chains
  // acyclic.
}

void routing_table::refresh_routes_via(net::node_id rvp, sim::sim_time now) {
  routes_.for_each([&](net::node_id, chained_route& route) {
    if (route.rvp == rvp && route.expires >= now) {
      route.expires = now + hole_timeout_;
    }
  });
}

void routing_table::forget(net::node_id dest) {
  direct_.erase(dest);
  routes_.erase(dest);
}

void routing_table::purge_expired(sim::sim_time now) {
  if (now <= next_expiry_) return;  // nothing can have expired yet
  // Queries reject expired entries themselves, so the sweep is pure
  // garbage collection — run it at most once per hole timeout. Lingering
  // expired entries are invisible (every read re-checks expiry) and
  // bounded by one timeout's worth of learns.
  if (now < last_sweep_ + hole_timeout_) return;
  last_sweep_ = now;
  sim::sim_time next = sim::time_never;
  direct_.erase_if([&](net::node_id, direct_contact& contact) {
    if (contact.expires >= now) {
      next = std::min(next, contact.expires);
      return false;
    }
    return true;
  });
  routes_.erase_if([&](net::node_id, chained_route& route) {
    if (route.expires >= now) {
      next = std::min(next, route.expires);
      return false;
    }
    return true;
  });
  next_expiry_ = next;
}

bool routing_table::is_direct(net::node_id dest, sim::sim_time now) const {
  const direct_contact* contact = direct_.find(dest);
  return contact != nullptr && contact->expires >= now;
}

std::optional<next_hop> routing_table::next_rvp(net::node_id dest,
                                                sim::sim_time now) const {
  const direct_contact* direct = direct_.find(dest);
  if (direct != nullptr && direct->expires >= now) {
    return next_hop{dest, direct->address};
  }
  const chained_route* route = routes_.find(dest);
  if (route == nullptr || route->expires < now) return std::nullopt;
  const direct_contact* hop = direct_.find(route->rvp);
  if (hop == nullptr || hop->expires < now) {
    // The RVP itself is no longer reachable; the chain is broken here.
    return std::nullopt;
  }
  return next_hop{route->rvp, hop->address};
}

sim::sim_time routing_table::remaining_ttl(net::node_id dest,
                                           sim::sim_time now) const {
  const direct_contact* direct = direct_.find(dest);
  if (direct != nullptr && direct->expires >= now) {
    return direct->expires - now;
  }
  const chained_route* route = routes_.find(dest);
  if (route == nullptr || route->expires < now) return 0;
  const direct_contact* hop = direct_.find(route->rvp);
  if (hop == nullptr || hop->expires < now) return 0;
  // Minimum along the chain as seen from here: the learnt expiry already
  // carries the upstream minimum; the local link to the RVP caps it.
  return std::min(route->expires, hop->expires) - now;
}

routing_table::route_status routing_table::resolve(net::node_id dest,
                                                   sim::sim_time now) const {
  const direct_contact* direct = direct_.find(dest);
  if (direct != nullptr && direct->expires >= now) {
    return {true, direct->expires - now};
  }
  const chained_route* route = routes_.find(dest);
  if (route == nullptr || route->expires < now) return {};
  const direct_contact* hop = direct_.find(route->rvp);
  if (hop == nullptr || hop->expires < now) return {};
  return {true, std::min(route->expires, hop->expires) - now};
}

std::size_t routing_table::direct_count(sim::sim_time now) const {
  std::size_t count = 0;
  direct_.for_each([&](net::node_id, const direct_contact& contact) {
    if (contact.expires >= now) ++count;
  });
  return count;
}

std::size_t routing_table::route_count(sim::sim_time now) const {
  std::size_t count = 0;
  routes_.for_each([&](net::node_id, const chained_route& route) {
    if (route.expires >= now) ++count;
  });
  return count;
}

}  // namespace nylon::core
