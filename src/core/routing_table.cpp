#include "core/routing_table.h"

#include <algorithm>

#include "util/contracts.h"

namespace nylon::core {

routing_table::routing_table(sim::sim_time hole_timeout)
    : hole_timeout_(hole_timeout) {
  NYLON_EXPECTS(hole_timeout > 0);
}

void routing_table::touch_direct(net::node_id p, const net::endpoint& addr,
                                 sim::sim_time now) {
  direct_contact& contact = direct_[p];
  contact.address = addr;
  contact.expires = now + hole_timeout_;
}

void routing_table::learn_route(net::node_id dest, net::node_id rvp,
                                sim::sim_time expires, sim::sim_time now,
                                bool authoritative) {
  NYLON_EXPECTS(dest != rvp);
  chained_route& route = routes_[dest];
  const bool existing_valid =
      route.rvp != net::nil_node && route.expires >= now;
  if (!existing_valid || (authoritative && expires > route.expires)) {
    route.rvp = rvp;
    route.expires = expires;
  }
  // else: first-giver-wins — see the header for why this keeps chains
  // acyclic.
}

void routing_table::refresh_routes_via(net::node_id rvp, sim::sim_time now) {
  for (auto& [dest, route] : routes_) {
    if (route.rvp == rvp && route.expires >= now) {
      route.expires = now + hole_timeout_;
    }
  }
}

void routing_table::forget(net::node_id dest) {
  direct_.erase(dest);
  routes_.erase(dest);
}

void routing_table::purge_expired(sim::sim_time now) {
  std::erase_if(direct_,
                [now](const auto& kv) { return kv.second.expires < now; });
  std::erase_if(routes_,
                [now](const auto& kv) { return kv.second.expires < now; });
}

bool routing_table::is_direct(net::node_id dest, sim::sim_time now) const {
  const auto it = direct_.find(dest);
  return it != direct_.end() && it->second.expires >= now;
}

std::optional<next_hop> routing_table::next_rvp(net::node_id dest,
                                                sim::sim_time now) const {
  const auto direct = direct_.find(dest);
  if (direct != direct_.end() && direct->second.expires >= now) {
    return next_hop{dest, direct->second.address};
  }
  const auto route = routes_.find(dest);
  if (route == routes_.end() || route->second.expires < now) {
    return std::nullopt;
  }
  const auto hop = direct_.find(route->second.rvp);
  if (hop == direct_.end() || hop->second.expires < now) {
    // The RVP itself is no longer reachable; the chain is broken here.
    return std::nullopt;
  }
  return next_hop{route->second.rvp, hop->second.address};
}

sim::sim_time routing_table::remaining_ttl(net::node_id dest,
                                           sim::sim_time now) const {
  const auto direct = direct_.find(dest);
  if (direct != direct_.end() && direct->second.expires >= now) {
    return direct->second.expires - now;
  }
  const auto route = routes_.find(dest);
  if (route == routes_.end() || route->second.expires < now) return 0;
  const auto hop = direct_.find(route->second.rvp);
  if (hop == direct_.end() || hop->second.expires < now) return 0;
  // Minimum along the chain as seen from here: the learnt expiry already
  // carries the upstream minimum; the local link to the RVP caps it.
  return std::min(route->second.expires, hop->second.expires) - now;
}

std::size_t routing_table::direct_count(sim::sim_time now) const {
  return static_cast<std::size_t>(
      std::count_if(direct_.begin(), direct_.end(), [now](const auto& kv) {
        return kv.second.expires >= now;
      }));
}

std::size_t routing_table::route_count(sim::sim_time now) const {
  return static_cast<std::size_t>(
      std::count_if(routes_.begin(), routes_.end(), [now](const auto& kv) {
        return kv.second.expires >= now;
      }));
}

}  // namespace nylon::core
