// Nylon (Fig. 6): the paper's NAT-resilient peer-sampling protocol.
//
// On top of the (pushpull, rand, healer) basis, a Nylon peer:
//  * keeps a routing table of RVPs (Fig. 5) besides its view,
//  * performs *reactive* hole punching: OPEN_HOLE travels along the RVP
//    chain only when a gossip towards that target is actually initiated,
//  * relays REQUEST/RESPONSE through the chain when hole punching cannot
//    work (symmetric-NAT combinations, Fig. 6 lines 5-7 and 20-22),
//  * stamps every view entry it sends with the remaining TTL of its own
//    route towards that entry, propagating the chain minimum (Fig. 5).
//
// Deviations from the paper's pseudocode are repairs its prose requires;
// they are listed in DESIGN.md ("Pseudocode fidelity notes") and each one
// is unit-tested.
#pragma once

#include <cstdint>
#include <span>

#include "core/routing_table.h"
#include "gossip/peer.h"
#include "util/flat_hash.h"
#include "util/stats.h"

namespace nylon::core {

/// Nylon-specific counters and chain-length observations.
struct nylon_stats {
  std::uint64_t direct_shuffles = 0;    ///< REQUEST sent straight to target
  std::uint64_t relayed_shuffles = 0;   ///< REQUEST routed through RVPs
  std::uint64_t punches_started = 0;    ///< OPEN_HOLE emitted
  std::uint64_t punches_completed = 0;  ///< PONG received, REQUEST sent
  std::uint64_t punches_expired = 0;    ///< no PONG within the horizon
  std::uint64_t response_route_drops = 0;  ///< could not route a RESPONSE
  std::uint64_t unroutable_entries_dropped = 0;  ///< view entries purged
  std::uint64_t buffer_entries_filtered = 0;     ///< not shared (no route)
  std::uint64_t merge_entries_filtered = 0;      ///< not merged (no route)
  /// RVP-chain lengths, measured at the target as the number of
  /// forwarding hops of the arriving OPEN_HOLE (Fig. 9).
  util::running_stats punch_chain_hops;
  /// Same for fully relayed REQUESTs (symmetric-NAT shuffles).
  util::running_stats relay_chain_hops;
};

class nylon_peer : public gossip::peer {
 public:
  /// Nylon fixes propagation to pushpull (the paper's basis config);
  /// selection/merge default to (rand, healer) but stay configurable for
  /// ablations.
  nylon_peer(net::transport& transport, util::rng& rng,
             gossip::protocol_config cfg);

  /// Sizes the routing table by NAT class once the type is known.
  void attach(net::node_id id) override;

  [[nodiscard]] const nylon_stats& nat_stats() const noexcept {
    return nylon_stats_;
  }
  [[nodiscard]] const routing_table& routes() const noexcept {
    return routing_;
  }

 protected:
  void initiate_shuffle() override;
  void handle_message(const net::datagram& dgram,
                      const gossip::gossip_message& msg) override;
  void decorate_buffer(std::vector<gossip::view_entry>& buffer) override;

 private:
  /// True when a REQUEST can simply be addressed to `d`'s advertised
  /// endpoint: public peers, and full-cone peers whose NAT forwards
  /// everything while their binding is alive (§2.2).
  [[nodiscard]] static bool directly_addressable(
      const gossip::node_descriptor& d) noexcept;

  /// Fig. 6 lines 5 and 20: the combinations where hole punching cannot
  /// work and the protocol falls back to relaying through the chain.
  [[nodiscard]] bool must_relay_request(
      const gossip::node_descriptor& target) const noexcept;
  [[nodiscard]] bool must_relay_response(
      const gossip::node_descriptor& src) const noexcept;

  /// Forwards a routed message one hop along the RVP chain (lines 17-19,
  /// 29-31, 39-40), re-stamping the hop sender and the hop counter.
  void forward(const gossip::gossip_message& msg);

  /// Sends to a resolved next hop, refreshing its direct entry: our
  /// packet refreshes the hop's NAT rule for us, so the link stays usable
  /// as long as traffic flows — the send-side half of §4's TTL-update
  /// rule, without which chains decay while still carrying traffic.
  void send_via_hop(const next_hop& hop, gossip::gossip_message msg);
  void send_via_hop(const next_hop& hop, net::payload_ptr body);

  /// Fig. 6 lines 25-26: merge the received buffer into the view, then
  /// bind each received entry to the shuffle partner as its RVP with the
  /// advertised (chain-minimum) TTL. `sent` must stay alive for the call.
  void merge_and_learn(const gossip::gossip_message& msg,
                       std::span<const gossip::view_entry> sent);

  void remember_request(net::node_id target,
                        net::arena_ref<const gossip::gossip_message> sent);
  void prune_pending();

  /// Drops natted view entries with no live route (the paper's views
  /// contain "no stale references"; a routeless entry cannot be gossiped
  /// with, so keeping it would only distort the sample). As a side
  /// effect fills `ttl_scratch_` with each surviving entry's remaining
  /// TTL, which the immediately following decorate_buffer consumes
  /// instead of re-probing the routing table.
  void drop_unroutable_entries(sim::sim_time now);

  static constexpr int pending_ttl_periods = 10;
  static constexpr std::uint8_t max_forward_hops = 32;

  routing_table routing_;
  nylon_stats nylon_stats_;

  /// The sent buffer is shared with the wire message instead of copied.
  struct pending_request {
    net::arena_ref<const gossip::gossip_message> sent_msg;
    sim::sim_time sent_at = 0;
  };
  util::flat_hash_map<net::node_id, pending_request> pending_requests_;
  /// target -> punch start time + 1 (0 is the table's "fresh" default).
  util::flat_hash_map<net::node_id, sim::sim_time> pending_punches_;
  /// Per-view-entry TTLs computed by drop_unroutable_entries, consumed
  /// (and invalidated) by the next decorate_buffer in the same
  /// initiate_shuffle call — the two walk the same entries and would
  /// otherwise duplicate every routing-table probe.
  std::vector<sim::sim_time> ttl_scratch_;
  bool ttl_scratch_valid_ = false;
};

}  // namespace nylon::core
