// Nylon's per-peer routing state (Fig. 5): for every natted peer we may
// want to gossip with, the rendez-vous peer (RVP) that can forward our
// OPEN_HOLE / relayed messages towards it, with a time-to-live.
//
// Two layers, mirroring how the protocol actually learns paths:
//  * direct contacts — peers we exchanged messages with recently; we hold
//    their observed endpoint and the NAT holes are mutual. Refreshed every
//    time a message from them arrives (update_next_RVP(p, p, HOLE_TIMEOUT)).
//  * chained routes — "to reach d, go through rvp r", learnt from a
//    shuffle (the partner that handed us d's reference becomes the RVP,
//    §4) or from a forwarded message's reverse path. The advertised TTL
//    propagates the minimum remaining validity along the chain (Fig. 5's
//    120/140/170 example).
//
// TTLs are stored as absolute expiry times; "decreasing TTLs every period"
// (Fig. 6 line 14) then reduces to purging expired entries.
//
// Storage: both layers live in ONE open-addressed map keyed by the
// destination id. The hot queries (next_rvp / resolve / remaining_ttl)
// always consult the direct layer first and fall through to the chained
// layer for the same destination, so fusing the layers answers them with
// a single probe sequence where the two-map layout paid two; the layer
// split survives as two expiry fields inside the combined entry.
#pragma once

#include <cstddef>
#include <optional>

#include "net/address.h"
#include "net/node_id.h"
#include "sim/time.h"
#include "util/flat_hash.h"

namespace nylon::core {

/// Resolved next hop for a destination.
struct next_hop {
  net::node_id rvp = net::nil_node;  ///< equals dest when direct
  net::endpoint address;             ///< where to physically send
};

class routing_table {
 public:
  /// `hole_timeout` is the NAT-rule lifetime (the paper's 90 s); direct
  /// contacts and freshly learnt routes live at most this long.
  /// `expected_contacts` pre-sizes the table for that many destinations
  /// so steady-state learning never rehashes (obs `hash_rehashes`).
  explicit routing_table(sim::sim_time hole_timeout,
                         std::size_t expected_contacts = 0);

  /// Pre-sizes the table like the constructor argument; call before
  /// traffic starts (growing an empty table is free and uncounted).
  void reserve(std::size_t expected_contacts) {
    table_.reserve(expected_contacts);
  }

  // --- updates ---------------------------------------------------------------

  /// update_next_RVP(p, p, HOLE_TIMEOUT): a message from `p` (observed at
  /// `addr`) just arrived; `p` is a direct contact for a full timeout.
  void touch_direct(net::node_id p, const net::endpoint& addr,
                    sim::sim_time now);

  /// Records "reach `dest` via `rvp`" with an absolute expiry.
  ///
  /// First-giver-wins: while an existing route is still valid it is kept
  /// and the new one ignored. This is what makes RVP chains converge: a
  /// peer's pointer then always leads to someone who knew the destination
  /// *earlier*, so pointer chains follow strictly decreasing first-learn
  /// times — acyclic and terminating at the destination (or at a peer
  /// that punched with it directly). Last-writer-wins would turn the
  /// pointer graph into a random functional graph whose walks mostly end
  /// in cycles, breaking hole punching at scale.
  ///
  /// Exception: `authoritative` routes — the giver advertised a full
  /// hole-timeout TTL, i.e. it holds a *fresh direct hole* to the
  /// destination — replace whatever is stored. That is distance-1
  /// information; preferring it is what keeps chains at the paper's 1-3
  /// hops instead of wandering through stale pointers. (A cycle through
  /// authoritative pointers would need every hop's direct contact to
  /// have just expired — vanishingly rare, and the hop-count guard in
  /// the forwarder bounds the damage.)
  void learn_route(net::node_id dest, net::node_id rvp, sim::sim_time expires,
                   sim::sim_time now, bool authoritative = false);

  /// §4: "TTLs are ... updated every time a message from one RVP stored
  /// in the routing table is received" — refreshes every chained route
  /// that goes through `rvp`. Chains therefore stay alive per-hop as long
  /// as traffic keeps flowing along them, which is also what keeps the
  /// underlying NAT holes open.
  void refresh_routes_via(net::node_id rvp, sim::sim_time now);

  /// Drops everything known about `dest` (e.g. presumed dead).
  void forget(net::node_id dest);

  /// Fig. 6 line 14: purge entries whose TTL has run out. Runs once per
  /// shuffle, so it is guarded by a next-expiry watermark: one compare
  /// while nothing can have expired, a flat sweep otherwise.
  void purge_expired(sim::sim_time now);

  // --- queries ---------------------------------------------------------------

  /// next_RVP(dest): the hop to send to for `dest`, or nullopt when no
  /// live route exists. Direct contact wins over a chained route. A
  /// chained route is usable only while its RVP is itself a direct
  /// contact (we must be able to physically reach the next hop).
  [[nodiscard]] std::optional<next_hop> next_rvp(net::node_id dest,
                                                 sim::sim_time now) const;

  /// True when `dest` is a live direct contact.
  [[nodiscard]] bool is_direct(net::node_id dest, sim::sim_time now) const;

  /// Remaining validity (ms) of our route towards `dest` — the minimum
  /// along the chain, which is what a peer advertises when it hands the
  /// reference onward ("TTLs are exchanged together with the views").
  /// 0 when no route.
  [[nodiscard]] sim::sim_time remaining_ttl(net::node_id dest,
                                            sim::sim_time now) const;

  /// next_rvp and remaining_ttl answered by one probe sequence, for
  /// callers that need both (`reachable` matches next_rvp's has_value;
  /// `ttl` matches remaining_ttl, and can be 0 for a route expiring at
  /// `now` exactly).
  struct route_status {
    bool reachable = false;
    sim::sim_time ttl = 0;
  };
  [[nodiscard]] route_status resolve(net::node_id dest,
                                     sim::sim_time now) const;

  // --- introspection ----------------------------------------------------------

  [[nodiscard]] std::size_t direct_count(sim::sim_time now) const;
  [[nodiscard]] std::size_t route_count(sim::sim_time now) const;
  [[nodiscard]] sim::sim_time hole_timeout() const noexcept {
    return hole_timeout_;
  }

 private:
  /// Both layers for one destination. A layer is live iff its expiry is
  /// >= now; the vacant states (`direct_expires == -1`, `rvp ==
  /// nil_node`) compare dead at any sim time including 0, exactly like
  /// absence from the old per-layer maps did.
  struct route_entry {
    net::endpoint direct_address;
    sim::sim_time direct_expires = -1;
    net::node_id rvp = net::nil_node;
    sim::sim_time route_expires = 0;
  };

  /// Lowers the purge watermark to cover a newly set expiry.
  void note_expiry(sim::sim_time expires) noexcept {
    if (expires < next_expiry_) next_expiry_ = expires;
  }

  /// The live direct contact for `dest`, or nullptr.
  [[nodiscard]] const route_entry* live_direct(net::node_id dest,
                                               sim::sim_time now) const {
    const route_entry* e = table_.find(dest);
    return e != nullptr && e->direct_expires >= now ? e : nullptr;
  }

  sim::sim_time hole_timeout_;
  util::flat_hash_map<net::node_id, route_entry> table_;
  /// No entry expires before this; purge is a no-op until then.
  sim::sim_time next_expiry_ = sim::time_never;
  sim::sim_time last_sweep_ = 0;  ///< GC throttle (see purge_expired)
};

}  // namespace nylon::core
