// ARRG-style baseline (Drost et al. [6], the only prior gossip/NAT work
// the paper cites): a NAT-oblivious peer that additionally keeps a small
// cache of peers it *successfully* communicated with, and falls back to
// gossiping with a cache member whenever its previous attempt went
// unanswered. The paper argues this "cannot ensure that the network will
// remain connected" — the ablation bench quantifies that claim.
#pragma once

#include <deque>
#include <unordered_map>

#include "gossip/peer.h"

namespace nylon::core {

class arrg_peer : public gossip::peer {
 public:
  /// `cache_size` is the fallback-cache capacity (ARRG uses a small
  /// constant; 10 by default).
  arrg_peer(net::transport& transport, util::rng& rng,
            gossip::protocol_config cfg, std::size_t cache_size = 10);

  /// Peers currently in the fallback cache (most recent first).
  [[nodiscard]] std::vector<gossip::node_descriptor> cache_snapshot() const;

  /// Number of shuffles that fell back to the cache.
  [[nodiscard]] std::uint64_t cache_fallbacks() const noexcept {
    return cache_fallbacks_;
  }

 protected:
  void initiate_shuffle() override;
  void handle_message(const net::datagram& dgram,
                      const gossip::gossip_message& msg) override;

 private:
  void remember_success(const gossip::node_descriptor& peer);

  std::size_t cache_size_;
  std::deque<gossip::node_descriptor> cache_;  ///< most recent first
  /// Target of the previous shuffle; if still unanswered when the next
  /// one fires, the attempt is considered failed (fire-and-forget UDP has
  /// no better signal) and the cache takes over.
  net::node_id awaiting_response_ = net::nil_node;
  std::vector<gossip::view_entry> last_sent_;
  std::uint64_t cache_fallbacks_ = 0;
};

}  // namespace nylon::core
