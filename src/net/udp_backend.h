// Real loopback-UDP transport backend: a small world of simulated peers
// exchanges genuine datagrams through OS sockets.
//
// Topology: one nonblocking UDP socket per simulated *public* IP, bound
// to 127.0.0.1 on a kernel-chosen port (so N peers need N sockets, not
// N processes). NAT boxes stay simulated — the transport still runs
// translation on the way out and filtering on the way in; what the
// backend replaces is the flight itself: every datagram is serialized
// into a v1 wire frame (wire/codec.h), prefixed with a routing
// envelope, and sent through the kernel's loopback path to the
// destination IP's socket, where it is received, parsed, and handed
// back to the transport's delivery path.
//
// Time: simulated time is paced against the wall clock at
// `config::time_scale` wall seconds per simulated second. The sender
// stamps each envelope with the latency model's target delivery time;
// the receiver holds the parsed datagram until the paced clock reaches
// that stamp (real loopback transit, microseconds, hides inside the
// simulated-latency floor). When the wall clock overruns a stamp —
// scheduler bursts, a slow CI runner — the datagram delivers
// immediately and `late_deliveries` counts the jitter, so runs degrade
// gracefully instead of stalling.
//
// On a NAT rebind the node's fresh public IP gets a fresh socket; the
// old socket stays open and keeps receiving, so packets addressed to
// the abandoned endpoint still make the full kernel round trip before
// the transport books them as unknown_destination — same accounting as
// the in-sim path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "net/address.h"
#include "net/message.h"
#include "net/node_id.h"
#include "net/transport_backend.h"
#include "sim/scheduler.h"
#include "sim/time.h"
#include "util/flat_hash.h"

struct pollfd;  // <poll.h>

namespace nylon::net {

class transport;

class udp_backend final : public transport_backend {
 public:
  struct config {
    /// Wall seconds per simulated second (0.02 = a 150 s experiment in
    /// 3 s of wall clock). Must leave the simulated latency floor well
    /// above real loopback transit: 50 ms * 0.02 = 1 ms >> ~50 us.
    double time_scale = 0.02;
  };

  /// Wire-level telemetry; separate from the transport's books, which
  /// stay in nominal protocol bytes across all transports.
  struct backend_stats {
    std::uint64_t datagrams_sent = 0;
    std::uint64_t datagrams_received = 0;
    std::uint64_t real_bytes_sent = 0;  ///< envelope + frame bytes
    std::uint64_t decode_errors = 0;    ///< malformed envelope or frame
    std::uint64_t late_deliveries = 0;  ///< wall clock overran the stamp
    std::uint64_t no_route = 0;         ///< destination IP never had a socket
    std::uint64_t send_failures = 0;    ///< sendto() errors (counted as loss)
  };

  /// All references must outlive the backend. `codec` serializes and
  /// parses the frames (wire::gossip_codec() in production).
  udp_backend(transport& transport, sim::scheduler& sched,
              const frame_codec& codec, config cfg);
  ~udp_backend() override;

  udp_backend(const udp_backend&) = delete;
  udp_backend& operator=(const udp_backend&) = delete;

  void on_public_ip(node_id id, ip_address public_ip) override;
  void ship(node_id from, const endpoint& source, const endpoint& to,
            payload_ptr body, std::size_t bytes, sim::sim_time send_time,
            sim::sim_time delay) override;

  /// Drives the simulation to `deadline`: alternates between draining
  /// sockets, waiting (poll) until the next scheduler event or stamped
  /// delivery comes due on the paced wall clock, executing it, and
  /// releasing due datagrams to the transport. The wall anchor is
  /// re-established per call, so time spent between calls (probe
  /// evaluation, reporting) never counts as backlog.
  void run_until(sim::sim_time deadline);

  [[nodiscard]] const backend_stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t socket_count() const noexcept {
    return sockets_.size();
  }

 private:
  struct socket_entry {
    int fd = -1;
    std::uint16_t real_port = 0;  ///< kernel-chosen loopback port
    ip_address sim_ip;
    node_id owner = nil_node;
  };

  /// A received datagram waiting for its stamped delivery time.
  struct pending_delivery {
    sim::sim_time deliver_at = 0;
    std::uint64_t seq = 0;  ///< arrival order tiebreak
    node_id from = nil_node;
    endpoint source;
    endpoint destination;
    payload_ptr body;
    std::size_t bytes = 0;
  };

  /// Min-heap comparator: the front is the earliest (deliver_at, seq).
  static bool later(const pending_delivery& a,
                    const pending_delivery& b) noexcept;

  /// recv()s every socket dry; returns true if anything arrived.
  bool drain_sockets();
  void handle_datagram(std::span<const std::byte> data);
  /// Delivers every pending datagram stamped <= `t` to the transport.
  void flush_due(sim::sim_time t);

  transport& transport_;
  sim::scheduler& sched_;
  const frame_codec& codec_;
  config cfg_;
  backend_stats stats_;
  std::vector<socket_entry> sockets_;
  std::vector<pollfd> pollfds_;  ///< parallel to sockets_
  util::flat_hash_map<std::uint32_t, std::uint32_t> by_sim_ip_;
  /// Min-heap on (deliver_at, seq) via std::push_heap/pop_heap (the
  /// payload handles are move-only, which rules out priority_queue's
  /// const top()).
  std::vector<pending_delivery> pending_;
  std::uint64_t next_seq_ = 0;
  std::vector<std::byte> send_buf_;
};

}  // namespace nylon::net
