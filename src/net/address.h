// Network addressing for the simulated internet: IPv4-style addresses and
// (ip, port) endpoints.
//
// Ports are 32-bit in the simulator (real NATs recycle 16-bit ports; a
// monotonic 32-bit allocator keeps sessions unambiguous over a long run
// without modelling recycling — documented in DESIGN.md).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace nylon::net {

/// IPv4-style address, stored host-order.
struct ip_address {
  std::uint32_t value = 0;

  auto operator<=>(const ip_address&) const = default;
};

/// Renders dotted-quad form, e.g. "10.1.2.3".
[[nodiscard]] std::string to_string(ip_address ip);

/// A UDP endpoint: address plus port.
struct endpoint {
  ip_address ip;
  std::uint32_t port = 0;

  auto operator<=>(const endpoint&) const = default;
};

/// Renders "a.b.c.d:port".
[[nodiscard]] std::string to_string(const endpoint& ep);

/// Sentinel for "no endpoint".
inline constexpr endpoint nil_endpoint{};

}  // namespace nylon::net

template <>
struct std::hash<nylon::net::ip_address> {
  std::size_t operator()(const nylon::net::ip_address& ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.value);
  }
};

template <>
struct std::hash<nylon::net::endpoint> {
  std::size_t operator()(const nylon::net::endpoint& ep) const noexcept {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(ep.ip.value) << 32) | ep.port;
    return std::hash<std::uint64_t>{}(key);
  }
};
