// Arena allocation for datagram payloads.
//
// Every simulated packet used to carry a `shared_ptr<const payload>`:
// one control-block allocation per message (pooled, but still a separate
// 16-byte object), atomic refcounts on every copy, and a shared_ptr in
// every delivery closure. This header replaces that with an intrusive
// refcount in a header co-allocated with the payload itself, backed by
// process-lifetime thread-local freelists bucketed by size class:
//
//  * one allocation (and one cache line stream) per message instead of
//    two — the refcount header, the message fields and the view-entry
//    tail are contiguous;
//  * non-atomic refcounts — a payload is only ever retained/released on
//    the thread that created it (see the sharing contract below);
//  * free = push onto the calling thread's freelist; steady state runs
//    with zero malloc/free on the message path, for *every* payload
//    size, where the old pool only covered sizeof(gossip_message).
//
// Sharing contract (why non-atomic refcounts are safe in shard mode):
// receivers never retain — `datagram::body` is a raw pointer and a
// handler that wants to keep a payload must copy what it needs during
// the callback. The only owners of a block are therefore objects on the
// *sending* peer's shard (its pending-request map, the delivery lease in
// the transport), so refcount traffic is shard-local by construction.
// Cross-shard lifetime is handled by the transport's delivery leases,
// not by the refcount (see transport.cpp). A freed block can be reused
// by its owning thread immediately; blocks are returned to the freelist
// of whichever thread releases the last reference, which by the same
// contract is the thread that allocated it (or the main thread at
// teardown, with the workers parked behind the epoch barrier — the
// mutex/condvar pair gives the necessary happens-before).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/counters.h"

namespace nylon::net {

namespace arena_detail {

/// Prefix of every arena block; the payload object lives right after it.
/// max_align keeps the object region suitably aligned for any payload.
struct alignas(std::max_align_t) block_header {
  std::uint32_t refs;
  std::uint32_t size_class;  ///< freelist bucket; `oversize` = plain new
};

/// Blocks are bucketed in 64-byte steps; anything above 4 KiB goes to
/// the system allocator (rare: a gossip buffer is ~20 entries * 24 B).
inline constexpr std::size_t class_step = 64;
inline constexpr std::size_t class_count = 64;
inline constexpr std::uint32_t oversize = ~std::uint32_t{0};

/// Per-thread recycled blocks, one stack per size class. Process
/// lifetime (released at thread exit): payload lifetimes thread through
/// schedulers, pending maps and transport leases, and a freelist that
/// outlives all of them makes teardown order a non-issue.
struct freelists {
  std::vector<void*> buckets[class_count];
  std::size_t live_bytes = 0;  ///< currently-allocated arena bytes
  ~freelists() {
    for (auto& bucket : buckets) {
      for (void* block : bucket) ::operator delete(block);
    }
  }
};

inline freelists& local_freelists() {
  static thread_local freelists lists;
  return lists;
}

[[nodiscard]] inline block_header* header_of(const void* object) noexcept {
  return reinterpret_cast<block_header*>(
             const_cast<void*>(object)) - 1;
}

/// Allocates a block for `object_bytes` with refcount 1; returns the
/// object region.
[[nodiscard]] inline void* allocate(std::size_t object_bytes) {
  const std::size_t block_bytes = sizeof(block_header) + object_bytes;
  const std::size_t cls = (block_bytes + class_step - 1) / class_step;
  freelists& lists = local_freelists();
  block_header* header = nullptr;
  if (cls < class_count) {
    auto& bucket = lists.buckets[cls];
    if (!bucket.empty()) {
      header = static_cast<block_header*>(bucket.back());
      bucket.pop_back();
    } else {
      header = static_cast<block_header*>(::operator new(cls * class_step));
    }
    header->size_class = static_cast<std::uint32_t>(cls);
    lists.live_bytes += cls * class_step;
  } else {
    header = static_cast<block_header*>(::operator new(block_bytes));
    header->size_class = oversize;
    lists.live_bytes += block_bytes;
  }
  header->refs = 1;
  obs::count_peak(obs::counter::arena_bytes_peak, lists.live_bytes);
  return header + 1;
}

/// Recycles a block whose object has already been destroyed.
inline void recycle(const void* object) noexcept {
  block_header* header = header_of(object);
  freelists& lists = local_freelists();
  if (header->size_class == oversize) {
    // live_bytes under-reports the exact oversize block size here (the
    // byte count is not stored); oversize blocks are rare enough that
    // the peak telemetry does not need them to the byte.
    ::operator delete(header);
    return;
  }
  lists.live_bytes -= header->size_class * class_step;
  lists.buckets[header->size_class].push_back(header);
}

}  // namespace arena_detail

/// Intrusive-refcounted handle to an arena-allocated object. Copy
/// bumps a plain (non-atomic) u32 in the block header; destruction of
/// the last handle runs the object's destructor and recycles the block.
template <typename T>
class arena_ref {
 public:
  arena_ref() noexcept = default;
  arena_ref(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Takes ownership of the reference the allocator created.
  [[nodiscard]] static arena_ref adopt(T* object) noexcept {
    arena_ref ref;
    ref.ptr_ = object;
    return ref;
  }

  /// Shares ownership of a live block (e.g. a test keeping a delivered
  /// payload alive past the handler callback).
  [[nodiscard]] static arena_ref retain(T* object) noexcept {
    if (object != nullptr) ++arena_detail::header_of(object)->refs;
    arena_ref ref;
    ref.ptr_ = object;
    return ref;
  }

  arena_ref(const arena_ref& other) noexcept : ptr_(other.ptr_) {
    if (ptr_ != nullptr) ++arena_detail::header_of(ptr_)->refs;
  }
  arena_ref(arena_ref&& other) noexcept
      : ptr_(std::exchange(other.ptr_, nullptr)) {}

  /// Converting copy/move (derived-to-base, T -> const T).
  template <typename U>
    requires std::is_convertible_v<U*, T*>
  arena_ref(const arena_ref<U>& other) noexcept  // NOLINT
      : ptr_(other.ptr_) {
    if (ptr_ != nullptr) ++arena_detail::header_of(ptr_)->refs;
  }
  template <typename U>
    requires std::is_convertible_v<U*, T*>
  arena_ref(arena_ref<U>&& other) noexcept  // NOLINT
      : ptr_(std::exchange(other.ptr_, nullptr)) {}

  arena_ref& operator=(const arena_ref& other) noexcept {
    arena_ref(other).swap(*this);
    return *this;
  }
  arena_ref& operator=(arena_ref&& other) noexcept {
    arena_ref(std::move(other)).swap(*this);
    return *this;
  }
  arena_ref& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  ~arena_ref() { reset(); }

  void reset() noexcept {
    if (ptr_ == nullptr) return;
    T* object = std::exchange(ptr_, nullptr);
    if (--arena_detail::header_of(object)->refs == 0) {
      object->~T();  // virtual for payloads
      arena_detail::recycle(object);
    }
  }

  void swap(arena_ref& other) noexcept { std::swap(ptr_, other.ptr_); }

  [[nodiscard]] T* get() const noexcept { return ptr_; }
  [[nodiscard]] T& operator*() const noexcept { return *ptr_; }
  [[nodiscard]] T* operator->() const noexcept { return ptr_; }
  [[nodiscard]] explicit operator bool() const noexcept {
    return ptr_ != nullptr;
  }
  [[nodiscard]] friend bool operator==(const arena_ref& ref,
                                       std::nullptr_t) noexcept {
    return ref.ptr_ == nullptr;
  }

 private:
  template <typename U>
  friend class arena_ref;

  T* ptr_ = nullptr;
};

/// Arena-allocating make_shared analogue. The result is const: payloads
/// are immutable once built (builders that need a mutable window, like
/// gossip::make_message's entry tail, use arena_detail::allocate
/// directly).
template <typename T, typename... Args>
[[nodiscard]] arena_ref<const T> make_payload(Args&&... args) {
  void* memory = arena_detail::allocate(sizeof(T));
  T* object = ::new (memory) T(std::forward<Args>(args)...);
  return arena_ref<const T>::adopt(object);
}

}  // namespace nylon::net
