// Logical node identifiers. Peers are known protocol-wide by a compact id;
// the transport maps ids to endpoints and NAT devices.
#pragma once

#include <cstdint>
#include <limits>

namespace nylon::net {

/// Dense node identifier, assigned by the transport at add_node() time.
using node_id = std::uint32_t;

/// Sentinel meaning "no node".
inline constexpr node_id nil_node = std::numeric_limits<node_id>::max();

}  // namespace nylon::net
