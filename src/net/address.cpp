#include "net/address.h"

namespace nylon::net {

std::string to_string(ip_address ip) {
  return std::to_string((ip.value >> 24) & 0xff) + "." +
         std::to_string((ip.value >> 16) & 0xff) + "." +
         std::to_string((ip.value >> 8) & 0xff) + "." +
         std::to_string(ip.value & 0xff);
}

std::string to_string(const endpoint& ep) {
  return to_string(ep.ip) + ":" + std::to_string(ep.port);
}

}  // namespace nylon::net
