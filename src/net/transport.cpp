#include "net/transport.h"

#include <utility>

#include "util/contracts.h"

namespace nylon::net {

namespace {
// Address plan: node i's public-facing IP is 10.0.0.0 + i + 1 (that is the
// NAT box's IP for natted nodes); its private address is 172.16.0.0 + i + 1.
// Private IPs are globally unique in the simulation purely to simplify
// bookkeeping; they are never routed.
constexpr std::uint32_t public_ip_base = 0x0A000000;
constexpr std::uint32_t private_ip_base = 0xAC100000;
constexpr std::uint32_t private_port = 5000;
constexpr std::uint32_t public_peer_port = 4000;
// Rebound NAT boxes draw fresh public IPs from a disjoint block (11.0.0.0)
// so they can never collide with the per-node 10.x addresses.
constexpr std::uint32_t rebind_ip_base = 0x0B000000;
}  // namespace

std::string_view to_string(drop_reason r) noexcept {
  switch (r) {
    case drop_reason::unknown_destination: return "unknown_destination";
    case drop_reason::dead_node: return "dead_node";
    case drop_reason::nat_filtered: return "nat_filtered";
    case drop_reason::sender_dead: return "sender_dead";
    case drop_reason::random_loss: return "random_loss";
    case drop_reason::partitioned: return "partitioned";
    case drop_reason::count_: break;
  }
  return "?";
}

transport::transport(sim::scheduler& sched, util::rng& rng,
                     std::unique_ptr<latency_model> latency,
                     transport_config cfg)
    : sched_(sched), rng_(rng), latency_(std::move(latency)), cfg_(cfg) {
  NYLON_EXPECTS(latency_ != nullptr);
  NYLON_EXPECTS(cfg_.hole_timeout > 0);
  NYLON_EXPECTS(cfg_.loss_rate >= 0.0 && cfg_.loss_rate <= 1.0);
}

node_id transport::add_node(nat::nat_type type, endpoint_handler& handler) {
  const auto id = static_cast<node_id>(nodes_.size());
  node_record rec;
  rec.type = type;
  rec.handler = &handler;
  const ip_address public_ip{public_ip_base + id + 1};
  rec.public_ip = public_ip;
  if (nat::is_natted(type)) {
    rec.private_ep = endpoint{ip_address{private_ip_base + id + 1},
                              private_port};
    rec.device =
        std::make_unique<nat::nat_device>(type, public_ip, cfg_.hole_timeout);
    rec.advertised = rec.device->advertised_endpoint(rec.private_ep);
  } else {
    rec.private_ep = endpoint{public_ip, public_peer_port};
    rec.advertised = rec.private_ep;
  }
  nodes_.push_back(std::move(rec));
  return id;
}

node_id transport::owner_of(ip_address ip) const {
  const std::uint32_t index = ip.value - public_ip_base - 1;
  if (index < nodes_.size()) {
    // A re-bound NAT abandons its original 10.x address: packets sent
    // there must stop routing, so the arithmetic hit is confirmed
    // against the node's *current* public IP.
    return nodes_[index].public_ip == ip ? static_cast<node_id>(index)
                                         : nil_node;
  }
  const node_id* rebound = rebound_owner_.find(ip.value);
  return rebound != nullptr ? *rebound : nil_node;
}

void transport::remove_node(node_id id) {
  NYLON_EXPECTS(id < nodes_.size());
  nodes_[id].alive = false;
}

bool transport::alive(node_id id) const {
  NYLON_EXPECTS(id < nodes_.size());
  return nodes_[id].alive;
}

nat::nat_type transport::type_of(node_id id) const {
  NYLON_EXPECTS(id < nodes_.size());
  return nodes_[id].type;
}

endpoint transport::advertised_endpoint(node_id id) const {
  NYLON_EXPECTS(id < nodes_.size());
  return nodes_[id].advertised;
}

const nat::nat_device* transport::device_of(node_id id) const {
  NYLON_EXPECTS(id < nodes_.size());
  return nodes_[id].device.get();
}

endpoint transport::rebind_nat(node_id id) {
  NYLON_EXPECTS(id < nodes_.size());
  node_record& rec = nodes_[id];
  NYLON_EXPECTS(rec.alive);
  NYLON_EXPECTS(rec.device != nullptr);
  const ip_address old_ip = rec.device->public_ip();
  const ip_address new_ip{rebind_ip_base + ++rebind_count_};
  rebound_owner_.erase(old_ip.value);  // no-op for an original 10.x IP
  rebound_owner_.insert_or_get(new_ip.value) = id;
  rec.public_ip = new_ip;
  rec.device =
      std::make_unique<nat::nat_device>(rec.type, new_ip, cfg_.hole_timeout);
  rec.advertised = rec.device->advertised_endpoint(rec.private_ep);
  return rec.advertised;
}

void transport::set_partition(std::vector<std::uint8_t> side) {
  NYLON_EXPECTS(side.size() <= nodes_.size());
  partition_side_ = std::move(side);
}

void transport::count_drop(drop_reason reason) {
  ++drop_counts_[static_cast<std::size_t>(reason)];
}

void transport::send(node_id from, const endpoint& to, payload_ptr body) {
  NYLON_EXPECTS(from < nodes_.size());
  NYLON_EXPECTS(body != nullptr);
  node_record& src = nodes_[from];
  if (!src.alive) {
    count_drop(drop_reason::sender_dead);
    return;
  }
  const sim::sim_time now = sched_.now();
  endpoint source_ep;
  if (src.device) {
    source_ep = src.device->translate_outbound(src.private_ep, to, now);
  } else {
    source_ep = src.advertised;
  }
  const std::size_t bytes = udp_header_bytes + body->wire_size();
  src.traffic.bytes_sent += bytes;
  ++src.traffic.msgs_sent;
  const message_kind kind = body->wire_kind();
  bytes_by_kind_[static_cast<std::size_t>(kind)] += bytes;
  if (kind == message_kind::other) {  // cold path: non-protocol payloads
    other_bytes_[body->type_name()] += bytes;
  }

  if (cfg_.loss_rate > 0.0 && rng_.bernoulli(cfg_.loss_rate)) {
    count_drop(drop_reason::random_loss);
    return;
  }
  const sim::sim_time delay = latency_->sample(rng_);
  sched_.after(delay, [this, from, source_ep, to, body = std::move(body),
                       bytes] { deliver(from, source_ep, to, body, bytes); });
}

void transport::deliver(node_id from, endpoint source, endpoint to,
                        const payload_ptr& body, std::size_t bytes) {
  const node_id owner = owner_of(to.ip);
  if (owner == nil_node) {
    count_drop(drop_reason::unknown_destination);
    return;
  }
  // A partition severs the path before the destination NAT ever sees the
  // packet (no rule refresh on the far side).
  if (partitioned() && side_of(from) != side_of(owner)) {
    count_drop(drop_reason::partitioned);
    return;
  }
  node_record& dst = nodes_[owner];
  const sim::sim_time now = sched_.now();
  if (dst.device) {
    const auto private_dst = dst.device->filter_inbound(to, source, now);
    if (!private_dst) {
      count_drop(drop_reason::nat_filtered);
      return;
    }
    NYLON_ENSURES(*private_dst == dst.private_ep);
  } else if (to != dst.advertised) {
    count_drop(drop_reason::unknown_destination);
    return;
  }
  // NAT boxes forward to dead hosts; the packet just dies there. The check
  // happens after NAT filtering so rule refreshes stay realistic.
  if (!dst.alive) {
    count_drop(drop_reason::dead_node);
    return;
  }
  dst.traffic.bytes_received += bytes;
  ++dst.traffic.msgs_received;
  dst.handler->on_datagram(datagram{source, to, body});
}

nat::predicted_source transport::predicted_source(node_id from,
                                                  const endpoint& to) const {
  NYLON_EXPECTS(from < nodes_.size());
  const node_record& src = nodes_[from];
  if (src.device) {
    return src.device->would_translate(src.private_ep, to, sched_.now());
  }
  return nat::predicted_source{src.advertised.ip, src.advertised.port};
}

std::optional<node_id> transport::would_deliver(node_id from,
                                                const endpoint& to) const {
  NYLON_EXPECTS(from < nodes_.size());
  if (!nodes_[from].alive) return std::nullopt;
  const node_id owner = owner_of(to.ip);
  if (owner == nil_node) return std::nullopt;
  if (partitioned() && side_of(from) != side_of(owner)) {
    return std::nullopt;
  }
  const node_record& dst = nodes_[owner];
  if (!dst.alive) return std::nullopt;
  const nat::predicted_source src = predicted_source(from, to);
  if (dst.device) {
    const auto private_dst =
        dst.device->would_accept(to, src.ip, src.port, sched_.now());
    if (!private_dst) return std::nullopt;
  } else if (to != dst.advertised) {
    return std::nullopt;
  }
  return owner;
}

const node_traffic& transport::traffic(node_id id) const {
  NYLON_EXPECTS(id < nodes_.size());
  return nodes_[id].traffic;
}

void transport::reset_traffic() {
  for (node_record& rec : nodes_) rec.traffic = node_traffic{};
  for (std::uint64_t& b : bytes_by_kind_) b = 0;
  other_bytes_.clear();
}

std::unordered_map<std::string_view, std::uint64_t> transport::bytes_by_type()
    const {
  std::unordered_map<std::string_view, std::uint64_t> out = other_bytes_;
  for (std::size_t k = 0; k < static_cast<std::size_t>(message_kind::other);
       ++k) {
    if (bytes_by_kind_[k] > 0) {
      out[to_string(static_cast<message_kind>(k))] = bytes_by_kind_[k];
    }
  }
  return out;
}

std::uint64_t transport::drops(drop_reason reason) const {
  return drop_counts_[static_cast<std::size_t>(reason)];
}

std::uint64_t transport::total_drops() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : drop_counts_) total += c;
  return total;
}

void transport::purge_nat_state() {
  const sim::sim_time now = sched_.now();
  for (node_record& rec : nodes_) {
    if (rec.device) rec.device->purge_expired(now);
  }
}

}  // namespace nylon::net
