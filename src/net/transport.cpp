#include "net/transport.h"

#include <utility>

#include "obs/counters.h"
#include "util/contracts.h"

namespace nylon::net {

// The telemetry msg_* counters are indexed by offsetting msg_request with
// the wire kind; pin the two enums together so reordering either one
// fails the build instead of mislabeling counts.
#define NYLON_OBS_KIND_ALIGNED(kind)                            \
  static_assert(static_cast<std::size_t>(obs::counter::msg_##kind) == \
                static_cast<std::size_t>(obs::counter::msg_request) + \
                    static_cast<std::size_t>(message_kind::kind))
NYLON_OBS_KIND_ALIGNED(request);
NYLON_OBS_KIND_ALIGNED(response);
NYLON_OBS_KIND_ALIGNED(open_hole);
NYLON_OBS_KIND_ALIGNED(ping);
NYLON_OBS_KIND_ALIGNED(pong);
NYLON_OBS_KIND_ALIGNED(other);
#undef NYLON_OBS_KIND_ALIGNED

namespace {
// Address plan: node i's public-facing IP is 10.0.0.0 + i + 1 (that is the
// NAT box's IP for natted nodes); its private address is 172.16.0.0 + i + 1.
// Private IPs are globally unique in the simulation purely to simplify
// bookkeeping; they are never routed.
constexpr std::uint32_t public_ip_base = 0x0A000000;
constexpr std::uint32_t private_ip_base = 0xAC100000;
constexpr std::uint32_t private_port = 5000;
constexpr std::uint32_t public_peer_port = 4000;
// Rebound NAT boxes draw fresh public IPs from a disjoint block (11.0.0.0)
// so they can never collide with the per-node 10.x addresses.
constexpr std::uint32_t rebind_ip_base = 0x0B000000;
}  // namespace

std::string_view to_string(drop_reason r) noexcept {
  switch (r) {
    case drop_reason::unknown_destination: return "unknown_destination";
    case drop_reason::dead_node: return "dead_node";
    case drop_reason::nat_filtered: return "nat_filtered";
    case drop_reason::sender_dead: return "sender_dead";
    case drop_reason::random_loss: return "random_loss";
    case drop_reason::partitioned: return "partitioned";
    case drop_reason::count_: break;
  }
  return "?";
}

transport::transport(sim::scheduler& sched, util::rng& rng,
                     std::unique_ptr<latency_model> latency,
                     transport_config cfg)
    : sched_(sched), rng_(rng), latency_(std::move(latency)), cfg_(cfg) {
  NYLON_EXPECTS(latency_ != nullptr);
  NYLON_EXPECTS(cfg_.hole_timeout > 0);
  NYLON_EXPECTS(cfg_.loss_rate >= 0.0 && cfg_.loss_rate <= 1.0);
  counters_.resize(1);
}

void transport::set_shard_router(shard_router* router) {
  NYLON_EXPECTS(nodes_.empty());
  router_ = router;
  counters_.clear();
  counters_.resize(router_ != nullptr ? router_->shard_count() : 1);
  if (router_ != nullptr) {
    // Cross-shard deliveries must land strictly after the conservative
    // window; the latency model's floor is the engine's lookahead.
    NYLON_EXPECTS(latency_->min_delay() >= 1);
  }
}

node_id transport::add_node(nat::nat_type type, endpoint_handler& handler) {
  const auto id = static_cast<node_id>(nodes_.size());
  node_record rec;
  rec.type = type;
  rec.handler = &handler;
  const ip_address public_ip{public_ip_base + id + 1};
  rec.public_ip = public_ip;
  if (nat::is_natted(type)) {
    rec.private_ep = endpoint{ip_address{private_ip_base + id + 1},
                              private_port};
    rec.device =
        std::make_unique<nat::nat_device>(type, public_ip, cfg_.hole_timeout);
    rec.advertised = rec.device->advertised_endpoint(rec.private_ep);
  } else {
    rec.private_ep = endpoint{public_ip, public_peer_port};
    rec.advertised = rec.private_ep;
  }
  nodes_.push_back(std::move(rec));
  return id;
}

node_id transport::owner_of(ip_address ip) const {
  const std::uint32_t index = ip.value - public_ip_base - 1;
  if (index < nodes_.size()) {
    // A re-bound NAT abandons its original 10.x address: packets sent
    // there must stop routing, so the arithmetic hit is confirmed
    // against the node's *current* public IP.
    return nodes_[index].public_ip == ip ? static_cast<node_id>(index)
                                         : nil_node;
  }
  const node_id* rebound = rebound_owner_.find(ip.value);
  return rebound != nullptr ? *rebound : nil_node;
}

void transport::remove_node(node_id id) {
  NYLON_EXPECTS(id < nodes_.size());
  nodes_[id].alive = false;
}

bool transport::alive(node_id id) const {
  NYLON_EXPECTS(id < nodes_.size());
  return nodes_[id].alive;
}

nat::nat_type transport::type_of(node_id id) const {
  NYLON_EXPECTS(id < nodes_.size());
  return nodes_[id].type;
}

endpoint transport::advertised_endpoint(node_id id) const {
  NYLON_EXPECTS(id < nodes_.size());
  return nodes_[id].advertised;
}

const nat::nat_device* transport::device_of(node_id id) const {
  NYLON_EXPECTS(id < nodes_.size());
  return nodes_[id].device.get();
}

endpoint transport::replace_device(node_id id, nat::nat_type type) {
  node_record& rec = nodes_[id];
  NYLON_EXPECTS(rec.alive);
  NYLON_EXPECTS(rec.device != nullptr);
  const ip_address old_ip = rec.device->public_ip();
  const ip_address new_ip{rebind_ip_base + ++rebind_count_};
  rebound_owner_.erase(old_ip.value);  // no-op for an original 10.x IP
  rebound_owner_.insert_or_get(new_ip.value) = id;
  rec.public_ip = new_ip;
  rec.type = type;
  rec.device =
      std::make_unique<nat::nat_device>(type, new_ip, cfg_.hole_timeout);
  rec.advertised = rec.device->advertised_endpoint(rec.private_ep);
  return rec.advertised;
}

endpoint transport::rebind_nat(node_id id) {
  NYLON_EXPECTS(id < nodes_.size());
  return replace_device(id, nodes_[id].type);
}

endpoint transport::migrate_nat(node_id id, nat::nat_type new_type) {
  NYLON_EXPECTS(id < nodes_.size());
  NYLON_EXPECTS(nat::is_natted(new_type));
  return replace_device(id, new_type);
}

void transport::set_partition(std::vector<std::uint8_t> side) {
  NYLON_EXPECTS(side.size() <= nodes_.size());
  partition_side_ = std::move(side);
}

void transport::count_drop(std::size_t shard, drop_reason reason) {
  ++counters_[shard].drops[static_cast<std::size_t>(reason)];
}

void transport::send(node_id from, const endpoint& to, payload_ptr body) {
  NYLON_EXPECTS(from < nodes_.size());
  NYLON_EXPECTS(body != nullptr);
  node_record& src = nodes_[from];
  const std::size_t src_shard = router_ != nullptr ? router_->shard_of(from)
                                                   : 0;
  if (!src.alive) {
    count_drop(src_shard, drop_reason::sender_dead);
    return;
  }
  // The sending peer's own clock: its shard scheduler mid-epoch, the
  // universe scheduler in serial mode.
  const sim::sim_time now =
      router_ != nullptr ? router_->scheduler_of(src_shard).now()
                         : sched_.now();
  endpoint source_ep;
  if (src.device) {
    source_ep = src.device->translate_outbound(src.private_ep, to, now);
  } else {
    source_ep = src.advertised;
  }
  const std::size_t bytes = udp_header_bytes + body->wire_size();
  src.traffic.bytes_sent += bytes;
  ++src.traffic.msgs_sent;
  counter_block& counters = counters_[src_shard];
  const message_kind kind = body->wire_kind();
  counters.by_kind[static_cast<std::size_t>(kind)] += bytes;
  obs::count(static_cast<obs::counter>(
      static_cast<std::size_t>(obs::counter::msg_request) +
      static_cast<std::size_t>(kind)));
  if (kind == message_kind::other) {  // cold path: non-protocol payloads
    counters.other[body->type_name()] += bytes;
  }

  // Per-peer rng streams in shard mode: the draw sequence belongs to the
  // sender, so it is independent of how peers are partitioned.
  util::rng& rng = router_ != nullptr ? router_->rng_of(from) : rng_;
  if (cfg_.loss_rate > 0.0 && rng.bernoulli(cfg_.loss_rate)) {
    count_drop(src_shard, drop_reason::random_loss);
    return;
  }
  const sim::sim_time delay = latency_->sample(rng);
  if (router_ == nullptr) {
    sched_.after(delay,
                 [this, from, source_ep, to, body = std::move(body), bytes] {
                   deliver(0, from, source_ep, to, body, bytes);
                 });
    return;
  }
  // Cross-shard (or same-shard — the ordering contract is uniform)
  // delivery through the canonical channels. The destination shard is
  // resolved against barrier-stable routing state; ownership is
  // re-resolved at delivery time, where a mid-flight NAT rebind turns the
  // packet into an unknown_destination drop exactly like the serial path.
  const node_id owner = owner_of(to.ip);
  const std::size_t dst_shard =
      owner != nil_node ? router_->shard_of(owner)
                        : to.ip.value % router_->shard_count();
  const std::uint64_t seq = ++src.send_seq;
  router_->post(
      router_->shard_of(from), dst_shard, now + delay, from, seq,
      [this, dst_shard, from, source_ep, to, body = std::move(body), bytes] {
        deliver(dst_shard, from, source_ep, to, body, bytes);
      });
}

void transport::deliver(std::size_t shard, node_id from, endpoint source,
                        endpoint to, const payload_ptr& body,
                        std::size_t bytes) {
  const node_id owner = owner_of(to.ip);
  if (owner == nil_node) {
    count_drop(shard, drop_reason::unknown_destination);
    return;
  }
  // A partition severs the path before the destination NAT ever sees the
  // packet (no rule refresh on the far side).
  if (partitioned() && side_of(from) != side_of(owner)) {
    count_drop(shard, drop_reason::partitioned);
    return;
  }
  node_record& dst = nodes_[owner];
  const sim::sim_time now =
      router_ != nullptr ? router_->scheduler_of(shard).now() : sched_.now();
  if (dst.device) {
    const auto private_dst = dst.device->filter_inbound(to, source, now);
    if (!private_dst) {
      count_drop(shard, drop_reason::nat_filtered);
      return;
    }
    NYLON_ENSURES(*private_dst == dst.private_ep);
  } else if (to != dst.advertised) {
    count_drop(shard, drop_reason::unknown_destination);
    return;
  }
  // NAT boxes forward to dead hosts; the packet just dies there. The check
  // happens after NAT filtering so rule refreshes stay realistic.
  if (!dst.alive) {
    count_drop(shard, drop_reason::dead_node);
    return;
  }
  dst.traffic.bytes_received += bytes;
  ++dst.traffic.msgs_received;
  dst.handler->on_datagram(datagram{source, to, body});
}

nat::predicted_source transport::predicted_source(node_id from,
                                                  const endpoint& to) const {
  NYLON_EXPECTS(from < nodes_.size());
  const node_record& src = nodes_[from];
  if (src.device) {
    return src.device->would_translate(src.private_ep, to, sched_.now());
  }
  return nat::predicted_source{src.advertised.ip, src.advertised.port};
}

std::optional<node_id> transport::would_deliver(node_id from,
                                                const endpoint& to) const {
  NYLON_EXPECTS(from < nodes_.size());
  if (!nodes_[from].alive) return std::nullopt;
  const node_id owner = owner_of(to.ip);
  if (owner == nil_node) return std::nullopt;
  if (partitioned() && side_of(from) != side_of(owner)) {
    return std::nullopt;
  }
  const node_record& dst = nodes_[owner];
  if (!dst.alive) return std::nullopt;
  const nat::predicted_source src = predicted_source(from, to);
  if (dst.device) {
    const auto private_dst =
        dst.device->would_accept(to, src.ip, src.port, sched_.now());
    if (!private_dst) return std::nullopt;
  } else if (to != dst.advertised) {
    return std::nullopt;
  }
  return owner;
}

const node_traffic& transport::traffic(node_id id) const {
  NYLON_EXPECTS(id < nodes_.size());
  return nodes_[id].traffic;
}

void transport::reset_traffic() {
  for (node_record& rec : nodes_) rec.traffic = node_traffic{};
  for (counter_block& block : counters_) {
    for (std::uint64_t& b : block.by_kind) b = 0;
    block.other.clear();
  }
}

std::uint64_t transport::bytes_by_kind(message_kind kind) const noexcept {
  std::uint64_t total = 0;
  for (const counter_block& block : counters_) {
    total += block.by_kind[static_cast<std::size_t>(kind)];
  }
  return total;
}

std::unordered_map<std::string_view, std::uint64_t> transport::bytes_by_type()
    const {
  std::unordered_map<std::string_view, std::uint64_t> out;
  for (const counter_block& block : counters_) {
    for (const auto& [name, bytes] : block.other) out[name] += bytes;
  }
  for (std::size_t k = 0; k < static_cast<std::size_t>(message_kind::other);
       ++k) {
    const std::uint64_t bytes = bytes_by_kind(static_cast<message_kind>(k));
    if (bytes > 0) out[to_string(static_cast<message_kind>(k))] = bytes;
  }
  return out;
}

std::uint64_t transport::drops(drop_reason reason) const {
  std::uint64_t total = 0;
  for (const counter_block& block : counters_) {
    total += block.drops[static_cast<std::size_t>(reason)];
  }
  return total;
}

std::uint64_t transport::total_drops() const {
  std::uint64_t total = 0;
  for (const counter_block& block : counters_) {
    for (const std::uint64_t c : block.drops) total += c;
  }
  return total;
}

void transport::purge_nat_state() {
  const sim::sim_time now = sched_.now();
  for (node_record& rec : nodes_) {
    if (rec.device) rec.device->purge_expired(now);
  }
}

}  // namespace nylon::net
