#include "net/transport.h"

#include <algorithm>
#include <utility>

#include "net/transport_backend.h"
#include "obs/counters.h"
#include "obs/msglog.h"
#include "util/contracts.h"

namespace nylon::net {

// The telemetry msg_* counters are indexed by offsetting msg_request with
// the wire kind; pin the two enums together so reordering either one
// fails the build instead of mislabeling counts.
#define NYLON_OBS_KIND_ALIGNED(kind)                            \
  static_assert(static_cast<std::size_t>(obs::counter::msg_##kind) == \
                static_cast<std::size_t>(obs::counter::msg_request) + \
                    static_cast<std::size_t>(message_kind::kind))
NYLON_OBS_KIND_ALIGNED(request);
NYLON_OBS_KIND_ALIGNED(response);
NYLON_OBS_KIND_ALIGNED(open_hole);
NYLON_OBS_KIND_ALIGNED(ping);
NYLON_OBS_KIND_ALIGNED(pong);
NYLON_OBS_KIND_ALIGNED(other);
#undef NYLON_OBS_KIND_ALIGNED

namespace {
// Address plan: node i's public-facing IP is 10.0.0.0 + i + 1 (that is the
// NAT box's IP for natted nodes); its private address is 172.16.0.0 + i + 1.
// Private IPs are globally unique in the simulation purely to simplify
// bookkeeping; they are never routed.
constexpr std::uint32_t public_ip_base = 0x0A000000;
constexpr std::uint32_t private_ip_base = 0xAC100000;
constexpr std::uint32_t private_port = 5000;
constexpr std::uint32_t public_peer_port = 4000;
// Rebound NAT boxes draw fresh public IPs from a disjoint block (11.0.0.0)
// so they can never collide with the per-node 10.x addresses.
constexpr std::uint32_t rebind_ip_base = 0x0B000000;
}  // namespace

std::string_view to_string(drop_reason r) noexcept {
  switch (r) {
    case drop_reason::unknown_destination: return "unknown_destination";
    case drop_reason::dead_node: return "dead_node";
    case drop_reason::nat_filtered: return "nat_filtered";
    case drop_reason::sender_dead: return "sender_dead";
    case drop_reason::random_loss: return "random_loss";
    case drop_reason::partitioned: return "partitioned";
    case drop_reason::count_: break;
  }
  return "?";
}

transport::transport(sim::scheduler& sched, util::rng& rng,
                     std::unique_ptr<latency_model> latency,
                     transport_config cfg)
    : sched_(sched), rng_(rng), latency_(std::move(latency)), cfg_(cfg) {
  NYLON_EXPECTS(latency_ != nullptr);
  NYLON_EXPECTS(cfg_.hole_timeout > 0);
  NYLON_EXPECTS(cfg_.loss_rate >= 0.0 && cfg_.loss_rate <= 1.0);
  counters_.resize(1);
  leases_.resize(1);
  node_shards_.resize(1);
  // Rebinds trickle in over a whole run; pre-size the overflow routing
  // table so steady state never rehashes (obs `hash_rehashes`).
  rebound_owner_.reserve(1024);
}

void transport::set_codec(const frame_codec* codec) {
  NYLON_EXPECTS(node_count_ == 0);
  codec_ = codec;
}

void transport::set_backend(transport_backend* backend) {
  NYLON_EXPECTS(node_count_ == 0);
  NYLON_EXPECTS(backend == nullptr || router_ == nullptr);
  backend_ = backend;
}

void transport::deliver_inbound(node_id from, const endpoint& source,
                                const endpoint& to, const payload* body,
                                std::size_t bytes) {
  NYLON_EXPECTS(backend_ != nullptr);
  deliver(0, from, source, to, body, bytes);
}

void transport::set_shard_router(shard_router* router) {
  NYLON_EXPECTS(node_count_ == 0);
  NYLON_EXPECTS(router == nullptr || backend_ == nullptr);
  router_ = router;
  shard_count_ = router_ != nullptr ? router_->shard_count() : 1;
  counters_.clear();
  counters_.resize(shard_count_);
  leases_.clear();
  leases_.resize(shard_count_);
  node_shards_.clear();
  node_shards_.resize(shard_count_);
  if (router_ != nullptr) {
    // Cross-shard deliveries must land at or after the conservative
    // window's end; the latency model's floor sizes the engine's static
    // window and floors its adaptive lookahead, so it must be a real
    // millisecond (zero-delay packets would race the epoch barrier).
    NYLON_EXPECTS(latency_->min_delay() >= 1);
  }
}

sim::sim_time transport::lookahead() const noexcept {
  sim::sim_time look = sim::time_never;
  for (std::size_t c = 0; c < latency_->class_count(); ++c) {
    if (!latency_->class_live(c)) continue;
    look = std::min(look, latency_->class_min_delay(c));
  }
  return look;
}

node_id transport::add_node(nat::nat_type type, endpoint_handler& handler) {
  const auto id = static_cast<node_id>(node_count_++);
  node_shard& shard = node_shards_[shard_of_node(id)];
  NYLON_ENSURES(shard.hot.size() == slot_of(id));  // ids interleave densely
  node_hot hot;
  hot.type = type;
  const ip_address public_ip{public_ip_base + id + 1};
  hot.public_ip = public_ip;
  std::unique_ptr<nat::nat_device> device;
  if (nat::is_natted(type)) {
    hot.private_ep = endpoint{ip_address{private_ip_base + id + 1},
                              private_port};
    device =
        std::make_unique<nat::nat_device>(type, public_ip, cfg_.hole_timeout,
                                          cfg_.expected_nat_rules);
    hot.device = device.get();
    hot.advertised = device->advertised_endpoint(hot.private_ep);
  } else {
    hot.private_ep = endpoint{public_ip, public_peer_port};
    hot.advertised = hot.private_ep;
  }
  shard.hot.push_back(hot);
  shard.traffic.emplace_back();
  shard.handler.push_back(&handler);
  shard.send_seq.push_back(0);
  shard.device_owner.push_back(std::move(device));
  obs::count(obs::counter::nodes_added);
  // Ids are handed out in increasing order, so appending keeps the class
  // lists sorted without a search.
  (nat::is_natted(type) ? alive_natted_ : alive_public_).push_back(id);
  if (backend_ != nullptr) backend_->on_public_ip(id, public_ip);
  return id;
}

node_id transport::owner_of(ip_address ip) const {
  const std::uint32_t index = ip.value - public_ip_base - 1;
  if (index < node_count_) {
    // A re-bound NAT abandons its original 10.x address: packets sent
    // there must stop routing, so the arithmetic hit is confirmed
    // against the node's *current* public IP.
    return hot_of(index).public_ip == ip ? static_cast<node_id>(index)
                                         : nil_node;
  }
  const node_id* rebound = rebound_owner_.find(ip.value);
  return rebound != nullptr ? *rebound : nil_node;
}

void transport::remove_node(node_id id) {
  NYLON_EXPECTS(id < node_count_);
  node_hot& hot = hot_of(id);
  if (!hot.alive) return;  // idempotent: already removed
  hot.alive = false;
  obs::count(obs::counter::nodes_removed);
  std::vector<node_id>& list =
      nat::is_natted(hot.type) ? alive_natted_ : alive_public_;
  const auto it = std::lower_bound(list.begin(), list.end(), id);
  NYLON_ENSURES(it != list.end() && *it == id);
  list.erase(it);
}

bool transport::alive(node_id id) const {
  NYLON_EXPECTS(id < node_count_);
  return hot_of(id).alive;
}

nat::nat_type transport::type_of(node_id id) const {
  NYLON_EXPECTS(id < node_count_);
  return hot_of(id).type;
}

endpoint transport::advertised_endpoint(node_id id) const {
  NYLON_EXPECTS(id < node_count_);
  return hot_of(id).advertised;
}

const nat::nat_device* transport::device_of(node_id id) const {
  NYLON_EXPECTS(id < node_count_);
  return hot_of(id).device;
}

endpoint transport::replace_device(node_id id, nat::nat_type type) {
  node_hot& hot = hot_of(id);
  NYLON_EXPECTS(hot.alive);
  NYLON_EXPECTS(hot.device != nullptr);
  const ip_address old_ip = hot.device->public_ip();
  const ip_address new_ip{rebind_ip_base + ++rebind_count_};
  rebound_owner_.erase(old_ip.value);  // no-op for an original 10.x IP
  rebound_owner_.insert_or_get(new_ip.value) = id;
  hot.public_ip = new_ip;
  hot.type = type;
  auto device =
      std::make_unique<nat::nat_device>(type, new_ip, cfg_.hole_timeout,
                                        cfg_.expected_nat_rules);
  hot.device = device.get();
  hot.advertised = device->advertised_endpoint(hot.private_ep);
  node_shards_[shard_of_node(id)].device_owner[slot_of(id)] =
      std::move(device);
  if (backend_ != nullptr) backend_->on_public_ip(id, new_ip);
  return hot.advertised;
}

endpoint transport::rebind_nat(node_id id) {
  NYLON_EXPECTS(id < node_count_);
  return replace_device(id, hot_of(id).type);
}

endpoint transport::migrate_nat(node_id id, nat::nat_type new_type) {
  NYLON_EXPECTS(id < node_count_);
  NYLON_EXPECTS(nat::is_natted(new_type));
  return replace_device(id, new_type);
}

void transport::set_partition(std::vector<std::uint8_t> side) {
  NYLON_EXPECTS(side.size() <= node_count_);
  partition_side_ = std::move(side);
}

void transport::count_drop(std::size_t shard, drop_reason reason) {
  ++counters_[shard].drops[static_cast<std::size_t>(reason)];
}

void transport::send(node_id from, const endpoint& to, payload_ptr body) {
  NYLON_EXPECTS(from < node_count_);
  NYLON_EXPECTS(body != nullptr);
  const std::size_t src_shard = shard_of_node(from);
  const std::size_t src_slot = slot_of(from);
  node_shard& shard = node_shards_[src_shard];
  node_hot& src = shard.hot[src_slot];
  if (!src.alive) {
    count_drop(src_shard, drop_reason::sender_dead);
    return;
  }
  // The sending peer's own clock: its shard scheduler mid-epoch, the
  // universe scheduler in serial mode.
  const sim::sim_time now =
      router_ != nullptr ? router_->scheduler_of(src_shard).now()
                         : sched_.now();
  endpoint source_ep;
  if (src.device != nullptr) {
    source_ep = src.device->translate_outbound(src.private_ep, to, now);
  } else {
    source_ep = src.advertised;
  }
  const std::size_t bytes = udp_header_bytes + body->wire_size();
  node_traffic& traffic = shard.traffic[src_slot];
  traffic.bytes_sent += bytes;
  ++traffic.msgs_sent;
  counter_block& counters = counters_[src_shard];
  const message_kind kind = body->wire_kind();
  counters.by_kind[static_cast<std::size_t>(kind)] += bytes;
  obs::count(static_cast<obs::counter>(
      static_cast<std::size_t>(obs::counter::msg_request) +
      static_cast<std::size_t>(kind)));
  if (kind == message_kind::other) {  // cold path: non-protocol payloads
    counters.other[body->type_name()] += bytes;
  }

  // Flight-recorder sampling (obs/msglog.h): the tag is a pure hash of
  // digest-pinned send facts — sender, the sender's message ordinal, the
  // send time — so the same messages are sampled on every engine and
  // shard count. The hooks only read state; they never touch an rng.
  const std::uint64_t msg_tag = obs::msglog_tag(from, traffic.msgs_sent, now);
  if (msg_tag != 0) {
    const node_id dst_hint = owner_of(to.ip);
    const std::uint64_t dst = dst_hint == nil_node ? 0 : dst_hint;
    const char* kind_name = to_string(kind).data();
    if (src.device != nullptr) {
      obs::msglog_record({msg_tag, now, from, dst,
                          obs::hop_kind::nat_translate, kind_name, nullptr});
    }
    obs::msglog_record(
        {msg_tag, now, from, dst, obs::hop_kind::send, kind_name, nullptr});
  }

  // Per-peer rng streams in shard mode: the draw sequence belongs to the
  // sender, so it is independent of how peers are partitioned.
  util::rng& rng = router_ != nullptr ? router_->rng_of(from) : rng_;
  if (cfg_.loss_rate > 0.0 && rng.bernoulli(cfg_.loss_rate)) {
    count_drop(src_shard, drop_reason::random_loss);
    if (msg_tag != 0) {
      obs::msglog_record({msg_tag, now, from, 0, obs::hop_kind::drop, "",
                          to_string(drop_reason::random_loss).data()});
    }
    return;
  }
  const sim::sim_time delay = latency_->sample(rng);
  if (backend_ != nullptr) {
    // Real-socket mode: the backend owns the in-flight leg — it
    // serializes the payload onto an OS socket and calls
    // deliver_inbound() when the bytes come back, so no lease or
    // scheduler event is needed.
    backend_->ship(from, source_ep, to, std::move(body), bytes, now, delay);
    return;
  }
  // Frames mode: the datagram flies as its serialized bytes. Encode
  // happens here — after every accounting update and rng draw, on the
  // sending shard's thread — and consumes neither, which is why state
  // digests stay byte-identical to the struct-carrying path.
  if (codec_ != nullptr) body = codec_->encode(*body);
  // The closure borrows the payload; the owning reference goes into the
  // sender's lease list (see payload_lease in the header). Raw-pointer
  // captures keep every delivery closure trivially copyable.
  const payload* raw = body.get();
  lease_payload(src_shard, now + delay, std::move(body), now);
  if (router_ == nullptr) {
    sched_.after(delay, [this, from, source_ep, to, raw, bytes, msg_tag] {
      deliver(0, from, source_ep, to, raw, bytes, msg_tag);
    });
    return;
  }
  // Cross-shard (or same-shard — the ordering contract is uniform)
  // delivery through the canonical channels. The destination shard is
  // resolved against barrier-stable routing state; ownership is
  // re-resolved at delivery time, where a mid-flight NAT rebind turns the
  // packet into an unknown_destination drop exactly like the serial path.
  const node_id owner = owner_of(to.ip);
  const std::size_t dst_shard =
      owner != nil_node ? router_->shard_of(owner)
                        : to.ip.value % router_->shard_count();
  const std::uint64_t seq = ++shard.send_seq[src_slot];
  router_->post(router_->shard_of(from), dst_shard, now + delay, from, seq,
                [this, dst_shard, from, source_ep, to, raw, bytes, msg_tag] {
                  deliver(dst_shard, from, source_ep, to, raw, bytes, msg_tag);
                });
}

void transport::lease_payload(std::size_t src_shard, sim::sim_time release_at,
                              payload_ptr body, sim::sim_time now) {
  lease_list& list = leases_[src_shard];
  list.items.push_back(payload_lease{release_at, std::move(body)});
  // Amortized reclamation: a sweep is O(outstanding), so spacing them
  // this far keeps the per-send cost O(1) while bounding the backlog to
  // one interval of sends plus whatever is genuinely in flight.
  if (++list.sends_since_sweep >= 1024) sweep_leases(list, now);
}

void transport::sweep_leases(lease_list& list, sim::sim_time now) {
  list.sends_since_sweep = 0;
  // Serial: strictly-earlier events have executed, so anything released
  // before `now` is dead. Sharded: only the engine's globally completed
  // floor bounds the other shards' progress (see payload_lease) — the
  // relaxed read is safe because the floor is monotone and any stale
  // value only delays reclamation.
  const sim::sim_time reclaim_before =
      router_ != nullptr ? router_->completed_through() + 1 : now;
  std::vector<payload_lease>& items = list.items;
  for (std::size_t i = 0; i < items.size();) {
    if (items[i].release_at < reclaim_before) {
      items[i] = std::move(items.back());  // order is irrelevant here
      items.pop_back();
    } else {
      ++i;
    }
  }
}

void transport::deliver(std::size_t shard, node_id from, endpoint source,
                        endpoint to, const payload* body, std::size_t bytes,
                        std::uint64_t msg_tag) {
  const sim::sim_time now =
      router_ != nullptr ? router_->scheduler_of(shard).now() : sched_.now();
  // Flight-recorder hop for a terminated message; observation-only.
  const auto record_drop = [&](drop_reason reason, std::uint64_t dst_id) {
    if (msg_tag != 0) {
      obs::msglog_record({msg_tag, now, from, dst_id, obs::hop_kind::drop, "",
                          to_string(reason).data()});
    }
  };
  const node_id owner = owner_of(to.ip);
  if (owner == nil_node) {
    count_drop(shard, drop_reason::unknown_destination);
    record_drop(drop_reason::unknown_destination, 0);
    return;
  }
  // A partition severs the path before the destination NAT ever sees the
  // packet (no rule refresh on the far side).
  if (partitioned() && side_of(from) != side_of(owner)) {
    count_drop(shard, drop_reason::partitioned);
    record_drop(drop_reason::partitioned, owner);
    return;
  }
  const std::size_t dst_slot = slot_of(owner);
  node_shard& dst_nodes = node_shards_[shard_of_node(owner)];
  node_hot& dst = dst_nodes.hot[dst_slot];
  if (dst.device != nullptr) {
    const auto private_dst = dst.device->filter_inbound(to, source, now);
    if (!private_dst) {
      count_drop(shard, drop_reason::nat_filtered);
      record_drop(drop_reason::nat_filtered, owner);
      return;
    }
    NYLON_ENSURES(*private_dst == dst.private_ep);
  } else if (to != dst.advertised) {
    count_drop(shard, drop_reason::unknown_destination);
    record_drop(drop_reason::unknown_destination, owner);
    return;
  }
  // NAT boxes forward to dead hosts; the packet just dies there. The check
  // happens after NAT filtering so rule refreshes stay realistic.
  if (!dst.alive) {
    count_drop(shard, drop_reason::dead_node);
    record_drop(drop_reason::dead_node, owner);
    return;
  }
  if (msg_tag != 0) {
    obs::msglog_record(
        {msg_tag, now, from, owner, obs::hop_kind::deliver, "", nullptr});
  }
  node_traffic& traffic = dst_nodes.traffic[dst_slot];
  traffic.bytes_received += bytes;
  ++traffic.msgs_received;
  // Frames mode: parse the wire bytes back into a protocol payload
  // before dispatch. The decoded block is born and dies on this
  // (destination) shard's thread, honoring the arena sharing contract;
  // the handler borrows it exactly like any other body.
  payload_ptr decoded;
  if (const frame_payload* frame = body->as_frame()) {
    NYLON_ENSURES(codec_ != nullptr);
    decoded = codec_->decode(frame->bytes());
    // A frame the transport itself encoded can only fail to parse if
    // memory corrupted in flight — a simulator bug, not a protocol
    // event, hence a contract instead of a drop_reason.
    NYLON_ENSURES(decoded != nullptr);
    body = decoded.get();
  }
  dst_nodes.handler[dst_slot]->on_datagram(datagram{source, to, body});
}

nat::predicted_source transport::predicted_source(node_id from,
                                                  const endpoint& to) const {
  NYLON_EXPECTS(from < node_count_);
  const node_hot& src = hot_of(from);
  if (src.device != nullptr) {
    return src.device->would_translate(src.private_ep, to, sched_.now());
  }
  return nat::predicted_source{src.advertised.ip, src.advertised.port};
}

std::optional<node_id> transport::would_deliver(node_id from,
                                                const endpoint& to) const {
  NYLON_EXPECTS(from < node_count_);
  if (!hot_of(from).alive) return std::nullopt;
  const node_id owner = owner_of(to.ip);
  if (owner == nil_node) return std::nullopt;
  if (partitioned() && side_of(from) != side_of(owner)) {
    return std::nullopt;
  }
  const node_hot& dst = hot_of(owner);
  if (!dst.alive) return std::nullopt;
  const nat::predicted_source src = predicted_source(from, to);
  if (dst.device != nullptr) {
    const auto private_dst =
        dst.device->would_accept(to, src.ip, src.port, sched_.now());
    if (!private_dst) return std::nullopt;
  } else if (to != dst.advertised) {
    return std::nullopt;
  }
  return owner;
}

const node_traffic& transport::traffic(node_id id) const {
  NYLON_EXPECTS(id < node_count_);
  return node_shards_[shard_of_node(id)].traffic[slot_of(id)];
}

void transport::reset_traffic() {
  for (node_shard& shard : node_shards_) {
    for (node_traffic& t : shard.traffic) t = node_traffic{};
  }
  for (counter_block& block : counters_) {
    for (std::uint64_t& b : block.by_kind) b = 0;
    block.other.clear();
  }
}

std::uint64_t transport::bytes_by_kind(message_kind kind) const noexcept {
  std::uint64_t total = 0;
  for (const counter_block& block : counters_) {
    total += block.by_kind[static_cast<std::size_t>(kind)];
  }
  return total;
}

std::unordered_map<std::string_view, std::uint64_t> transport::bytes_by_type()
    const {
  std::unordered_map<std::string_view, std::uint64_t> out;
  for (const counter_block& block : counters_) {
    for (const auto& [name, bytes] : block.other) out[name] += bytes;
  }
  for (std::size_t k = 0; k < static_cast<std::size_t>(message_kind::other);
       ++k) {
    const std::uint64_t bytes = bytes_by_kind(static_cast<message_kind>(k));
    if (bytes > 0) out[to_string(static_cast<message_kind>(k))] = bytes;
  }
  return out;
}

std::uint64_t transport::drops(drop_reason reason) const {
  std::uint64_t total = 0;
  for (const counter_block& block : counters_) {
    total += block.drops[static_cast<std::size_t>(reason)];
  }
  return total;
}

std::uint64_t transport::total_drops() const {
  std::uint64_t total = 0;
  for (const counter_block& block : counters_) {
    for (const std::uint64_t c : block.drops) total += c;
  }
  return total;
}

void transport::purge_nat_state() {
  const sim::sim_time now = sched_.now();
  for (node_shard& shard : node_shards_) {
    for (const auto& device : shard.device_owner) {
      if (device != nullptr) device->purge_expired(now);
    }
  }
}

}  // namespace nylon::net
