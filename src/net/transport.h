// The simulated internet: delivers datagrams between endpoints, pushing
// every packet of a natted peer through its NAT device on the way out and
// through the destination's NAT device on the way in.
//
// Staleness, partitions and hole-punching behaviour all *emerge* from this
// code path; the metrics oracle dry-runs the exact same logic through the
// const `would_deliver` query.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "nat/nat_device.h"
#include "nat/nat_type.h"
#include "net/address.h"
#include "net/latency.h"
#include "net/message.h"
#include "net/node_id.h"
#include "sim/scheduler.h"
#include "util/flat_hash.h"
#include "util/rng.h"

namespace nylon::net {

class transport_backend;

/// A bound socket: receives datagrams addressed (post-NAT) to its owner.
class endpoint_handler {
 public:
  virtual ~endpoint_handler() = default;
  virtual void on_datagram(const datagram& dgram) = 0;
};

/// Shard-mode hooks, implemented by the runtime layer when one universe
/// runs on the sharded engine (see sim/shard_engine.h and DESIGN.md's
/// "Sharded determinism contract"). With a router installed the
/// transport:
///  * reads clocks from the executing peer's shard scheduler instead of
///    the (control-plane) scheduler it was constructed with,
///  * draws loss and latency from the *sending peer's* dedicated rng —
///    per-peer streams are what make results independent of the shard
///    count, and
///  * routes deliveries through the router's canonical cross-shard
///    channels instead of scheduling them directly.
/// Without a router (the default), behaviour is bit-identical to the
/// classic serial engine.
class shard_router {
 public:
  virtual ~shard_router() = default;

  [[nodiscard]] virtual std::size_t shard_count() const noexcept = 0;
  /// The shard owning `id`'s peer (stable for the node's lifetime).
  [[nodiscard]] virtual std::size_t shard_of(node_id id) const noexcept = 0;
  [[nodiscard]] virtual sim::scheduler& scheduler_of(
      std::size_t shard) noexcept = 0;
  /// The node's dedicated rng stream.
  [[nodiscard]] virtual util::rng& rng_of(node_id id) noexcept = 0;
  /// Buffers `fn` to run on `dst_shard` at `at`, canonically ordered by
  /// (at, order_a, order_b) at the next epoch barrier.
  virtual void post(std::size_t src_shard, std::size_t dst_shard,
                    sim::sim_time at, std::uint64_t order_a,
                    std::uint64_t order_b, util::callback fn) = 0;
  /// Latest sim time through which *every* shard has provably finished
  /// executing (monotone; may be read mid-epoch from worker threads).
  /// The payload-lease sweep reclaims against this floor — the clock-
  /// plus-window bound the serial path uses is unsound under adaptive
  /// epochs, where one epoch can stride far beyond the latency floor.
  [[nodiscard]] virtual sim::sim_time completed_through() const noexcept = 0;
};

/// Why a datagram was not delivered.
enum class drop_reason : std::uint8_t {
  unknown_destination,  ///< no host owns the destination IP / port
  dead_node,            ///< destination host left the system
  nat_filtered,         ///< destination NAT dropped the unsolicited packet
  sender_dead,          ///< source host left before the send fired
  random_loss,          ///< probabilistic loss (off by default)
  partitioned,          ///< source and destination are in different partitions
  count_                ///< number of reasons (internal)
};

/// Display name of a drop reason.
[[nodiscard]] std::string_view to_string(drop_reason r) noexcept;

/// Transport-wide tunables.
struct transport_config {
  /// NAT mapping / filtering-rule lifetime (the paper's 90 s).
  sim::sim_time hole_timeout = sim::seconds(90);
  /// Independent per-datagram loss probability (paper: 0).
  double loss_rate = 0.0;
  /// Expected distinct routing-table destinations per *natted* peer over
  /// one hole timeout (public peers, the relay hubs, reserve 2× this —
  /// see nylon_peer::attach). Sizes each routing table up front so
  /// steady-state learning never rehashes: obs `hash_rehashes` reads 0
  /// over a whole bench run, with the actual high-water mark tracked by
  /// `route_table_peak`. The default covers the paper's (15, healer,
  /// 5 s) profile with headroom — the measured peak is ~780 (public) and
  /// roughly flat in deployment size, bounded by how many destinations
  /// one peer can learn in 90 s. The reserved capacity matches what busy
  /// tables organically grow to, so it is close to memory-neutral.
  std::size_t expected_contacts = 512;
  /// Same idea for each NAT device's filtering-rule / symmetric-session
  /// tables (`nat_table_peak`; measured peak ~100, also flat in n).
  std::size_t expected_nat_rules = 192;
};

/// Per-node traffic counters (Figs. 7 and 8 are computed from these).
struct node_traffic {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_received = 0;
};

class transport {
 public:
  /// The scheduler and rng must outlive the transport.
  transport(sim::scheduler& sched, util::rng& rng,
            std::unique_ptr<latency_model> latency,
            transport_config cfg = {});

  // --- topology -------------------------------------------------------------

  /// Registers a node of the given NAT type; allocates its addresses and
  /// (for natted types) its NAT device. Returns its dense id.
  node_id add_node(nat::nat_type type, endpoint_handler& handler);

  /// Fail-stop removal: the node silently stops sending and receiving.
  /// Its NAT box keeps existing (packets die behind it).
  void remove_node(node_id id);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return node_count_;
  }
  [[nodiscard]] bool alive(node_id id) const;
  [[nodiscard]] nat::nat_type type_of(node_id id) const;

  /// Number of alive nodes (maintained incrementally).
  [[nodiscard]] std::size_t alive_count() const noexcept {
    return alive_public_.size() + alive_natted_.size();
  }

  /// Alive node ids by NAT class, ascending by id. A node's class (public
  /// vs natted) is fixed at add_node — migrations swap natted types only —
  /// so these lists turn the population scans behind churn draws and
  /// bootstrap candidate selection into O(alive) copies instead of O(n)
  /// per-node liveness probes. Invalidated by add_node/remove_node.
  [[nodiscard]] std::span<const node_id> alive_public() const noexcept {
    return alive_public_;
  }
  [[nodiscard]] std::span<const node_id> alive_natted() const noexcept {
    return alive_natted_;
  }

  /// STUN-discovered public endpoint the node advertises in descriptors.
  /// For symmetric-NAT nodes the port is 0 (no stable port exists).
  [[nodiscard]] endpoint advertised_endpoint(node_id id) const;

  /// The natted node's lease expired and its NAT re-bound: the device is
  /// replaced by a fresh one on a brand-new public IP, dropping every
  /// mapping and filtering rule. Packets addressed to the old public
  /// endpoint no longer route anywhere (`unknown_destination`). Returns
  /// the new advertised endpoint; the peer must re-learn it (STUN) via
  /// `advertised_endpoint` before gossiping fresh self-descriptors.
  /// Requires a natted, alive node.
  endpoint rebind_nat(node_id id);

  /// In-place NAT *type* migration: the ISP swaps the node's NAT device
  /// for one of `new_type` (cone -> symmetric, say) under the running
  /// peer. Same plumbing as `rebind_nat` — fresh public IP, every mapping
  /// and filtering rule lost, old endpoint stops routing — plus the type
  /// change, which peers and remote descriptors only observe once
  /// refreshed. Requires a natted, alive node and a natted `new_type`.
  endpoint migrate_nat(node_id id, nat::nat_type new_type);

  // --- partitions -------------------------------------------------------------

  /// Installs a network partition: `side[i]` is node i's side; nodes
  /// beyond the vector (added later) are on side 0. Cross-side packets
  /// are dropped (`drop_reason::partitioned`) at *delivery* time, so a
  /// packet still in flight when the split happens is dropped too — and
  /// conversely, one in flight when the partition heals gets through.
  void set_partition(std::vector<std::uint8_t> side);

  /// Heals the partition: all traffic flows again.
  void clear_partition() noexcept { partition_side_.clear(); }

  /// True while a partition is installed.
  [[nodiscard]] bool partitioned() const noexcept {
    return !partition_side_.empty();
  }

  /// The node's partition side (0 when no partition is installed).
  [[nodiscard]] std::uint8_t side_of(node_id id) const noexcept {
    return id < partition_side_.size() ? partition_side_[id] : 0;
  }

  /// The node's NAT device (nullptr for public nodes). Exposed for tests
  /// and for the reachability oracle.
  [[nodiscard]] const nat::nat_device* device_of(node_id id) const;

  // --- data path --------------------------------------------------------------

  /// Sends `body` from node `from` to endpoint `to`. Applies source NAT
  /// translation, accounts bytes, and schedules delivery after the
  /// latency model's delay.
  void send(node_id from, const endpoint& to, payload_ptr body);

  // --- dry-run oracle ---------------------------------------------------------

  /// Which node would receive a packet from `from` addressed to `to`,
  /// under current NAT state? nullopt when it would be dropped. Const:
  /// never creates sessions or refreshes rules.
  [[nodiscard]] std::optional<node_id> would_deliver(node_id from,
                                                     const endpoint& to) const;

  /// The source endpoint such a packet would carry (port may be unknown
  /// for a fresh symmetric session).
  [[nodiscard]] nat::predicted_source predicted_source(
      node_id from, const endpoint& to) const;

  // --- accounting -------------------------------------------------------------

  [[nodiscard]] const node_traffic& traffic(node_id id) const;
  /// Zeroes all per-node and per-type counters (used to measure steady
  /// state after a warm-up phase).
  void reset_traffic();
  [[nodiscard]] std::uint64_t drops(drop_reason reason) const;
  [[nodiscard]] std::uint64_t total_drops() const;
  /// Bytes sent for one protocol kind (sums the per-shard blocks; one
  /// block in serial mode).
  [[nodiscard]] std::uint64_t bytes_by_kind(message_kind kind) const noexcept;
  /// Bytes by payload type name (REQUEST, OPEN_HOLE, ...), assembled from
  /// the per-kind counters plus the by-name overflow for `other`
  /// payloads. Built on demand — call it for reporting, not per packet.
  [[nodiscard]] std::unordered_map<std::string_view, std::uint64_t>
  bytes_by_type() const;

  /// Periodically drops expired NAT state to bound memory; call it from a
  /// maintenance timer (scenario sets one up).
  void purge_nat_state();

  [[nodiscard]] sim::scheduler& scheduler() noexcept { return sched_; }
  /// Current simulated time (const path for oracles and metrics). In
  /// shard mode this is the control-plane clock, which equals the epoch
  /// barrier time whenever the control plane (oracles included) runs.
  [[nodiscard]] sim::sim_time scheduler_now() const noexcept {
    return sched_.now();
  }

  // --- shard mode -------------------------------------------------------------

  /// Installs (or clears, with nullptr) the shard-mode hooks. The router
  /// must outlive the transport; install it before any node is added or
  /// traffic flows.
  void set_shard_router(shard_router* router);
  [[nodiscard]] bool sharded() const noexcept { return router_ != nullptr; }

  /// Conservative lookahead for the sharded engine's adaptive windows:
  /// an exact lower bound on the delay of any message schedulable from
  /// now on — the minimum over the latency model's *live* classes (see
  /// latency_model::class_live). Queried between epochs, where the
  /// latency state is barrier-stable.
  [[nodiscard]] sim::sim_time lookahead() const noexcept;

  /// The scheduler `id`'s peer must use for its own timers: its shard's
  /// scheduler when sharded, the universe scheduler otherwise.
  [[nodiscard]] sim::scheduler& scheduler_for(node_id id) noexcept {
    return router_ != nullptr ? router_->scheduler_of(router_->shard_of(id))
                              : sched_;
  }

  /// The clock `id`'s peer observes from inside its own events (its
  /// shard clock when sharded; identical to scheduler_now() otherwise).
  [[nodiscard]] sim::sim_time now_for(node_id id) const noexcept {
    return router_ != nullptr
               ? router_->scheduler_of(router_->shard_of(id)).now()
               : sched_.now();
  }

  [[nodiscard]] const transport_config& config() const noexcept {
    return cfg_;
  }

  // --- wire backends ----------------------------------------------------------

  /// Installs a serializer (or clears it, with nullptr): every datagram
  /// then flies as its encoded frame — serialized when it enters flight,
  /// parsed back right before handler dispatch — so protocol handlers
  /// only ever see round-tripped bytes. Encode happens after all
  /// accounting and rng draws and consumes neither, so state digests are
  /// byte-identical to the struct-carrying path (the sim-frames
  /// contract; see DESIGN.md). Works in serial and shard mode: frames
  /// are encoded on the sending shard and decoded on the destination
  /// shard. Install before any node is added.
  void set_codec(const frame_codec* codec);

  /// Installs a real-socket backend (or clears it, with nullptr): after
  /// NAT translation, accounting, and the loss/latency draws, in-flight
  /// datagrams are handed to `backend` instead of the scheduler; the
  /// backend calls deliver_inbound() when bytes arrive. Serial engine
  /// only (real sockets cannot honor the sharded epoch barriers).
  /// Install before any node is added.
  void set_backend(transport_backend* backend);

  /// Inbound entry point for backends: runs the delivery-time path (NAT
  /// filtering, partition check, liveness, handler dispatch) for one
  /// datagram that arrived from the wire.
  void deliver_inbound(node_id from, const endpoint& source,
                       const endpoint& to, const payload* body,
                       std::size_t bytes);

 private:
  /// Per-node metadata the send/deliver fast path reads, packed into one
  /// 32-byte record so two nodes share a cache line (the old all-in-one
  /// node record spanned two lines per node and dragged the cold fields
  /// through the cache with it). `device` is a borrowed pointer — the
  /// owning unique_ptr lives in the cold per-shard array.
  struct node_hot {
    endpoint private_ep;   ///< equals `advertised` for public nodes
    endpoint advertised;
    ip_address public_ip;  ///< current public-facing IP (moves on rebind)
    nat::nat_type type = nat::nat_type::open;
    bool alive = true;
    nat::nat_device* device = nullptr;  ///< null for public nodes
  };
  static_assert(sizeof(node_hot) == 32);

  /// One shard's nodes in structure-of-arrays layout, indexed by dense
  /// local slot (`slot_of`). Shards only ever touch their own arrays
  /// mid-epoch (the destination shard executes deliveries), so the
  /// per-shard split keeps each worker's hot data contiguous and free of
  /// false sharing; in serial mode there is exactly one shard holding
  /// everything. Arrays a path does not touch (traffic accounting,
  /// handler dispatch, send sequencing, device ownership) stay out of
  /// the `hot` stride entirely.
  struct node_shard {
    std::vector<node_hot> hot;
    std::vector<node_traffic> traffic;
    std::vector<endpoint_handler*> handler;
    /// Monotonic per-sender packet number: the canonical cross-shard
    /// tiebreak (never reset, unlike the traffic counters).
    std::vector<std::uint64_t> send_seq;
    std::vector<std::unique_ptr<nat::nat_device>> device_owner;
  };

  /// Node ids interleave across shards (id % K, matching the runtime's
  /// shard_of) with dense per-shard slots id / K.
  [[nodiscard]] std::size_t shard_of_node(node_id id) const noexcept {
    return id % shard_count_;
  }
  [[nodiscard]] std::size_t slot_of(node_id id) const noexcept {
    return id / shard_count_;
  }
  [[nodiscard]] node_hot& hot_of(node_id id) noexcept {
    return node_shards_[shard_of_node(id)].hot[slot_of(id)];
  }
  [[nodiscard]] const node_hot& hot_of(node_id id) const noexcept {
    return node_shards_[shard_of_node(id)].hot[slot_of(id)];
  }

  /// Transport-wide counters, split per shard so concurrent epochs never
  /// contend (one block, index 0, in serial mode). Readers sum the
  /// blocks; the sums are shard-count independent even though the
  /// per-block placement is not. Cache-line aligned against false
  /// sharing between adjacent shards' hot counters.
  struct alignas(64) counter_block {
    std::uint64_t drops[static_cast<std::size_t>(drop_reason::count_)] = {};
    std::uint64_t by_kind[static_cast<std::size_t>(message_kind::count_)] =
        {};
    /// By-name accounting for payloads outside the protocol enum.
    std::unordered_map<std::string_view, std::uint64_t> other;
  };

  /// In-flight payload ownership. Delivery closures capture the payload
  /// as a *raw* pointer — that keeps them trivially copyable (the event
  /// queue relocates trivial captures with a memcpy) and, in shard mode,
  /// keeps the non-atomic refcount off foreign shards entirely. The
  /// owning reference lives here, on the *sending* peer's shard, until
  /// the delivery time has provably passed:
  ///  * serial: every event before the current timestamp has executed,
  ///    so a lease with `release_at < now` is dead;
  ///  * sharded: the engine publishes the globally completed time floor
  ///    (router->completed_through()); a lease with
  ///    `release_at <= floor` has executed on its destination shard no
  ///    matter how epochs were cut. (The sender's own clock bounds
  ///    nothing under adaptive windows — one epoch can stride
  ///    arbitrarily far past the latency floor while a same-epoch
  ///    delivery on another shard has not run yet.)
  /// Sweeps are amortized over sends; leftover leases die with the
  /// transport (workers parked, so the refcounts are safe to touch).
  struct payload_lease {
    sim::sim_time release_at = 0;  ///< the delivery's scheduled time
    payload_ptr body;
  };
  struct lease_list {
    std::vector<payload_lease> items;
    std::uint32_t sends_since_sweep = 0;
  };
  /// Frees every lease in `list` whose delivery has provably executed.
  void sweep_leases(lease_list& list, sim::sim_time now);
  /// Records the owning reference for one in-flight payload.
  void lease_payload(std::size_t src_shard, sim::sim_time release_at,
                     payload_ptr body, sim::sim_time now);

  /// O(1) routing: node i's original public IP is `public_ip_base + i + 1`
  /// by construction, so ownership is arithmetic plus one equality check
  /// (the node may have re-bound away from that address). Re-bound
  /// addresses live in a small overflow table. Returns nil_node when no
  /// alive-or-dead host owns the address.
  [[nodiscard]] node_id owner_of(ip_address ip) const;

  /// Delivery-time path; `shard` is the executing shard (0 in serial
  /// mode), used for clock reads and drop accounting. `body` is borrowed
  /// from the sender's delivery lease (see `payload_lease`). `msg_tag`
  /// is the flight-recorder sampling tag (obs/msglog.h): 0 for the
  /// unsampled common case, a stable message id otherwise —
  /// observation-only, it never influences the delivery outcome.
  void deliver(std::size_t shard, node_id from, endpoint source, endpoint to,
               const payload* body, std::size_t bytes,
               std::uint64_t msg_tag = 0);
  void count_drop(std::size_t shard, drop_reason reason);
  /// Shared rebind/migration plumbing: fresh device of `type` on a fresh
  /// public IP, all NAT state dropped, routing handed off to the new IP.
  endpoint replace_device(node_id id, nat::nat_type type);

  sim::scheduler& sched_;
  util::rng& rng_;
  std::unique_ptr<latency_model> latency_;
  transport_config cfg_;
  shard_router* router_ = nullptr;  ///< null = classic serial engine
  /// Real-socket carrier for the in-flight leg (null = scheduler events).
  transport_backend* backend_ = nullptr;
  /// Frame serializer (null = payload structs fly as-is).
  const frame_codec* codec_ = nullptr;
  std::size_t shard_count_ = 1;     ///< node_shards_.size()
  std::size_t node_count_ = 0;
  std::vector<node_shard> node_shards_;
  /// Alive ids by NAT class, ascending (see alive_public/alive_natted).
  std::vector<node_id> alive_public_;
  std::vector<node_id> alive_natted_;
  /// Overflow routing for NATs that re-bound onto fresh (11.x) IPs.
  util::flat_hash_map<std::uint32_t, node_id> rebound_owner_;
  std::vector<std::uint8_t> partition_side_;  ///< empty = no partition
  std::uint32_t rebind_count_ = 0;  ///< rebound public IPs allocated so far
  /// One block per shard (exactly one in serial mode).
  std::vector<counter_block> counters_;
  /// In-flight payload owners, one list per shard (see payload_lease).
  std::vector<lease_list> leases_;
};

}  // namespace nylon::net
