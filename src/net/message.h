// Type-erased datagram payloads. Protocol layers (gossip, nylon) define
// concrete payloads; the transport only needs a wire size for bandwidth
// accounting and a type name for per-kind statistics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

#include "net/address.h"
#include "net/payload_arena.h"

namespace nylon::net {

/// Transport-level message classification: the protocol kinds the
/// simulator accounts for with a fixed array instead of a string-keyed
/// hash (the per-send `bytes_by_type_[type_name()]` lookup was hot).
/// Payloads outside the gossip protocol (test doubles, measurement
/// probes) report `other` and fall back to by-name accounting.
enum class message_kind : std::uint8_t {
  request,    ///< shuffle request carrying the initiator's buffer
  response,   ///< shuffle response carrying the target's buffer
  open_hole,  ///< Nylon: hole-punch trigger, forwarded along the RVP chain
  ping,       ///< Nylon: opens the sender's own NAT hole towards dest
  pong,       ///< Nylon: confirms the hole is open
  other,      ///< anything else (accounted per type_name)
  count_      ///< number of kinds (internal)
};

/// Display name of a known message kind ("?" for `other`).
[[nodiscard]] constexpr std::string_view to_string(message_kind k) noexcept {
  switch (k) {
    case message_kind::request: return "REQUEST";
    case message_kind::response: return "RESPONSE";
    case message_kind::open_hole: return "OPEN_HOLE";
    case message_kind::ping: return "PING";
    case message_kind::pong: return "PONG";
    case message_kind::other:
    case message_kind::count_: break;
  }
  return "?";
}

class frame_payload;

/// Base class of everything that can ride inside a simulated UDP datagram.
class payload {
 public:
  virtual ~payload() = default;

  /// Serialized payload size in bytes (excluding the IP/UDP header, which
  /// the transport adds).
  [[nodiscard]] virtual std::size_t wire_size() const noexcept = 0;

  /// Stable name used for per-message-type accounting ("REQUEST", ...).
  [[nodiscard]] virtual std::string_view type_name() const noexcept = 0;

  /// Transport-level kind for O(1) accounting and dispatch; `other`
  /// unless the payload is a gossip protocol message.
  [[nodiscard]] virtual message_kind wire_kind() const noexcept {
    return message_kind::other;
  }

  /// Non-null iff this payload is a serialized frame (raw bytes) rather
  /// than an in-memory protocol struct. The transport uses it to decode
  /// before dispatching to a handler.
  [[nodiscard]] virtual const frame_payload* as_frame() const noexcept {
    return nullptr;
  }
};

/// A payload that is a serialized byte frame. Its wire_size()/wire_kind()
/// must report the *encoded message's* nominal size and kind so that
/// bandwidth accounting is invariant under serialization.
class frame_payload : public payload {
 public:
  /// The serialized frame (header + body).
  [[nodiscard]] virtual std::span<const std::byte> bytes() const noexcept = 0;

  [[nodiscard]] const frame_payload* as_frame() const noexcept final {
    return this;
  }
};

/// Payloads are immutable, arena-allocated and intrusively refcounted;
/// shared between the in-flight datagram's delivery lease and any
/// sender-side bookkeeping (pending-request buffers).
using payload_ptr = arena_ref<const payload>;

/// Serializer installed on a transport that carries real bytes
/// (sim-frames mode, the UDP backend). Implemented by wire/codec.cpp;
/// declared here so net/ stays independent of the wire/ and gossip/
/// layers.
class frame_codec {
 public:
  virtual ~frame_codec() = default;

  /// Serializes a protocol payload into a frame_payload (arena block
  /// holding header + body bytes). Precondition: the codec recognizes
  /// the payload's concrete type.
  [[nodiscard]] virtual payload_ptr encode(const payload& body) const = 0;

  /// Parses a frame back into the protocol payload it encodes, or null
  /// if the bytes are malformed (typed errors live on the concrete
  /// codec's decode entry point).
  [[nodiscard]] virtual payload_ptr decode(
      std::span<const std::byte> bytes) const = 0;
};

/// A delivered datagram, as the receiving socket sees it: the source is
/// the post-NAT translated endpoint (what a real socket's recvfrom yields).
/// `body` is a borrowed pointer, valid only for the duration of the
/// handler callback — a receiver keeps what it needs by copying (or, in
/// test code, by `payload_ptr::retain`), never by storing the datagram.
struct datagram {
  endpoint source;
  endpoint destination;
  const payload* body = nullptr;
};

/// Bytes of IP + UDP header added to every datagram (20 + 8).
inline constexpr std::size_t udp_header_bytes = 28;

}  // namespace nylon::net
