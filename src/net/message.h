// Type-erased datagram payloads. Protocol layers (gossip, nylon) define
// concrete payloads; the transport only needs a wire size for bandwidth
// accounting and a type name for per-kind statistics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "net/address.h"
#include "net/payload_arena.h"

namespace nylon::net {

/// Transport-level message classification: the protocol kinds the
/// simulator accounts for with a fixed array instead of a string-keyed
/// hash (the per-send `bytes_by_type_[type_name()]` lookup was hot).
/// Payloads outside the gossip protocol (test doubles, measurement
/// probes) report `other` and fall back to by-name accounting.
enum class message_kind : std::uint8_t {
  request,    ///< shuffle request carrying the initiator's buffer
  response,   ///< shuffle response carrying the target's buffer
  open_hole,  ///< Nylon: hole-punch trigger, forwarded along the RVP chain
  ping,       ///< Nylon: opens the sender's own NAT hole towards dest
  pong,       ///< Nylon: confirms the hole is open
  other,      ///< anything else (accounted per type_name)
  count_      ///< number of kinds (internal)
};

/// Display name of a known message kind ("?" for `other`).
[[nodiscard]] constexpr std::string_view to_string(message_kind k) noexcept {
  switch (k) {
    case message_kind::request: return "REQUEST";
    case message_kind::response: return "RESPONSE";
    case message_kind::open_hole: return "OPEN_HOLE";
    case message_kind::ping: return "PING";
    case message_kind::pong: return "PONG";
    case message_kind::other:
    case message_kind::count_: break;
  }
  return "?";
}

/// Base class of everything that can ride inside a simulated UDP datagram.
class payload {
 public:
  virtual ~payload() = default;

  /// Serialized payload size in bytes (excluding the IP/UDP header, which
  /// the transport adds).
  [[nodiscard]] virtual std::size_t wire_size() const noexcept = 0;

  /// Stable name used for per-message-type accounting ("REQUEST", ...).
  [[nodiscard]] virtual std::string_view type_name() const noexcept = 0;

  /// Transport-level kind for O(1) accounting and dispatch; `other`
  /// unless the payload is a gossip protocol message.
  [[nodiscard]] virtual message_kind wire_kind() const noexcept {
    return message_kind::other;
  }
};

/// Payloads are immutable, arena-allocated and intrusively refcounted;
/// shared between the in-flight datagram's delivery lease and any
/// sender-side bookkeeping (pending-request buffers).
using payload_ptr = arena_ref<const payload>;

/// A delivered datagram, as the receiving socket sees it: the source is
/// the post-NAT translated endpoint (what a real socket's recvfrom yields).
/// `body` is a borrowed pointer, valid only for the duration of the
/// handler callback — a receiver keeps what it needs by copying (or, in
/// test code, by `payload_ptr::retain`), never by storing the datagram.
struct datagram {
  endpoint source;
  endpoint destination;
  const payload* body = nullptr;
};

/// Bytes of IP + UDP header added to every datagram (20 + 8).
inline constexpr std::size_t udp_header_bytes = 28;

}  // namespace nylon::net
