// Type-erased datagram payloads. Protocol layers (gossip, nylon) define
// concrete payloads; the transport only needs a wire size for bandwidth
// accounting and a type name for per-kind statistics.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>

#include "net/address.h"

namespace nylon::net {

/// Base class of everything that can ride inside a simulated UDP datagram.
class payload {
 public:
  virtual ~payload() = default;

  /// Serialized payload size in bytes (excluding the IP/UDP header, which
  /// the transport adds).
  [[nodiscard]] virtual std::size_t wire_size() const noexcept = 0;

  /// Stable name used for per-message-type accounting ("REQUEST", ...).
  [[nodiscard]] virtual std::string_view type_name() const noexcept = 0;
};

/// Payloads are immutable and shared between the in-flight datagram and
/// any bookkeeping that wants to inspect them.
using payload_ptr = std::shared_ptr<const payload>;

/// A delivered datagram, as the receiving socket sees it: the source is
/// the post-NAT translated endpoint (what a real socket's recvfrom yields).
struct datagram {
  endpoint source;
  endpoint destination;
  payload_ptr body;
};

/// Bytes of IP + UDP header added to every datagram (20 + 8).
inline constexpr std::size_t udp_header_bytes = 28;

}  // namespace nylon::net
