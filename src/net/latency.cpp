#include "net/latency.h"

#include "util/contracts.h"

namespace nylon::net {

fixed_latency::fixed_latency(sim::sim_time delay) : delay_(delay) {
  NYLON_EXPECTS(delay >= 0);
}

sim::sim_time fixed_latency::sample(util::rng& /*rng*/) { return delay_; }

uniform_latency::uniform_latency(sim::sim_time lo, sim::sim_time hi)
    : lo_(lo), hi_(hi) {
  NYLON_EXPECTS(lo >= 0 && lo <= hi);
}

sim::sim_time uniform_latency::sample(util::rng& rng) {
  return static_cast<sim::sim_time>(
      rng.uniform(static_cast<std::uint64_t>(lo_),
                  static_cast<std::uint64_t>(hi_)));
}

std::unique_ptr<latency_model> paper_latency() {
  return std::make_unique<fixed_latency>(sim::millis(50));
}

}  // namespace nylon::net
