#include "net/latency.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/contracts.h"

namespace nylon::net {

fixed_latency::fixed_latency(sim::sim_time delay) : delay_(delay) {
  NYLON_EXPECTS(delay >= 0);
}

sim::sim_time fixed_latency::sample(util::rng& /*rng*/) { return delay_; }

sim::sim_time fixed_latency::min_delay() const noexcept { return delay_; }

uniform_latency::uniform_latency(sim::sim_time lo, sim::sim_time hi)
    : lo_(lo), hi_(hi) {
  NYLON_EXPECTS(lo >= 0 && lo <= hi);
}

sim::sim_time uniform_latency::sample(util::rng& rng) {
  return static_cast<sim::sim_time>(
      rng.uniform(static_cast<std::uint64_t>(lo_),
                  static_cast<std::uint64_t>(hi_)));
}

sim::sim_time uniform_latency::min_delay() const noexcept { return lo_; }

lognormal_latency::lognormal_latency(sim::sim_time median, double sigma)
    : median_ms_(static_cast<double>(median)), sigma_(sigma) {
  NYLON_EXPECTS(median > 0);
  NYLON_EXPECTS(sigma >= 0.0);
}

sim::sim_time lognormal_latency::sample(util::rng& rng) {
  const double delay = median_ms_ * std::exp(sigma_ * rng.normal01());
  // Round to the millisecond grid; a sub-millisecond draw still takes 1 ms
  // (zero-delay packets would race their own send event).
  return std::max<sim::sim_time>(1, std::llround(delay));
}

sim::sim_time lognormal_latency::min_delay() const noexcept {
  return 1;  // sample() clamps to the millisecond grid
}

mixture_latency::mixture_latency(std::vector<component> components)
    : components_(std::move(components)) {
  NYLON_EXPECTS(!components_.empty());
  live_min_ = sim::time_never;
  for (const component& c : components_) {
    NYLON_EXPECTS(c.delay >= 0);
    NYLON_EXPECTS(c.weight >= 0.0);
    total_weight_ += c.weight;
    if (c.weight > 0.0) live_min_ = std::min(live_min_, c.delay);
  }
  NYLON_EXPECTS(total_weight_ > 0.0);  // at least one live class
}

sim::sim_time mixture_latency::sample(util::rng& rng) {
  // One uniform draw walks the cumulative weights; dead classes have
  // zero measure and can never be selected.
  double u = rng.uniform01() * total_weight_;
  for (const component& c : components_) {
    u -= c.weight;
    if (u < 0.0) return c.delay;
  }
  return components_.back().delay;  // rounding fell off the end
}

sim::sim_time mixture_latency::min_delay() const noexcept {
  return live_min_;
}

std::size_t mixture_latency::class_count() const noexcept {
  return components_.size();
}

sim::sim_time mixture_latency::class_min_delay(
    std::size_t c) const noexcept {
  return components_[c].delay;
}

bool mixture_latency::class_live(std::size_t c) const noexcept {
  return components_[c].weight > 0.0;
}

std::unique_ptr<latency_model> paper_latency() {
  return std::make_unique<fixed_latency>(sim::millis(50));
}

}  // namespace nylon::net
