// Pluggable carrier for the in-flight leg of a datagram's journey.
//
// The transport always owns the *protocol-visible* parts of a send: NAT
// translation, bandwidth accounting, loss and latency draws, and the
// delivery-time path (NAT filtering, liveness, partition checks,
// handler dispatch). A backend takes over what happens in between —
// how a datagram physically travels from its post-NAT source endpoint
// to the destination. The default (no backend) flight is a scheduler
// event; net/udp_backend.h ships real datagrams over loopback sockets.
#pragma once

#include <cstddef>

#include "net/address.h"
#include "net/message.h"
#include "net/node_id.h"
#include "sim/time.h"

namespace nylon::net {

class transport_backend {
 public:
  virtual ~transport_backend() = default;

  /// A node gained a public-facing IP: called once per node at add_node
  /// (for natted nodes, with the NAT box's IP) and again on every NAT
  /// rebind/migration with the fresh address. Backends map sim IPs to
  /// real sockets here.
  virtual void on_public_ip(node_id id, ip_address public_ip) = 0;

  /// Carries one datagram. Called by transport::send after translation,
  /// accounting, and the loss/latency draws; the backend must arrange
  /// for transport::deliver_inbound to run `delay` after `send_time`
  /// (in simulated time) with this datagram's fields. Takes ownership
  /// of `body`; `bytes` is the accounted wire size (UDP header +
  /// payload).
  virtual void ship(node_id from, const endpoint& source, const endpoint& to,
                    payload_ptr body, std::size_t bytes,
                    sim::sim_time send_time, sim::sim_time delay) = 0;
};

}  // namespace nylon::net
