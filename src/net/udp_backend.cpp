#include "net/udp_backend.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "net/transport.h"
#include "util/contracts.h"

namespace nylon::net {

namespace {

// Routing envelope prefixed to every frame. Real deployments would read
// the sender and destination off the socket addresses; here N simulated
// peers share one process and loopback hides the sim addressing, so the
// envelope carries what recvfrom cannot: the sim endpoints (post-NAT),
// the sending node, and the latency model's stamped delivery time.
// Little-endian: from u32, src ip u32, src port u32, dst ip u32,
// dst port u32, deliver_at i64.
constexpr std::size_t envelope_bytes = 28;

void put_u32(std::byte* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::byte>(v >> (8 * i));
}

void put_i64(std::byte* p, std::int64_t v) noexcept {
  const auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::byte>(u >> (8 * i));
}

std::uint32_t get_u32(const std::byte* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

std::int64_t get_i64(const std::byte* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return static_cast<std::int64_t>(v);
}

}  // namespace

bool udp_backend::later(const pending_delivery& a,
                        const pending_delivery& b) noexcept {
  if (a.deliver_at != b.deliver_at) return a.deliver_at > b.deliver_at;
  return a.seq > b.seq;
}

udp_backend::udp_backend(transport& transport, sim::scheduler& sched,
                         const frame_codec& codec, config cfg)
    : transport_(transport), sched_(sched), codec_(codec), cfg_(cfg) {
  NYLON_EXPECTS(cfg_.time_scale > 0.0);
  by_sim_ip_.reserve(1024);
}

udp_backend::~udp_backend() {
  for (const socket_entry& s : sockets_) ::close(s.fd);
}

void udp_backend::on_public_ip(node_id id, ip_address public_ip) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  NYLON_ENSURES(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel-chosen
  NYLON_ENSURES(
      ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0);
  socklen_t len = sizeof(addr);
  NYLON_ENSURES(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  // Fresh IPs only: add_node allocates unique 10.x addresses and every
  // rebind draws a never-reused 11.x address.
  NYLON_EXPECTS(by_sim_ip_.find(public_ip.value) == nullptr);
  by_sim_ip_.insert_or_get(public_ip.value) =
      static_cast<std::uint32_t>(sockets_.size());
  sockets_.push_back(
      socket_entry{fd, ntohs(addr.sin_port), public_ip, id});
  pollfds_.push_back(pollfd{fd, POLLIN, 0});
}

void udp_backend::ship(node_id from, const endpoint& source,
                       const endpoint& to, payload_ptr body, std::size_t bytes,
                       sim::sim_time send_time, sim::sim_time delay) {
  const std::uint32_t* dst_index = by_sim_ip_.find(to.ip.value);
  if (dst_index == nullptr) {
    // The destination IP never had a socket (an address no node ever
    // owned). Hand the datagram straight to the delivery path so the
    // transport books the same unknown_destination drop the sim would.
    ++stats_.no_route;
    transport_.deliver_inbound(from, source, to, body.get(), bytes);
    return;
  }

  const payload_ptr encoded = codec_.encode(*body);
  const frame_payload* frame = encoded->as_frame();
  NYLON_ENSURES(frame != nullptr);
  const std::span<const std::byte> frame_bytes = frame->bytes();

  send_buf_.resize(envelope_bytes + frame_bytes.size());
  std::byte* p = send_buf_.data();
  put_u32(p + 0, from);
  put_u32(p + 4, source.ip.value);
  put_u32(p + 8, source.port);
  put_u32(p + 12, to.ip.value);
  put_u32(p + 16, to.port);
  put_i64(p + 20, send_time + delay);
  std::memcpy(p + envelope_bytes, frame_bytes.data(), frame_bytes.size());

  // Send from the socket of the sender's public (post-NAT) IP when it
  // has one; a source that somehow lacks a socket falls back to the
  // destination's own fd (the source endpoint still travels in the
  // envelope, so routing is unaffected).
  const std::uint32_t* src_index = by_sim_ip_.find(source.ip.value);
  const int fd =
      sockets_[src_index != nullptr ? *src_index : *dst_index].fd;
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  dst.sin_port = htons(sockets_[*dst_index].real_port);
  const ssize_t sent =
      ::sendto(fd, send_buf_.data(), send_buf_.size(), 0,
               reinterpret_cast<const sockaddr*>(&dst), sizeof(dst));
  if (sent < 0 || static_cast<std::size_t>(sent) != send_buf_.size()) {
    ++stats_.send_failures;  // kernel dropped it: genuine packet loss
    return;
  }
  ++stats_.datagrams_sent;
  stats_.real_bytes_sent += udp_header_bytes + send_buf_.size();
}

bool udp_backend::drain_sockets() {
  bool any = false;
  // Envelope + the largest possible frame (12-byte header + 64 KiB body).
  std::byte buf[envelope_bytes + 12 + 0xFFFF];
  for (const socket_entry& s : sockets_) {
    for (;;) {
      const ssize_t n = ::recv(s.fd, buf, sizeof(buf), 0);
      if (n < 0) break;  // EAGAIN: socket dry
      any = true;
      ++stats_.datagrams_received;
      handle_datagram({buf, static_cast<std::size_t>(n)});
    }
  }
  return any;
}

void udp_backend::handle_datagram(std::span<const std::byte> data) {
  if (data.size() < envelope_bytes) {
    ++stats_.decode_errors;
    return;
  }
  const std::byte* p = data.data();
  pending_delivery d;
  d.from = get_u32(p + 0);
  d.source = endpoint{ip_address{get_u32(p + 4)}, get_u32(p + 8)};
  d.destination = endpoint{ip_address{get_u32(p + 12)}, get_u32(p + 16)};
  d.deliver_at = get_i64(p + 20);
  d.body = codec_.decode(data.subspan(envelope_bytes));
  if (d.body == nullptr) {
    ++stats_.decode_errors;
    return;
  }
  if (d.deliver_at < sched_.now()) {
    // The wall clock overran the latency stamp; deliver now and record
    // the jitter instead of time-traveling.
    ++stats_.late_deliveries;
    d.deliver_at = sched_.now();
  }
  d.bytes = udp_header_bytes + d.body->wire_size();
  d.seq = next_seq_++;
  pending_.push_back(std::move(d));
  std::push_heap(pending_.begin(), pending_.end(), later);
}

void udp_backend::flush_due(sim::sim_time t) {
  while (!pending_.empty() && pending_.front().deliver_at <= t) {
    std::pop_heap(pending_.begin(), pending_.end(), later);
    pending_delivery d = std::move(pending_.back());
    pending_.pop_back();
    // May reentrantly ship() replies; sends are immediate, so that is
    // safe mid-flush.
    transport_.deliver_inbound(d.from, d.source, d.destination, d.body.get(),
                               d.bytes);
  }
}

void udp_backend::run_until(sim::sim_time deadline) {
  using clock = std::chrono::steady_clock;
  NYLON_EXPECTS(deadline >= sched_.now());
  const clock::time_point wall0 = clock::now();
  const sim::sim_time sim0 = sched_.now();
  // sim_time is in milliseconds; time_scale is wall-seconds per sim-second.
  const auto wall_at = [&](sim::sim_time t) {
    const double sim_seconds = static_cast<double>(t - sim0) / 1000.0;
    return wall0 + std::chrono::duration_cast<clock::duration>(
                       std::chrono::duration<double>(sim_seconds *
                                                     cfg_.time_scale));
  };
  for (;;) {
    drain_sockets();
    // The next thing due: a scheduler event (timers), a stamped
    // delivery, or the deadline itself.
    sim::sim_time next = std::min(deadline, sched_.next_event_time());
    if (!pending_.empty()) next = std::min(next, pending_.front().deliver_at);
    next = std::clamp(next, sched_.now(), deadline);
    // Pace: wait on the sockets until `next`'s wall image. Datagrams
    // arriving meanwhile can pull `next` earlier (a stamp between now
    // and the horizon).
    for (;;) {
      const clock::time_point target = wall_at(next);
      const auto remaining = target - clock::now();
      if (remaining <= clock::duration::zero()) break;
      // Bounded slices keep the sockets drained even across long idle
      // stretches of simulated time.
      const int timeout_ms = static_cast<int>(std::clamp<std::int64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
              .count(),
          1, 20));
      ::poll(pollfds_.data(), pollfds_.size(), timeout_ms);
      if (drain_sockets() && !pending_.empty() &&
          pending_.front().deliver_at < next) {
        next = std::max(pending_.front().deliver_at, sched_.now());
      }
    }
    sched_.run_until(next);
    flush_due(next);
    if (next >= deadline) return;
  }
}

}  // namespace nylon::net
