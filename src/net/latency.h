// Message latency models. The paper fixes latency at 50 ms; the uniform
// model exists for sensitivity experiments (hole TTLs assume a latency
// upper bound, §4 footnote 3).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "sim/time.h"
#include "util/rng.h"

namespace nylon::net {

/// Strategy for per-message one-way delay.
class latency_model {
 public:
  virtual ~latency_model() = default;

  /// One-way delay for the next message; must be >= 0.
  [[nodiscard]] virtual sim::sim_time sample(util::rng& rng) = 0;

  /// Guaranteed lower bound of `sample` (the model's lookahead). The
  /// sharded engine sizes its conservative synchronization window from
  /// this, so it must be exact, not optimistic: sample() >= min_delay()
  /// always.
  [[nodiscard]] virtual sim::sim_time min_delay() const noexcept = 0;

  /// Latency classes: a model may draw from several distinct delay
  /// populations (a near/far mixture, say). Exposing them lets the
  /// sharded engine's adaptive lookahead take the min over the classes
  /// that are *live* — reachable with non-zero probability — instead of
  /// the all-time global floor. The default is one class covering the
  /// whole model. Invariant: min over live classes of class_min_delay
  /// == min_delay().
  [[nodiscard]] virtual std::size_t class_count() const noexcept {
    return 1;
  }
  /// Exact lower bound of samples drawn from class `c` (< class_count()).
  [[nodiscard]] virtual sim::sim_time class_min_delay(
      std::size_t c) const noexcept {
    (void)c;
    return min_delay();
  }
  /// True when class `c` can produce samples (non-zero weight). Dead
  /// classes are excluded from lookahead computations.
  [[nodiscard]] virtual bool class_live(std::size_t c) const noexcept {
    (void)c;
    return true;
  }
};

/// Constant delay (the paper's 50 ms).
class fixed_latency final : public latency_model {
 public:
  explicit fixed_latency(sim::sim_time delay);
  [[nodiscard]] sim::sim_time sample(util::rng& rng) override;
  [[nodiscard]] sim::sim_time min_delay() const noexcept override;

 private:
  sim::sim_time delay_;
};

/// Uniform delay in [lo, hi].
class uniform_latency final : public latency_model {
 public:
  uniform_latency(sim::sim_time lo, sim::sim_time hi);
  [[nodiscard]] sim::sim_time sample(util::rng& rng) override;
  [[nodiscard]] sim::sim_time min_delay() const noexcept override;

 private:
  sim::sim_time lo_;
  sim::sim_time hi_;
};

/// Log-normal delay, parameterized by its median and the log-space shape
/// `sigma` — the empirically observed shape of internet RTTs (a bulk of
/// short paths with a heavy slow tail). delay = median * exp(sigma * Z),
/// Z ~ N(0,1), rounded to whole milliseconds; `sigma` = 0 degrades to a
/// fixed delay at the median.
class lognormal_latency final : public latency_model {
 public:
  /// `median` > 0; `sigma` >= 0.
  lognormal_latency(sim::sim_time median, double sigma);
  [[nodiscard]] sim::sim_time sample(util::rng& rng) override;
  /// Samples are clamped to the 1 ms grid, so 1 ms is a hard floor.
  [[nodiscard]] sim::sim_time min_delay() const noexcept override;

 private:
  double median_ms_;
  double sigma_;
};

/// A finite mixture of fixed-delay classes: with probability
/// `weight[c] / sum(weights)` a message takes `delay[c]`. Models the
/// near/far split of real deployments (LAN-ish paths vs transcontinental
/// ones) and is the reference multi-class model for the adaptive-window
/// machinery: min_delay() is the min over *live* (weight > 0) classes
/// only, so a mixture whose short class is disabled legitimately
/// advertises the longer floor.
class mixture_latency final : public latency_model {
 public:
  struct component {
    sim::sim_time delay = 0;  ///< >= 0
    double weight = 0.0;      ///< >= 0; the mixture needs sum > 0
  };

  explicit mixture_latency(std::vector<component> components);
  [[nodiscard]] sim::sim_time sample(util::rng& rng) override;
  [[nodiscard]] sim::sim_time min_delay() const noexcept override;
  [[nodiscard]] std::size_t class_count() const noexcept override;
  [[nodiscard]] sim::sim_time class_min_delay(
      std::size_t c) const noexcept override;
  [[nodiscard]] bool class_live(std::size_t c) const noexcept override;

 private:
  std::vector<component> components_;
  double total_weight_ = 0.0;
  sim::sim_time live_min_ = 0;
};

/// Convenience factory for the paper's default.
[[nodiscard]] std::unique_ptr<latency_model> paper_latency();

}  // namespace nylon::net
