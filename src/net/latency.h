// Message latency models. The paper fixes latency at 50 ms; the uniform
// model exists for sensitivity experiments (hole TTLs assume a latency
// upper bound, §4 footnote 3).
#pragma once

#include <memory>

#include "sim/time.h"
#include "util/rng.h"

namespace nylon::net {

/// Strategy for per-message one-way delay.
class latency_model {
 public:
  virtual ~latency_model() = default;

  /// One-way delay for the next message; must be >= 0.
  [[nodiscard]] virtual sim::sim_time sample(util::rng& rng) = 0;

  /// Guaranteed lower bound of `sample` (the model's lookahead). The
  /// sharded engine sizes its conservative synchronization window from
  /// this, so it must be exact, not optimistic: sample() >= min_delay()
  /// always.
  [[nodiscard]] virtual sim::sim_time min_delay() const noexcept = 0;
};

/// Constant delay (the paper's 50 ms).
class fixed_latency final : public latency_model {
 public:
  explicit fixed_latency(sim::sim_time delay);
  [[nodiscard]] sim::sim_time sample(util::rng& rng) override;
  [[nodiscard]] sim::sim_time min_delay() const noexcept override;

 private:
  sim::sim_time delay_;
};

/// Uniform delay in [lo, hi].
class uniform_latency final : public latency_model {
 public:
  uniform_latency(sim::sim_time lo, sim::sim_time hi);
  [[nodiscard]] sim::sim_time sample(util::rng& rng) override;
  [[nodiscard]] sim::sim_time min_delay() const noexcept override;

 private:
  sim::sim_time lo_;
  sim::sim_time hi_;
};

/// Log-normal delay, parameterized by its median and the log-space shape
/// `sigma` — the empirically observed shape of internet RTTs (a bulk of
/// short paths with a heavy slow tail). delay = median * exp(sigma * Z),
/// Z ~ N(0,1), rounded to whole milliseconds; `sigma` = 0 degrades to a
/// fixed delay at the median.
class lognormal_latency final : public latency_model {
 public:
  /// `median` > 0; `sigma` >= 0.
  lognormal_latency(sim::sim_time median, double sigma);
  [[nodiscard]] sim::sim_time sample(util::rng& rng) override;
  /// Samples are clamped to the 1 ms grid, so 1 ms is a hard floor.
  [[nodiscard]] sim::sim_time min_delay() const noexcept override;

 private:
  double median_ms_;
  double sigma_;
};

/// Convenience factory for the paper's default.
[[nodiscard]] std::unique_ptr<latency_model> paper_latency();

}  // namespace nylon::net
