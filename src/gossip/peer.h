// Base class for all peer implementations (the Fig. 1 baseline, Nylon,
// and the ARRG-style cache baseline). Owns the view, the shuffle timer,
// identity, and shared instrumentation; concrete protocols implement the
// active (initiate) and passive (handle) paths.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gossip/messages.h"
#include "gossip/node_descriptor.h"
#include "gossip/peer_sampling_service.h"
#include "gossip/policies.h"
#include "gossip/view.h"
#include "net/transport.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace nylon::gossip {

/// Shared per-peer protocol counters (inspected by metrics and tests).
struct shuffle_stats {
  std::uint64_t initiated = 0;          ///< shuffles started
  std::uint64_t empty_view_skips = 0;   ///< no target available
  std::uint64_t no_route_skips = 0;     ///< Nylon: no RVP towards target
  std::uint64_t requests_received = 0;
  std::uint64_t responses_received = 0;
  std::uint64_t messages_forwarded = 0; ///< Nylon: relay/chain forwards
  std::uint64_t forward_drops = 0;      ///< Nylon: chain broken mid-way
};

/// Abstract peer: endpoint handler + sampling service + shuffle timer.
class peer : public net::endpoint_handler, public peer_sampling_service {
 public:
  /// `transport` and `rng` must outlive the peer.
  peer(net::transport& transport, util::rng& rng, protocol_config cfg);
  ~peer() override = default;
  peer(const peer&) = delete;
  peer& operator=(const peer&) = delete;

  /// Binds identity after transport::add_node assigned an id. Virtual so
  /// subclasses can size type-dependent state (Nylon's routing table is
  /// reserved by NAT class here — the type is unknown at construction).
  virtual void attach(net::node_id id);

  /// Schedules the periodic shuffle, first firing at `first_shuffle`
  /// (scenarios randomize the phase so peers do not fire in lockstep).
  void start(sim::sim_time first_shuffle);

  /// Cancels the shuffle timer (peer departure).
  void stop();

  /// Re-reads the advertised endpoint from the transport — the deployment
  /// equivalent of re-running STUN after the peer's NAT re-bound. Future
  /// self-descriptors carry the new endpoint; copies already gossiped
  /// stay stale until they age out.
  void refresh_self();

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] net::node_id id() const noexcept { return self_.id; }
  [[nodiscard]] const node_descriptor& self() const noexcept { return self_; }
  [[nodiscard]] const view& current_view() const noexcept { return view_; }
  [[nodiscard]] const protocol_config& config() const noexcept {
    return cfg_;
  }
  [[nodiscard]] const shuffle_stats& stats() const noexcept { return stats_; }

  /// Seeds the initial view (bootstrap). Subclasses may extend (Nylon
  /// also seeds its routing table).
  virtual void set_initial_view(std::vector<view_entry> seeds);

  // --- peer_sampling_service ------------------------------------------------
  [[nodiscard]] std::optional<node_descriptor> sample() override;
  [[nodiscard]] std::vector<node_descriptor> known_peers() const override;

  // --- endpoint_handler -----------------------------------------------------
  void on_datagram(const net::datagram& dgram) final;

 protected:
  /// Active thread body (Fig. 1 lines 1-7 / Fig. 6 lines 1-14).
  virtual void initiate_shuffle() = 0;
  /// Passive paths (message dispatch).
  virtual void handle_message(const net::datagram& dgram,
                              const gossip_message& msg) = 0;

  /// The buffer sent in a shuffle: every view entry plus a fresh
  /// self-descriptor (age 0). Subclasses decorate entries (Nylon stamps
  /// route TTLs) via `decorate_buffer`. Returns a reference to a
  /// per-peer scratch vector, valid until the next build_buffer call on
  /// this peer — make_message copies it into the wire block immediately,
  /// so no caller holds it across another shuffle.
  [[nodiscard]] const std::vector<view_entry>& build_buffer();

  /// Hook: adjust the outgoing buffer (default: no-op).
  virtual void decorate_buffer(std::vector<view_entry>& buffer);

  /// Fresh self entry (age 0).
  [[nodiscard]] view_entry self_entry() const;

  net::transport& transport_;
  util::rng& rng_;
  protocol_config cfg_;
  view view_;
  shuffle_stats stats_;

 private:
  node_descriptor self_;
  sim::event_handle timer_;
  bool running_ = false;
  /// Reused by build_buffer: a shuffle fires every period on every peer,
  /// and a fresh vector each time was the hottest allocation after the
  /// payloads themselves.
  std::vector<view_entry> buffer_scratch_;
};

}  // namespace nylon::gossip
