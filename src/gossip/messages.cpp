#include "gossip/messages.h"

#include <memory>

namespace nylon::gossip {

std::string_view to_string(message_kind k) noexcept {
  switch (k) {
    case message_kind::request: return "REQUEST";
    case message_kind::response: return "RESPONSE";
    case message_kind::open_hole: return "OPEN_HOLE";
    case message_kind::ping: return "PING";
    case message_kind::pong: return "PONG";
  }
  return "?";
}

std::size_t gossip_message::wire_size() const noexcept {
  return message_header_bytes + entries.size() * entry_wire_bytes;
}

std::string_view gossip_message::type_name() const noexcept {
  return to_string(kind);
}

net::payload_ptr make_message(gossip_message msg) {
  return std::make_shared<const gossip_message>(std::move(msg));
}

}  // namespace nylon::gossip
