#include "gossip/messages.h"

#include <memory>
#include <vector>

namespace nylon::gossip {

namespace {

/// Freelist allocator for message control blocks: every simulated packet
/// allocates one payload, so recycling the (single-size) blocks that
/// `allocate_shared` requests takes malloc/free off the send path. The
/// freelist is thread-local because each universe runs on one thread
/// (parallel runner: one universe per worker).
template <typename T>
struct message_pool_allocator {
  using value_type = T;

  message_pool_allocator() noexcept = default;
  template <typename U>
  message_pool_allocator(const message_pool_allocator<U>&) noexcept {}

  /// Blocks are all sizeof(T); freed ones are kept for reuse until
  /// thread exit.
  struct freelist {
    std::vector<void*> blocks;
    ~freelist() {
      for (void* b : blocks) ::operator delete(b);
    }
  };
  static freelist& pool() {
    static thread_local freelist list;
    return list;
  }

  T* allocate(std::size_t n) {
    if (n == 1) {
      freelist& list = pool();
      if (!list.blocks.empty()) {
        void* block = list.blocks.back();
        list.blocks.pop_back();
        return static_cast<T*>(block);
      }
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (n == 1) {
      pool().blocks.push_back(p);
      return;
    }
    ::operator delete(p);
  }

  template <typename U>
  bool operator==(const message_pool_allocator<U>&) const noexcept {
    return true;
  }
};

}  // namespace

std::string_view to_string(message_kind k) noexcept {
  switch (k) {
    case message_kind::request: return "REQUEST";
    case message_kind::response: return "RESPONSE";
    case message_kind::open_hole: return "OPEN_HOLE";
    case message_kind::ping: return "PING";
    case message_kind::pong: return "PONG";
  }
  return "?";
}

std::size_t gossip_message::wire_size() const noexcept {
  return message_header_bytes + entries.size() * entry_wire_bytes;
}

std::string_view gossip_message::type_name() const noexcept {
  return to_string(kind);
}

// The gossip protocol enum is value-aligned with the transport's
// accounting enum, so classification is a cast, not a mapping table.
static_assert(static_cast<int>(message_kind::request) ==
              static_cast<int>(net::message_kind::request));
static_assert(static_cast<int>(message_kind::response) ==
              static_cast<int>(net::message_kind::response));
static_assert(static_cast<int>(message_kind::open_hole) ==
              static_cast<int>(net::message_kind::open_hole));
static_assert(static_cast<int>(message_kind::ping) ==
              static_cast<int>(net::message_kind::ping));
static_assert(static_cast<int>(message_kind::pong) ==
              static_cast<int>(net::message_kind::pong));

net::message_kind gossip_message::wire_kind() const noexcept {
  return static_cast<net::message_kind>(kind);
}

std::shared_ptr<const gossip_message> make_message(gossip_message msg) {
  return std::allocate_shared<const gossip_message>(
      message_pool_allocator<gossip_message>{}, std::move(msg));
}

}  // namespace nylon::gossip
