#include "gossip/messages.h"

#include <algorithm>
#include <cstddef>

namespace nylon::gossip {

std::string_view to_string(message_kind k) noexcept {
  switch (k) {
    case message_kind::request: return "REQUEST";
    case message_kind::response: return "RESPONSE";
    case message_kind::open_hole: return "OPEN_HOLE";
    case message_kind::ping: return "PING";
    case message_kind::pong: return "PONG";
  }
  return "?";
}

std::size_t gossip_message::wire_size() const noexcept {
  return message_header_bytes + entries.size() * entry_wire_bytes;
}

std::string_view gossip_message::type_name() const noexcept {
  return to_string(kind);
}

// The gossip protocol enum is value-aligned with the transport's
// accounting enum, so classification is a cast, not a mapping table.
static_assert(static_cast<int>(message_kind::request) ==
              static_cast<int>(net::message_kind::request));
static_assert(static_cast<int>(message_kind::response) ==
              static_cast<int>(net::message_kind::response));
static_assert(static_cast<int>(message_kind::open_hole) ==
              static_cast<int>(net::message_kind::open_hole));
static_assert(static_cast<int>(message_kind::ping) ==
              static_cast<int>(net::message_kind::ping));
static_assert(static_cast<int>(message_kind::pong) ==
              static_cast<int>(net::message_kind::pong));

net::message_kind gossip_message::wire_kind() const noexcept {
  return static_cast<net::message_kind>(kind);
}

net::arena_ref<const gossip_message> make_message(const gossip_message& msg) {
  // One arena block: [header | gossip_message | view_entry tail]. The
  // tail starts at sizeof(gossip_message), which is a multiple of the
  // message's (and so the entry's) alignment.
  static_assert(alignof(view_entry) <= alignof(gossip_message));
  static_assert(std::is_trivially_copyable_v<view_entry>);
  const std::size_t tail_bytes = msg.entries.size() * sizeof(view_entry);
  void* memory =
      net::arena_detail::allocate(sizeof(gossip_message) + tail_bytes);
  auto* wire = ::new (memory) gossip_message(msg);
  auto* tail = reinterpret_cast<view_entry*>(static_cast<std::byte*>(memory) +
                                             sizeof(gossip_message));
  std::copy(msg.entries.begin(), msg.entries.end(), tail);
  wire->entries = {tail, msg.entries.size()};
  return net::arena_ref<const gossip_message>::adopt(wire);
}

}  // namespace nylon::gossip
