// The NAT-oblivious baseline of §3: a literal implementation of Fig. 1.
// It addresses gossip targets by their advertised endpoint and lets the
// network do what it will — which is exactly how it degrades behind NATs.
#pragma once

#include "gossip/peer.h"
#include "util/flat_hash.h"

namespace nylon::gossip {

/// Generic peer-sampling peer (Fig. 1), configurable along the three
/// dimensions of §3 via `protocol_config`.
class generic_peer : public peer {
 public:
  generic_peer(net::transport& transport, util::rng& rng,
               protocol_config cfg)
      : peer(transport, rng, cfg) {
    // A handful of in-flight shuffles at most; pre-sizing keeps the
    // map's growth out of obs `hash_rehashes`.
    pending_.reserve(16);
  }

 protected:
  void initiate_shuffle() override;
  void handle_message(const net::datagram& dgram,
                      const gossip_message& msg) override;

 private:
  /// Outstanding REQUESTs, so a later RESPONSE can be merged with the
  /// right `sent` set (swapper policy needs it). The sent buffer is
  /// shared with the wire message instead of copied. Entries are pruned
  /// once they are `pending_ttl_periods` shuffle periods old.
  struct pending_request {
    net::arena_ref<const gossip_message> sent_msg;
    sim::sim_time sent_at = 0;
  };
  static constexpr int pending_ttl_periods = 10;

  void prune_pending(sim::sim_time now);

  util::flat_hash_map<net::node_id, pending_request> pending_;
};

}  // namespace nylon::gossip
