// The NAT-oblivious baseline of §3: a literal implementation of Fig. 1.
// It addresses gossip targets by their advertised endpoint and lets the
// network do what it will — which is exactly how it degrades behind NATs.
#pragma once

#include <unordered_map>

#include "gossip/peer.h"

namespace nylon::gossip {

/// Generic peer-sampling peer (Fig. 1), configurable along the three
/// dimensions of §3 via `protocol_config`.
class generic_peer : public peer {
 public:
  using peer::peer;

 protected:
  void initiate_shuffle() override;
  void handle_message(const net::datagram& dgram,
                      const gossip_message& msg) override;

 private:
  /// Outstanding REQUEST buffers, so a later RESPONSE can be merged with
  /// the right `sent` set (swapper policy needs it). Entries are pruned
  /// once they are `pending_ttl_periods` shuffle periods old.
  struct pending_request {
    std::vector<view_entry> sent;
    sim::sim_time sent_at = 0;
  };
  static constexpr int pending_ttl_periods = 10;

  void prune_pending(sim::sim_time now);

  std::unordered_map<net::node_id, pending_request> pending_;
};

}  // namespace nylon::gossip
