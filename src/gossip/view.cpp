#include "gossip/view.h"

#include <algorithm>
#include <unordered_set>

#include "util/contracts.h"

namespace nylon::gossip {

view::view(std::size_t capacity) : capacity_(capacity) {
  NYLON_EXPECTS(capacity > 0);
  entries_.reserve(capacity + capacity);  // headroom during merges
}

bool view::contains(net::node_id id) const noexcept {
  return find(id) != nullptr;
}

const view_entry* view::find(net::node_id id) const noexcept {
  for (const view_entry& e : entries_) {
    if (e.peer.id == id) return &e;
  }
  return nullptr;
}

bool view::remove(net::node_id id) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].peer.id == id) {
      remove_at(i);
      return true;
    }
  }
  return false;
}

void view::remove_at(std::size_t index) {
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(index));
}

void view::increase_age() noexcept {
  for (view_entry& e : entries_) ++e.age;
}

const view_entry& view::oldest() const {
  NYLON_EXPECTS(!entries_.empty());
  const view_entry* best = &entries_.front();
  for (const view_entry& e : entries_) {
    if (e.age > best->age) best = &e;
  }
  return *best;
}

const view_entry& view::random(util::rng& rng) const {
  NYLON_EXPECTS(!entries_.empty());
  return entries_[rng.index(entries_.size())];
}

const view_entry& view::select(selection_policy policy, util::rng& rng) const {
  return policy == selection_policy::tail ? oldest() : random(rng);
}

void view::assign(std::vector<view_entry> entries, net::node_id self) {
  NYLON_EXPECTS(entries.size() <= capacity_);
  std::unordered_set<net::node_id> seen;
  for (const view_entry& e : entries) {
    NYLON_EXPECTS(e.peer.id != self);
    NYLON_EXPECTS(seen.insert(e.peer.id).second);
  }
  entries_ = std::move(entries);
}

void view::merge(std::span<const view_entry> received,
                 std::span<const view_entry> sent, merge_policy policy,
                 net::node_id self, util::rng& rng) {
  for (const view_entry& r : received) {
    if (r.peer.id == self) continue;
    bool found = false;
    for (view_entry& mine : entries_) {
      if (mine.peer.id != r.peer.id) continue;
      // Duplicate: keep the fresher information (lower age). The fresher
      // copy also carries the more recent address and route TTL.
      if (r.age < mine.age) mine = r;
      found = true;
      break;
    }
    if (!found) entries_.push_back(r);
  }
  truncate(policy, received, sent, rng);
  NYLON_ENSURES(entries_.size() <= capacity_);
}

void view::truncate(merge_policy policy, std::span<const view_entry> received,
                    std::span<const view_entry> sent, util::rng& rng) {
  if (entries_.size() <= capacity_) return;

  switch (policy) {
    case merge_policy::blind:
      while (entries_.size() > capacity_) {
        remove_at(rng.index(entries_.size()));
      }
      return;

    case merge_policy::healer:
      while (entries_.size() > capacity_) {
        std::size_t victim = 0;
        for (std::size_t i = 1; i < entries_.size(); ++i) {
          if (entries_[i].age > entries_[victim].age) victim = i;
        }
        remove_at(victim);
      }
      return;

    case merge_policy::swapper: {
      // Survivors are the entries received from the partner: first drop
      // what we handed over (sent and not received back), then any other
      // pre-existing entry, at random within each class.
      std::unordered_set<net::node_id> received_ids;
      for (const view_entry& r : received) received_ids.insert(r.peer.id);
      std::unordered_set<net::node_id> sent_ids;
      for (const view_entry& s : sent) sent_ids.insert(s.peer.id);

      const auto drop_from_class = [&](auto&& in_class) {
        while (entries_.size() > capacity_) {
          std::vector<std::size_t> candidates;
          for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (in_class(entries_[i])) candidates.push_back(i);
          }
          if (candidates.empty()) return;
          remove_at(candidates[rng.index(candidates.size())]);
        }
      };
      drop_from_class([&](const view_entry& e) {
        return sent_ids.contains(e.peer.id) &&
               !received_ids.contains(e.peer.id);
      });
      drop_from_class([&](const view_entry& e) {
        return !received_ids.contains(e.peer.id);
      });
      // If received alone overflows the capacity, fall back to random.
      while (entries_.size() > capacity_) {
        remove_at(rng.index(entries_.size()));
      }
      return;
    }
  }
}

}  // namespace nylon::gossip
