#include "gossip/view.h"

#include <algorithm>
#include <unordered_set>

#include "util/contracts.h"
#include "util/flat_hash.h"

namespace nylon::gossip {

view::view(std::size_t capacity) : capacity_(capacity) {
  NYLON_EXPECTS(capacity > 0);
  entries_.reserve(capacity + capacity);  // headroom during merges
}

bool view::contains(net::node_id id) const noexcept {
  return find(id) != nullptr;
}

const view_entry* view::find(net::node_id id) const noexcept {
  for (const view_entry& e : entries_) {
    if (e.peer.id == id) return &e;
  }
  return nullptr;
}

bool view::remove(net::node_id id) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].peer.id == id) {
      remove_at(i);
      return true;
    }
  }
  return false;
}

void view::remove_at(std::size_t index) {
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(index));
}

void view::increase_age() noexcept {
  for (view_entry& e : entries_) ++e.age;
}

const view_entry& view::oldest() const {
  NYLON_EXPECTS(!entries_.empty());
  const view_entry* best = &entries_.front();
  for (const view_entry& e : entries_) {
    if (e.age > best->age) best = &e;
  }
  return *best;
}

const view_entry& view::random(util::rng& rng) const {
  NYLON_EXPECTS(!entries_.empty());
  return entries_[rng.index(entries_.size())];
}

const view_entry& view::select(selection_policy policy, util::rng& rng) const {
  return policy == selection_policy::tail ? oldest() : random(rng);
}

void view::assign(std::vector<view_entry> entries, net::node_id self) {
  NYLON_EXPECTS(entries.size() <= capacity_);
  std::unordered_set<net::node_id> seen;
  for (const view_entry& e : entries) {
    NYLON_EXPECTS(e.peer.id != self);
    NYLON_EXPECTS(seen.insert(e.peer.id).second);
  }
  entries_ = std::move(entries);
}

std::size_t view::index_probe(net::node_id id) const noexcept {
  const std::size_t mask = index_.size() - 1;
  std::size_t i = util::mix_hash{}(id) & mask;
  while (index_[i].epoch == epoch_) {
    if (index_[i].id == id) return i;
    i = (i + 1) & mask;
  }
  return i;  // first free slot of the probe chain
}

void view::index_insert(net::node_id id, std::uint32_t pos) noexcept {
  id_slot& s = index_[index_probe(id)];
  s.id = id;
  s.pos = pos;
  s.epoch = epoch_;
}

void view::merge(std::span<const view_entry> received,
                 std::span<const view_entry> sent, merge_policy policy,
                 net::node_id self, util::rng& rng) {
  // Size the index for every entry both sides could contribute, at ≤ 50%
  // load (power of two for mask probing).
  std::size_t want = 2 * (entries_.size() + received.size()) + 2;
  if (index_.size() < want) {
    std::size_t capacity = 16;
    while (capacity < want) capacity *= 2;
    index_.assign(capacity, id_slot{});
    epoch_ = 0;
  }
  ++epoch_;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    index_insert(entries_[i].peer.id, static_cast<std::uint32_t>(i));
  }

  for (const view_entry& r : received) {
    if (r.peer.id == self) continue;
    const std::size_t slot = index_probe(r.peer.id);
    if (index_[slot].epoch == epoch_) {
      // Duplicate: keep the fresher information (lower age). The fresher
      // copy also carries the more recent address and route TTL.
      view_entry& mine = entries_[index_[slot].pos];
      if (r.age < mine.age) mine = r;
    } else {
      entries_.push_back(r);
      index_[slot] = id_slot{r.peer.id,
                             static_cast<std::uint32_t>(entries_.size() - 1),
                             epoch_};
    }
  }
  truncate(policy, received, sent, rng);
  NYLON_ENSURES(entries_.size() <= capacity_);
}

void view::truncate(merge_policy policy, std::span<const view_entry> received,
                    std::span<const view_entry> sent, util::rng& rng) {
  if (entries_.size() <= capacity_) return;

  switch (policy) {
    case merge_policy::blind:
      while (entries_.size() > capacity_) {
        remove_at(rng.index(entries_.size()));
      }
      return;

    case merge_policy::healer: {
      const std::size_t n = entries_.size();
      if (n > 64) {  // huge views: the straightforward O(n·k) loop
        while (entries_.size() > capacity_) {
          std::size_t victim = 0;
          for (std::size_t i = 1; i < entries_.size(); ++i) {
            if (entries_[i].age > entries_[victim].age) victim = i;
          }
          remove_at(victim);
        }
        return;
      }
      // Equivalent to repeatedly removing the max-age entry (ties: first
      // in order): the victims are the k largest by (age desc, index asc)
      // and survivors keep their relative order, so victim selection and
      // removal batch into one partial sort + one compaction instead of
      // k full scans and k vector erases.
      const std::size_t k = n - capacity_;
      std::uint64_t ranked[64];
      for (std::size_t i = 0; i < n; ++i) {
        // Sort key: age descending, then index ascending.
        ranked[i] = (static_cast<std::uint64_t>(~entries_[i].age) << 32) | i;
      }
      std::nth_element(ranked, ranked + k - 1, ranked + n);
      std::uint64_t victim_mask = 0;
      for (std::size_t i = 0; i < k; ++i) {
        victim_mask |= std::uint64_t{1} << (ranked[i] & 0xffffffffu);
      }
      std::size_t out = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if ((victim_mask >> i) & 1) continue;
        if (out != i) entries_[out] = std::move(entries_[i]);
        ++out;
      }
      entries_.resize(out);
      return;
    }

    case merge_policy::swapper: {
      // Survivors are the entries received from the partner: first drop
      // what we handed over (sent and not received back), then any other
      // pre-existing entry, at random within each class.
      std::unordered_set<net::node_id> received_ids;
      for (const view_entry& r : received) received_ids.insert(r.peer.id);
      std::unordered_set<net::node_id> sent_ids;
      for (const view_entry& s : sent) sent_ids.insert(s.peer.id);

      // The candidate list is built once per class and maintained under
      // removal (the original rebuilt it per removal — O(n²) per merge).
      // Candidates stay in ascending entry order and the rng is consulted
      // with the same sequence of bounds, so removals are bit-identical.
      std::vector<std::size_t> candidates;
      const auto drop_from_class = [&](auto&& in_class) {
        candidates.clear();
        for (std::size_t i = 0; i < entries_.size(); ++i) {
          if (in_class(entries_[i])) candidates.push_back(i);
        }
        while (entries_.size() > capacity_ && !candidates.empty()) {
          const std::size_t pick = rng.index(candidates.size());
          const std::size_t victim = candidates[pick];
          remove_at(victim);
          candidates.erase(candidates.begin() +
                           static_cast<std::ptrdiff_t>(pick));
          // Erasing the victim shifted every later entry down one.
          for (std::size_t& c : candidates) {
            if (c > victim) --c;
          }
        }
      };
      drop_from_class([&](const view_entry& e) {
        return sent_ids.contains(e.peer.id) &&
               !received_ids.contains(e.peer.id);
      });
      drop_from_class([&](const view_entry& e) {
        return !received_ids.contains(e.peer.id);
      });
      // If received alone overflows the capacity, fall back to random.
      while (entries_.size() > capacity_) {
        remove_at(rng.index(entries_.size()));
      }
      return;
    }
  }
}

}  // namespace nylon::gossip
