// Bootstrap as in §5: every peer's initial view is filled with randomly
// chosen *public* peers, so the initial graph is connected and natted
// peers become known only through gossip itself.
#pragma once

#include <span>

#include "gossip/peer.h"
#include "util/rng.h"

namespace nylon::gossip {

/// Seeds each peer's view with up to view_size distinct random public
/// peers (never itself). Falls back to sampling among all peers if the
/// population contains no public peer at all (degenerate configurations
/// used in tests). Also used after churn to re-seed joining peers.
void bootstrap_with_public_peers(std::span<peer* const> peers,
                                 util::rng& rng);

}  // namespace nylon::gossip
