// Wire messages shared by the baseline protocol (REQUEST/RESPONSE, Fig. 1)
// and Nylon (plus OPEN_HOLE/PING/PONG, Fig. 6). One concrete payload type
// keeps dispatch trivial and wire-size accounting in one place.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "gossip/node_descriptor.h"
#include "gossip/view.h"
#include "net/message.h"
#include "net/payload_arena.h"

namespace nylon::gossip {

/// Protocol message kinds (Figs. 1 and 6).
enum class message_kind : std::uint8_t {
  request,    ///< shuffle request carrying the initiator's buffer
  response,   ///< shuffle response carrying the target's buffer
  open_hole,  ///< Nylon: hole-punch trigger, forwarded along the RVP chain
  ping,       ///< Nylon: opens the sender's own NAT hole towards dest
  pong,       ///< Nylon: confirms the hole is open
};

[[nodiscard]] std::string_view to_string(message_kind k) noexcept;

/// The single concrete payload. Fields unused by a kind stay default.
///
///  * `sender` — the immediate hop that emitted this datagram (peers use
///    it to refresh direct routes: update_next_RVP(p, p)).
///  * `src`    — the logical originator (shuffle initiator / punch
///    requester); fixed while the message is relayed.
///  * `dest`   — the logical final destination; relays forward until
///    dest == self.
///  * `entries` — the view buffer (REQUEST/RESPONSE only). A *view*: on
///    a stack-built message it points at whatever the builder filled
///    (the peer's buffer scratch, a sibling message's entries); on the
///    wire copy built by `make_message` it points at the entry tail
///    co-allocated right behind the message in its arena block.
///  * `hops`   — forwarding count, incremented at every RVP; the receiver
///    of a chained message reads the RVP-chain length off it (Fig. 9).
class gossip_message final : public net::payload {
 public:
  message_kind kind = message_kind::request;
  node_descriptor sender;
  node_descriptor src;
  node_descriptor dest;
  std::span<const view_entry> entries;
  std::uint8_t hops = 0;

  /// kind (1) + 3 descriptors + entry count (2) + hops (1) + entries.
  [[nodiscard]] std::size_t wire_size() const noexcept override;
  [[nodiscard]] std::string_view type_name() const noexcept override;
  [[nodiscard]] net::message_kind wire_kind() const noexcept override;
};

/// Fixed per-message overhead (excluding entries and the UDP/IP header).
inline constexpr std::size_t message_header_bytes =
    1 + 3 * descriptor_wire_bytes + 2 + 1;

/// Builds the immutable wire payload (what transport::send expects):
/// one arena block holding the message fields and a copy of
/// `msg.entries` in its tail, with `entries` re-pointed at that copy.
/// Returns the concrete type so senders can keep referencing the
/// message they sent (e.g. its `entries` as a pending-request buffer)
/// without re-copying; converts implicitly to net::payload_ptr.
[[nodiscard]] net::arena_ref<const gossip_message> make_message(
    const gossip_message& msg);

}  // namespace nylon::gossip
