#include "gossip/generic_peer.h"

#include <utility>

namespace nylon::gossip {

void generic_peer::initiate_shuffle() {
  // Fig. 1, lines 1-7.
  if (view_.empty()) {
    ++stats_.empty_view_skips;
    return;
  }
  ++stats_.initiated;
  const node_descriptor target = view_.select(cfg_.selection, rng_).peer;

  gossip_message msg;
  msg.kind = message_kind::request;
  msg.sender = self();
  msg.src = self();
  msg.dest = target;
  msg.entries = build_buffer();
  net::arena_ref<const gossip_message> body = make_message(msg);
  transport_.send(id(), target.addr, body);

  const sim::sim_time now = transport_.now_for(id());
  if (cfg_.propagation == propagation_policy::pushpull) {
    pending_.insert_or_get(target.id) =
        pending_request{std::move(body), now};
    prune_pending(now);
  }
  view_.increase_age();
}

void generic_peer::handle_message(const net::datagram& dgram,
                                  const gossip_message& msg) {
  switch (msg.kind) {
    case message_kind::request: {
      // Fig. 1, lines 8-12. The RESPONSE goes back to the datagram's
      // (post-NAT) source endpoint, like a real UDP reply.
      ++stats_.requests_received;
      std::span<const view_entry> sent;
      net::arena_ref<const gossip_message> reply;  // keeps `sent` alive
      if (cfg_.propagation == propagation_policy::pushpull) {
        gossip_message response;
        response.kind = message_kind::response;
        response.sender = self();
        response.src = self();
        response.dest = msg.src;
        response.entries = build_buffer();
        reply = make_message(response);
        transport_.send(id(), dgram.source, reply);
        sent = reply->entries;
      }
      view_.merge(msg.entries, sent, cfg_.merge, id(), rng_);
      view_.increase_age();
      return;
    }
    case message_kind::response: {
      // Fig. 1, lines 5-6 (asynchronous arrival).
      ++stats_.responses_received;
      std::span<const view_entry> sent;
      net::arena_ref<const gossip_message> request;  // keeps `sent` alive
      if (pending_request* pending = pending_.find(msg.sender.id)) {
        request = std::move(pending->sent_msg);
        pending_.erase(msg.sender.id);
        if (request) sent = request->entries;
      }
      view_.merge(msg.entries, sent, cfg_.merge, id(), rng_);
      return;
    }
    case message_kind::open_hole:
    case message_kind::ping:
    case message_kind::pong:
      // The NAT-oblivious baseline never emits these; ignore.
      return;
  }
}

void generic_peer::prune_pending(sim::sim_time now) {
  const sim::sim_time horizon =
      now - pending_ttl_periods * cfg_.shuffle_period;
  pending_.erase_if([&](net::node_id, const pending_request& item) {
    return item.sent_at < horizon;
  });
}

}  // namespace nylon::gossip
