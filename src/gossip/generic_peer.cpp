#include "gossip/generic_peer.h"

#include <utility>

namespace nylon::gossip {

void generic_peer::initiate_shuffle() {
  // Fig. 1, lines 1-7.
  if (view_.empty()) {
    ++stats_.empty_view_skips;
    return;
  }
  ++stats_.initiated;
  const node_descriptor target = view_.select(cfg_.selection, rng_).peer;
  std::vector<view_entry> buffer = build_buffer();

  gossip_message msg;
  msg.kind = message_kind::request;
  msg.sender = self();
  msg.src = self();
  msg.dest = target;
  msg.entries = buffer;
  transport_.send(id(), target.addr, make_message(std::move(msg)));

  const sim::sim_time now = transport_.scheduler().now();
  if (cfg_.propagation == propagation_policy::pushpull) {
    pending_[target.id] = pending_request{std::move(buffer), now};
    prune_pending(now);
  }
  view_.increase_age();
}

void generic_peer::handle_message(const net::datagram& dgram,
                                  const gossip_message& msg) {
  switch (msg.kind) {
    case message_kind::request: {
      // Fig. 1, lines 8-12. The RESPONSE goes back to the datagram's
      // (post-NAT) source endpoint, like a real UDP reply.
      ++stats_.requests_received;
      std::vector<view_entry> sent;
      if (cfg_.propagation == propagation_policy::pushpull) {
        sent = build_buffer();
        gossip_message response;
        response.kind = message_kind::response;
        response.sender = self();
        response.src = self();
        response.dest = msg.src;
        response.entries = sent;
        transport_.send(id(), dgram.source, make_message(std::move(response)));
      }
      view_.merge(msg.entries, sent, cfg_.merge, id(), rng_);
      view_.increase_age();
      return;
    }
    case message_kind::response: {
      // Fig. 1, lines 5-6 (asynchronous arrival).
      ++stats_.responses_received;
      std::vector<view_entry> sent;
      const auto pending = pending_.find(msg.sender.id);
      if (pending != pending_.end()) {
        sent = std::move(pending->second.sent);
        pending_.erase(pending);
      }
      view_.merge(msg.entries, sent, cfg_.merge, id(), rng_);
      return;
    }
    case message_kind::open_hole:
    case message_kind::ping:
    case message_kind::pong:
      // The NAT-oblivious baseline never emits these; ignore.
      return;
  }
}

void generic_peer::prune_pending(sim::sim_time now) {
  const sim::sim_time horizon =
      now - pending_ttl_periods * cfg_.shuffle_period;
  std::erase_if(pending_, [&](const auto& item) {
    return item.second.sent_at < horizon;
  });
}

}  // namespace nylon::gossip
