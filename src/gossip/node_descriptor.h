// A peer descriptor as it travels inside gossip messages: identity, the
// public endpoint to contact it on, and its NAT type (which peers learn
// via STUN in deployments — §2.2).
#pragma once

#include <compare>
#include <cstddef>

#include "nat/nat_type.h"
#include "net/address.h"
#include "net/node_id.h"

namespace nylon::gossip {

/// Identity + contact information for one peer.
struct node_descriptor {
  net::node_id id = net::nil_node;
  net::endpoint addr;       ///< advertised public endpoint (port 0 for SYM)
  nat::nat_type type = nat::nat_type::open;

  auto operator<=>(const node_descriptor&) const = default;
};

/// True when the descriptor refers to a real node.
[[nodiscard]] constexpr bool valid(const node_descriptor& d) noexcept {
  return d.id != net::nil_node;
}

/// Serialized size: id (4) + IPv4 (4) + port (2) + NAT type (1) + pad (1).
inline constexpr std::size_t descriptor_wire_bytes = 12;

}  // namespace nylon::gossip
