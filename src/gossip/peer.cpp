#include "gossip/peer.h"

#include "util/contracts.h"

namespace nylon::gossip {

peer::peer(net::transport& transport, util::rng& rng, protocol_config cfg)
    : transport_(transport), rng_(rng), cfg_(cfg), view_(cfg.view_size) {
  NYLON_EXPECTS(cfg.view_size > 0);
  NYLON_EXPECTS(cfg.shuffle_period > 0);
}

void peer::attach(net::node_id id) {
  NYLON_EXPECTS(self_.id == net::nil_node);
  self_ = node_descriptor{id, transport_.advertised_endpoint(id),
                          transport_.type_of(id)};
}

void peer::start(sim::sim_time first_shuffle) {
  NYLON_EXPECTS(self_.id != net::nil_node);
  NYLON_EXPECTS(!running_);
  running_ = true;
  // The peer's own shard scheduler in shard mode (the universe scheduler
  // otherwise): a peer's timer chain must live where its events run.
  timer_ = transport_.scheduler_for(self_.id)
               .every(first_shuffle, cfg_.shuffle_period,
                      [this] { initiate_shuffle(); });
}

void peer::stop() {
  timer_.cancel();
  running_ = false;
}

void peer::refresh_self() {
  NYLON_EXPECTS(self_.id != net::nil_node);
  self_.addr = transport_.advertised_endpoint(self_.id);
  // NAT *type* migration changes this too; a plain rebind re-reads the
  // same value (no behavioural change there).
  self_.type = transport_.type_of(self_.id);
}

void peer::set_initial_view(std::vector<view_entry> seeds) {
  view_.assign(std::move(seeds), self_.id);
}

std::optional<node_descriptor> peer::sample() {
  if (view_.empty()) return std::nullopt;
  return view_.random(rng_).peer;
}

std::vector<node_descriptor> peer::known_peers() const {
  std::vector<node_descriptor> peers;
  peers.reserve(view_.size());
  for (const view_entry& e : view_.entries()) peers.push_back(e.peer);
  return peers;
}

void peer::on_datagram(const net::datagram& dgram) {
  // Every protocol payload reports a non-`other` wire kind, and only
  // gossip_message does so, which makes the downcast safe without the
  // dynamic_cast that used to run once per delivered packet.
  NYLON_EXPECTS(dgram.body->wire_kind() != net::message_kind::other);
  const auto* msg = static_cast<const gossip_message*>(dgram.body);
  handle_message(dgram, *msg);
}

const std::vector<view_entry>& peer::build_buffer() {
  buffer_scratch_.clear();
  buffer_scratch_.reserve(view_.size() + 1);
  buffer_scratch_.push_back(self_entry());
  for (const view_entry& e : view_.entries()) buffer_scratch_.push_back(e);
  decorate_buffer(buffer_scratch_);
  return buffer_scratch_;
}

void peer::decorate_buffer(std::vector<view_entry>& /*buffer*/) {}

view_entry peer::self_entry() const {
  return view_entry{self_, /*age=*/0, /*route_ttl=*/0};
}

}  // namespace nylon::gossip
