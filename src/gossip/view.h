// The partial view each peer maintains: a bounded set of descriptors with
// ages, plus the merge-and-truncate operation at the heart of Fig. 1.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gossip/node_descriptor.h"
#include "gossip/policies.h"
#include "sim/time.h"
#include "util/rng.h"

namespace nylon::gossip {

/// One view slot. `route_ttl` is Nylon's advertised route freshness (ms);
/// the NAT-oblivious baselines carry 0 and ignore it.
struct view_entry {
  node_descriptor peer;
  std::uint32_t age = 0;
  sim::sim_time route_ttl = 0;
};

/// Serialized entry: descriptor (12) + age (2) + route TTL (2).
inline constexpr std::size_t entry_wire_bytes = descriptor_wire_bytes + 4;

/// Bounded partial view. Entries are unique by peer id and never include
/// the owner. Iteration order is deterministic (insertion order, with
/// removals compacting), which keeps simulations reproducible.
class view {
 public:
  /// `capacity` > 0 (the paper's c = 15 or 27).
  explicit view(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] const std::vector<view_entry>& entries() const noexcept {
    return entries_;
  }

  [[nodiscard]] bool contains(net::node_id id) const noexcept;
  /// Pointer into the view, or nullptr. Invalidated by mutations.
  [[nodiscard]] const view_entry* find(net::node_id id) const noexcept;

  /// Removes the entry for `id` if present; returns true if removed.
  bool remove(net::node_id id);

  /// Ages every entry by one shuffle period (Fig. 1, lines 7/12).
  void increase_age() noexcept;

  /// The entry with maximal age (ties: first in order). Requires !empty().
  [[nodiscard]] const view_entry& oldest() const;

  /// A uniformly random entry. Requires !empty().
  [[nodiscard]] const view_entry& random(util::rng& rng) const;

  /// Target selection per policy (Fig. 1, line 2). Requires !empty().
  [[nodiscard]] const view_entry& select(selection_policy policy,
                                         util::rng& rng) const;

  /// Replaces contents (bootstrap). Entries must be unique, not `self`,
  /// and fit capacity.
  void assign(std::vector<view_entry> entries, net::node_id self);

  /// Fig. 1's merge-and-truncate: folds `received` into the view (keeping
  /// the fresher duplicate, never `self`), then truncates to capacity
  /// according to `policy`. `sent` is the buffer this peer sent in the
  /// same exchange (used by swapper to discard handed-over entries first).
  void merge(std::span<const view_entry> received,
             std::span<const view_entry> sent, merge_policy policy,
             net::node_id self, util::rng& rng);

 private:
  void truncate(merge_policy policy, std::span<const view_entry> received,
                std::span<const view_entry> sent, util::rng& rng);
  void remove_at(std::size_t index);

  /// Epoch-stamped open-addressed id→position index, rebuilt O(|view|)
  /// at each merge (no clearing: stale epochs read as absent). Turns the
  /// merge's duplicate detection from O(|received|·|view|) id scans into
  /// O(|received|) probes.
  struct id_slot {
    net::node_id id = 0;
    std::uint32_t pos = 0;
    std::uint32_t epoch = 0;
  };
  [[nodiscard]] std::size_t index_probe(net::node_id id) const noexcept;
  void index_insert(net::node_id id, std::uint32_t pos) noexcept;

  std::size_t capacity_;
  std::vector<view_entry> entries_;
  std::vector<id_slot> index_;  ///< sized at merge start (power of two)
  std::uint32_t epoch_ = 0;
};

}  // namespace nylon::gossip
