#include "gossip/bootstrap.h"

#include <vector>

#include "util/contracts.h"

namespace nylon::gossip {

void bootstrap_with_public_peers(std::span<peer* const> peers,
                                 util::rng& rng) {
  std::vector<const peer*> seeds;
  seeds.reserve(peers.size());
  for (const peer* p : peers) {
    NYLON_EXPECTS(p != nullptr);
    if (!nat::is_natted(p->self().type)) seeds.push_back(p);
  }
  const bool no_public = seeds.empty();
  if (no_public) {
    seeds.assign(peers.begin(), peers.end());
  }

  for (peer* p : peers) {
    const std::size_t want = p->config().view_size;
    // Sample distinct seed indices, skipping self.
    std::vector<std::size_t> order = rng.sample_indices(
        seeds.size(), std::min(seeds.size(), want + 1));
    std::vector<view_entry> initial;
    initial.reserve(want);
    for (const std::size_t idx : order) {
      if (initial.size() == want) break;
      if (seeds[idx]->id() == p->id()) continue;
      initial.push_back(view_entry{seeds[idx]->self(), /*age=*/0,
                                   /*route_ttl=*/0});
    }
    p->set_initial_view(std::move(initial));
  }
}

}  // namespace nylon::gossip
