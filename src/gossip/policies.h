// The three configuration dimensions of the generic gossip peer-sampling
// protocol (Fig. 1 and §3), after Jelasity et al. [11].
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/time.h"

namespace nylon::gossip {

/// How the gossip target is picked from the view.
enum class selection_policy : std::uint8_t {
  rand,  ///< uniformly random view entry
  tail,  ///< the oldest view entry
};

/// Who sends its view during a shuffle.
enum class propagation_policy : std::uint8_t {
  push,      ///< only the initiator sends its view
  pushpull,  ///< both sides exchange views (used throughout the paper)
};

/// Which entries survive truncation after a merge.
enum class merge_policy : std::uint8_t {
  blind,    ///< random survivors
  healer,   ///< youngest survivors
  swapper,  ///< entries received from the partner survive
};

[[nodiscard]] std::string_view to_string(selection_policy p) noexcept;
[[nodiscard]] std::string_view to_string(propagation_policy p) noexcept;
[[nodiscard]] std::string_view to_string(merge_policy p) noexcept;

/// Full configuration of a peer-sampling protocol instance.
struct protocol_config {
  std::size_t view_size = 15;                         ///< paper default
  selection_policy selection = selection_policy::rand;
  propagation_policy propagation = propagation_policy::pushpull;
  merge_policy merge = merge_policy::healer;
  sim::sim_time shuffle_period = sim::seconds(5);     ///< paper default
};

/// "pushpull,rand,healer"-style label used in figures and tables.
[[nodiscard]] std::string config_label(const protocol_config& cfg);

/// The six §3 baseline configurations (pushpull x {rand,tail} x
/// {blind,healer,swapper}) with the given view size.
[[nodiscard]] constexpr std::uint8_t baseline_config_count() noexcept {
  return 6;
}
[[nodiscard]] protocol_config baseline_config(std::uint8_t index,
                                              std::size_t view_size);

}  // namespace nylon::gossip
