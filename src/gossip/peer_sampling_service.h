// The service-level API of a peer-sampling protocol: applications built on
// top (dissemination, aggregation, overlay construction) only ever ask for
// random peers — exactly the abstraction of Jelasity et al. [11].
#pragma once

#include <optional>
#include <vector>

#include "gossip/node_descriptor.h"

namespace nylon::gossip {

/// What applications see of the protocol underneath.
class peer_sampling_service {
 public:
  virtual ~peer_sampling_service() = default;

  /// A (hopefully uniformly) random peer from the current sample, or
  /// nullopt when the local view is empty.
  [[nodiscard]] virtual std::optional<node_descriptor> sample() = 0;

  /// Snapshot of the peers currently known locally.
  [[nodiscard]] virtual std::vector<node_descriptor> known_peers() const = 0;
};

}  // namespace nylon::gossip
