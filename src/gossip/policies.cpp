#include "gossip/policies.h"

#include "util/contracts.h"

namespace nylon::gossip {

std::string_view to_string(selection_policy p) noexcept {
  switch (p) {
    case selection_policy::rand: return "rand";
    case selection_policy::tail: return "tail";
  }
  return "?";
}

std::string_view to_string(propagation_policy p) noexcept {
  switch (p) {
    case propagation_policy::push: return "push";
    case propagation_policy::pushpull: return "pushpull";
  }
  return "?";
}

std::string_view to_string(merge_policy p) noexcept {
  switch (p) {
    case merge_policy::blind: return "blind";
    case merge_policy::healer: return "healer";
    case merge_policy::swapper: return "swapper";
  }
  return "?";
}

std::string config_label(const protocol_config& cfg) {
  std::string label;
  label += to_string(cfg.propagation);
  label += ",";
  label += to_string(cfg.selection);
  label += ",";
  label += to_string(cfg.merge);
  return label;
}

protocol_config baseline_config(std::uint8_t index, std::size_t view_size) {
  NYLON_EXPECTS(index < baseline_config_count());
  protocol_config cfg;
  cfg.view_size = view_size;
  cfg.propagation = propagation_policy::pushpull;
  cfg.selection = (index < 3) ? selection_policy::rand : selection_policy::tail;
  switch (index % 3) {
    case 0: cfg.merge = merge_policy::healer; break;
    case 1: cfg.merge = merge_policy::blind; break;
    default: cfg.merge = merge_policy::swapper; break;
  }
  return cfg;
}

}  // namespace nylon::gossip
