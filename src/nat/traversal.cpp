#include "nat/traversal.h"

namespace nylon::nat {

std::string_view to_string(traversal_technique t) noexcept {
  switch (t) {
    case traversal_technique::direct: return "direct";
    case traversal_technique::hole_punching: return "hole punching";
    case traversal_technique::modified_hole_punching:
      return "mod. hole punching";
    case traversal_technique::relaying: return "relaying";
  }
  return "?";
}

traversal_technique technique_for(nat_type src, nat_type dst) noexcept {
  using tt = traversal_technique;
  // Full cone behaves like a public peer on both axes (§2.2).
  const nat_type s = (src == nat_type::full_cone) ? nat_type::open : src;
  const nat_type d = (dst == nat_type::full_cone) ? nat_type::open : dst;

  if (d == nat_type::open) return tt::direct;

  switch (s) {
    case nat_type::open:
      // public -> RC/PRC: hole punching; public -> SYM: relay.
      return d == nat_type::symmetric ? tt::relaying : tt::hole_punching;
    case nat_type::restricted_cone:
      // RC can hole-punch everything, including SYM targets, because its
      // filter is IP-based: the PONG from the SYM peer's fresh port still
      // matches the rule created by the source's PING.
      return tt::hole_punching;
    case nat_type::port_restricted_cone:
      return d == nat_type::symmetric ? tt::relaying : tt::hole_punching;
    case nat_type::symmetric:
      // The source's own port is unpredictable: the target can only reply
      // through the RVP (modified hole punching) for cone targets whose
      // filter can still be opened; PRC/SYM targets need full relaying.
      if (d == nat_type::restricted_cone) return tt::modified_hole_punching;
      return tt::relaying;
    case nat_type::full_cone:
      break;  // canonicalised to open above
  }
  return tt::direct;
}

}  // namespace nylon::nat
