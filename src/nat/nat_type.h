// The NAT taxonomy of the paper's §2.1 (RFC 3489 terminology).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace nylon::nat {

/// Kind of NAT a peer sits behind. `open` means a public peer (no NAT).
enum class nat_type : std::uint8_t {
  open,                  ///< public peer, directly reachable
  full_cone,             ///< same mapping for all sessions; forwards everything
  restricted_cone,       ///< forwards only from previously-contacted IPs
  port_restricted_cone,  ///< forwards only from previously-contacted IP:port
  symmetric,             ///< destination-dependent mapping; strictest filter
};

/// True for every type except `open`.
[[nodiscard]] constexpr bool is_natted(nat_type t) noexcept {
  return t != nat_type::open;
}

/// True for cone types (stable public port across destinations).
[[nodiscard]] constexpr bool is_cone(nat_type t) noexcept {
  return t == nat_type::full_cone || t == nat_type::restricted_cone ||
         t == nat_type::port_restricted_cone;
}

/// Inverse of to_string: parses a display name back to the type.
[[nodiscard]] constexpr std::optional<nat_type> nat_type_from_string(
    std::string_view s) noexcept {
  if (s == "public") return nat_type::open;
  if (s == "FC") return nat_type::full_cone;
  if (s == "RC") return nat_type::restricted_cone;
  if (s == "PRC") return nat_type::port_restricted_cone;
  if (s == "SYM") return nat_type::symmetric;
  return std::nullopt;
}

/// Short display name ("public", "FC", "RC", "PRC", "SYM").
[[nodiscard]] constexpr std::string_view to_string(nat_type t) noexcept {
  switch (t) {
    case nat_type::open: return "public";
    case nat_type::full_cone: return "FC";
    case nat_type::restricted_cone: return "RC";
    case nat_type::port_restricted_cone: return "PRC";
    case nat_type::symmetric: return "SYM";
  }
  return "?";
}

}  // namespace nylon::nat
