// The NAT-traversal decision table of §2.2: which technique a source peer
// must use to open a message exchange with a target peer, as a function of
// both NAT types.
//
// Nylon's pseudocode (Fig. 6) uses a simplification of this table (any
// symmetric source always relays); the full table — including the
// "modified hole punching" of footnote 2 — lives here and is verified
// cell-by-cell against packet-level dry runs in the tests and in
// bench_table1_traversal.
#pragma once

#include <string_view>

#include "nat/nat_type.h"

namespace nylon::nat {

/// How a source can establish a message exchange with a target.
enum class traversal_technique : std::uint8_t {
  direct,                   ///< just send; the target accepts unsolicited
  hole_punching,            ///< PING + OPEN_HOLE via RVP + PONG
  modified_hole_punching,   ///< as above, PONG routed back via the RVP
  relaying,                 ///< all traffic through the RVP
};

/// Display name ("direct", "hole punching", ...).
[[nodiscard]] std::string_view to_string(traversal_technique t) noexcept;

/// The paper's table: technique for a `src`-type peer contacting a
/// `dst`-type peer. Full-cone behaves like public on both axes (§2.2),
/// assuming its binding is kept alive, which periodic gossip guarantees.
[[nodiscard]] traversal_technique technique_for(nat_type src,
                                                nat_type dst) noexcept;

/// True when the technique requires a rendez-vous peer.
[[nodiscard]] constexpr bool needs_rvp(traversal_technique t) noexcept {
  return t != traversal_technique::direct;
}

}  // namespace nylon::nat
