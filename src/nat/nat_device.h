// Simulation model of a NAT box, faithful to §2.1 of the paper:
//
//  * Full Cone (FC): one public port per private endpoint; forwards every
//    incoming packet while the binding is alive.
//  * Restricted Cone (RC): same mapping; forwards only from remote IPs the
//    private endpoint has previously sent to.
//  * Port Restricted Cone (PRC): forwards only from remote IP:port pairs
//    previously sent to.
//  * Symmetric (SYM): a fresh public port per (private endpoint, remote
//    endpoint) session; forwards only from that exact remote endpoint.
//
// Both the address/port mapping and the filtering rules expire a fixed
// `hole_timeout` after the last packet sent *or* received on the session
// (the paper's 90 s "typical vendor value").
//
// Two parallel APIs:
//  * the mutating path (`translate_outbound` / `filter_inbound`) used by
//    the transport for real packets, and
//  * a const dry-run path (`would_translate` / `would_accept`) used by the
//    metrics oracle, so staleness is measured against the exact same
//    semantics the packets experience, without perturbing NAT state.
//
// Storage: filtering rules and symmetric sessions live in open-addressed
// flat tables keyed by packed remote endpoints (exact-match lookups
// replace what used to be linear scans), and `purge_expired` is guarded
// by a device-wide next-expiry watermark so quiet devices cost one
// compare per maintenance tick instead of a full sweep. The semantics are
// bit-identical to the original map/scan implementation — see the
// equivalence tests in tests/nat/ and DESIGN.md's determinism contract.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "nat/nat_type.h"
#include "net/address.h"
#include "sim/time.h"
#include "util/flat_hash.h"

namespace nylon::nat {

/// What the source endpoint of a packet would look like after translation.
/// `port` is empty when the NAT would mint a fresh, unpredictable port
/// (symmetric NAT, new session) — such a source can only match IP-based
/// (RC) or allow-all (FC) filters at the destination.
struct predicted_source {
  net::ip_address ip;
  std::optional<std::uint32_t> port;
};

/// One simulated NAT box. A device can serve several private endpoints
/// (deployments in this repo use one peer per device).
class nat_device {
 public:
  /// `type` must be a natted type; `hole_timeout` > 0.
  /// `expected_rules` pre-sizes each client's rule/session tables (and
  /// the public-port reverse index) so steady-state traffic never
  /// rehashes them (obs `hash_rehashes`; peak tracked by
  /// `nat_table_peak`).
  nat_device(nat_type type, net::ip_address public_ip,
             sim::sim_time hole_timeout, std::size_t expected_rules = 0);

  [[nodiscard]] nat_type type() const noexcept { return type_; }
  [[nodiscard]] net::ip_address public_ip() const noexcept {
    return public_ip_;
  }
  [[nodiscard]] sim::sim_time hole_timeout() const noexcept {
    return hole_timeout_;
  }

  // --- mutating packet path ------------------------------------------------

  /// Processes an outbound packet from `private_src` to `remote`:
  /// creates/refreshes the mapping and the filtering rule, and returns the
  /// translated public source endpoint.
  net::endpoint translate_outbound(const net::endpoint& private_src,
                                   const net::endpoint& remote,
                                   sim::sim_time now);

  /// Processes an inbound packet addressed to `public_dst` (one of this
  /// device's public endpoints) arriving from `remote_src`. Returns the
  /// private destination endpoint when the filtering rule admits the
  /// packet (refreshing mapping and rule), or nullopt when it is dropped.
  std::optional<net::endpoint> filter_inbound(const net::endpoint& public_dst,
                                              const net::endpoint& remote_src,
                                              sim::sim_time now);

  // --- const dry-run path (metrics oracle) ---------------------------------

  /// Source endpoint a packet from `private_src` to `remote` would carry,
  /// without creating the session.
  [[nodiscard]] predicted_source would_translate(
      const net::endpoint& private_src, const net::endpoint& remote,
      sim::sim_time now) const;

  /// Whether a packet to `public_dst` from (src_ip, src_port) would be
  /// forwarded; src_port empty means "fresh unpredictable port".
  /// Returns the private destination on acceptance. Never mutates.
  [[nodiscard]] std::optional<net::endpoint> would_accept(
      const net::endpoint& public_dst, net::ip_address src_ip,
      std::optional<std::uint32_t> src_port, sim::sim_time now) const;

  // --- STUN-like oracle -----------------------------------------------------

  /// The public endpoint this private endpoint should advertise in peer
  /// descriptors. Cone types get a stable, pre-reserved port (real NATs
  /// keep the same mapping while it is in use, and STUN discovers it);
  /// symmetric NATs return port 0 because no single port is meaningful.
  net::endpoint advertised_endpoint(const net::endpoint& private_src);

  // --- maintenance / introspection -----------------------------------------

  /// Drops expired rules, bindings and sessions to bound memory use.
  /// O(1) while nothing can have expired (next-expiry watermark).
  void purge_expired(sim::sim_time now);

  /// Number of live filtering rules (cone) or sessions (symmetric).
  [[nodiscard]] std::size_t active_rule_count(sim::sim_time now) const;

 private:
  /// One symmetric session: the minted public port and its expiry.
  struct sym_entry {
    std::uint32_t public_port = 0;
    sim::sim_time expires = 0;
  };

  /// Per-private-endpoint state. Rules (cone) are keyed by packed
  /// (remote_ip, rule_port); sessions (symmetric) by packed remote
  /// endpoint. The cone port reservation is permanent (survives binding
  /// expiry so advertised endpoints stay valid — see DESIGN.md).
  struct client {
    net::endpoint private_ep;
    std::uint32_t cone_port = 0;       ///< 0 = not reserved yet
    sim::sim_time cone_expires = -1;   ///< -1 = no binding yet
    util::flat_hash_map<std::uint64_t, sim::sim_time> rules;
    util::flat_hash_map<std::uint64_t, sym_entry> sym;
  };

  /// Packs a remote endpoint (or (ip, rule_port) pair) into a table key.
  [[nodiscard]] static std::uint64_t key_of(net::ip_address ip,
                                            std::uint32_t port) noexcept {
    return (static_cast<std::uint64_t>(ip.value) << 32) | port;
  }

  /// Index of the client serving `private_src`, creating it on demand.
  std::uint32_t client_for(const net::endpoint& private_src);
  /// Const lookup; nullptr when this private endpoint is unknown.
  [[nodiscard]] const client* find_client(
      const net::endpoint& private_src) const;

  /// Lowers the purge watermark to cover a newly set expiry.
  void note_expiry(sim::sim_time expires) noexcept {
    if (expires < next_expiry_) next_expiry_ = expires;
  }

  std::uint32_t reserve_cone_port(client& c);

  nat_type type_;
  net::ip_address public_ip_;
  sim::sim_time hole_timeout_;
  std::size_t expected_rules_ = 0;
  std::uint32_t next_port_ = 1024;

  std::vector<client> clients_;  ///< typically one per device
  /// Reverse index: public port -> owning client index.
  util::flat_hash_map<std::uint32_t, std::uint32_t> port_owner_;
  /// No rule or session expires before this; purge is a no-op until then.
  sim::sim_time next_expiry_ = sim::time_never;
  sim::sim_time last_sweep_ = 0;  ///< GC throttle (see purge_expired)
};

}  // namespace nylon::nat
