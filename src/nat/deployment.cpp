#include "nat/deployment.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <span>

#include "util/contracts.h"

namespace nylon::nat {

std::vector<nat_type> assign_types(std::size_t n, double natted_fraction,
                                   const nat_mix& mix, util::rng& rng) {
  NYLON_EXPECTS(natted_fraction >= 0.0 && natted_fraction <= 1.0);
  const double mix_sum = mix.full_cone + mix.restricted_cone +
                         mix.port_restricted_cone + mix.symmetric;
  NYLON_EXPECTS(std::abs(mix_sum - 1.0) < 1e-6);

  const auto natted =
      static_cast<std::size_t>(std::lround(static_cast<double>(n) *
                                           natted_fraction));

  // Largest-remainder apportionment of the natted population across types,
  // so percentages are exact (the paper reports exact mixes).
  const std::array<std::pair<nat_type, double>, 4> shares = {{
      {nat_type::full_cone, mix.full_cone},
      {nat_type::restricted_cone, mix.restricted_cone},
      {nat_type::port_restricted_cone, mix.port_restricted_cone},
      {nat_type::symmetric, mix.symmetric},
  }};
  std::array<std::size_t, 4> counts{};
  std::array<double, 4> remainders{};
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    const double quota = static_cast<double>(natted) * shares[i].second;
    counts[i] = static_cast<std::size_t>(quota);
    remainders[i] = quota - static_cast<double>(counts[i]);
    assigned += counts[i];
  }
  while (assigned < natted) {
    const std::size_t best =
        static_cast<std::size_t>(std::distance(
            remainders.begin(),
            std::max_element(remainders.begin(), remainders.end())));
    ++counts[best];
    remainders[best] = -1.0;
    ++assigned;
  }

  std::vector<nat_type> types;
  types.reserve(n);
  for (std::size_t i = 0; i < shares.size(); ++i) {
    types.insert(types.end(), counts[i], shares[i].first);
  }
  types.insert(types.end(), n - natted, nat_type::open);
  rng.shuffle(std::span<nat_type>(types));
  NYLON_ENSURES(types.size() == n);
  return types;
}

std::size_t natted_count(const std::vector<nat_type>& types) {
  return static_cast<std::size_t>(
      std::count_if(types.begin(), types.end(),
                    [](nat_type t) { return is_natted(t); }));
}

nat_type draw_type(const nat_mix& mix, util::rng& rng) {
  const double total = mix.full_cone + mix.restricted_cone +
                       mix.port_restricted_cone + mix.symmetric;
  NYLON_EXPECTS(total > 0.0);
  const double u = rng.uniform01() * total;
  double acc = mix.full_cone;
  if (u < acc) return nat_type::full_cone;
  acc += mix.restricted_cone;
  if (u < acc) return nat_type::restricted_cone;
  acc += mix.port_restricted_cone;
  if (u < acc) return nat_type::port_restricted_cone;
  return nat_type::symmetric;
}

}  // namespace nylon::nat
