// Assignment of NAT types to a population of peers, matching the paper's
// experimental settings (§5): a given fraction of natted peers, split
// 50% RC / 40% PRC / 10% SYM (or 100% PRC for the §3 baseline figures).
#pragma once

#include <cstddef>
#include <vector>

#include "nat/nat_type.h"
#include "util/rng.h"

namespace nylon::nat {

/// Mix of NAT types among the *natted* peers; fractions must sum to 1.
struct nat_mix {
  double full_cone = 0.0;
  double restricted_cone = 0.5;
  double port_restricted_cone = 0.4;
  double symmetric = 0.1;
};

/// The paper's default mix for the Nylon experiments (§5).
[[nodiscard]] constexpr nat_mix paper_mix() noexcept { return nat_mix{}; }

/// 100% PRC, used by the §3 baseline experiments.
[[nodiscard]] constexpr nat_mix prc_only_mix() noexcept {
  return nat_mix{0.0, 0.0, 1.0, 0.0};
}

/// Assigns a NAT type to each of `n` peers. Exactly
/// round(n * natted_fraction) peers are natted (largest-remainder split
/// across the mix), and positions are shuffled with `rng` so type is
/// independent of peer id. natted_fraction in [0, 1]; mix sums to ~1.
[[nodiscard]] std::vector<nat_type> assign_types(std::size_t n,
                                                 double natted_fraction,
                                                 const nat_mix& mix,
                                                 util::rng& rng);

/// Number of entries in `types` that are natted.
[[nodiscard]] std::size_t natted_count(const std::vector<nat_type>& types);

/// Draws one (always natted) NAT type from `mix` by inverse CDF — the
/// per-peer form of `assign_types` used by in-place NAT migration, where
/// each affected peer needs an independent draw rather than a
/// largest-remainder split over a batch. Shares of ~0 are never drawn.
[[nodiscard]] nat_type draw_type(const nat_mix& mix, util::rng& rng);

}  // namespace nylon::nat
