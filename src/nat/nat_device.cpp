#include "nat/nat_device.h"

#include <algorithm>

#include "obs/counters.h"
#include "util/contracts.h"

namespace nylon::nat {

nat_device::nat_device(nat_type type, net::ip_address public_ip,
                       sim::sim_time hole_timeout, std::size_t expected_rules)
    : type_(type),
      public_ip_(public_ip),
      hole_timeout_(hole_timeout),
      expected_rules_(expected_rules) {
  NYLON_EXPECTS(is_natted(type));
  NYLON_EXPECTS(hole_timeout > 0);
  // Cone devices own one public port; symmetric ones mint a port per
  // session, so the reverse index tracks the session table's size.
  port_owner_.reserve(type == nat_type::symmetric ? expected_rules : 1);
}

std::uint32_t nat_device::client_for(const net::endpoint& private_src) {
  for (std::uint32_t i = 0; i < clients_.size(); ++i) {
    if (clients_[i].private_ep == private_src) return i;
  }
  client c;
  c.private_ep = private_src;
  if (type_ == nat_type::symmetric) {
    c.sym.reserve(expected_rules_);
  } else if (type_ != nat_type::full_cone) {
    c.rules.reserve(expected_rules_);
  }
  clients_.push_back(std::move(c));
  return static_cast<std::uint32_t>(clients_.size() - 1);
}

const nat_device::client* nat_device::find_client(
    const net::endpoint& private_src) const {
  for (const client& c : clients_) {
    if (c.private_ep == private_src) return &c;
  }
  return nullptr;
}

std::uint32_t nat_device::reserve_cone_port(client& c) {
  if (c.cone_port == 0) {
    c.cone_port = next_port_++;
    port_owner_.insert_or_get(c.cone_port) =
        static_cast<std::uint32_t>(&c - clients_.data());
  }
  return c.cone_port;
}

net::endpoint nat_device::translate_outbound(const net::endpoint& private_src,
                                             const net::endpoint& remote,
                                             sim::sim_time now) {
  const std::uint32_t index = client_for(private_src);
  client& c = clients_[index];

  if (type_ == nat_type::symmetric) {
    const std::uint64_t key = key_of(remote.ip, remote.port);
    sym_entry* session = c.sym.find(key);
    if (session != nullptr && session->expires >= now) {
      session->expires = now + hole_timeout_;
      note_expiry(session->expires);
      return {public_ip_, session->public_port};
    }
    const std::uint32_t port = next_port_++;
    if (session != nullptr) {
      // Expired session to the same remote: the old public port dies with
      // it (the original implementation kept it until the next purge;
      // packets addressed there were rejected either way).
      port_owner_.erase(session->public_port);
      session->public_port = port;
      session->expires = now + hole_timeout_;
    } else {
      c.sym.insert_or_get(key) = sym_entry{port, now + hole_timeout_};
      obs::count_peak(obs::counter::nat_table_peak, c.sym.size());
    }
    port_owner_.insert_or_get(port) = index;
    note_expiry(now + hole_timeout_);
    return {public_ip_, port};
  }

  reserve_cone_port(c);
  if (c.cone_expires < now) c.rules.clear();  // binding had lapsed
  c.cone_expires = now + hole_timeout_;
  if (type_ != nat_type::full_cone) {
    // RC keys rules by remote IP; PRC by remote IP:port.
    const std::uint32_t rule_port =
        type_ == nat_type::port_restricted_cone ? remote.port : 0;
    c.rules.insert_or_get(key_of(remote.ip, rule_port)) = now + hole_timeout_;
    obs::count_peak(obs::counter::nat_table_peak, c.rules.size());
    note_expiry(now + hole_timeout_);
  }
  return {public_ip_, c.cone_port};
}

std::optional<net::endpoint> nat_device::filter_inbound(
    const net::endpoint& public_dst, const net::endpoint& remote_src,
    sim::sim_time now) {
  NYLON_EXPECTS(public_dst.ip == public_ip_);
  client* target = nullptr;
  if (clients_.size() == 1) {
    // Fast path for the common deployment (one peer behind each box):
    // the destination port identifies the lone client directly. For cone
    // types a mismatched port cannot be ours (the device owns exactly
    // one public port); for symmetric the session lookup below already
    // validates the port, exactly as the reverse index would have.
    client& only = clients_.front();
    if (type_ != nat_type::symmetric && public_dst.port != only.cone_port) {
      return std::nullopt;
    }
    target = &only;
  } else {
    const std::uint32_t* owner = port_owner_.find(public_dst.port);
    if (owner == nullptr) return std::nullopt;
    target = &clients_[*owner];
  }
  client& c = *target;
  const net::endpoint private_dst = c.private_ep;

  if (type_ == nat_type::symmetric) {
    sym_entry* session = c.sym.find(key_of(remote_src.ip, remote_src.port));
    if (session != nullptr && session->public_port == public_dst.port &&
        session->expires >= now) {
      session->expires = now + hole_timeout_;  // inbound traffic refreshes
      note_expiry(session->expires);
      return private_dst;
    }
    return std::nullopt;
  }

  if (c.cone_expires < now) return std::nullopt;  // lapsed or never bound
  if (type_ == nat_type::full_cone) {
    c.cone_expires = now + hole_timeout_;
    return private_dst;
  }
  const std::uint32_t rule_port =
      type_ == nat_type::port_restricted_cone ? remote_src.port : 0;
  sim::sim_time* expires = c.rules.find(key_of(remote_src.ip, rule_port));
  if (expires != nullptr && *expires >= now) {
    *expires = now + hole_timeout_;
    c.cone_expires = now + hole_timeout_;
    note_expiry(*expires);
    return private_dst;
  }
  return std::nullopt;
}

predicted_source nat_device::would_translate(const net::endpoint& private_src,
                                             const net::endpoint& remote,
                                             sim::sim_time now) const {
  const client* c = find_client(private_src);
  if (type_ == nat_type::symmetric) {
    if (c != nullptr) {
      const sym_entry* session = c->sym.find(key_of(remote.ip, remote.port));
      if (session != nullptr && session->expires >= now) {
        return {public_ip_, session->public_port};
      }
    }
    return {public_ip_, std::nullopt};  // fresh unpredictable port
  }
  if (c != nullptr && c->cone_port != 0) return {public_ip_, c->cone_port};
  return {public_ip_, std::nullopt};
}

std::optional<net::endpoint> nat_device::would_accept(
    const net::endpoint& public_dst, net::ip_address src_ip,
    std::optional<std::uint32_t> src_port, sim::sim_time now) const {
  NYLON_EXPECTS(public_dst.ip == public_ip_);
  const std::uint32_t* owner = port_owner_.find(public_dst.port);
  if (owner == nullptr) return std::nullopt;
  const client& c = clients_[*owner];
  const net::endpoint private_dst = c.private_ep;

  if (type_ == nat_type::symmetric) {
    if (!src_port.has_value()) return std::nullopt;
    const sym_entry* session = c.sym.find(key_of(src_ip, *src_port));
    if (session != nullptr && session->public_port == public_dst.port &&
        session->expires >= now) {
      return private_dst;
    }
    return std::nullopt;
  }

  if (c.cone_expires < now) return std::nullopt;
  if (type_ == nat_type::full_cone) return private_dst;
  if (type_ == nat_type::port_restricted_cone && !src_port.has_value()) {
    return std::nullopt;  // PRC needs an exact port match
  }
  const std::uint32_t rule_port =
      type_ == nat_type::port_restricted_cone ? *src_port : 0;
  const sim::sim_time* expires = c.rules.find(key_of(src_ip, rule_port));
  if (expires != nullptr && *expires >= now) return private_dst;
  return std::nullopt;
}

net::endpoint nat_device::advertised_endpoint(
    const net::endpoint& private_src) {
  if (type_ == nat_type::symmetric) return {public_ip_, 0};
  return {public_ip_, reserve_cone_port(clients_[client_for(private_src)])};
}

void nat_device::purge_expired(sim::sim_time now) {
  if (now <= next_expiry_) return;  // nothing can have expired yet
  // Expiry is enforced on every lookup, so the sweep is pure garbage
  // collection; run it at most once per hole timeout. Lingering expired
  // entries are invisible to the packet path and bounded by one
  // timeout's worth of traffic.
  if (now < last_sweep_ + hole_timeout_) return;
  last_sweep_ = now;
  sim::sim_time next = sim::time_never;
  for (client& c : clients_) {
    c.rules.erase_if([&](std::uint64_t, sim::sim_time expires) {
      if (expires >= now) {
        next = std::min(next, expires);
        return false;
      }
      return true;
    });
    c.sym.erase_if([&](std::uint64_t, sym_entry& session) {
      if (session.expires >= now) {
        next = std::min(next, session.expires);
        return false;
      }
      port_owner_.erase(session.public_port);
      return true;
    });
  }
  next_expiry_ = next;
}

std::size_t nat_device::active_rule_count(sim::sim_time now) const {
  std::size_t count = 0;
  for (const client& c : clients_) {
    c.rules.for_each([&](std::uint64_t, sim::sim_time expires) {
      if (expires >= now) ++count;
    });
    c.sym.for_each([&](std::uint64_t, const sym_entry& session) {
      if (session.expires >= now) ++count;
    });
  }
  return count;
}

}  // namespace nylon::nat
