#include "nat/nat_device.h"

#include <algorithm>

#include "util/contracts.h"

namespace nylon::nat {

namespace {

/// True when the rule admits a packet from (ip, port) for the given type.
/// PRC compares ports; RC ignores them. FC never consults rules.
bool rule_matches(nat_type type, const net::ip_address& src_ip,
                  std::optional<std::uint32_t> src_port,
                  net::ip_address rule_ip, std::uint32_t rule_port) {
  if (src_ip != rule_ip) return false;
  if (type == nat_type::port_restricted_cone) {
    return src_port.has_value() && *src_port == rule_port;
  }
  return true;  // restricted cone: IP match suffices
}

}  // namespace

nat_device::nat_device(nat_type type, net::ip_address public_ip,
                       sim::sim_time hole_timeout)
    : type_(type), public_ip_(public_ip), hole_timeout_(hole_timeout) {
  NYLON_EXPECTS(is_natted(type));
  NYLON_EXPECTS(hole_timeout > 0);
}

std::uint32_t nat_device::reserve_cone_port(const net::endpoint& private_src) {
  const auto it = cone_port_.find(private_src);
  if (it != cone_port_.end()) return it->second;
  const std::uint32_t port = next_port_++;
  cone_port_.emplace(private_src, port);
  port_owner_.emplace(port, private_src);
  return port;
}

nat_device::cone_binding& nat_device::cone_bind(
    const net::endpoint& private_src, sim::sim_time now) {
  cone_binding& binding = cone_[private_src];
  if (binding.public_port == 0) {
    binding.public_port = reserve_cone_port(private_src);
  }
  if (binding.expires < now) binding.rules.clear();  // binding had lapsed
  return binding;
}

net::endpoint nat_device::translate_outbound(const net::endpoint& private_src,
                                             const net::endpoint& remote,
                                             sim::sim_time now) {
  if (type_ == nat_type::symmetric) {
    auto& sessions = sym_[private_src];
    for (sym_session& s : sessions) {
      if (s.remote == remote && s.expires >= now) {
        s.expires = now + hole_timeout_;
        return {public_ip_, s.public_port};
      }
    }
    const std::uint32_t port = next_port_++;
    sessions.push_back(sym_session{remote, port, now + hole_timeout_});
    port_owner_.emplace(port, private_src);
    return {public_ip_, port};
  }

  cone_binding& binding = cone_bind(private_src, now);
  binding.expires = now + hole_timeout_;
  if (type_ != nat_type::full_cone) {
    // RC keys rules by remote IP; PRC by remote IP:port.
    const std::uint32_t rule_port =
        type_ == nat_type::port_restricted_cone ? remote.port : 0;
    auto rule = std::find_if(
        binding.rules.begin(), binding.rules.end(), [&](const filter_rule& r) {
          return r.remote_ip == remote.ip && r.remote_port == rule_port;
        });
    if (rule == binding.rules.end()) {
      binding.rules.push_back(
          filter_rule{remote.ip, rule_port, now + hole_timeout_});
    } else {
      rule->expires = now + hole_timeout_;
    }
  }
  return {public_ip_, binding.public_port};
}

std::optional<net::endpoint> nat_device::filter_inbound(
    const net::endpoint& public_dst, const net::endpoint& remote_src,
    sim::sim_time now) {
  NYLON_EXPECTS(public_dst.ip == public_ip_);
  const auto owner = port_owner_.find(public_dst.port);
  if (owner == port_owner_.end()) return std::nullopt;
  const net::endpoint private_dst = owner->second;

  if (type_ == nat_type::symmetric) {
    const auto sessions = sym_.find(private_dst);
    if (sessions == sym_.end()) return std::nullopt;
    for (sym_session& s : sessions->second) {
      if (s.public_port == public_dst.port && s.expires >= now &&
          s.remote == remote_src) {
        s.expires = now + hole_timeout_;  // inbound traffic refreshes
        return private_dst;
      }
    }
    return std::nullopt;
  }

  const auto binding_it = cone_.find(private_dst);
  if (binding_it == cone_.end()) return std::nullopt;
  cone_binding& binding = binding_it->second;
  if (binding.expires < now) return std::nullopt;
  if (type_ == nat_type::full_cone) {
    binding.expires = now + hole_timeout_;
    return private_dst;
  }
  for (filter_rule& rule : binding.rules) {
    if (rule.expires >= now &&
        rule_matches(type_, remote_src.ip, remote_src.port, rule.remote_ip,
                     rule.remote_port)) {
      rule.expires = now + hole_timeout_;
      binding.expires = now + hole_timeout_;
      return private_dst;
    }
  }
  return std::nullopt;
}

predicted_source nat_device::would_translate(const net::endpoint& private_src,
                                             const net::endpoint& remote,
                                             sim::sim_time now) const {
  if (type_ == nat_type::symmetric) {
    const auto sessions = sym_.find(private_src);
    if (sessions != sym_.end()) {
      for (const sym_session& s : sessions->second) {
        if (s.remote == remote && s.expires >= now) {
          return {public_ip_, s.public_port};
        }
      }
    }
    return {public_ip_, std::nullopt};  // fresh unpredictable port
  }
  const auto reserved = cone_port_.find(private_src);
  if (reserved != cone_port_.end()) return {public_ip_, reserved->second};
  return {public_ip_, std::nullopt};
}

std::optional<net::endpoint> nat_device::would_accept(
    const net::endpoint& public_dst, net::ip_address src_ip,
    std::optional<std::uint32_t> src_port, sim::sim_time now) const {
  NYLON_EXPECTS(public_dst.ip == public_ip_);
  const auto owner = port_owner_.find(public_dst.port);
  if (owner == port_owner_.end()) return std::nullopt;
  const net::endpoint private_dst = owner->second;

  if (type_ == nat_type::symmetric) {
    const auto sessions = sym_.find(private_dst);
    if (sessions == sym_.end()) return std::nullopt;
    for (const sym_session& s : sessions->second) {
      if (s.public_port == public_dst.port && s.expires >= now &&
          s.remote.ip == src_ip && src_port.has_value() &&
          s.remote.port == *src_port) {
        return private_dst;
      }
    }
    return std::nullopt;
  }

  const auto binding_it = cone_.find(private_dst);
  if (binding_it == cone_.end()) return std::nullopt;
  const cone_binding& binding = binding_it->second;
  if (binding.expires < now) return std::nullopt;
  if (type_ == nat_type::full_cone) return private_dst;
  for (const filter_rule& rule : binding.rules) {
    if (rule.expires >= now && rule_matches(type_, src_ip, src_port,
                                            rule.remote_ip, rule.remote_port)) {
      return private_dst;
    }
  }
  return std::nullopt;
}

net::endpoint nat_device::advertised_endpoint(
    const net::endpoint& private_src) {
  if (type_ == nat_type::symmetric) return {public_ip_, 0};
  return {public_ip_, reserve_cone_port(private_src)};
}

void nat_device::purge_expired(sim::sim_time now) {
  for (auto& [private_ep, binding] : cone_) {
    std::erase_if(binding.rules,
                  [now](const filter_rule& r) { return r.expires < now; });
  }
  for (auto& [private_ep, sessions] : sym_) {
    std::erase_if(sessions, [&](const sym_session& s) {
      if (s.expires >= now) return false;
      port_owner_.erase(s.public_port);
      return true;
    });
  }
}

std::size_t nat_device::active_rule_count(sim::sim_time now) const {
  std::size_t count = 0;
  for (const auto& [private_ep, binding] : cone_) {
    for (const filter_rule& rule : binding.rules) {
      if (rule.expires >= now) ++count;
    }
  }
  for (const auto& [private_ep, sessions] : sym_) {
    for (const sym_session& s : sessions) {
      if (s.expires >= now) ++count;
    }
  }
  return count;
}

}  // namespace nylon::nat
