// Bandwidth accounting over a measurement window (Figs. 7 and 8): mean
// bytes per second sent + received per peer, split by peer class.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "gossip/peer.h"
#include "net/transport.h"
#include "sim/time.h"

namespace nylon::metrics {

/// Per-class bandwidth means over a window. "Bytes/s" counts bytes sent
/// plus bytes received, averaged over alive peers of the class — the
/// paper's Figs. 7/8 metric.
struct bandwidth_report {
  double all_bytes_per_s = 0.0;
  double public_bytes_per_s = 0.0;
  double natted_bytes_per_s = 0.0;
  double sent_bytes_per_s = 0.0;      ///< send-side only, all peers
  double received_bytes_per_s = 0.0;  ///< receive-side only, all peers
  std::size_t public_peers = 0;
  std::size_t natted_peers = 0;
};

/// Computes the report from the transport's per-node counters accumulated
/// since the last reset_traffic(), over a window of `window` sim-time.
[[nodiscard]] bandwidth_report measure_bandwidth(
    const net::transport& transport,
    std::span<const std::unique_ptr<gossip::peer>> peers,
    sim::sim_time window);

}  // namespace nylon::metrics
