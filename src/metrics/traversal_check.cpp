#include "metrics/traversal_check.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/latency.h"
#include "net/transport.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace nylon::metrics {

namespace {

/// Minimal named payload for scripted packet sequences.
class probe_payload final : public net::payload {
 public:
  explicit probe_payload(std::string name) : name_(std::move(name)) {}
  [[nodiscard]] std::size_t wire_size() const noexcept override { return 32; }
  [[nodiscard]] std::string_view type_name() const noexcept override {
    return name_;
  }

 private:
  std::string name_;
};

/// Records everything delivered to one node.
class recorder final : public net::endpoint_handler {
 public:
  struct received {
    net::endpoint source;
    std::string name;
  };

  void on_datagram(const net::datagram& dgram) override {
    log_.push_back(
        received{dgram.source, std::string(dgram.body->type_name())});
  }

  /// Last packet with the given name, if any.
  [[nodiscard]] std::optional<received> last(std::string_view name) const {
    for (auto it = log_.rbegin(); it != log_.rend(); ++it) {
      if (it->name == name) return *it;
    }
    return std::nullopt;
  }

 private:
  std::vector<received> log_;
};

/// A three-node world: source, target, and one public rendez-vous peer.
class traversal_lab {
 public:
  traversal_lab(nat::nat_type src_type, nat::nat_type dst_type)
      : rng_(42),
        transport_(sched_, rng_, net::paper_latency()) {
    src_ = transport_.add_node(src_type, src_rec_);
    dst_ = transport_.add_node(dst_type, dst_rec_);
    rvp_ = transport_.add_node(nat::nat_type::open, rvp_rec_);
    // Both endpoints keep a session towards the RVP alive, as §2.2
    // footnote 1 prescribes ("periodically send PING messages").
    send(src_, transport_.advertised_endpoint(rvp_), "HELLO");
    send(dst_, transport_.advertised_endpoint(rvp_), "HELLO");
    settle();
    src_at_rvp_ = rvp_rec_.last("HELLO") ? first_hello_src() : net::endpoint{};
  }

  void send(net::node_id from, const net::endpoint& to,
            const std::string& name) {
    transport_.send(from, to, net::make_payload<probe_payload>(name));
  }

  void settle() { sched_.run_for(sim::millis(200)); }

  [[nodiscard]] net::endpoint advertised(net::node_id id) const {
    return transport_.advertised_endpoint(id);
  }

  net::node_id src_ = 0;
  net::node_id dst_ = 0;
  net::node_id rvp_ = 0;
  recorder src_rec_;
  recorder dst_rec_;
  recorder rvp_rec_;
  /// Source's endpoint as the RVP observed it (for relayed replies).
  net::endpoint src_at_rvp_;
  /// Target's endpoint as the RVP observed it.
  [[nodiscard]] net::endpoint dst_at_rvp() const {
    const auto seen = rvp_rec_.last("HELLO");
    return seen ? seen->source : net::endpoint{};
  }

 private:
  /// The first HELLO the RVP saw came from the source (sent first).
  [[nodiscard]] net::endpoint first_hello_src() const {
    // Re-derive by sending a fresh marker: simpler to just track via a
    // dedicated exchange below; see remember_endpoints().
    return net::endpoint{};
  }

  sim::scheduler sched_;
  util::rng rng_;

 public:
  net::transport transport_;
};

/// Runs one registration round and captures both observed endpoints at
/// the RVP unambiguously (distinct marker names).
struct registered_lab : traversal_lab {
  registered_lab(nat::nat_type s, nat::nat_type d) : traversal_lab(s, d) {
    send(src_, advertised(rvp_), "REG_SRC");
    send(dst_, advertised(rvp_), "REG_DST");
    settle();
    if (const auto seen = rvp_rec_.last("REG_SRC")) src_obs = seen->source;
    if (const auto seen = rvp_rec_.last("REG_DST")) dst_obs = seen->source;
  }
  net::endpoint src_obs;  ///< source as the RVP can reach it
  net::endpoint dst_obs;  ///< target as the RVP can reach it
};

traversal_outcome finish_exchange(registered_lab& lab,
                                  const net::endpoint& request_to) {
  traversal_outcome out;
  lab.send(lab.src_, request_to, "REQUEST");
  lab.settle();
  const auto request = lab.dst_rec_.last("REQUEST");
  if (!request) return out;
  out.request_delivered = true;
  lab.send(lab.dst_, request->source, "RESPONSE");
  lab.settle();
  out.response_delivered = lab.src_rec_.last("RESPONSE").has_value();
  return out;
}

traversal_outcome run_direct(registered_lab& lab) {
  return finish_exchange(lab, lab.advertised(lab.dst_));
}

traversal_outcome run_hole_punching(registered_lab& lab) {
  // Source opens its own hole (PING usually dies at the target's NAT),
  // asks the RVP to forward OPEN_HOLE, waits for the direct PONG.
  if (nat::is_natted(lab.transport_.type_of(lab.src_))) {
    lab.send(lab.src_, lab.advertised(lab.dst_), "PING");
  }
  lab.send(lab.src_, lab.advertised(lab.rvp_), "OPEN_HOLE");
  lab.settle();
  if (!lab.rvp_rec_.last("OPEN_HOLE")) return {};
  lab.send(lab.rvp_, lab.dst_obs, "OPEN_HOLE_FWD");
  lab.settle();
  if (!lab.dst_rec_.last("OPEN_HOLE_FWD")) return {};
  lab.send(lab.dst_, lab.advertised(lab.src_), "PONG");
  lab.settle();
  const auto pong = lab.src_rec_.last("PONG");
  if (!pong) return {};
  return finish_exchange(lab, pong->source);
}

traversal_outcome run_modified_hole_punching(registered_lab& lab) {
  // Source is symmetric: the target cannot PONG it directly (the fresh
  // port is unknown), so the PONG is relayed via the RVP (§2.2 footnote
  // 2) while the target opens an IP-level hole by pinging the source's
  // advertised address.
  lab.send(lab.src_, lab.advertised(lab.dst_), "PING");
  lab.send(lab.src_, lab.advertised(lab.rvp_), "OPEN_HOLE");
  lab.settle();
  if (!lab.rvp_rec_.last("OPEN_HOLE")) return {};
  lab.send(lab.rvp_, lab.dst_obs, "OPEN_HOLE_FWD");
  lab.settle();
  if (!lab.dst_rec_.last("OPEN_HOLE_FWD")) return {};
  lab.send(lab.dst_, lab.advertised(lab.rvp_), "PONG");
  lab.send(lab.dst_, lab.advertised(lab.src_), "PING_BACK");
  lab.settle();
  if (!lab.rvp_rec_.last("PONG")) return {};
  lab.send(lab.rvp_, lab.src_obs, "PONG_RELAY");
  lab.settle();
  if (!lab.src_rec_.last("PONG_RELAY")) return {};
  return finish_exchange(lab, lab.advertised(lab.dst_));
}

traversal_outcome run_relaying(registered_lab& lab) {
  traversal_outcome out;
  lab.send(lab.src_, lab.advertised(lab.rvp_), "REQUEST");
  lab.settle();
  if (!lab.rvp_rec_.last("REQUEST")) return out;
  lab.send(lab.rvp_, lab.dst_obs, "REQUEST");
  lab.settle();
  if (!lab.dst_rec_.last("REQUEST")) return out;
  out.request_delivered = true;
  lab.send(lab.dst_, lab.advertised(lab.rvp_), "RESPONSE");
  lab.settle();
  if (!lab.rvp_rec_.last("RESPONSE")) return out;
  lab.send(lab.rvp_, lab.src_obs, "RESPONSE");
  lab.settle();
  out.response_delivered = lab.src_rec_.last("RESPONSE").has_value();
  return out;
}

}  // namespace

traversal_outcome execute_technique(nat::nat_type src, nat::nat_type dst,
                                    nat::traversal_technique technique) {
  registered_lab lab(src, dst);
  switch (technique) {
    case nat::traversal_technique::direct:
      return run_direct(lab);
    case nat::traversal_technique::hole_punching:
      return run_hole_punching(lab);
    case nat::traversal_technique::modified_hole_punching:
      return run_modified_hole_punching(lab);
    case nat::traversal_technique::relaying:
      return run_relaying(lab);
  }
  return {};
}

traversal_outcome execute_prescribed(nat::nat_type src, nat::nat_type dst) {
  return execute_technique(src, dst, nat::technique_for(src, dst));
}

prescribed_result run_prescribed(nat::nat_type src, nat::nat_type dst) {
  const nat::traversal_technique technique = nat::technique_for(src, dst);
  return prescribed_result{technique, execute_technique(src, dst, technique)};
}

}  // namespace nylon::metrics
