// Statistical randomness battery — the reproduction's substitute for the
// diehard suite the paper ran on its samples (§5 "Correctness"; see
// DESIGN.md's substitution table). Applied to the stream of peer ids the
// sampling service returns:
//  * chi-square goodness-of-fit of sample frequencies against uniform,
//  * Wald–Wolfowitz runs test (above/below median) for independence,
//  * lag-1 serial correlation,
//  * Marsaglia birthday spacings (clustering of the sampled id space),
//  * in-degree dispersion of the overlay views.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace nylon::metrics {

/// Regularized upper incomplete gamma Q(a, x); the chi-square survival
/// function is Q(k/2, x/2). Exposed for tests.
[[nodiscard]] double gamma_q(double a, double x);

/// Standard normal survival function P(Z > z).
[[nodiscard]] double normal_sf(double z);

/// Chi-square goodness-of-fit against the uniform distribution.
struct chi_square_result {
  double statistic = 0.0;
  std::size_t dof = 0;
  double p_value = 1.0;
};
/// `counts[i]` = observed occurrences of category i. Requires >= 2
/// categories and a positive total.
[[nodiscard]] chi_square_result chi_square_uniform(
    std::span<const std::uint64_t> counts);

/// Wald–Wolfowitz runs test on a binary projection (value >= median).
struct runs_test_result {
  std::uint64_t runs = 0;
  double expected_runs = 0.0;
  double z = 0.0;        ///< standardized statistic
  double p_value = 1.0;  ///< two-sided
};
[[nodiscard]] runs_test_result runs_test(std::span<const double> values);

/// Lag-1 serial correlation coefficient in [-1, 1] (0 for iid data).
[[nodiscard]] double serial_correlation(std::span<const double> values);

/// Marsaglia's birthday-spacings test: sort m samples drawn from
/// [0, population), take the m-1 adjacent spacings, and count how many
/// spacing values repeat. For uniform iid samples the repeat count is
/// asymptotically Poisson with lambda = m^3 / (4 * population); heavy
/// clustering (gossip views re-serving the same neighbourhood) inflates
/// it far beyond that.
struct birthday_spacings_result {
  std::uint64_t repeats = 0;    ///< duplicate spacings observed
  double lambda = 0.0;          ///< Poisson mean under uniformity
  double p_value = 1.0;         ///< upper tail P(X >= repeats)
};
[[nodiscard]] birthday_spacings_result birthday_spacings(
    std::span<const std::uint32_t> sampled_ids, std::size_t population);

/// Combined verdict over a stream of sampled peer ids.
struct battery_result {
  chi_square_result frequency;
  runs_test_result runs;
  birthday_spacings_result birthday;
  double serial = 0.0;
  std::size_t samples = 0;

  /// True when every test is consistent with uniform iid sampling at
  /// significance `alpha` (serial correlation threshold scales with n).
  [[nodiscard]] bool passed(double alpha = 0.01) const;
};

/// Runs the battery on sampled ids drawn from a population of
/// `population` peers (ids must be < population).
[[nodiscard]] battery_result run_battery(
    std::span<const std::uint32_t> sampled_ids, std::size_t population);

}  // namespace nylon::metrics
