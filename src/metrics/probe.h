// Named measurement probes: the bridge between a finished (or paused)
// runtime::scenario and the numbers the figure tables report. Each probe
// wraps one of the existing metric calls (measure_clusters /
// measure_views / measure_bandwidth / randomness / NAT-traversal
// statistics) as a registered `name -> scalar` function, so experiment
// specs can declare *which* measurements to record instead of hand-wiring
// the calls in a bench main.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/randomness.h"
#include "metrics/reachability.h"
#include "sim/time.h"

namespace nylon::runtime {
class scenario;
}  // namespace nylon::runtime

namespace nylon::metrics {

/// Everything a probe may look at. The oracle is built once per run and
/// shared across all probes evaluated on the same scenario state.
struct probe_context {
  probe_context(runtime::scenario& world_in,
                const reachability_oracle& oracle_in,
                sim::sim_time measure_window_in = 0)
      : world(world_in),
        oracle(oracle_in),
        measure_window(measure_window_in) {}

  runtime::scenario& world;
  const reachability_oracle& oracle;
  /// Simulated time since the transport's traffic counters were last
  /// reset; rate probes (bytes/s) return 0 when it is 0.
  sim::sim_time measure_window = 0;
  /// Randomness battery over one sampled-id stream, built lazily by the
  /// first sample_* probe and shared by the rest — the battery's tests
  /// must judge the *same* stream (sampling consumes peer rngs, so a
  /// rebuild per probe would judge a different one).
  mutable std::optional<battery_result> battery;
};

/// One registered probe: a named scalar measurement with a short
/// description (shown by `nylon_exp --list-probes`).
struct probe {
  std::string_view name;
  std::string_view description;
  double (*run)(const probe_context&);
};

/// Looks a probe up by name; nullptr when unknown.
[[nodiscard]] const probe* find_probe(std::string_view name) noexcept;

/// The full registry, in stable (alphabetical) order.
[[nodiscard]] std::span<const probe> all_probes() noexcept;

/// Evaluates `names` in order against one shared context. Throws
/// nylon::contract_error on an unknown name.
[[nodiscard]] std::vector<double> run_probes(
    std::span<const std::string> names, const probe_context& ctx);

}  // namespace nylon::metrics
