// Named measurement probes: the bridge between a finished (or paused)
// runtime::scenario and the numbers the figure tables report. Probes form
// a small typed taxonomy instead of a flat scalar registry:
//
//  * scalar       — one number (biggest cluster %, stale %, ...);
//  * per_class    — one number per peer class (public / natted), the
//                   Fig. 8 load-balance shape;
//  * distribution — moment + quantile summaries of a sample stream (RVP
//                   chain lengths for Fig. 9, in-degrees for §5);
//  * check        — a pass/fail invariant with a table cell and a
//                   one-line diagnostic (the §2.2 traversal table, the
//                   §5 correctness verdicts).
//
// Experiment specs declare *which* measurements to record by name; a
// `probe_selector` narrows a non-scalar probe to one scalar (a class key
// or a distribution stat) for table cells and seed aggregation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "metrics/randomness.h"
#include "metrics/reachability.h"
#include "sim/time.h"
#include "util/stats.h"

namespace nylon::runtime {
class scenario;
}  // namespace nylon::runtime

namespace nylon::metrics {

/// The four probe shapes. Scalar probes are the degenerate case the
/// registry consisted of before the taxonomy existed.
enum class probe_kind : std::uint8_t { scalar, per_class, distribution, check };

/// Display name ("scalar", "per_class", "distribution", "check").
[[nodiscard]] std::string_view to_string(probe_kind k) noexcept;

/// Moment (and, when the probe retains raw samples, quantile) summary of
/// a distribution probe's observations. Moments are computed with
/// util::running_stats in observation order, so a probe that replaces an
/// inline running_stats loop reproduces its floats bit-for-bit.
struct distribution_summary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// True when p50/p90/p99 are meaningful (raw samples were retained;
  /// stream-merged probes only carry moments).
  bool has_quantiles = false;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  /// stddev / mean (0 when the mean is 0) — the §5 "sigma/mean"
  /// dispersion cell.
  [[nodiscard]] double cv() const noexcept {
    return mean > 0.0 ? stddev / mean : 0.0;
  }
};

/// Moments-only summary of a streaming accumulator.
[[nodiscard]] distribution_summary summarize_stream(
    const util::running_stats& stats) noexcept;

/// Full summary (quantiles included) of raw samples; `stats` must have
/// accumulated exactly the same observations (kept separate so callers
/// control the float-op order of the moments).
[[nodiscard]] distribution_summary summarize_samples(
    const util::running_stats& stats, std::vector<double> samples);

/// Outcome of a check probe.
struct check_result {
  bool passed = true;
  std::string cell;    ///< table-cell text (e.g. "hole punching !")
  std::string detail;  ///< one-line diagnostic for the JSON report
};

/// The value a probe evaluates to; `kind` says which member is live.
struct probe_value {
  probe_kind kind = probe_kind::scalar;
  double scalar = 0.0;
  /// per_class: (class key, value) in the probe's declared key order.
  std::vector<std::pair<std::string, double>> classes;
  distribution_summary dist;
  check_result check;
};

/// Everything a probe may look at. The oracle is built once per run and
/// shared across all probes evaluated on the same scenario state. A
/// world-free context (params only) serves "static" probes such as the
/// packet-level traversal checks.
struct probe_context {
  probe_context(runtime::scenario& world_in,
                const reachability_oracle& oracle_in,
                sim::sim_time measure_window_in = 0)
      : measure_window(measure_window_in),
        world_(&world_in),
        oracle_(&oracle_in) {}

  /// World-free context: only probes with `needs_world == false` may run.
  explicit probe_context(std::map<std::string, std::string> params_in)
      : params(std::move(params_in)) {}

  [[nodiscard]] bool has_world() const noexcept { return world_ != nullptr; }
  /// Throw nylon::contract_error on a world-free context.
  [[nodiscard]] runtime::scenario& world() const;
  [[nodiscard]] const reachability_oracle& oracle() const;

  /// Simulated time since the transport's traffic counters were last
  /// reset; rate probes (bytes/s) return 0 when it is 0.
  sim::sim_time measure_window = 0;
  /// Probe parameters ('%'-prefixed spec keys), e.g. the NAT types of a
  /// traversal-table cell.
  std::map<std::string, std::string> params;
  /// Randomness battery over one sampled-id stream, built lazily by the
  /// first sample_* probe and shared by the rest — the battery's tests
  /// must judge the *same* stream (sampling consumes peer rngs, so a
  /// rebuild per probe would judge a different one).
  mutable std::optional<battery_result> battery;

 private:
  runtime::scenario* world_ = nullptr;
  const reachability_oracle* oracle_ = nullptr;
};

/// One registered probe: a named typed measurement with a short
/// description (shown by `nylon_exp --list-probes`).
struct probe {
  std::string_view name;
  std::string_view description;
  probe_kind kind = probe_kind::scalar;
  /// False when the probe evaluates without a simulated world ("static"
  /// specs): it reads only ctx.params.
  bool needs_world = true;
  /// per_class probes: comma-separated class keys they emit, in order.
  std::string_view class_keys = {};
  /// distribution probes: raw samples retained (quantile stats valid).
  bool quantiles = false;
  /// True when evaluating the probe is observation-only: const reads of
  /// the world, no rng draws, no peer state consumed. Only passive
  /// probes may ride a sim-time timeline — a mid-run evaluation of a
  /// non-passive probe (the randomness battery consumes peer rngs)
  /// would perturb the subsequent evolution and break the digest
  /// contract. End-of-run columns may use either.
  bool passive = false;
  probe_value (*run)(const probe_context&);
};

/// Looks a probe up by name; nullptr when unknown.
[[nodiscard]] const probe* find_probe(std::string_view name) noexcept;

/// The full registry, in stable (alphabetical) order.
[[nodiscard]] std::span<const probe> all_probes() noexcept;

/// A scalar view over a probe of any kind: per_class probes need a class
/// key, distribution probes a stat name, scalars neither. check probes
/// have no scalar view (their cell is text) — selecting one throws.
struct probe_selector {
  const probe* p = nullptr;
  std::string cls;   ///< per_class key ("public", "natted", "all")
  std::string stat;  ///< distribution stat (count|mean|stddev|min|max|
                     ///< cv|p50|p90|p99)
};

/// Resolves and *validates* a selector: unknown probes, a missing /
/// superfluous class or stat, an unknown class key, or a quantile stat
/// on a stream-only probe all throw nylon::contract_error with a
/// message naming the fix. Shared by spec validation and execution so
/// the two can never drift.
[[nodiscard]] probe_selector resolve_selector(std::string_view probe_name,
                                              std::string_view cls,
                                              std::string_view stat);

/// Extracts the selected scalar from an evaluated probe value.
[[nodiscard]] double extract_scalar(const probe_selector& sel,
                                    const probe_value& value);

/// Evaluates the probe and extracts in one step.
[[nodiscard]] double eval_scalar(const probe_selector& sel,
                                 const probe_context& ctx);

/// Evaluates scalar probes `names` in order against one shared context
/// (the pre-taxonomy interface; non-scalar probes throw — use
/// resolve_selector for those). Throws on an unknown name.
[[nodiscard]] std::vector<double> run_probes(
    std::span<const std::string> names, const probe_context& ctx);

}  // namespace nylon::metrics
