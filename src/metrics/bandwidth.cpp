#include "metrics/bandwidth.h"

#include "util/contracts.h"

namespace nylon::metrics {

bandwidth_report measure_bandwidth(
    const net::transport& transport,
    std::span<const std::unique_ptr<gossip::peer>> peers,
    sim::sim_time window) {
  NYLON_EXPECTS(window > 0);
  bandwidth_report out;
  const double seconds = sim::to_seconds(window);

  double total = 0.0;
  double total_public = 0.0;
  double total_natted = 0.0;
  double total_sent = 0.0;
  double total_received = 0.0;

  for (std::size_t i = 0; i < peers.size(); ++i) {
    const auto id = static_cast<net::node_id>(i);
    if (!transport.alive(id)) continue;
    const net::node_traffic& t = transport.traffic(id);
    const double bytes =
        static_cast<double>(t.bytes_sent + t.bytes_received);
    total += bytes;
    total_sent += static_cast<double>(t.bytes_sent);
    total_received += static_cast<double>(t.bytes_received);
    if (nat::is_natted(transport.type_of(id))) {
      ++out.natted_peers;
      total_natted += bytes;
    } else {
      ++out.public_peers;
      total_public += bytes;
    }
  }

  const std::size_t alive = out.public_peers + out.natted_peers;
  if (alive == 0) return out;
  out.all_bytes_per_s = total / static_cast<double>(alive) / seconds;
  out.sent_bytes_per_s = total_sent / static_cast<double>(alive) / seconds;
  out.received_bytes_per_s =
      total_received / static_cast<double>(alive) / seconds;
  if (out.public_peers > 0) {
    out.public_bytes_per_s =
        total_public / static_cast<double>(out.public_peers) / seconds;
  }
  if (out.natted_peers > 0) {
    out.natted_bytes_per_s =
        total_natted / static_cast<double>(out.natted_peers) / seconds;
  }
  return out;
}

}  // namespace nylon::metrics
