#include "metrics/reachability.h"

#include "core/nylon_peer.h"
#include "util/contracts.h"

namespace nylon::metrics {

namespace {
constexpr int max_chain = 32;

bool directly_addressable(const gossip::node_descriptor& d) noexcept {
  return d.type == nat::nat_type::open || d.type == nat::nat_type::full_cone;
}
}  // namespace

reachability_oracle::reachability_oracle(
    const net::transport& transport,
    std::span<const std::unique_ptr<gossip::peer>> peers)
    : transport_(transport), peers_(peers) {
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    NYLON_EXPECTS(peers_[i] != nullptr);
    NYLON_EXPECTS(peers_[i]->id() == static_cast<net::node_id>(i));
  }
}

int reachability_oracle::walk_chain(
    net::node_id from, const gossip::node_descriptor& target) const {
  // Follow next_RVP pointers across peers, checking that every physical
  // hop would actually be delivered under current NAT state.
  net::node_id cur = from;
  int hops = 0;
  while (hops <= max_chain) {
    const auto* nylon = dynamic_cast<const core::nylon_peer*>(
        peers_[cur].get());
    if (nylon == nullptr) return -1;  // chain crosses a non-Nylon peer
    const auto hop = nylon->routes().next_rvp(
        target.id, transport_.scheduler_now());
    if (!hop) return -1;
    if (!transport_.alive(hop->rvp)) return -1;
    if (!transport_.would_deliver(cur, hop->address).has_value()) return -1;
    if (hop->rvp == target.id) return hops;  // arrived
    cur = hop->rvp;
    ++hops;
  }
  return -1;
}

bool reachability_oracle::can_shuffle(
    net::node_id from, const gossip::node_descriptor& target) const {
  return chain_length(from, target) >= 0;
}

int reachability_oracle::chain_length(
    net::node_id from, const gossip::node_descriptor& target) const {
  NYLON_EXPECTS(from < peers_.size());
  NYLON_EXPECTS(target.id < peers_.size());
  if (!transport_.alive(from) || !transport_.alive(target.id)) return -1;

  if (directly_addressable(target)) {
    return transport_.would_deliver(from, target.addr).has_value() ? 0 : -1;
  }

  const auto* nylon =
      dynamic_cast<const core::nylon_peer*>(peers_[from].get());
  if (nylon == nullptr) {
    // NAT-oblivious baseline: the REQUEST goes to the advertised endpoint
    // and the RESPONSE retraces the fresh session, so reachability is
    // exactly request deliverability (analysis in DESIGN.md §3).
    return transport_.would_deliver(from, target.addr).has_value() ? 0 : -1;
  }

  // Nylon: a live direct hole, or a walkable RVP chain. For the hole
  // punching branch the PING/PONG handshake succeeds whenever the chain
  // delivers the OPEN_HOLE (the relay-only NAT combinations are the ones
  // Fig. 6 routes through the chain anyway).
  const auto hop =
      nylon->routes().next_rvp(target.id, transport_.scheduler_now());
  if (hop && hop->rvp == target.id) {
    return transport_.would_deliver(from, hop->address).has_value() ? 0 : -1;
  }
  return walk_chain(from, target);
}

}  // namespace nylon::metrics
