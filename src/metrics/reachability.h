// The staleness oracle: decides, without mutating any state, whether a
// peer could complete a shuffle with a view entry *right now*. It walks
// the exact decision path the protocols use (direct send, Nylon RVP
// chain, hole punching) against the transport's dry-run queries, so the
// metric and the mechanics can never drift apart.
//
// Definitions (DESIGN.md §3):
//  * a view entry q of p is STALE when can_shuffle(p, q) is false;
//  * the overlay graph used for Figs. 2 and 10 has an edge p -> q exactly
//    when can_shuffle(p, q) is true.
#pragma once

#include <memory>
#include <span>

#include "gossip/node_descriptor.h"
#include "gossip/peer.h"
#include "net/transport.h"

namespace nylon::metrics {

class reachability_oracle {
 public:
  /// `peers` must be indexed by node id (scenario invariant) and outlive
  /// the oracle, as must the transport.
  reachability_oracle(const net::transport& transport,
                      std::span<const std::unique_ptr<gossip::peer>> peers);

  /// Could peer `from` complete a shuffle with `target` now?
  [[nodiscard]] bool can_shuffle(net::node_id from,
                                 const gossip::node_descriptor& target) const;

  /// Length of the RVP chain `from` would use towards `target` (0 when
  /// direct, -1 when unreachable). Used for chain-length cross-checks.
  [[nodiscard]] int chain_length(net::node_id from,
                                 const gossip::node_descriptor& target) const;

 private:
  /// Walks the RVP chain from `from` to `target`; returns the number of
  /// intermediate hops, or -1 when the chain is broken.
  [[nodiscard]] int walk_chain(net::node_id from,
                               const gossip::node_descriptor& target) const;

  const net::transport& transport_;
  std::span<const std::unique_ptr<gossip::peer>> peers_;
};

}  // namespace nylon::metrics
