#include "metrics/graph_analysis.h"

#include "util/contracts.h"
#include "util/union_find.h"

namespace nylon::metrics {

cluster_metrics measure_clusters(
    const net::transport& transport,
    std::span<const std::unique_ptr<gossip::peer>> peers,
    const reachability_oracle& oracle) {
  cluster_metrics out;
  util::union_find components(peers.size());
  std::vector<bool> alive(peers.size(), false);
  std::uint64_t usable_edges = 0;

  for (std::size_t i = 0; i < peers.size(); ++i) {
    const auto id = static_cast<net::node_id>(i);
    if (!transport.alive(id)) continue;
    alive[i] = true;
    ++out.alive_peers;
    for (const gossip::view_entry& e : peers[i]->current_view().entries()) {
      if (e.peer.id >= peers.size()) continue;
      if (!transport.alive(e.peer.id)) continue;
      if (!oracle.can_shuffle(id, e.peer)) continue;
      ++usable_edges;
      components.unite(i, e.peer.id);
    }
  }

  if (out.alive_peers == 0) return out;

  // Components among alive peers only.
  std::vector<std::size_t> sizes(peers.size(), 0);
  for (std::size_t i = 0; i < peers.size(); ++i) {
    if (alive[i]) ++sizes[components.find(i)];
  }
  for (std::size_t i = 0; i < peers.size(); ++i) {
    if (sizes[i] == 0) continue;
    ++out.cluster_count;
    if (sizes[i] == 1) ++out.isolated_peers;
    out.biggest_cluster = std::max(out.biggest_cluster, sizes[i]);
  }
  out.biggest_cluster_pct = 100.0 * static_cast<double>(out.biggest_cluster) /
                            static_cast<double>(out.alive_peers);
  out.mean_usable_out_degree = static_cast<double>(usable_edges) /
                               static_cast<double>(out.alive_peers);
  return out;
}

view_metrics measure_views(
    const net::transport& transport,
    std::span<const std::unique_ptr<gossip::peer>> peers,
    const reachability_oracle& oracle) {
  view_metrics out;
  for (std::size_t i = 0; i < peers.size(); ++i) {
    const auto id = static_cast<net::node_id>(i);
    if (!transport.alive(id)) continue;
    for (const gossip::view_entry& e : peers[i]->current_view().entries()) {
      ++out.total_entries;
      const bool dead =
          e.peer.id >= peers.size() || !transport.alive(e.peer.id);
      if (dead) {
        ++out.dead_entries;
        ++out.stale_entries;
        continue;
      }
      if (!oracle.can_shuffle(id, e.peer)) {
        ++out.stale_entries;
        continue;
      }
      ++out.fresh_entries;
      if (nat::is_natted(e.peer.type)) ++out.fresh_natted_entries;
    }
  }
  if (out.total_entries > 0) {
    out.stale_pct = 100.0 * static_cast<double>(out.stale_entries) /
                    static_cast<double>(out.total_entries);
  }
  if (out.fresh_entries > 0) {
    out.fresh_natted_pct = 100.0 *
                           static_cast<double>(out.fresh_natted_entries) /
                           static_cast<double>(out.fresh_entries);
  }
  return out;
}

std::vector<std::size_t> in_degrees(
    const net::transport& transport,
    std::span<const std::unique_ptr<gossip::peer>> peers) {
  std::vector<std::size_t> degree(peers.size(), 0);
  for (std::size_t i = 0; i < peers.size(); ++i) {
    if (!transport.alive(static_cast<net::node_id>(i))) continue;
    for (const gossip::view_entry& e : peers[i]->current_view().entries()) {
      if (e.peer.id < degree.size()) ++degree[e.peer.id];
    }
  }
  return degree;
}

class_degree_report in_degrees_by_class(
    const net::transport& transport,
    std::span<const std::unique_ptr<gossip::peer>> peers) {
  const std::vector<std::size_t> degree = in_degrees(transport, peers);
  class_degree_report out;
  std::size_t total_public = 0;
  std::size_t total_natted = 0;
  for (std::size_t i = 0; i < peers.size(); ++i) {
    const auto id = static_cast<net::node_id>(i);
    if (!transport.alive(id)) continue;
    if (nat::is_natted(transport.type_of(id))) {
      ++out.natted_peers;
      total_natted += degree[i];
    } else {
      ++out.public_peers;
      total_public += degree[i];
    }
  }
  if (out.public_peers > 0) {
    out.public_mean = static_cast<double>(total_public) /
                      static_cast<double>(out.public_peers);
  }
  if (out.natted_peers > 0) {
    out.natted_mean = static_cast<double>(total_natted) /
                      static_cast<double>(out.natted_peers);
  }
  const std::size_t alive = out.public_peers + out.natted_peers;
  if (alive > 0) {
    out.all_mean = static_cast<double>(total_public + total_natted) /
                   static_cast<double>(alive);
  }
  return out;
}

}  // namespace nylon::metrics
