// Overlay-graph metrics: connected components over the feasible-
// communication graph (Figs. 2 and 10), staleness ratios (Fig. 3), the
// natted-reference ratio (Fig. 4) and degree statistics.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "gossip/peer.h"
#include "metrics/reachability.h"
#include "net/transport.h"

namespace nylon::metrics {

/// Connectivity of the overlay (edges = view entries the owner could
/// actually shuffle with, per the oracle).
struct cluster_metrics {
  std::size_t alive_peers = 0;
  std::size_t biggest_cluster = 0;
  double biggest_cluster_pct = 0.0;  ///< % of alive peers (Figs. 2, 10)
  std::size_t cluster_count = 0;
  std::size_t isolated_peers = 0;  ///< alive peers in singleton components
  double mean_usable_out_degree = 0.0;
};

/// Staleness and sample-composition metrics over all alive peers' views.
struct view_metrics {
  std::uint64_t total_entries = 0;
  std::uint64_t stale_entries = 0;
  std::uint64_t dead_entries = 0;        ///< entries pointing at departed peers
  std::uint64_t fresh_entries = 0;       ///< total - stale
  std::uint64_t fresh_natted_entries = 0;
  double stale_pct = 0.0;                ///< Fig. 3
  double fresh_natted_pct = 0.0;         ///< Fig. 4 (of fresh entries)
};

/// Weakly-connected components of the feasible-communication graph.
[[nodiscard]] cluster_metrics measure_clusters(
    const net::transport& transport,
    std::span<const std::unique_ptr<gossip::peer>> peers,
    const reachability_oracle& oracle);

/// Stale / natted-reference ratios (oracle-based).
[[nodiscard]] view_metrics measure_views(
    const net::transport& transport,
    std::span<const std::unique_ptr<gossip::peer>> peers,
    const reachability_oracle& oracle);

/// In-degree of every node over alive peers' views (randomness checks:
/// a healthy sampling protocol keeps this distribution tight).
[[nodiscard]] std::vector<std::size_t> in_degrees(
    const net::transport& transport,
    std::span<const std::unique_ptr<gossip::peer>> peers);

/// Mean in-degree split by peer class (alive peers only) — the gossip
/// in-load counterpart of the Fig. 8 bandwidth split.
struct class_degree_report {
  double public_mean = 0.0;
  double natted_mean = 0.0;
  double all_mean = 0.0;
  std::size_t public_peers = 0;
  std::size_t natted_peers = 0;
};

[[nodiscard]] class_degree_report in_degrees_by_class(
    const net::transport& transport,
    std::span<const std::unique_ptr<gossip::peer>> peers);

}  // namespace nylon::metrics
