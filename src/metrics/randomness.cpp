#include "metrics/randomness.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace nylon::metrics {

namespace {

/// Lower-regularized gamma P(a, x) via its power series (x < a + 1).
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * 1e-14) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Upper-regularized gamma Q(a, x) via continued fraction (x >= a + 1).
double gamma_q_cf(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-14) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double gamma_q(double a, double x) {
  NYLON_EXPECTS(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double normal_sf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

chi_square_result chi_square_uniform(
    std::span<const std::uint64_t> counts) {
  NYLON_EXPECTS(counts.size() >= 2);
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  NYLON_EXPECTS(total > 0);

  chi_square_result out;
  const double expected =
      static_cast<double>(total) / static_cast<double>(counts.size());
  for (const std::uint64_t c : counts) {
    const double diff = static_cast<double>(c) - expected;
    out.statistic += diff * diff / expected;
  }
  out.dof = counts.size() - 1;
  out.p_value =
      gamma_q(static_cast<double>(out.dof) / 2.0, out.statistic / 2.0);
  return out;
}

runs_test_result runs_test(std::span<const double> values) {
  runs_test_result out;
  if (values.size() < 2) return out;

  std::vector<double> sorted(values.begin(), values.end());
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end());
  const double median = sorted[sorted.size() / 2];

  std::uint64_t n_above = 0;
  std::uint64_t n_below = 0;
  bool prev = false;
  bool first = true;
  for (const double v : values) {
    const bool above = v >= median;
    if (above) {
      ++n_above;
    } else {
      ++n_below;
    }
    if (first || above != prev) ++out.runs;
    prev = above;
    first = false;
  }
  if (n_above == 0 || n_below == 0) return out;

  const double na = static_cast<double>(n_above);
  const double nb = static_cast<double>(n_below);
  const double n = na + nb;
  out.expected_runs = 2.0 * na * nb / n + 1.0;
  const double variance =
      2.0 * na * nb * (2.0 * na * nb - n) / (n * n * (n - 1.0));
  if (variance <= 0.0) return out;
  out.z = (static_cast<double>(out.runs) - out.expected_runs) /
          std::sqrt(variance);
  out.p_value = 2.0 * normal_sf(std::abs(out.z));
  return out;
}

double serial_correlation(std::span<const double> values) {
  if (values.size() < 3) return 0.0;
  const std::size_t n = values.size();
  double mean = 0.0;
  for (const double v : values) mean += v;
  mean /= static_cast<double>(n);

  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = values[i] - mean;
    den += d * d;
    if (i + 1 < n) num += d * (values[i + 1] - mean);
  }
  if (den == 0.0) return 0.0;
  return num / den;
}

birthday_spacings_result birthday_spacings(
    std::span<const std::uint32_t> sampled_ids, std::size_t population) {
  NYLON_EXPECTS(population >= 2);
  birthday_spacings_result out;
  const std::size_t m = sampled_ids.size();
  if (m < 3) return out;

  std::vector<std::uint32_t> sorted(sampled_ids.begin(), sampled_ids.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::uint32_t> spacings;
  spacings.reserve(m - 1);
  for (std::size_t i = 1; i < m; ++i) {
    NYLON_EXPECTS(sorted[i] < population);
    spacings.push_back(sorted[i] - sorted[i - 1]);
  }
  std::sort(spacings.begin(), spacings.end());
  for (std::size_t i = 1; i < spacings.size(); ++i) {
    if (spacings[i] == spacings[i - 1]) ++out.repeats;
  }

  const double md = static_cast<double>(m);
  out.lambda = md * md * md / (4.0 * static_cast<double>(population));
  // Poisson upper tail: P(X >= k) = 1 - CDF(k - 1) = 1 - Q(k, lambda).
  out.p_value = out.repeats == 0
                    ? 1.0
                    : 1.0 - gamma_q(static_cast<double>(out.repeats),
                                    out.lambda);
  return out;
}

bool battery_result::passed(double alpha) const {
  if (samples == 0) return false;
  if (frequency.p_value < alpha) return false;
  if (runs.p_value < alpha) return false;
  if (birthday.p_value < alpha) return false;
  // Serial correlation of iid data has stddev ~ 1/sqrt(n); accept within
  // ~3 sigma (alpha-level agnostic but adequate as a smoke test).
  const double limit = 3.0 / std::sqrt(static_cast<double>(samples));
  return std::abs(serial) <= limit;
}

battery_result run_battery(std::span<const std::uint32_t> sampled_ids,
                           std::size_t population) {
  NYLON_EXPECTS(population >= 2);
  battery_result out;
  out.samples = sampled_ids.size();
  if (sampled_ids.empty()) return out;

  // Bucket counts: keep expected count per bucket >= ~10 by merging ids
  // into at most n_samples/10 buckets.
  const std::size_t max_buckets =
      std::max<std::size_t>(2, sampled_ids.size() / 10);
  const std::size_t buckets = std::min(population, max_buckets);
  std::vector<std::uint64_t> counts(buckets, 0);
  std::vector<double> as_doubles;
  as_doubles.reserve(sampled_ids.size());
  for (const std::uint32_t id : sampled_ids) {
    NYLON_EXPECTS(id < population);
    const std::size_t bucket =
        static_cast<std::size_t>(static_cast<std::uint64_t>(id) * buckets /
                                 population);
    ++counts[bucket];
    as_doubles.push_back(static_cast<double>(id));
  }
  out.frequency = chi_square_uniform(counts);
  out.runs = runs_test(as_doubles);
  out.serial = serial_correlation(as_doubles);
  // Birthday spacings is only asymptotically Poisson while the sample is
  // sparse in the id space (m^3 ~ population); the full stream usually is
  // not, so test a prefix sized for lambda ~ 8. The prefix comes from
  // independent early samples, so it is a fair subsample.
  const auto target = static_cast<std::size_t>(std::cbrt(
      4.0 * 8.0 * static_cast<double>(population)));
  const std::size_t bd_m =
      std::min(sampled_ids.size(), std::max<std::size_t>(8, target));
  out.birthday = birthday_spacings(sampled_ids.first(bd_m), population);
  return out;
}

}  // namespace nylon::metrics
