// Packet-level verification of the §2.2 traversal table: for a (source
// NAT type, target NAT type) pair, executes the prescribed technique's
// exact message sequence — PING, OPEN_HOLE via a public rendez-vous peer,
// PONG, REQUEST, RESPONSE — through real nat_device instances and reports
// whether the exchange completed. bench_table1_traversal prints the table
// and the tests assert every cell.
#pragma once

#include "nat/nat_type.h"
#include "nat/traversal.h"

namespace nylon::metrics {

/// Outcome of executing a traversal technique.
struct traversal_outcome {
  bool request_delivered = false;   ///< REQUEST reached the target
  bool response_delivered = false;  ///< RESPONSE made it back

  [[nodiscard]] bool exchange_completed() const noexcept {
    return request_delivered && response_delivered;
  }
};

/// Runs `technique` for a `src`-type peer contacting a `dst`-type peer
/// (with one public RVP both have registered with), in an isolated
/// mini-simulation.
[[nodiscard]] traversal_outcome execute_technique(
    nat::nat_type src, nat::nat_type dst, nat::traversal_technique technique);

/// Convenience: executes the technique the table prescribes for the pair.
[[nodiscard]] traversal_outcome execute_prescribed(nat::nat_type src,
                                                   nat::nat_type dst);

/// One cell of the §2.2 table: the prescribed technique plus its
/// packet-level verification outcome (the `traversal_prescribed` check
/// probe renders this).
struct prescribed_result {
  nat::traversal_technique technique;
  traversal_outcome outcome;
};

[[nodiscard]] prescribed_result run_prescribed(nat::nat_type src,
                                               nat::nat_type dst);

}  // namespace nylon::metrics
