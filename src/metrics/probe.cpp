#include "metrics/probe.h"

#include <algorithm>
#include <array>
#include <cstdint>

#include "core/nylon_peer.h"
#include "metrics/bandwidth.h"
#include "metrics/graph_analysis.h"
#include "metrics/randomness.h"
#include "runtime/scenario.h"
#include "util/contracts.h"
#include "util/stats.h"

namespace nylon::metrics {

namespace {

cluster_metrics clusters_of(const probe_context& ctx) {
  return measure_clusters(ctx.world.transport(), ctx.world.peers(),
                          ctx.oracle);
}

view_metrics views_of(const probe_context& ctx) {
  return measure_views(ctx.world.transport(), ctx.world.peers(), ctx.oracle);
}

bandwidth_report bandwidth_of(const probe_context& ctx) {
  if (ctx.measure_window <= 0) return bandwidth_report{};
  return measure_bandwidth(ctx.world.transport(), ctx.world.peers(),
                           ctx.measure_window);
}

/// Aggregated Nylon hole-punching statistics over every peer created in
/// the run (dead peers keep their counters, exactly like the hand-rolled
/// ablation benches summed them). All zero for non-Nylon protocols.
struct punch_totals {
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  std::uint64_t expired = 0;
  util::running_stats chains;
};

punch_totals punches_of(const probe_context& ctx) {
  punch_totals out;
  for (const auto& p : ctx.world.peers()) {
    const auto* np = dynamic_cast<const core::nylon_peer*>(p.get());
    if (np == nullptr) continue;
    out.started += np->nat_stats().punches_started;
    out.completed += np->nat_stats().punches_completed;
    out.expired += np->nat_stats().punches_expired;
    out.chains.merge(np->nat_stats().punch_chain_hops);
  }
  return out;
}

double pct(std::uint64_t part, std::uint64_t whole) {
  return whole > 0
             ? 100.0 * static_cast<double>(part) / static_cast<double>(whole)
             : 0.0;
}

/// The sampled-id stream the randomness battery judges: one sample()
/// per peer per pass (id order), eight passes, so consecutive stream
/// elements come from independent views — the exact stream the §5
/// correctness bench used. Draws consume each peer's rng, which is fine
/// at probe time (nothing simulates afterwards) and deterministic
/// because probes evaluate in declaration order. Built once per context
/// and cached, so every sample_* probe of one run judges the same
/// stream.
const battery_result& battery_of(const probe_context& ctx) {
  if (ctx.battery.has_value()) return *ctx.battery;
  const auto peers = ctx.world.peers();
  if (peers.size() < 2) {
    ctx.battery = battery_result{};
    return *ctx.battery;
  }
  std::vector<std::uint32_t> sampled;
  sampled.reserve(peers.size() * 8);
  for (int pass = 0; pass < 8; ++pass) {
    for (const auto& p : peers) {
      if (const auto s = p->sample()) sampled.push_back(s->id);
    }
  }
  ctx.battery = run_battery(sampled, peers.size());
  return *ctx.battery;
}

// Registry, alphabetical by name. Every entry is a plain function so the
// table stays constexpr-constructible and trivially inspectable.
constexpr std::array probes{
    probe{"all_bytes_per_s",
          "mean bytes/s sent+received per alive peer (Fig. 7)",
          [](const probe_context& ctx) {
            return bandwidth_of(ctx).all_bytes_per_s;
          }},
    probe{"alive_count", "number of alive peers",
          [](const probe_context& ctx) {
            return static_cast<double>(ctx.world.alive_count());
          }},
    probe{"biggest_cluster_pct",
          "biggest connected cluster, % of alive peers (Figs. 2, 10)",
          [](const probe_context& ctx) {
            return clusters_of(ctx).biggest_cluster_pct;
          }},
    probe{"cluster_count", "number of connected clusters",
          [](const probe_context& ctx) {
            return static_cast<double>(clusters_of(ctx).cluster_count);
          }},
    probe{"dead_pct", "% of view entries pointing at departed peers",
          [](const probe_context& ctx) {
            const view_metrics v = views_of(ctx);
            return pct(v.dead_entries, v.total_entries);
          }},
    probe{"fresh_natted_pct",
          "% of non-stale view entries pointing at natted peers (Fig. 4)",
          [](const probe_context& ctx) {
            return views_of(ctx).fresh_natted_pct;
          }},
    probe{"indegree_chi2_p",
          "chi-square p-value of the in-degree distribution vs uniform",
          [](const probe_context& ctx) {
            const std::vector<std::size_t> degrees =
                in_degrees(ctx.world.transport(), ctx.world.peers());
            if (degrees.size() < 2) return 1.0;
            std::vector<std::uint64_t> counts(degrees.begin(), degrees.end());
            std::uint64_t total = 0;
            for (const std::uint64_t c : counts) total += c;
            if (total == 0) return 1.0;
            return chi_square_uniform(counts).p_value;
          }},
    probe{"mean_punch_chain",
          "mean rendez-vous chain length of completed punches (Nylon)",
          [](const probe_context& ctx) {
            const punch_totals t = punches_of(ctx);
            return t.chains.count() ? t.chains.mean() : 0.0;
          }},
    probe{"mean_usable_out_degree",
          "mean usable (reachable, fresh) view out-degree",
          [](const probe_context& ctx) {
            return clusters_of(ctx).mean_usable_out_degree;
          }},
    probe{"natted_bytes_per_s", "mean bytes/s per natted peer (Fig. 8)",
          [](const probe_context& ctx) {
            return bandwidth_of(ctx).natted_bytes_per_s;
          }},
    probe{"public_bytes_per_s", "mean bytes/s per public peer (Fig. 8)",
          [](const probe_context& ctx) {
            return bandwidth_of(ctx).public_bytes_per_s;
          }},
    probe{"punch_expired_pct",
          "% of hole punches that expired without a PONG (traversal "
          "failures, Nylon)",
          [](const probe_context& ctx) {
            const punch_totals t = punches_of(ctx);
            return pct(t.expired, t.started);
          }},
    probe{"punch_success_pct",
          "% of started hole punches that completed (Nylon)",
          [](const probe_context& ctx) {
            const punch_totals t = punches_of(ctx);
            return pct(t.completed, t.started);
          }},
    probe{"received_bytes_per_s", "mean receive-side bytes/s per peer",
          [](const probe_context& ctx) {
            return bandwidth_of(ctx).received_bytes_per_s;
          }},
    probe{"sample_birthday_p",
          "birthday-spacings p-value of the sampled-id stream (battery)",
          [](const probe_context& ctx) {
            return battery_of(ctx).birthday.p_value;
          }},
    probe{"sample_chi2_p",
          "chi-square frequency p-value of the sampled-id stream (battery)",
          [](const probe_context& ctx) {
            return battery_of(ctx).frequency.p_value;
          }},
    probe{"sample_runs_p",
          "runs-test p-value of the sampled-id stream (battery)",
          [](const probe_context& ctx) {
            return battery_of(ctx).runs.p_value;
          }},
    probe{"sample_serial",
          "lag-1 serial correlation of the sampled-id stream (battery)",
          [](const probe_context& ctx) { return battery_of(ctx).serial; }},
    probe{"sent_bytes_per_s", "mean send-side bytes/s per peer",
          [](const probe_context& ctx) {
            return bandwidth_of(ctx).sent_bytes_per_s;
          }},
    probe{"shuffle_success_pct",
          "% of initiated shuffles that got a response",
          [](const probe_context& ctx) {
            std::uint64_t initiated = 0;
            std::uint64_t responses = 0;
            for (const auto& p : ctx.world.peers()) {
              initiated += p->stats().initiated;
              responses += p->stats().responses_received;
            }
            return pct(responses, initiated);
          }},
    probe{"stale_pct", "% of stale view references (Fig. 3)",
          [](const probe_context& ctx) { return views_of(ctx).stale_pct; }},
};

}  // namespace

const probe* find_probe(std::string_view name) noexcept {
  for (const probe& p : probes) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::span<const probe> all_probes() noexcept { return probes; }

std::vector<double> run_probes(std::span<const std::string> names,
                               const probe_context& ctx) {
  std::vector<double> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    const probe* p = find_probe(name);
    if (p == nullptr) {
      throw contract_error("unknown probe \"" + name + "\"");
    }
    out.push_back(p->run(ctx));
  }
  return out;
}

}  // namespace nylon::metrics
