#include "metrics/probe.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>

#include "core/nylon_peer.h"
#include "metrics/bandwidth.h"
#include "metrics/graph_analysis.h"
#include "metrics/randomness.h"
#include "metrics/traversal_check.h"
#include "nat/nat_type.h"
#include "runtime/scenario.h"
#include "util/contracts.h"
#include "util/stats.h"

namespace nylon::metrics {

std::string_view to_string(probe_kind k) noexcept {
  switch (k) {
    case probe_kind::scalar: return "scalar";
    case probe_kind::per_class: return "per_class";
    case probe_kind::distribution: return "distribution";
    case probe_kind::check: return "check";
  }
  return "?";
}

distribution_summary summarize_stream(
    const util::running_stats& stats) noexcept {
  distribution_summary out;
  out.count = stats.count();
  if (out.count == 0) return out;
  out.mean = stats.mean();
  out.stddev = stats.stddev();
  out.min = stats.min();
  out.max = stats.max();
  return out;
}

distribution_summary summarize_samples(const util::running_stats& stats,
                                       std::vector<double> samples) {
  distribution_summary out = summarize_stream(stats);
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  out.has_quantiles = true;
  out.p50 = util::percentile_sorted(samples, 0.5);
  out.p90 = util::percentile_sorted(samples, 0.9);
  out.p99 = util::percentile_sorted(samples, 0.99);
  return out;
}

runtime::scenario& probe_context::world() const {
  if (world_ == nullptr) {
    throw contract_error(
        "probe context has no simulated world (static evaluation)");
  }
  return *world_;
}

const reachability_oracle& probe_context::oracle() const {
  if (oracle_ == nullptr) {
    throw contract_error(
        "probe context has no reachability oracle (static evaluation)");
  }
  return *oracle_;
}

namespace {

cluster_metrics clusters_of(const probe_context& ctx) {
  return measure_clusters(ctx.world().transport(), ctx.world().peers(),
                          ctx.oracle());
}

view_metrics views_of(const probe_context& ctx) {
  return measure_views(ctx.world().transport(), ctx.world().peers(),
                       ctx.oracle());
}

bandwidth_report bandwidth_of(const probe_context& ctx) {
  if (ctx.measure_window <= 0) return bandwidth_report{};
  return measure_bandwidth(ctx.world().transport(), ctx.world().peers(),
                           ctx.measure_window);
}

double pct(std::uint64_t part, std::uint64_t whole) {
  return whole > 0
             ? 100.0 * static_cast<double>(part) / static_cast<double>(whole)
             : 0.0;
}

/// The sampled-id stream the randomness battery judges: one sample()
/// per peer per pass (id order), eight passes, so consecutive stream
/// elements come from independent views — the exact stream the §5
/// correctness bench used. Draws consume each peer's rng, which is fine
/// at probe time (nothing simulates afterwards) and deterministic
/// because probes evaluate in declaration order. Built once per context
/// and cached, so every sample_* probe of one run judges the same
/// stream.
const battery_result& battery_of(const probe_context& ctx) {
  if (ctx.battery.has_value()) return *ctx.battery;
  const auto peers = ctx.world().peers();
  if (peers.size() < 2) {
    ctx.battery = battery_result{};
    return *ctx.battery;
  }
  std::vector<std::uint32_t> sampled;
  sampled.reserve(peers.size() * 8);
  for (int pass = 0; pass < 8; ++pass) {
    for (const auto& p : peers) {
      if (const auto s = p->sample()) sampled.push_back(s->id);
    }
  }
  ctx.battery = run_battery(sampled, peers.size());
  return *ctx.battery;
}

// Constructors for the typed values, keeping registry entries terse.
probe_value sv(double v) {
  probe_value out;
  out.scalar = v;
  return out;
}

probe_value classes_value(
    std::vector<std::pair<std::string, double>> classes) {
  probe_value out;
  out.kind = probe_kind::per_class;
  out.classes = std::move(classes);
  return out;
}

probe_value dist_value(distribution_summary dist) {
  probe_value out;
  out.kind = probe_kind::distribution;
  out.dist = dist;
  return out;
}

probe_value check_value(check_result check) {
  probe_value out;
  out.kind = probe_kind::check;
  out.check = std::move(check);
  return out;
}

std::string fmt1(const char* pattern, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, pattern, v);
  return buf;
}

const std::string& require_param(const probe_context& ctx, const char* name,
                                 const char* probe_name) {
  const auto it = ctx.params.find(name);
  if (it == ctx.params.end()) {
    throw contract_error(std::string("probe \"") + probe_name +
                         "\" needs a \"%" + name +
                         "\" parameter (a '%'-prefixed axis or set key)");
  }
  return it->second;
}

nat::nat_type nat_param(const probe_context& ctx, const char* name,
                        const char* probe_name) {
  const std::string& token = require_param(ctx, name, probe_name);
  const auto parsed = nat::nat_type_from_string(token);
  if (!parsed.has_value()) {
    throw contract_error(std::string("probe \"") + probe_name + "\": \"%" +
                         name + "\" value \"" + token +
                         "\" is not a NAT type (public | FC | RC | PRC | "
                         "SYM)");
  }
  return *parsed;
}

// Registry, alphabetical by name. Every entry is a plain function so the
// table stays constexpr-constructible and trivially inspectable.
constexpr std::array probes{
    probe{.name = "all_bytes_per_s",
          .description = "mean bytes/s sent+received per alive peer (Fig. 7)",
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                return sv(bandwidth_of(ctx).all_bytes_per_s);
              }},
    probe{.name = "alive_count",
          .description = "number of alive peers",
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                return sv(static_cast<double>(ctx.world().alive_count()));
              }},
    probe{.name = "biggest_cluster_pct",
          .description =
              "biggest connected cluster, % of alive peers (Figs. 2, 10)",
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                return sv(clusters_of(ctx).biggest_cluster_pct);
              }},
    probe{.name = "check_connected",
          .description =
              "passes when the overlay forms a single cluster (Sec. 5)",
          .kind = probe_kind::check,
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                const cluster_metrics m = clusters_of(ctx);
                check_result c;
                c.passed = m.cluster_count <= 1;
                c.cell = c.passed ? "ok" : "split";
                c.detail = "clusters=" + std::to_string(m.cluster_count) +
                           " biggest=" +
                           fmt1("%.1f", m.biggest_cluster_pct) +
                           "% of alive";
                return check_value(std::move(c));
              }},
    probe{.name = "check_no_dead_refs",
          .description =
              "passes when no view entry points at a departed peer",
          .kind = probe_kind::check,
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                const view_metrics v = views_of(ctx);
                check_result c;
                c.passed = v.dead_entries == 0;
                c.cell = c.passed ? "ok" : "dead refs";
                c.detail = std::to_string(v.dead_entries) + " of " +
                           std::to_string(v.total_entries) +
                           " view entries point at departed peers";
                return check_value(std::move(c));
              }},
    probe{.name = "check_sampling_random",
          .description =
              "passes when the sampled-id stream looks random (runs p >= "
              "0.01, |serial| <= 0.1)",
          .kind = probe_kind::check,
          .run =
              [](const probe_context& ctx) {
                const battery_result& b = battery_of(ctx);
                check_result c;
                if (b.samples == 0) {
                  c.cell = "ok";
                  c.detail = "no samples (population < 2)";
                  return check_value(std::move(c));
                }
                const bool runs_ok = b.runs.p_value >= 0.01;
                const bool serial_ok =
                    b.serial >= -0.1 && b.serial <= 0.1;
                c.passed = runs_ok && serial_ok;
                c.cell = c.passed ? "ok" : "biased";
                c.detail = "runs p=" + fmt1("%.3f", b.runs.p_value) +
                           " serial=" + fmt1("%.4f", b.serial);
                return check_value(std::move(c));
              }},
    probe{.name = "class_bytes_per_s",
          .description =
              "mean bytes/s per peer, split by peer class (Fig. 8)",
          .kind = probe_kind::per_class,
          .class_keys = "public,natted,all",
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                const bandwidth_report r = bandwidth_of(ctx);
                return classes_value({{"public", r.public_bytes_per_s},
                                      {"natted", r.natted_bytes_per_s},
                                      {"all", r.all_bytes_per_s}});
              }},
    probe{.name = "class_in_degree",
          .description =
              "mean view in-degree per peer, split by peer class (Fig. 8)",
          .kind = probe_kind::per_class,
          .class_keys = "public,natted,all",
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                const class_degree_report r = in_degrees_by_class(
                    ctx.world().transport(), ctx.world().peers());
                return classes_value({{"public", r.public_mean},
                                      {"natted", r.natted_mean},
                                      {"all", r.all_mean}});
              }},
    probe{.name = "cluster_count",
          .description = "number of connected clusters",
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                return sv(static_cast<double>(clusters_of(ctx).cluster_count));
              }},
    probe{.name = "dead_pct",
          .description = "% of view entries pointing at departed peers",
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                const view_metrics v = views_of(ctx);
                return sv(pct(v.dead_entries, v.total_entries));
              }},
    probe{.name = "drop_count",
          .description =
              "cumulative transport drops by reason (class \"total\" sums "
              "them)",
          .kind = probe_kind::per_class,
          .class_keys =
              "unknown_destination,dead_node,nat_filtered,sender_dead,"
              "random_loss,partitioned,total",
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                const net::transport& t = ctx.world().transport();
                std::vector<std::pair<std::string, double>> classes;
                classes.reserve(
                    static_cast<std::size_t>(net::drop_reason::count_) + 1);
                for (std::size_t i = 0;
                     i < static_cast<std::size_t>(net::drop_reason::count_);
                     ++i) {
                  const auto r = static_cast<net::drop_reason>(i);
                  classes.emplace_back(
                      std::string(net::to_string(r)),
                      static_cast<double>(t.drops(r)));
                }
                classes.emplace_back(
                    "total", static_cast<double>(t.total_drops()));
                return classes_value(std::move(classes));
              }},
    probe{.name = "fresh_natted_pct",
          .description =
              "% of non-stale view entries pointing at natted peers (Fig. 4)",
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                return sv(views_of(ctx).fresh_natted_pct);
              }},
    probe{.name = "in_degree",
          .description =
              "view in-degree distribution over all peers (Sec. 5 "
              "dispersion via stat \"cv\")",
          .kind = probe_kind::distribution,
          .quantiles = true,
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                const std::vector<std::size_t> degrees = in_degrees(
                    ctx.world().transport(), ctx.world().peers());
                util::running_stats stats;
                std::vector<double> samples;
                samples.reserve(degrees.size());
                for (const std::size_t d : degrees) {
                  stats.add(static_cast<double>(d));
                  samples.push_back(static_cast<double>(d));
                }
                return dist_value(summarize_samples(stats,
                                                    std::move(samples)));
              }},
    probe{.name = "indegree_chi2_p",
          .description =
              "chi-square p-value of the in-degree distribution vs uniform",
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                const std::vector<std::size_t> degrees = in_degrees(
                    ctx.world().transport(), ctx.world().peers());
                if (degrees.size() < 2) return sv(1.0);
                std::vector<std::uint64_t> counts(degrees.begin(),
                                                  degrees.end());
                std::uint64_t total = 0;
                for (const std::uint64_t c : counts) total += c;
                if (total == 0) return sv(1.0);
                return sv(chi_square_uniform(counts).p_value);
              }},
    probe{.name = "isolated_count",
          .description =
              "alive peers stranded in singleton clusters (no usable "
              "edge in either direction)",
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                return sv(static_cast<double>(
                    clusters_of(ctx).isolated_peers));
              }},
    probe{.name = "mean_punch_chain",
          .description =
              "mean rendez-vous chain length of completed punches (Nylon)",
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                const runtime::punch_stat_totals t =
                    ctx.world().punch_totals();
                return sv(t.punch_chains.count() ? t.punch_chains.mean()
                                                 : 0.0);
              }},
    probe{.name = "mean_usable_out_degree",
          .description = "mean usable (reachable, fresh) view out-degree",
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                return sv(clusters_of(ctx).mean_usable_out_degree);
              }},
    probe{.name = "natted_bytes_per_s",
          .description = "mean bytes/s per natted peer (Fig. 8)",
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                return sv(bandwidth_of(ctx).natted_bytes_per_s);
              }},
    probe{.name = "public_bytes_per_s",
          .description = "mean bytes/s per public peer (Fig. 8)",
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                return sv(bandwidth_of(ctx).public_bytes_per_s);
              }},
    probe{.name = "punch_expired_pct",
          .description =
              "% of hole punches that expired without a PONG (traversal "
              "failures, Nylon)",
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                const runtime::punch_stat_totals t =
                    ctx.world().punch_totals();
                return sv(pct(t.expired, t.started));
              }},
    probe{.name = "punch_success_pct",
          .description = "% of started hole punches that completed (Nylon)",
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                const runtime::punch_stat_totals t =
                    ctx.world().punch_totals();
                return sv(pct(t.completed, t.started));
              }},
    probe{.name = "received_bytes_per_s",
          .description = "mean receive-side bytes/s per peer",
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                return sv(bandwidth_of(ctx).received_bytes_per_s);
              }},
    probe{.name = "rvp_chain",
          .description =
              "RVP forwarding-chain length distribution: hole punches "
              "plus relayed REQUESTs (Fig. 9, Nylon)",
          .kind = probe_kind::distribution,
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                return dist_value(summarize_stream(
                    ctx.world().punch_totals().rvp_chains));
              }},
    probe{.name = "sample_birthday_p",
          .description =
              "birthday-spacings p-value of the sampled-id stream (battery)",
          .run =
              [](const probe_context& ctx) {
                return sv(battery_of(ctx).birthday.p_value);
              }},
    probe{.name = "sample_chi2_p",
          .description =
              "chi-square frequency p-value of the sampled-id stream "
              "(battery)",
          .run =
              [](const probe_context& ctx) {
                return sv(battery_of(ctx).frequency.p_value);
              }},
    probe{.name = "sample_runs_p",
          .description = "runs-test p-value of the sampled-id stream (battery)",
          .run =
              [](const probe_context& ctx) {
                return sv(battery_of(ctx).runs.p_value);
              }},
    probe{.name = "sample_serial",
          .description =
              "lag-1 serial correlation of the sampled-id stream (battery)",
          .run =
              [](const probe_context& ctx) {
                return sv(battery_of(ctx).serial);
              }},
    probe{.name = "sent_bytes_per_s",
          .description = "mean send-side bytes/s per peer",
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                return sv(bandwidth_of(ctx).sent_bytes_per_s);
              }},
    probe{.name = "shuffle_success_pct",
          .description = "% of initiated shuffles that got a response",
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                std::uint64_t initiated = 0;
                std::uint64_t responses = 0;
                for (const auto& p : ctx.world().peers()) {
                  initiated += p->stats().initiated;
                  responses += p->stats().responses_received;
                }
                return sv(pct(responses, initiated));
              }},
    probe{.name = "stale_pct",
          .description = "% of stale view references (Fig. 3)",
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                return sv(views_of(ctx).stale_pct);
              }},
    probe{.name = "traversal_prescribed",
          .description =
              "packet-level verification of the prescribed traversal "
              "technique for (%src_nat, %dst_nat); cell is the technique, "
              "\"!\" marks a failed exchange (Sec. 2.2)",
          .kind = probe_kind::check,
          .needs_world = false,
          .passive = true,
          .run =
              [](const probe_context& ctx) {
                const nat::nat_type src =
                    nat_param(ctx, "src_nat", "traversal_prescribed");
                const nat::nat_type dst =
                    nat_param(ctx, "dst_nat", "traversal_prescribed");
                const prescribed_result r = run_prescribed(src, dst);
                check_result c;
                c.passed = r.outcome.exchange_completed();
                c.cell = std::string(nat::to_string(r.technique));
                if (!c.passed) c.cell += " !";
                c.detail = std::string(nat::to_string(src)) + "->" +
                           std::string(nat::to_string(dst)) + " via " +
                           std::string(nat::to_string(r.technique)) +
                           ": REQUEST " +
                           (r.outcome.request_delivered ? "delivered"
                                                        : "dropped") +
                           ", RESPONSE " +
                           (r.outcome.response_delivered ? "delivered"
                                                         : "dropped");
                return check_value(std::move(c));
              }},
};

bool has_class_key(const probe& p, std::string_view cls) {
  std::string_view keys = p.class_keys;
  while (!keys.empty()) {
    const std::size_t comma = keys.find(',');
    const std::string_view key = keys.substr(0, comma);
    if (key == cls) return true;
    if (comma == std::string_view::npos) break;
    keys.remove_prefix(comma + 1);
  }
  return false;
}

constexpr std::string_view kStatNames =
    "count | mean | stddev | min | max | cv | p50 | p90 | p99";

double dist_stat(const probe_selector& sel, const distribution_summary& d) {
  const std::string& stat = sel.stat;
  if (stat == "count") return static_cast<double>(d.count);
  if (stat == "mean") return d.mean;
  if (stat == "stddev") return d.stddev;
  if (stat == "min") return d.min;
  if (stat == "max") return d.max;
  if (stat == "cv") return d.cv();
  if (stat == "p50") return d.p50;
  if (stat == "p90") return d.p90;
  if (stat == "p99") return d.p99;
  throw contract_error("unknown distribution stat \"" + stat + "\" (" +
                       std::string(kStatNames) + ")");
}

bool is_quantile_stat(std::string_view stat) {
  return stat == "p50" || stat == "p90" || stat == "p99";
}

}  // namespace

const probe* find_probe(std::string_view name) noexcept {
  for (const probe& p : probes) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::span<const probe> all_probes() noexcept { return probes; }

probe_selector resolve_selector(std::string_view probe_name,
                                std::string_view cls, std::string_view stat) {
  const probe* p = find_probe(probe_name);
  if (p == nullptr) {
    throw contract_error("unknown probe \"" + std::string(probe_name) + "\"");
  }
  const std::string name(probe_name);
  switch (p->kind) {
    case probe_kind::scalar:
      if (!cls.empty()) {
        throw contract_error("probe \"" + name +
                             "\" is a scalar probe; it has no classes "
                             "(drop \"class\")");
      }
      if (!stat.empty()) {
        throw contract_error("probe \"" + name +
                             "\" is a scalar probe; it has no stats "
                             "(drop \"stat\")");
      }
      break;
    case probe_kind::per_class:
      if (!stat.empty()) {
        throw contract_error("probe \"" + name +
                             "\" is a per_class probe; select a \"class\", "
                             "not a \"stat\"");
      }
      if (cls.empty()) {
        throw contract_error(
            "probe \"" + name +
            "\" is a per_class probe; a scalar column must select one of "
            "its classes with \"class\" (" +
            std::string(p->class_keys) + ")");
      }
      if (!has_class_key(*p, cls)) {
        throw contract_error("probe \"" + name + "\" has no class \"" +
                             std::string(cls) + "\" (" +
                             std::string(p->class_keys) + ")");
      }
      break;
    case probe_kind::distribution:
      if (!cls.empty()) {
        throw contract_error("probe \"" + name +
                             "\" is a distribution probe; select a "
                             "\"stat\", not a \"class\"");
      }
      if (stat.empty()) {
        throw contract_error(
            "probe \"" + name +
            "\" is a distribution probe; a scalar column must select a "
            "\"stat\" (" +
            std::string(kStatNames) + ")");
      }
      if (is_quantile_stat(stat) && !p->quantiles) {
        throw contract_error("probe \"" + name +
                             "\" streams its samples (moments only); "
                             "quantile stats are unavailable");
      }
      {
        probe_selector probe_check{p, std::string(cls), std::string(stat)};
        (void)dist_stat(probe_check, distribution_summary{});  // validates
      }
      break;
    case probe_kind::check:
      throw contract_error(
          "probe \"" + name +
          "\" is a check probe; it renders a verdict cell, not a scalar "
          "column (use it in a static spec's columns or a \"checks\" "
          "list)");
  }
  return probe_selector{p, std::string(cls), std::string(stat)};
}

double extract_scalar(const probe_selector& sel, const probe_value& value) {
  NYLON_EXPECTS(sel.p != nullptr);
  switch (value.kind) {
    case probe_kind::scalar:
      return value.scalar;
    case probe_kind::per_class:
      for (const auto& [key, v] : value.classes) {
        if (key == sel.cls) return v;
      }
      throw contract_error("probe \"" + std::string(sel.p->name) +
                           "\" did not emit class \"" + sel.cls + "\"");
    case probe_kind::distribution:
      return dist_stat(sel, value.dist);
    case probe_kind::check:
      return value.check.passed ? 1.0 : 0.0;
  }
  return 0.0;
}

double eval_scalar(const probe_selector& sel, const probe_context& ctx) {
  NYLON_EXPECTS(sel.p != nullptr);
  return extract_scalar(sel, sel.p->run(ctx));
}

std::vector<double> run_probes(std::span<const std::string> names,
                               const probe_context& ctx) {
  std::vector<double> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    const probe_selector sel = resolve_selector(name, {}, {});
    out.push_back(eval_scalar(sel, ctx));
  }
  return out;
}

}  // namespace nylon::metrics
