// Machine-readable results: serializes workload trajectories, multi-seed
// aggregates and bench tables into the BENCH_*.json files that
// bench/run_all.sh collects.
#pragma once

#include <string>
#include <vector>

#include "runtime/runner.h"
#include "runtime/table_printer.h"
#include "util/json.h"
#include "workload/engine.h"

namespace nylon::workload {

/// One snapshot as a JSON object (times in simulated seconds).
[[nodiscard]] util::json to_json(const snapshot& s);

/// A whole trajectory as a JSON array of snapshot objects.
[[nodiscard]] util::json to_json(const std::vector<snapshot>& trajectory);

/// A per-seed aggregate: {"mean": ..., "stddev": ..., ..., "values": [...]}.
[[nodiscard]] util::json to_json(const runtime::seed_aggregate& agg);

/// A bench table as {"headers": [...], "rows": [[...], ...]} (cells stay
/// strings, exactly as printed).
[[nodiscard]] util::json to_json(const runtime::text_table& table);

/// Accumulates one bench's machine-readable output and writes it as a
/// single JSON document:
///
///   workload::bench_report report("fig10_churn");
///   report.param("peers", opt.peers);
///   report.add("table", workload::to_json(table));
///   report.save(opt.json);   // no-op when the path is empty
class bench_report {
 public:
  explicit bench_report(std::string name);

  /// Records one run parameter under "params".
  void param(const std::string& key, util::json value);

  /// Attaches an arbitrary JSON subtree under `key`.
  void add(const std::string& key, util::json value);

  /// Adds one of several named tables under "tables" (benches like
  /// fig2 emit one table per view size; a single "table" key cannot
  /// hold them all).
  void add_table(const std::string& name, const runtime::text_table& table);

  /// Writes the document to `path`; empty path = disabled (no-op).
  /// Returns false (after logging to stderr) when the file cannot be
  /// written — a broken emitter must not abort a finished bench run.
  bool save(const std::string& path) const;

  [[nodiscard]] const util::json& doc() const noexcept { return doc_; }

 private:
  util::json doc_;
};

}  // namespace nylon::workload
