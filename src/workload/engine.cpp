#include "workload/engine.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/trace.h"
#include "util/contracts.h"

namespace nylon::workload {

engine::engine(runtime::scenario& world, program prog, engine_options opt)
    : world_(world), program_(std::move(prog)), opt_(opt) {
  NYLON_EXPECTS(!program_.empty());
  phase_rngs_.resize(program_.phases().size());
}

engine::~engine() {
  world_.clear_sampler(runtime::scenario::sampler_workload);
}

const snapshot& engine::final() const {
  NYLON_EXPECTS(!trajectory_.empty());
  return trajectory_.back();
}

void engine::push_action(sim::sim_time at, std::function<void()> fn) {
  actions_.push(action{at, next_seq_++, std::move(fn)});
}

util::rng& engine::phase_rng(std::size_t index, const phase& p) {
  auto& slot = phase_rngs_[index];
  if (!slot) {
    const std::uint64_t seed =
        p.rng_seed.has_value()
            ? *p.rng_seed
            : util::derive_seed(world_.config().seed, 0xD1CE0000u + index);
    slot = std::make_unique<util::rng>(seed);
  }
  return *slot;
}

void engine::do_join() {
  world_.add_peer();
  ++joined_;
}

void engine::do_depart(net::node_id id) {
  if (!world_.transport().alive(id)) return;  // already gone (e.g. mass dep.)
  world_.remove_peer(id);
  ++departed_;
}

void engine::compile_phase(std::size_t index, const phase& p,
                           sim::sim_time start, sim::sim_time end) {
  switch (p.kind) {
    case phase_kind::steady:
      break;

    case phase_kind::grow: {
      // Evenly spaced joins across the window, first at phase start.
      const sim::sim_time step =
          p.duration / static_cast<sim::sim_time>(p.count);
      for (std::size_t i = 0; i < p.count; ++i) {
        push_action(start + static_cast<sim::sim_time>(i) * step,
                    [this] { do_join(); });
      }
      break;
    }

    case phase_kind::flash_crowd:
      for (std::size_t i = 0; i < p.count; ++i) {
        push_action(start, [this] { do_join(); });
      }
      break;

    case phase_kind::mass_departure:
      push_action(start, [this, fraction = p.fraction] {
        departed_ += world_.remove_fraction(fraction);
      });
      break;

    case phase_kind::poisson_churn: {
      util::rng& rng = phase_rng(index, p);
      // Self-perpetuating arrival chain: each arrival schedules the next
      // one (while inside the window) plus its own departure, which may
      // fire in a later phase.
      const double mean_gap_ms = 1000.0 / p.arrivals_per_sec;
      // The chain closure is owned by the engine (not by its own capture
      // list — that would be a shared_ptr cycle); raw pointers into
      // `poisson_chains_` stay valid for the whole run.
      auto arrive = std::make_unique<std::function<void(sim::sim_time)>>();
      auto* fn = arrive.get();
      *fn = [this, &rng, session = p.session, mean_gap_ms, end,
             fn](sim::sim_time at) {
        const net::node_id id = world_.add_peer();
        ++joined_;
        push_action(at + session.sample(rng), [this, id] { do_depart(id); });
        const auto gap = std::max<sim::sim_time>(
            1, std::llround(-mean_gap_ms * std::log(1.0 - rng.uniform01())));
        if (at + gap < end) {
          push_action(at + gap, [fn, next = at + gap] { (*fn)(next); });
        }
      };
      const auto first_gap = std::max<sim::sim_time>(
          1, std::llround(-mean_gap_ms * std::log(1.0 - rng.uniform01())));
      if (start + first_gap < end) {
        push_action(start + first_gap,
                    [fn, at = start + first_gap] { (*fn)(at); });
      }
      poisson_chains_.push_back(std::move(arrive));
      break;
    }

    case phase_kind::turnover: {
      util::rng& rng = phase_rng(index, p);
      for (sim::sim_time t = start; t < end; t += p.tick) {
        push_action(t, [this, &rng, per_tick = p.count] {
          // Draw victims with replacement from one alive-list snapshot
          // (duplicate removals are harmless no-ops), then refill.
          const std::vector<net::node_id> alive = world_.alive_ids();
          if (alive.empty()) return;
          for (std::size_t k = 0; k < per_tick; ++k) {
            do_depart(alive[rng.index(alive.size())]);
          }
          for (std::size_t k = 0; k < per_tick; ++k) do_join();
        });
      }
      break;
    }

    case phase_kind::partition:
      push_action(start, [this, fraction = p.fraction] {
        world_.partition_fraction(fraction);
      });
      break;

    case phase_kind::heal:
      push_action(start, [this] { world_.heal_partition(); });
      break;

    case phase_kind::nat_redistribution:
      push_action(start, [this, natted = p.natted_fraction, mix = *p.mix] {
        world_.set_nat_distribution(natted, mix);
      });
      break;

    case phase_kind::nat_rebind:
      push_action(start, [this, fraction = p.fraction] {
        world_.rebind_fraction(fraction);
      });
      break;

    case phase_kind::nat_migration:
      push_action(start, [this, fraction = p.fraction, mix = *p.mix] {
        world_.migrate_fraction(fraction, mix);
      });
      break;
  }
}

void engine::drain_until(sim::sim_time until) {
  while (!actions_.empty() && actions_.top().at <= until) {
    const sim::sim_time at = actions_.top().at;
    NYLON_ENSURES(at >= world_.scheduler().now());
    // Advance first, pop after: a sampler tick landing exactly on `at`
    // fires inside run_until and drains the action itself (so its
    // snapshot sees the action applied); the queue must still hold it.
    world_.run_until(at);
    run_due_actions(at);
  }
  world_.run_until(until);
}

void engine::run_due_actions(sim::sim_time now) {
  while (!actions_.empty() && actions_.top().at <= now) {
    // priority_queue::top is const; the action is copied out so fn can
    // push further actions while it runs.
    action next = actions_.top();
    actions_.pop();
    next.fn();
  }
}

void engine::take_snapshot(std::size_t phase_index, const std::string& label) {
  snapshot s;
  s.phase_index = phase_index;
  s.phase = label;
  s.at = world_.scheduler().now();
  s.alive = world_.alive_count();
  s.joined = joined_;
  s.departed = departed_;
  if (opt_.measure) {
    const metrics::reachability_oracle oracle = world_.oracle();
    s.clusters =
        metrics::measure_clusters(world_.transport(), world_.peers(), oracle);
    s.views =
        metrics::measure_views(world_.transport(), world_.peers(), oracle);
  }
  trajectory_.push_back(s);
  if (observer_) observer_(trajectory_.back());
}

void engine::run() {
  sim::sim_time t = world_.scheduler().now();
  if (const auto& init = program_.initial_sessions()) {
    // Session-length-driven departures for the initial population: one
    // draw per alive peer, in id order, from a dedicated stream so the
    // schedule is a pure function of (scenario seed, distribution).
    // Departures drawn beyond the program's end simply never fire.
    util::rng rng(init->rng_seed.has_value()
                      ? *init->rng_seed
                      : util::derive_seed(world_.config().seed, 0xD1CE5E55u));
    for (const net::node_id id : world_.alive_ids()) {
      push_action(t + init->session.sample(rng),
                  [this, id] { do_depart(id); });
    }
  }
  for (std::size_t i = 0; i < program_.phases().size(); ++i) {
    const phase& p = program_.phases()[i];
    // One span per workload phase (name interned; built only while a
    // trace is recording — this is once-per-phase control-plane code).
    const obs::trace_span span(
        obs::trace_enabled() ? std::string_view("phase:" + p.label)
                             : std::string_view{});
    const sim::sim_time start = t;
    const sim::sim_time end = start + p.duration;
    compile_phase(i, p, start, end);

    if (opt_.sample_interval > 0 && p.duration > 0) {
      // Phase-start sample (the old loop's s == start iteration), then
      // mid-phase ticks ride the scenario's workload sampler slot — the
      // one time-series path shared with the obs health timeline. The
      // tick drains due actions before snapshotting, so a sample at
      // time t still sees every action at or before t applied.
      drain_until(start);
      take_snapshot(i, p.label);
      cur_phase_ = i;
      cur_label_ = p.label;
      sampling_until_ = end;  // the old loop stopped at s < end
      world_.set_sampler(
          runtime::scenario::sampler_workload, opt_.sample_interval,
          [this](sim::sim_time at) {
            run_due_actions(at);
            if (at < sampling_until_) take_snapshot(cur_phase_, cur_label_);
          });
    } else {
      world_.clear_sampler(runtime::scenario::sampler_workload);
    }
    drain_until(end);
    if (opt_.snapshot_phase_end) take_snapshot(i, p.label);
    t = end;
  }
  world_.clear_sampler(runtime::scenario::sampler_workload);
}

}  // namespace nylon::workload
