#include "workload/report.h"

#include <iostream>
#include <utility>

namespace nylon::workload {

util::json to_json(const snapshot& s) {
  util::json j = util::json::object();
  j["phase"] = s.phase;
  j["phase_index"] = s.phase_index;
  j["t_s"] = sim::to_seconds(s.at);
  j["alive"] = s.alive;
  j["joined"] = s.joined;
  j["departed"] = s.departed;
  j["biggest_cluster_pct"] = s.clusters.biggest_cluster_pct;
  j["cluster_count"] = s.clusters.cluster_count;
  j["mean_usable_out_degree"] = s.clusters.mean_usable_out_degree;
  j["stale_pct"] = s.views.stale_pct;
  j["fresh_natted_pct"] = s.views.fresh_natted_pct;
  j["dead_entries"] = s.views.dead_entries;
  j["total_entries"] = s.views.total_entries;
  return j;
}

util::json to_json(const std::vector<snapshot>& trajectory) {
  util::json arr = util::json::array();
  for (const snapshot& s : trajectory) arr.push_back(to_json(s));
  return arr;
}

util::json to_json(const runtime::seed_aggregate& agg) {
  util::json j = util::json::object();
  j["mean"] = agg.stats.mean;
  j["stddev"] = agg.stats.stddev;
  j["min"] = agg.stats.min;
  j["max"] = agg.stats.max;
  j["median"] = agg.stats.median;
  util::json values = util::json::array();
  for (const double v : agg.values) values.push_back(v);
  j["values"] = std::move(values);
  return j;
}

util::json to_json(const runtime::text_table& table) {
  util::json j = util::json::object();
  util::json headers = util::json::array();
  for (const std::string& h : table.headers()) headers.push_back(h);
  j["headers"] = std::move(headers);
  util::json rows = util::json::array();
  for (const std::vector<std::string>& row : table.row_data()) {
    util::json cells = util::json::array();
    for (const std::string& cell : row) cells.push_back(cell);
    rows.push_back(std::move(cells));
  }
  j["rows"] = std::move(rows);
  return j;
}

bench_report::bench_report(std::string name) {
  doc_ = util::json::object();
  doc_["bench"] = std::move(name);
  doc_["params"] = util::json::object();
}

void bench_report::param(const std::string& key, util::json value) {
  doc_["params"][key] = std::move(value);
}

void bench_report::add(const std::string& key, util::json value) {
  doc_[key] = std::move(value);
}

void bench_report::add_table(const std::string& name,
                             const runtime::text_table& table) {
  doc_["tables"][name] = to_json(table);
}

bool bench_report::save(const std::string& path) const {
  if (path.empty()) return true;
  try {
    util::write_json_file(path, doc_);
    return true;
  } catch (const std::exception& e) {
    std::cerr << "bench_report: " << e.what() << "\n";
    return false;
  }
}

}  // namespace nylon::workload
