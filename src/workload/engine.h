// Executes a workload::program against a runtime::scenario: compiles each
// phase into timed actions (peer joins, fail-stops, partitions, NAT
// re-bindings) and interleaves them with the simulation, taking metric
// snapshots along the way.
//
// Ordering contract: an action at time t runs after *every* simulation
// event with timestamp <= t — exactly like the hand-rolled
// `run_periods(...); mutate(); run_periods(...)` loops this engine
// replaces, so ported benches measure bit-identical numbers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "metrics/graph_analysis.h"
#include "runtime/scenario.h"
#include "workload/program.h"

namespace nylon::workload {

/// One observation of the deployment, taken between simulation events.
struct snapshot {
  std::size_t phase_index = 0;
  std::string phase;        ///< label of the phase that was active
  sim::sim_time at = 0;     ///< simulated time of the observation
  std::size_t alive = 0;
  std::size_t joined = 0;   ///< cumulative engine-driven joins so far
  std::size_t departed = 0; ///< cumulative engine-driven departures so far
  metrics::cluster_metrics clusters;  ///< zeroed when measuring is off
  metrics::view_metrics views;        ///< zeroed when measuring is off
};

struct engine_options {
  /// Take a snapshot when each phase's window closes.
  bool snapshot_phase_end = true;
  /// > 0: also sample every `sample_interval` of simulated time inside
  /// phases with a duration (trajectories for BENCH_*.json). Mid-phase
  /// samples ride scenario::sampler_workload — the same tick machinery
  /// as the obs health timeline — so sampling never creates scheduler
  /// events and digests match the unsampled run.
  sim::sim_time sample_interval = 0;
  /// Collect cluster / view metrics in snapshots. Turning it off makes
  /// snapshots population-counters only (cheap for huge runs).
  bool measure = true;
};

class engine {
 public:
  /// The scenario must outlive the engine. The program starts at the
  /// scenario's current simulated time, so it can follow manual warm-up.
  engine(runtime::scenario& world, program prog, engine_options opt = {});

  /// Uninstalls the engine's trajectory sampler from the scenario (the
  /// callback captures `this`, so it must not outlive the engine).
  ~engine();

  /// Runs the whole program to completion.
  void run();

  /// Every snapshot taken, in time order.
  [[nodiscard]] const std::vector<snapshot>& trajectory() const noexcept {
    return trajectory_;
  }
  /// The last snapshot taken. Requires at least one.
  [[nodiscard]] const snapshot& final() const;

  /// Called on every snapshot as it is taken (progress displays).
  void set_observer(std::function<void(const snapshot&)> observer) {
    observer_ = std::move(observer);
  }

  [[nodiscard]] std::size_t joined() const noexcept { return joined_; }
  [[nodiscard]] std::size_t departed() const noexcept { return departed_; }

 private:
  struct action {
    sim::sim_time at = 0;
    std::uint64_t seq = 0;  ///< FIFO among same-time actions
    std::function<void()> fn;
  };
  struct later {
    bool operator()(const action& a, const action& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void push_action(sim::sim_time at, std::function<void()> fn);
  /// Installs a phase's actions / immediate effects at its start time.
  void compile_phase(std::size_t index, const phase& p, sim::sim_time start,
                     sim::sim_time end);
  /// Runs simulation + queued actions up to and including time `until`;
  /// each action runs after every simulation event at or before its time.
  void drain_until(sim::sim_time until);
  /// Pops and runs every queued action due at or before `now` (the world
  /// is already parked at `now`). Shared by drain_until and the
  /// trajectory sampler tick, so a snapshot at time t always sees
  /// actions at t applied first — the ordering contract above.
  void run_due_actions(sim::sim_time now);
  void take_snapshot(std::size_t phase_index, const std::string& label);
  util::rng& phase_rng(std::size_t index, const phase& p);

  void do_join();
  void do_depart(net::node_id id);

  runtime::scenario& world_;
  program program_;
  engine_options opt_;
  std::priority_queue<action, std::vector<action>, later> actions_;
  std::uint64_t next_seq_ = 0;
  // One dedicated stream per phase, lazily created; kept alive for the
  // whole run because Poisson departures outlive their phase.
  std::vector<std::unique_ptr<util::rng>> phase_rngs_;
  // Poisson arrival chains: each phase's arrival closure re-schedules
  // itself, so the engine owns it for the whole run.
  std::vector<std::unique_ptr<std::function<void(sim::sim_time)>>>
      poisson_chains_;
  std::vector<snapshot> trajectory_;
  std::function<void(const snapshot&)> observer_;
  std::size_t joined_ = 0;
  std::size_t departed_ = 0;
  // Live context for the trajectory sampler callback: the phase being
  // sampled and its window end (the old loop sampled at s < end; the
  // phase-end snapshot is taken explicitly).
  std::size_t cur_phase_ = 0;
  std::string cur_label_;
  sim::sim_time sampling_until_ = 0;
};

}  // namespace nylon::workload
