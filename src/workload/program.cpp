#include "workload/program.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace nylon::workload {

std::string_view to_string(phase_kind k) noexcept {
  switch (k) {
    case phase_kind::grow: return "grow";
    case phase_kind::steady: return "steady";
    case phase_kind::poisson_churn: return "poisson_churn";
    case phase_kind::flash_crowd: return "flash_crowd";
    case phase_kind::mass_departure: return "mass_departure";
    case phase_kind::turnover: return "turnover";
    case phase_kind::partition: return "partition";
    case phase_kind::heal: return "heal";
    case phase_kind::nat_redistribution: return "nat_redistribution";
    case phase_kind::nat_rebind: return "nat_rebind";
    case phase_kind::nat_migration: return "nat_migration";
  }
  return "?";
}

sim::sim_time session_distribution::sample(util::rng& rng) const {
  NYLON_EXPECTS(mean > 0);
  double length = 0.0;
  switch (k) {
    case kind::fixed:
      return mean;
    case kind::exponential:
      // Inverse CDF; 1 - u in (0, 1] keeps the log finite.
      length = -static_cast<double>(mean) * std::log(1.0 - rng.uniform01());
      break;
    case kind::pareto: {
      NYLON_EXPECTS(pareto_shape > 1.0);
      // Lomax form scaled so the mean equals `mean`:
      //   X = x_m * ((1-u)^(-1/shape) - 1),  x_m = mean * (shape - 1).
      const double x_m = static_cast<double>(mean) * (pareto_shape - 1.0);
      length =
          x_m * (std::pow(1.0 - rng.uniform01(), -1.0 / pareto_shape) - 1.0);
      break;
    }
  }
  return std::max<sim::sim_time>(1, std::llround(length));
}

void phase::validate() const {
  NYLON_EXPECTS(duration >= 0);
  switch (kind) {
    case phase_kind::grow:
      NYLON_EXPECTS(count > 0);
      NYLON_EXPECTS(duration > 0);
      break;
    case phase_kind::steady:
      NYLON_EXPECTS(duration > 0);
      break;
    case phase_kind::poisson_churn:
      NYLON_EXPECTS(duration > 0);
      NYLON_EXPECTS(arrivals_per_sec > 0.0);
      NYLON_EXPECTS(session.mean > 0);
      break;
    case phase_kind::flash_crowd:
      NYLON_EXPECTS(count > 0);
      break;
    case phase_kind::mass_departure:
    case phase_kind::partition:
    case phase_kind::nat_rebind:
      NYLON_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
      break;
    case phase_kind::nat_migration: {
      NYLON_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
      NYLON_EXPECTS(mix.has_value());
      const nat::nat_mix& m = *mix;
      NYLON_EXPECTS(m.full_cone + m.restricted_cone +
                        m.port_restricted_cone + m.symmetric >
                    0.0);
      break;
    }
    case phase_kind::turnover:
      NYLON_EXPECTS(duration > 0);
      NYLON_EXPECTS(count > 0);
      NYLON_EXPECTS(tick > 0);
      break;
    case phase_kind::heal:
      break;
    case phase_kind::nat_redistribution:
      NYLON_EXPECTS(natted_fraction >= 0.0 && natted_fraction <= 1.0);
      NYLON_EXPECTS(mix.has_value());
      break;
  }
}

namespace {
phase make(phase_kind kind) {
  phase p;
  p.kind = kind;
  p.label = std::string(to_string(kind));
  return p;
}
}  // namespace

phase grow(std::size_t count, sim::sim_time duration) {
  phase p = make(phase_kind::grow);
  p.count = count;
  p.duration = duration;
  return p;
}

phase steady(sim::sim_time duration) {
  phase p = make(phase_kind::steady);
  p.duration = duration;
  return p;
}

phase poisson_churn(sim::sim_time duration, double arrivals_per_sec,
                    session_distribution session) {
  phase p = make(phase_kind::poisson_churn);
  p.duration = duration;
  p.arrivals_per_sec = arrivals_per_sec;
  p.session = session;
  return p;
}

phase flash_crowd(std::size_t count) {
  phase p = make(phase_kind::flash_crowd);
  p.count = count;
  return p;
}

phase mass_departure(double fraction) {
  phase p = make(phase_kind::mass_departure);
  p.fraction = fraction;
  return p;
}

phase turnover(sim::sim_time duration, std::size_t per_tick, sim::sim_time tick,
               std::optional<std::uint64_t> rng_seed) {
  phase p = make(phase_kind::turnover);
  p.duration = duration;
  p.count = per_tick;
  p.tick = tick;
  p.rng_seed = rng_seed;
  return p;
}

phase partition(double fraction) {
  phase p = make(phase_kind::partition);
  p.fraction = fraction;
  return p;
}

phase heal() { return make(phase_kind::heal); }

phase nat_redistribution(double natted_fraction, nat::nat_mix mix) {
  phase p = make(phase_kind::nat_redistribution);
  p.natted_fraction = natted_fraction;
  p.mix = mix;
  return p;
}

phase nat_rebind(double fraction) {
  phase p = make(phase_kind::nat_rebind);
  p.fraction = fraction;
  return p;
}

phase nat_migration(double fraction, nat::nat_mix to_mix) {
  phase p = make(phase_kind::nat_migration);
  p.fraction = fraction;
  p.mix = to_mix;
  return p;
}

program& program::then(phase p) {
  p.validate();
  phases_.push_back(std::move(p));
  return *this;
}

program& program::named(std::string name) {
  name_ = std::move(name);
  return *this;
}

program& program::with_initial_sessions(session_distribution session,
                                        std::optional<std::uint64_t> rng_seed) {
  NYLON_EXPECTS(session.mean > 0);
  initial_sessions_ = initial_sessions_spec{session, rng_seed};
  return *this;
}

sim::sim_time program::total_duration() const noexcept {
  sim::sim_time total = 0;
  for (const phase& p : phases_) total += p.duration;
  return total;
}

// --- declarative (JSON) form -------------------------------------------------

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw contract_error("workload json: " + what);
}

void ensure_keys(const util::json& j,
                 std::initializer_list<std::string_view> allowed,
                 const char* what) {
  util::require_known_keys(j, allowed, what, "workload json: ");
}

double require_double(const util::json& j, const std::string& key) {
  const util::json* v = j.find(key);
  if (v == nullptr || !v->is_number()) {
    bad("missing or non-numeric \"" + key + "\"");
  }
  return v->as_double();
}

std::size_t require_count(const util::json& j, const std::string& key) {
  const util::json* v = j.find(key);
  if (v == nullptr || !v->is_int() || v->as_int() < 0) {
    bad("missing or invalid \"" + key + "\" (non-negative integer)");
  }
  return static_cast<std::size_t>(v->as_int());
}

/// A duration given as "periods" (shuffle periods) or "seconds".
sim::sim_time duration_of(const util::json& j, sim::sim_time period,
                          const char* periods_key, const char* seconds_key) {
  const util::json* periods = j.find(periods_key);
  const util::json* seconds = j.find(seconds_key);
  if ((periods != nullptr) == (seconds != nullptr)) {
    bad(std::string("exactly one of \"") + periods_key + "\" / \"" +
        seconds_key + "\" required");
  }
  if (periods != nullptr) {
    if (!periods->is_number() || periods->as_double() < 0) {
      bad(std::string("invalid \"") + periods_key + "\"");
    }
    return static_cast<sim::sim_time>(
        std::llround(periods->as_double() * static_cast<double>(period)));
  }
  if (!seconds->is_number() || seconds->as_double() < 0) {
    bad(std::string("invalid \"") + seconds_key + "\"");
  }
  return sim::sim_time{
      std::llround(seconds->as_double() * 1000.0)};  // sim_time is ms
}

nat::nat_mix mix_from_json(const util::json& j) {
  if (j.is_string()) {
    if (j.as_string() == "paper") return nat::paper_mix();
    if (j.as_string() == "prc_only") return nat::prc_only_mix();
    bad("unknown mix \"" + j.as_string() + "\" (paper | prc_only)");
  }
  ensure_keys(j,
              {"full_cone", "restricted_cone", "port_restricted_cone",
               "symmetric"},
              "mix");
  nat::nat_mix mix{};
  mix.full_cone = require_double(j, "full_cone");
  mix.restricted_cone = require_double(j, "restricted_cone");
  mix.port_restricted_cone = require_double(j, "port_restricted_cone");
  mix.symmetric = require_double(j, "symmetric");
  return mix;
}

}  // namespace

session_distribution session_from_json(const util::json& j,
                                       sim::sim_time period) {
  ensure_keys(j, {"kind", "mean_periods", "mean_s", "pareto_shape"},
              "session distribution");
  session_distribution out;
  const util::json* kind = j.find("kind");
  if (kind == nullptr || !kind->is_string()) bad("session needs a \"kind\"");
  const std::string& k = kind->as_string();
  if (k == "fixed") {
    out.k = session_distribution::kind::fixed;
  } else if (k == "exponential") {
    out.k = session_distribution::kind::exponential;
  } else if (k == "pareto") {
    out.k = session_distribution::kind::pareto;
  } else {
    bad("unknown session kind \"" + k + "\" (fixed | exponential | pareto)");
  }
  out.mean = duration_of(j, period, "mean_periods", "mean_s");
  if (out.mean <= 0) bad("session mean must be positive");
  if (const util::json* shape = j.find("pareto_shape")) {
    if (!shape->is_number() || shape->as_double() <= 1.0) {
      bad("\"pareto_shape\" must be > 1");
    }
    out.pareto_shape = shape->as_double();
  }
  return out;
}

phase phase_from_json(const util::json& j, sim::sim_time period) {
  const util::json* kind = j.find("kind");
  if (kind == nullptr || !kind->is_string()) bad("phase needs a \"kind\"");
  const std::string& k = kind->as_string();

  phase p;
  if (k == "grow") {
    ensure_keys(j, {"kind", "label", "count", "periods", "seconds"}, "grow");
    p = grow(require_count(j, "count"),
             duration_of(j, period, "periods", "seconds"));
  } else if (k == "steady") {
    ensure_keys(j, {"kind", "label", "periods", "seconds"}, "steady");
    p = steady(duration_of(j, period, "periods", "seconds"));
  } else if (k == "poisson_churn") {
    ensure_keys(j,
                {"kind", "label", "periods", "seconds", "arrivals_per_sec",
                 "session", "rng_seed"},
                "poisson_churn");
    session_distribution session;
    if (const util::json* s = j.find("session")) {
      session = session_from_json(*s, period);
    }
    p = poisson_churn(duration_of(j, period, "periods", "seconds"),
                      require_double(j, "arrivals_per_sec"), session);
  } else if (k == "flash_crowd") {
    ensure_keys(j, {"kind", "label", "count"}, "flash_crowd");
    p = flash_crowd(require_count(j, "count"));
  } else if (k == "mass_departure") {
    ensure_keys(j, {"kind", "label", "fraction"}, "mass_departure");
    p = mass_departure(require_double(j, "fraction"));
  } else if (k == "turnover") {
    ensure_keys(j,
                {"kind", "label", "periods", "seconds", "per_tick", "tick_s",
                 "rng_seed"},
                "turnover");
    sim::sim_time tick = sim::seconds(5);
    if (const util::json* t = j.find("tick_s")) {
      if (!t->is_number() || t->as_double() <= 0) bad("invalid \"tick_s\"");
      tick = sim::sim_time{std::llround(t->as_double() * 1000.0)};
    }
    p = turnover(duration_of(j, period, "periods", "seconds"),
                 require_count(j, "per_tick"), tick);
  } else if (k == "partition") {
    ensure_keys(j, {"kind", "label", "fraction"}, "partition");
    p = partition(require_double(j, "fraction"));
  } else if (k == "heal") {
    ensure_keys(j, {"kind", "label"}, "heal");
    p = heal();
  } else if (k == "nat_redistribution") {
    ensure_keys(j, {"kind", "label", "natted_fraction", "mix"},
                "nat_redistribution");
    const util::json* mix = j.find("mix");
    if (mix == nullptr) bad("nat_redistribution needs a \"mix\"");
    p = nat_redistribution(require_double(j, "natted_fraction"),
                           mix_from_json(*mix));
  } else if (k == "nat_rebind") {
    ensure_keys(j, {"kind", "label", "fraction"}, "nat_rebind");
    p = nat_rebind(require_double(j, "fraction"));
  } else if (k == "nat_migration") {
    ensure_keys(j, {"kind", "label", "fraction", "to_mix"}, "nat_migration");
    const util::json* to_mix = j.find("to_mix");
    p = to_mix != nullptr
            ? nat_migration(require_double(j, "fraction"),
                            mix_from_json(*to_mix))
            : nat_migration(require_double(j, "fraction"));
  } else {
    bad("unknown phase kind \"" + k + "\"");
  }

  if (const util::json* label = j.find("label")) {
    if (!label->is_string()) bad("\"label\" must be a string");
    p.label = label->as_string();
  }
  if (const util::json* seed = j.find("rng_seed")) {
    if (!seed->is_int() || seed->as_int() < 0) bad("invalid \"rng_seed\"");
    p.rng_seed = static_cast<std::uint64_t>(seed->as_int());
  }
  p.validate();
  return p;
}

program program_from_json(const util::json& j, sim::sim_time period) {
  ensure_keys(j, {"name", "phases", "initial_sessions"}, "program");
  program out;
  if (const util::json* name = j.find("name")) {
    if (!name->is_string()) bad("program \"name\" must be a string");
    out.named(name->as_string());
  }
  const util::json* phases = j.find("phases");
  if (phases == nullptr || !phases->is_array() || phases->size() == 0) {
    bad("program needs a non-empty \"phases\" array");
  }
  for (const util::json& p : phases->array_items()) {
    out.then(phase_from_json(p, period));
  }
  if (const util::json* init = j.find("initial_sessions")) {
    ensure_keys(*init,
                {"kind", "mean_periods", "mean_s", "pareto_shape", "rng_seed"},
                "initial_sessions");
    std::optional<std::uint64_t> seed;
    if (const util::json* s = init->find("rng_seed")) {
      if (!s->is_int() || s->as_int() < 0) bad("invalid \"rng_seed\"");
      seed = static_cast<std::uint64_t>(s->as_int());
    }
    // session_from_json rejects unknown keys; strip rng_seed first.
    util::json session = util::json::object();
    for (const auto& [key, value] : init->object_items()) {
      if (key != "rng_seed") session[key] = value;
    }
    out.with_initial_sessions(session_from_json(session, period), seed);
  }
  return out;
}

}  // namespace nylon::workload
