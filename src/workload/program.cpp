#include "workload/program.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace nylon::workload {

std::string_view to_string(phase_kind k) noexcept {
  switch (k) {
    case phase_kind::grow: return "grow";
    case phase_kind::steady: return "steady";
    case phase_kind::poisson_churn: return "poisson_churn";
    case phase_kind::flash_crowd: return "flash_crowd";
    case phase_kind::mass_departure: return "mass_departure";
    case phase_kind::turnover: return "turnover";
    case phase_kind::partition: return "partition";
    case phase_kind::heal: return "heal";
    case phase_kind::nat_redistribution: return "nat_redistribution";
    case phase_kind::nat_rebind: return "nat_rebind";
  }
  return "?";
}

sim::sim_time session_distribution::sample(util::rng& rng) const {
  NYLON_EXPECTS(mean > 0);
  double length = 0.0;
  switch (k) {
    case kind::fixed:
      return mean;
    case kind::exponential:
      // Inverse CDF; 1 - u in (0, 1] keeps the log finite.
      length = -static_cast<double>(mean) * std::log(1.0 - rng.uniform01());
      break;
    case kind::pareto: {
      NYLON_EXPECTS(pareto_shape > 1.0);
      // Lomax form scaled so the mean equals `mean`:
      //   X = x_m * ((1-u)^(-1/shape) - 1),  x_m = mean * (shape - 1).
      const double x_m = static_cast<double>(mean) * (pareto_shape - 1.0);
      length =
          x_m * (std::pow(1.0 - rng.uniform01(), -1.0 / pareto_shape) - 1.0);
      break;
    }
  }
  return std::max<sim::sim_time>(1, std::llround(length));
}

void phase::validate() const {
  NYLON_EXPECTS(duration >= 0);
  switch (kind) {
    case phase_kind::grow:
      NYLON_EXPECTS(count > 0);
      NYLON_EXPECTS(duration > 0);
      break;
    case phase_kind::steady:
      NYLON_EXPECTS(duration > 0);
      break;
    case phase_kind::poisson_churn:
      NYLON_EXPECTS(duration > 0);
      NYLON_EXPECTS(arrivals_per_sec > 0.0);
      NYLON_EXPECTS(session.mean > 0);
      break;
    case phase_kind::flash_crowd:
      NYLON_EXPECTS(count > 0);
      break;
    case phase_kind::mass_departure:
    case phase_kind::partition:
    case phase_kind::nat_rebind:
      NYLON_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
      break;
    case phase_kind::turnover:
      NYLON_EXPECTS(duration > 0);
      NYLON_EXPECTS(count > 0);
      NYLON_EXPECTS(tick > 0);
      break;
    case phase_kind::heal:
      break;
    case phase_kind::nat_redistribution:
      NYLON_EXPECTS(natted_fraction >= 0.0 && natted_fraction <= 1.0);
      NYLON_EXPECTS(mix.has_value());
      break;
  }
}

namespace {
phase make(phase_kind kind) {
  phase p;
  p.kind = kind;
  p.label = std::string(to_string(kind));
  return p;
}
}  // namespace

phase grow(std::size_t count, sim::sim_time duration) {
  phase p = make(phase_kind::grow);
  p.count = count;
  p.duration = duration;
  return p;
}

phase steady(sim::sim_time duration) {
  phase p = make(phase_kind::steady);
  p.duration = duration;
  return p;
}

phase poisson_churn(sim::sim_time duration, double arrivals_per_sec,
                    session_distribution session) {
  phase p = make(phase_kind::poisson_churn);
  p.duration = duration;
  p.arrivals_per_sec = arrivals_per_sec;
  p.session = session;
  return p;
}

phase flash_crowd(std::size_t count) {
  phase p = make(phase_kind::flash_crowd);
  p.count = count;
  return p;
}

phase mass_departure(double fraction) {
  phase p = make(phase_kind::mass_departure);
  p.fraction = fraction;
  return p;
}

phase turnover(sim::sim_time duration, std::size_t per_tick, sim::sim_time tick,
               std::optional<std::uint64_t> rng_seed) {
  phase p = make(phase_kind::turnover);
  p.duration = duration;
  p.count = per_tick;
  p.tick = tick;
  p.rng_seed = rng_seed;
  return p;
}

phase partition(double fraction) {
  phase p = make(phase_kind::partition);
  p.fraction = fraction;
  return p;
}

phase heal() { return make(phase_kind::heal); }

phase nat_redistribution(double natted_fraction, nat::nat_mix mix) {
  phase p = make(phase_kind::nat_redistribution);
  p.natted_fraction = natted_fraction;
  p.mix = mix;
  return p;
}

phase nat_rebind(double fraction) {
  phase p = make(phase_kind::nat_rebind);
  p.fraction = fraction;
  return p;
}

program& program::then(phase p) {
  p.validate();
  phases_.push_back(std::move(p));
  return *this;
}

sim::sim_time program::total_duration() const noexcept {
  sim::sim_time total = 0;
  for (const phase& p : phases_) total += p.duration;
  return total;
}

}  // namespace nylon::workload
