// Declarative network-dynamics programs: a workload::program is the
// scripted life of a deployment — growth, steady state, churn regimes,
// partitions, NAT-state upheaval — expressed as a sequence of phases that
// workload::engine executes against a runtime::scenario.
//
// Phases with a duration occupy a half-open window [start, start + duration);
// instantaneous phases (flash_crowd, mass_departure, partition, heal,
// nat_redistribution, nat_rebind, nat_migration) act at their start time
// and take no simulated time of their own — follow them with steady() to
// watch the system react.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "nat/deployment.h"
#include "sim/time.h"
#include "util/json.h"
#include "util/rng.h"

namespace nylon::workload {

/// What a phase does to the deployment while it is active.
enum class phase_kind : std::uint8_t {
  grow,                ///< add `count` peers, evenly spaced over the window
  steady,              ///< no dynamics; the overlay just gossips
  poisson_churn,       ///< Poisson arrivals; each session ends per a
                       ///< configurable session-length distribution
  flash_crowd,         ///< `count` peers join at once
  mass_departure,      ///< `fraction` of the alive peers fail-stop at once
  turnover,            ///< replace `count` random peers every `tick`
  partition,           ///< split the network (cross-side packets drop)
  heal,                ///< remove the partition
  nat_redistribution,  ///< future joiners draw a different NAT mix
  nat_rebind,          ///< `fraction` of natted peers get fresh NAT state
  nat_migration,       ///< `fraction` of natted peers swap NAT *type* in
                       ///< place (ISP cone -> symmetric), rebind upheaval
                       ///< included
};

[[nodiscard]] std::string_view to_string(phase_kind k) noexcept;

/// Session-length distribution for poisson_churn arrivals. Heavy-tailed
/// session lengths (pareto) are the empirically observed shape for P2P
/// deployments; exponential gives the memoryless textbook model.
struct session_distribution {
  enum class kind : std::uint8_t { fixed, exponential, pareto };

  kind k = kind::exponential;
  sim::sim_time mean = sim::seconds(300);
  double pareto_shape = 2.0;  ///< > 1 so the mean exists

  /// Draws one session length (>= 1 ms) from the distribution.
  [[nodiscard]] sim::sim_time sample(util::rng& rng) const;
};

/// One phase of a program. Build through the factory functions below;
/// the flat struct keeps the engine's compiler trivial.
struct phase {
  phase_kind kind = phase_kind::steady;
  std::string label;                     ///< defaults to to_string(kind)
  sim::sim_time duration = 0;            ///< 0 for instantaneous kinds
  std::size_t count = 0;                 ///< grow/flash_crowd: total peers;
                                         ///< turnover: peers per tick
  double fraction = 0.0;                 ///< mass_departure/partition/rebind
  double arrivals_per_sec = 0.0;         ///< poisson_churn
  session_distribution session;          ///< poisson_churn
  sim::sim_time tick = sim::seconds(5);  ///< turnover cadence
  /// Dedicated rng stream for the phase's own draws (turnover picks,
  /// Poisson arrival times). Unset: derived from the scenario seed and
  /// the phase index, so programs stay deterministic per seed.
  std::optional<std::uint64_t> rng_seed;
  double natted_fraction = -1.0;         ///< nat_redistribution (< 0: keep)
  std::optional<nat::nat_mix> mix;       ///< nat_redistribution

  /// Throws nylon::contract_error on invalid parameters.
  void validate() const;
};

// --- phase factories ---------------------------------------------------------

/// `count` peers join, evenly spaced across `duration`.
[[nodiscard]] phase grow(std::size_t count, sim::sim_time duration);

/// Nothing changes for `duration` (warm-up, healing, observation).
[[nodiscard]] phase steady(sim::sim_time duration);

/// Poisson arrivals at `arrivals_per_sec`; every arrival's departure is
/// scheduled `session` later (it may fall in a later phase).
[[nodiscard]] phase poisson_churn(sim::sim_time duration,
                                  double arrivals_per_sec,
                                  session_distribution session = {});

/// `count` peers join simultaneously.
[[nodiscard]] phase flash_crowd(std::size_t count);

/// `fraction` of the alive peers leave at once, public/natted removed
/// proportionally (the Fig. 10 catastrophe).
[[nodiscard]] phase mass_departure(double fraction);

/// Every `tick`, `per_tick` random alive peers (drawn with replacement)
/// fail-stop and `per_tick` fresh peers join — Gnutella-style sustained
/// session turnover.
[[nodiscard]] phase turnover(sim::sim_time duration, std::size_t per_tick,
                             sim::sim_time tick,
                             std::optional<std::uint64_t> rng_seed =
                                 std::nullopt);

/// Splits `fraction` of the alive peers onto an isolated side. Lasts
/// until a heal() phase.
[[nodiscard]] phase partition(double fraction);

/// Heals the current partition.
[[nodiscard]] phase heal();

/// Future joiners draw NAT types from (natted_fraction, mix) instead of
/// the scenario's original distribution.
[[nodiscard]] phase nat_redistribution(double natted_fraction,
                                       nat::nat_mix mix);

/// `fraction` of the alive natted peers lose their NAT lease: new public
/// IP, all mappings and filtering rules gone, self-descriptor refreshed.
[[nodiscard]] phase nat_rebind(double fraction);

/// `fraction` of the alive natted peers get their NAT *device* swapped
/// in place for one of a type drawn from `to_mix` (default: 100%
/// symmetric — the ISP-rolls-out-CGNAT catastrophe), with the full
/// rebind upheaval on top. Unlike `nat_redistribution`, which only
/// shifts what future joiners draw, this hits the live population.
[[nodiscard]] phase nat_migration(
    double fraction, nat::nat_mix to_mix = nat::nat_mix{0.0, 0.0, 0.0, 1.0});

// --- program -----------------------------------------------------------------

/// Session-length-driven departure for the peers that exist *before* the
/// program starts. The paper's evaluation only churns via departures of
/// the initial population at one instant (Fig. 10) or Poisson arrivals;
/// real deployments drain their incumbents gradually. Off unless a
/// program opts in, so existing scenarios stay byte-identical.
struct initial_sessions_spec {
  session_distribution session;
  /// Unset: derived from the scenario seed, so runs stay deterministic.
  std::optional<std::uint64_t> rng_seed;
};

/// An ordered list of phases. Chain with `then`:
///
///   auto prog = workload::program{}
///       .then(workload::steady(warmup))
///       .then(workload::mass_departure(0.7))
///       .then(workload::steady(heal_time));
class program {
 public:
  program() = default;

  /// Appends a phase (validates it) and returns *this for chaining.
  program& then(phase p);

  /// Names the program (experiment specs report it; optional).
  program& named(std::string name);

  /// Draws a session length for every peer alive when the program starts
  /// and schedules its departure (may fall beyond the program's end, in
  /// which case it never fires).
  program& with_initial_sessions(
      session_distribution session,
      std::optional<std::uint64_t> rng_seed = std::nullopt);

  [[nodiscard]] const std::vector<phase>& phases() const noexcept {
    return phases_;
  }
  [[nodiscard]] bool empty() const noexcept { return phases_.empty(); }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::optional<initial_sessions_spec>& initial_sessions()
      const noexcept {
    return initial_sessions_;
  }

  /// Sum of all phase durations.
  [[nodiscard]] sim::sim_time total_duration() const noexcept;

 private:
  std::vector<phase> phases_;
  std::string name_;
  std::optional<initial_sessions_spec> initial_sessions_;
};

// --- declarative (JSON) form -------------------------------------------------
//
// Programs are also buildable from data, so experiment specs can *name* a
// workload instead of compiling one:
//
//   {"name": "massacre_recovery",
//    "phases": [{"kind": "steady", "periods": 50},
//               {"kind": "mass_departure", "fraction": 0.7},
//               {"kind": "steady", "periods": 100}],
//    "initial_sessions": {"kind": "pareto", "mean_periods": 40}}
//
// Durations accept "periods" (multiples of the gossip shuffle period) or
// "seconds"; sessions accept "mean_periods" or "mean_s". All parsers
// throw nylon::contract_error on unknown kinds/keys or bad values.

/// Parses a session distribution ({"kind", "mean_periods"|"mean_s",
/// "pareto_shape"?}).
[[nodiscard]] session_distribution session_from_json(const util::json& j,
                                                     sim::sim_time period);

/// Parses one phase object ({"kind", ...kind-specific parameters...}).
[[nodiscard]] phase phase_from_json(const util::json& j, sim::sim_time period);

/// Parses a whole program ({"name"?, "phases": [...],
/// "initial_sessions"?}).
[[nodiscard]] program program_from_json(const util::json& j,
                                        sim::sim_time period);

}  // namespace nylon::workload
