// A stable queue of timed events. Stability (FIFO among events with the
// same timestamp) is what makes whole simulations reproducible bit-for-bit
// from a seed, so it is guaranteed here rather than left to chance.
//
// Storage layout (the hot path of the whole simulator):
//
//  * Callbacks live in a slab of pooled slots recycled through a free
//    list; pushing an event allocates nothing once the slab has warmed up,
//    where the previous implementation paid one `std::function` heap
//    capture plus one `shared_ptr<bool>` control block per event.
//  * Events are grouped into per-timestamp FIFO buckets (a calendar
//    queue): simulated traffic clusters heavily on identical millisecond
//    timestamps (fixed latencies, shared period boundaries), so ordering
//    work happens once per *distinct time* — a small 4-ary min-heap of
//    timestamps — instead of once per event. Push and pop are O(1)
//    amortized; a binary heap of (time, seq) entries spent two thirds of
//    its time in sift_down.
//  * Cancellation handles carry a generation-checked slot reference; the
//    event stays in its bucket and is skipped (and its slot reclaimed)
//    when it reaches the front.
//
// Threading: a queue and all handles it issued belong to one universe and
// one thread (the parallel multi-seed runner gives each seed its own
// scheduler), so the slab's reference count is deliberately non-atomic.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/counters.h"
#include "sim/time.h"
#include "util/contracts.h"
#include "util/flat_hash.h"
#include "util/inplace_function.h"

namespace nylon::sim {

/// One canonically keyed event, used by the bulk-insert and staging APIs
/// below (and, as `channel_event`, by the cross-shard channels).
/// `order_a` / `order_b` break ties among equal timestamps; the sharded
/// transport uses (sender id, per-sender sequence number).
struct staged_event {
  sim_time at = 0;
  std::uint64_t order_a = 0;
  std::uint64_t order_b = 0;
  util::callback fn;
};

/// The canonical (at, order_a, order_b) strict weak order.
[[nodiscard]] inline bool canonical_less(const staged_event& a,
                                         const staged_event& b) noexcept {
  if (a.at != b.at) return a.at < b.at;
  if (a.order_a != b.order_a) return a.order_a < b.order_a;
  return a.order_b < b.order_b;
}

namespace detail {

/// One pooled event. `generation` increments on every recycle so stale
/// handles become inert; `cancelled` is the logical-deletion mark buckets
/// skip at pop time.
struct event_slot {
  util::callback fn;
  std::uint32_t next = 0;  ///< intrusive FIFO link within a time bucket
  std::uint32_t generation = 0;
  bool cancelled = false;
  bool live = false;
};

/// The slot slab, shared between the queue and its handles through an
/// intrusive (single-threaded) reference count. It outlives the queue so
/// cancelling through a surviving handle never touches freed memory.
/// Slots live in fixed-size chunks so growth never relocates live events.
struct event_slab {
  static constexpr std::uint32_t chunk_shift = 8;  ///< 256 slots per chunk
  static constexpr std::uint32_t chunk_size = 1u << chunk_shift;
  static constexpr std::uint32_t chunk_mask = chunk_size - 1;

  std::vector<std::unique_ptr<event_slot[]>> chunks;
  std::vector<std::uint32_t> free_list;
  std::uint32_t slot_count = 0;  ///< slots handed out so far
  std::uint32_t refs = 1;        ///< the owning queue + every live handle
  /// Cancelled-but-unreclaimed events. Lives here (not in the queue) so
  /// `event_handle::cancel` can bump it; while it is zero the queue's
  /// skip-cancelled pass is a single compare.
  std::uint32_t cancelled_pending = 0;
  bool queue_gone = false;       ///< set by the queue's destructor

  [[nodiscard]] event_slot& slot(std::uint32_t index) noexcept {
    return chunks[index >> chunk_shift][index & chunk_mask];
  }

  void add_ref() noexcept { ++refs; }
  void release() noexcept {
    if (--refs == 0) delete this;
  }
};

}  // namespace detail

/// Handle to a scheduled event; allows O(1) logical cancellation.
class event_handle {
 public:
  event_handle() = default;

  event_handle(const event_handle& other) noexcept
      : pool_(other.pool_),
        slot_(other.slot_),
        generation_(other.generation_),
        flag_(other.flag_) {
    if (pool_) pool_->add_ref();
  }

  event_handle(event_handle&& other) noexcept
      : pool_(other.pool_),
        slot_(other.slot_),
        generation_(other.generation_),
        flag_(std::move(other.flag_)) {
    other.pool_ = nullptr;
  }

  event_handle& operator=(event_handle other) noexcept {
    swap(other);
    return *this;
  }

  ~event_handle() {
    if (pool_) pool_->release();
  }

  void swap(event_handle& other) noexcept {
    std::swap(pool_, other.pool_);
    std::swap(slot_, other.slot_);
    std::swap(generation_, other.generation_);
    std::swap(flag_, other.flag_);
  }

  /// Cancels the event if it has not fired yet. Safe to call repeatedly
  /// and safe after the queue itself is gone.
  void cancel() noexcept {
    if (flag_) {
      *flag_ = true;
      return;
    }
    if (pool_ != nullptr && !pool_->queue_gone) {
      detail::event_slot& s = pool_->slot(slot_);
      if (s.live && s.generation == generation_ && !s.cancelled) {
        s.cancelled = true;
        ++pool_->cancelled_pending;
      }
    }
  }

  /// True if this handle refers to a scheduled (possibly fired) event.
  [[nodiscard]] bool valid() const noexcept {
    return pool_ != nullptr || flag_ != nullptr;
  }

 protected:
  // Protected so that the scheduler's periodic-task wrapper can adapt a
  // shared cancellation flag into a handle (one flag per periodic task,
  // not per event).
  friend class event_queue;
  explicit event_handle(std::shared_ptr<bool> flag)
      : flag_(std::move(flag)) {}

 private:
  event_handle(detail::event_slab* pool, std::uint32_t slot,
               std::uint32_t generation) noexcept
      : pool_(pool), slot_(slot), generation_(generation) {
    pool_->add_ref();
  }

  // Pooled events: slab pointer + generation stamp, so a stale handle can
  // never cancel a recycled slot.
  detail::event_slab* pool_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
  // Periodic tasks: a shared flag checked by every hop of the chain.
  std::shared_ptr<bool> flag_;
};

/// Queue of `void()` callbacks ordered by (time, insertion seq).
class event_queue {
 public:
  event_queue() : slab_(new detail::event_slab()) {
    // Typical simulations keep O(100) distinct pending timestamps (one
    // latency horizon of sends plus period boundaries); pre-sizing skips
    // the growth/rehash chain that dominated fresh-queue cost.
    by_time_.reserve(128);
    time_heap_.reserve(128);
    buckets_.reserve(128);
  }

  event_queue(const event_queue&) = delete;
  event_queue& operator=(const event_queue&) = delete;

  ~event_queue() {
    // Destroy queued callbacks now (they may own resources); the slab
    // shell stays alive for any surviving handles.
    slab_->chunks.clear();
    slab_->queue_gone = true;
    slab_->release();
  }

  /// Schedules `fn` at absolute time `at`; returns a cancellation handle.
  /// Templated so the capture is constructed directly in its pooled slot
  /// (no intermediate `util::callback` relocation on the hot path).
  template <typename F>
  event_handle push(sim_time at, F&& fn) {
    // Nullable callables (nullptr, function pointers, std::function) are
    // rejected here, at the push site, instead of exploding when the
    // event fires; a plain lambda is statically known to be invocable.
    if constexpr (requires { fn == nullptr; }) {
      NYLON_EXPECTS(!(fn == nullptr));
    }
    const std::uint32_t slot = acquire_slot();
    detail::event_slot& s = slab_->slot(slot);
    s.fn = std::forward<F>(fn);
    if constexpr (std::is_same_v<std::remove_cvref_t<F>, util::callback>) {
      if (!static_cast<bool>(s.fn)) {  // moved-from / default callback
        slab_->free_list.push_back(slot);
        NYLON_EXPECTS(static_cast<bool>(s.fn));
      }
    }
    s.next = no_slot;
    s.cancelled = false;
    s.live = true;
    link_into_bucket(at, slot);
    ++queued_;
    obs::count_peak(obs::counter::queue_peak_depth, queued_);
    return event_handle(slab_, slot, s.generation);
  }

  /// Bulk FIFO insert: exactly equivalent to pushing each event's
  /// callback at its time in `batch` order, but events are pre-sorted by
  /// ascending time (asserted), so each distinct timestamp resolves its
  /// bucket once per run instead of once per event and the whole run
  /// links in as one chain. Order keys are ignored — within a timestamp,
  /// batch order is the FIFO order, as with individual pushes. No
  /// cancellation handles are issued. `batch` is cleared (capacity kept)
  /// so the caller can recycle it.
  void push_sorted_batch(std::vector<staged_event>& batch);

  /// Stages a batch of canonically sorted (see canonical_less; keys
  /// unique) events into the staging lane. Lane events execute
  /// interleaved with the queue in timestamp order; at equal timestamps
  /// queued events run first, then lane events in canonical order. The
  /// lane is what makes the sharded engine's merged stream independent
  /// of epoch boundaries: an event's execution slot depends only on its
  /// canonical key, never on which barrier staged it (bucket FIFO
  /// appends would order same-timestamp events by drain time instead).
  /// Must not be called from inside a running callback. `batch` is
  /// cleared with its capacity kept (often swapped with retired lane
  /// storage) so drain buffers recycle across epochs.
  void stage_sorted(std::vector<staged_event>& batch);

  /// Bytes currently reserved by the staging lane and its merge scratch
  /// (for the drain-buffer peak telemetry).
  [[nodiscard]] std::size_t lane_reserved_bytes() const noexcept {
    return (lane_.capacity() + lane_scratch_.capacity()) *
           sizeof(staged_event);
  }

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const noexcept {
    skip_cancelled();
    return time_heap_.empty() && lane_next_ == time_never;
  }

  /// Number of queued entries, including logically cancelled ones that
  /// have not been reclaimed yet and un-executed staged-lane events.
  [[nodiscard]] std::size_t raw_size() const noexcept {
    return queued_ + (lane_.size() - lane_pos_);
  }

  /// Time of the earliest live event, or `time_never` when empty.
  [[nodiscard]] sim_time next_time() const noexcept {
    skip_cancelled();
    const sim_time qt = time_heap_.empty() ? time_never : time_heap_.front();
    return qt < lane_next_ ? qt : lane_next_;
  }

  /// Pops and runs the earliest live event; returns its time.
  /// Requires !empty().
  sim_time pop_and_run() {
    skip_cancelled();
    // Ties go to the queue: local events run before staged (cross-shard)
    // events sharing their timestamp, a fixed rule both engines and all
    // epoch partitions agree on.
    if (lane_next_ <
        (time_heap_.empty() ? time_never : time_heap_.front())) {
      return run_lane_front();
    }
    NYLON_EXPECTS(!time_heap_.empty());
    const sim_time at = time_heap_.front();
    bucket& b = buckets_[front_bucket()];
    const std::uint32_t slot = b.head;
    b.head = slab_->slot(slot).next;
    if (b.head == no_slot) b.tail = no_slot;
    --queued_;
    // Retire the bucket *before* running the callback so a reentrant push
    // at the same timestamp starts a fresh (later) bucket.
    if (b.head == no_slot) retire_front_bucket();
    ++executed_;
    obs::count(obs::counter::events_executed);
    // Run the callback in place: the slot is not on the free list yet, so
    // reentrant pushes cannot recycle it, and slot chunks never relocate.
    slab_->slot(slot).fn();
    release_slot(slot);
    return at;
  }

  /// Total number of events executed so far.
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  /// FIFO of events sharing one timestamp: an intrusive list threaded
  /// through the slots (`event_slot::next`), so a bucket is 8 bytes and
  /// never allocates.
  struct bucket {
    std::uint32_t head = no_slot;
    std::uint32_t tail = no_slot;
  };

  static constexpr std::uint32_t no_slot = ~std::uint32_t{0};
  static constexpr std::uint32_t no_bucket = ~std::uint32_t{0};
  static constexpr std::size_t heap_arity = 4;

  /// Direct-mapped time→bucket cache entry. Simulated traffic reuses a
  /// small set of pending timestamps (latency horizons, period
  /// boundaries), so most pushes resolve their bucket with one compare
  /// instead of a hash probe. Entries are invalidated when their bucket
  /// retires.
  struct time_cache_entry {
    sim_time t = time_never;
    std::uint32_t bucket = no_bucket;
  };
  static constexpr std::size_t time_cache_size = 128;  // power of two

  std::uint32_t acquire_slot() {
    detail::event_slab& slab = *slab_;
    if (!slab.free_list.empty()) {
      const std::uint32_t index = slab.free_list.back();
      slab.free_list.pop_back();
      obs::count(obs::counter::pool_event_reuses);
      return index;
    }
    obs::count(obs::counter::pool_event_allocs);
    const std::uint32_t index = slab.slot_count++;
    if ((index >> detail::event_slab::chunk_shift) >= slab.chunks.size()) {
      grow_slab();
    }
    return index;
  }

  void grow_slab();

  void release_slot(std::uint32_t index) noexcept {
    detail::event_slot& s = slab_->slot(index);
    s.fn = nullptr;  // destroy the capture eagerly
    s.live = false;
    if (s.cancelled) {  // covers self-cancellation from inside a callback
      s.cancelled = false;
      --slab_->cancelled_pending;
    }
    ++s.generation;  // any outstanding handle to this slot goes inert
    slab_->free_list.push_back(index);
  }

  /// Appends `slot` to the FIFO bucket for time `at` (creating it and
  /// registering the timestamp when needed).
  void link_into_bucket(sim_time at, std::uint32_t slot) {
    std::uint32_t bindex;
    time_cache_entry& cached =
        time_cache_[static_cast<std::uint64_t>(at) & (time_cache_size - 1)];
    if (cached.t == at) {
      bindex = cached.bucket;
    } else {
      bindex = bucket_for_new_time(at, cached);
    }
    bucket& b = buckets_[bindex];
    if (b.tail == no_slot) {
      b.head = slot;
    } else {
      slab_->slot(b.tail).next = slot;
    }
    b.tail = slot;
  }

  /// Slow path of link_into_bucket: resolves (or creates) the bucket via
  /// by_time_ and refreshes the direct-mapped cache entry.
  std::uint32_t bucket_for_new_time(sim_time at, time_cache_entry& cached);

  /// Runs the front staged-lane event (requires one strictly earlier
  /// than every queued event); returns its time.
  sim_time run_lane_front();

  void heap_push(sim_time t) noexcept;
  void heap_pop() noexcept;
  /// Bucket index of the earliest timestamp (cached; requires
  /// !time_heap_.empty()).
  [[nodiscard]] std::uint32_t front_bucket() const noexcept {
    if (front_bucket_ == no_bucket) {
      front_bucket_ =
          *by_time_.find(static_cast<std::uint64_t>(time_heap_.front())) - 1;
    }
    return front_bucket_;
  }
  /// Retires the drained front bucket and pops its timestamp.
  void retire_front_bucket() noexcept;
  /// Reclaims cancelled events at the front until a live one (or nothing)
  /// remains. Logically const — it only drops logically-deleted state.
  void skip_cancelled() const noexcept {
    if (slab_->cancelled_pending != 0) skip_cancelled_slow();
  }
  void skip_cancelled_slow() const noexcept;

  detail::event_slab* slab_;
  std::vector<bucket> buckets_;              ///< bucket pool
  std::vector<std::uint32_t> bucket_free_;   ///< drained bucket indices
  /// time -> bucket-index + 1 (0 is flat_hash_map's default "absent").
  util::flat_hash_map<std::uint64_t, std::uint32_t> by_time_;
  std::vector<sim_time> time_heap_;          ///< distinct pending times
  /// Bucket of time_heap_.front(); no_bucket = recompute lazily.
  mutable std::uint32_t front_bucket_ = no_bucket;
  std::array<time_cache_entry, time_cache_size> time_cache_;
  std::size_t queued_ = 0;
  std::uint64_t executed_ = 0;
  /// Staging lane (see stage_sorted): canonically sorted, consumed from
  /// `lane_pos_`. Storage is recycled — fully consumed lanes swap with
  /// the next batch, partial ones merge through `lane_scratch_`.
  std::vector<staged_event> lane_;
  std::size_t lane_pos_ = 0;
  std::vector<staged_event> lane_scratch_;
  /// lane_[lane_pos_].at, cached for the run-loop compare (`time_never`
  /// when the lane is drained).
  sim_time lane_next_ = time_never;
};

}  // namespace nylon::sim
