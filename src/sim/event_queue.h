// A stable min-heap of timed events. Stability (FIFO among events with the
// same timestamp) is what makes whole simulations reproducible bit-for-bit
// from a seed, so it is guaranteed here rather than left to chance.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace nylon::sim {

/// Handle to a scheduled event; allows O(1) logical cancellation.
class event_handle {
 public:
  event_handle() = default;

  /// Cancels the event if it has not fired yet. Safe to call repeatedly
  /// and safe after the queue itself is gone.
  void cancel() noexcept {
    if (cancelled_) *cancelled_ = true;
  }

  /// True if this handle refers to a scheduled (possibly fired) event.
  [[nodiscard]] bool valid() const noexcept { return cancelled_ != nullptr; }

 protected:
  // Protected so that the scheduler's periodic-task wrapper can adapt a
  // shared cancellation flag into a handle.
  friend class event_queue;
  explicit event_handle(std::shared_ptr<bool> flag)
      : cancelled_(std::move(flag)) {}

 private:
  std::shared_ptr<bool> cancelled_;
};

/// Priority queue of `void()` callbacks ordered by (time, insertion seq).
class event_queue {
 public:
  /// Schedules `fn` at absolute time `at`; returns a cancellation handle.
  event_handle push(sim_time at, std::function<void()> fn);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const noexcept;

  /// Number of queued entries, including logically cancelled ones.
  [[nodiscard]] std::size_t raw_size() const noexcept { return heap_.size(); }

  /// Time of the earliest live event, or `time_never` when empty.
  [[nodiscard]] sim_time next_time() const noexcept;

  /// Pops and runs the earliest live event; returns its time.
  /// Requires !empty().
  sim_time pop_and_run();

  /// Total number of events executed so far.
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct entry {
    sim_time at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct later {
    bool operator()(const entry& a, const entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Drops cancelled entries from the front of the heap.
  void skip_cancelled() const;

  mutable std::priority_queue<entry, std::vector<entry>, later> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace nylon::sim
