// Deterministic cross-shard event transfer for the sharded universe
// engine. During an epoch each shard buffers the events it wants to run
// on other shards (packet deliveries, in practice) into per-(src, dst)
// channels; at the epoch barrier every destination gathers its inbound
// channels and schedules the events in *canonical* order — sorted by
// (timestamp, order_a, order_b), which for packets is (delivery time,
// sender id, per-sender sequence number).
//
// The canonical key is what makes the merged event stream independent of
// how peers are partitioned: two packets arriving at the same destination
// at the same millisecond enqueue in (sender, sequence) order no matter
// which shards — or how many — the senders lived on. Channel FIFO order
// alone would not do that (it reflects intra-epoch execution order, which
// is partition-dependent).
//
// Threading: a channel is single-producer (the source shard's worker,
// during an epoch) and single-consumer (the destination shard's worker,
// at the barrier). The epoch barrier provides the happens-before edge
// between the two; the channel itself is deliberately unsynchronized.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event_queue.h"
#include "sim/time.h"
#include "util/inplace_function.h"

namespace nylon::sim {

/// One buffered cross-shard event. `order_a` / `order_b` are the
/// canonical tiebreaks among equal timestamps; producers must make
/// (at, order_a, order_b) unique across all events in flight between
/// two drains (the transport uses sender id + a per-sender monotonic
/// sequence). Same layout the event queue's staging lane consumes, so a
/// drained batch stages without conversion.
using channel_event = staged_event;

/// FIFO buffer of events from one source shard to one destination shard.
class shard_channel {
 public:
  /// Buffers `ev` (producer side; FIFO order preserved until drain).
  void push(channel_event ev) { events_.push_back(std::move(ev)); }

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Moves every buffered event onto the back of `out` in push (FIFO)
  /// order and clears the channel, keeping its capacity for reuse.
  void drain_into(std::vector<channel_event>& out);

 private:
  std::vector<channel_event> events_;
};

/// Sorts events into the canonical cross-shard order:
/// (at, order_a, order_b) ascending. The caller guarantees key
/// uniqueness, so the result is a total order independent of the input
/// permutation — the property shard determinism rests on.
void canonical_sort(std::vector<channel_event>& events);

/// Canonically sorts `events` given as `bounds.size() - 1` contiguous
/// segments (`bounds` are the segment start offsets plus the end): each
/// segment — one drained channel's FIFO batch in practice — is sorted in
/// place, then adjacent segments are pairwise merged until one sorted
/// run remains. Equivalent to canonical_sort, but k short
/// almost-independent runs sort and merge cheaper than one cold global
/// sort at barrier rates. `bounds` is consumed as merge scratch
/// (contents unspecified afterwards; capacity kept for reuse).
void canonical_merge_segments(std::vector<channel_event>& events,
                              std::vector<std::size_t>& bounds);

}  // namespace nylon::sim
