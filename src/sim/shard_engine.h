// The sharded universe engine: one simulated world executed as K
// independently clocked shards that advance in lockstep epochs.
//
// Each shard owns a full scheduler (pooled event queue included), so
// every data structure on the event hot path stays single-threaded
// exactly as DESIGN.md requires — the non-atomic slab refcounts and
// thread-local message pools are untouched. Shards interact only through
// `post`, which buffers an event into a per-(src, dst) shard_channel;
// channels are drained at epoch barriers in canonical
// (time, order_a, order_b) order (see shard_channel.h).
//
// Conservative-window synchronization: an epoch never advances any shard
// more than `window` past the last barrier, and every cross-shard event
// posted during an epoch must land strictly *after* the epoch's end
// (`post` asserts it). With `window` <= the minimum cross-shard latency,
// an event posted mid-epoch can therefore never target the epoch being
// executed, and draining all channels at each barrier is sufficient for
// causal delivery.
//
// Determinism: given the same initial state and the same sequence of
// run_until calls, the engine executes the identical event stream
// regardless of how many worker threads run it — and, when producers
// follow the canonical-key discipline and keep all shared state reads
// barrier-stable (see DESIGN.md "Sharded determinism contract"), the
// stream is also independent of the *number of shards*.
//
// Between run_until calls every shard is parked at `now()`; the caller
// (the control plane: scenario construction, workload actions, metric
// snapshots) may freely read and mutate world state in that window. The
// epoch machinery's mutex/condvar handoff provides the happens-before
// edges between control mutations and worker reads.
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "obs/profile.h"
#include "sim/scheduler.h"
#include "sim/shard_channel.h"
#include "sim/time.h"

namespace nylon::sim {

class shard_engine {
 public:
  /// `shards` >= 1 clones of the scheduler machinery; `window` > 0 is the
  /// conservative epoch length (at most the minimum cross-shard latency).
  shard_engine(std::size_t shards, sim_time window);
  ~shard_engine();

  shard_engine(const shard_engine&) = delete;
  shard_engine& operator=(const shard_engine&) = delete;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] sim_time window() const noexcept { return window_; }

  /// Barrier time: every shard's clock equals this between run_until
  /// calls.
  [[nodiscard]] sim_time now() const noexcept { return now_; }

  /// Shard s's scheduler. Only the owning worker may touch it mid-epoch;
  /// the control plane may use it freely while the engine is parked.
  [[nodiscard]] scheduler& shard_scheduler(std::size_t s) {
    return shards_[s]->sched;
  }

  /// Buffers `fn` to run on shard `dst` at time `at` (strictly after the
  /// current epoch's end), ordered canonically by (at, order_a, order_b)
  /// against everything else draining into `dst`. Callable from the `src`
  /// shard's worker mid-epoch, or from the control plane while parked.
  void post(std::size_t src, std::size_t dst, sim_time at,
            std::uint64_t order_a, std::uint64_t order_b, util::callback fn);

  /// Runs lockstep epochs until every shard reaches `deadline`
  /// (>= now()). Events with timestamp exactly `deadline` are executed —
  /// including events scheduled at the current barrier time, so a call
  /// with deadline == now() still runs one (zero-length) epoch.
  void run_until(sim_time deadline);

  /// Total events executed across all shards.
  [[nodiscard]] std::uint64_t events_executed() const noexcept;

  /// Per-shard work/wait wall-clock accounting accumulated across every
  /// epoch so far (see obs/profile.h). Read it while parked. Empty when
  /// telemetry is compiled out (NYLON_OBS=0).
  [[nodiscard]] obs::epoch_profile profile() const;

 private:
  struct shard {
    scheduler sched;
    std::vector<channel_event> drain_scratch;  ///< reused per barrier
    // Epoch-profiler accumulators (seconds). Written only by this shard's
    // worker (or the coordinator on the single-shard inline path); read by
    // the control plane while the engine is parked. Stay zero when
    // telemetry is compiled out.
    double work_s = 0.0;  ///< run_until + drain_inbound
    double wait_s = 0.0;  ///< blocked at the mid / finish barriers
  };

  /// Runs one epoch ending at `target`: every shard executes its events
  /// with timestamp <= target, then every shard drains its inbound
  /// channels. Inline for one shard, on the worker pool otherwise.
  void run_epoch(sim_time target);

  /// Barrier-side work for shard `dst`: gather the column of channels
  /// (*, dst) in source-shard order, canonical-sort, and schedule.
  void drain_inbound(std::size_t dst);

  [[nodiscard]] shard_channel& channel(std::size_t src,
                                       std::size_t dst) noexcept {
    return channels_[src * shards_.size() + dst];
  }

  void start_workers();
  void stop_workers() noexcept;

  std::vector<std::unique_ptr<shard>> shards_;
  std::vector<shard_channel> channels_;  ///< K*K, row-major by source
  sim_time window_;
  sim_time now_ = 0;
  std::uint64_t epochs_ = 0;  ///< lockstep epochs completed
  /// End of the epoch currently executing (== now_ while parked); the
  /// lower bound `post` enforces.
  sim_time epoch_target_ = 0;

  struct worker_pool;  // threads + barriers; built lazily on first use
  std::unique_ptr<worker_pool> pool_;
  std::exception_ptr worker_error_;
};

}  // namespace nylon::sim
