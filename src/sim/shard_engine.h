// The sharded universe engine: one simulated world executed as K
// independently clocked shards that advance in lockstep epochs.
//
// Each shard owns a full scheduler (pooled event queue included), so
// every data structure on the event hot path stays single-threaded
// exactly as DESIGN.md requires — the non-atomic slab refcounts and
// thread-local message pools are untouched. Shards interact only through
// `post`, which buffers an event into a per-(src, dst) shard_channel;
// channels are drained at epoch barriers into the destination
// scheduler's *staging lane* in canonical (time, order_a, order_b) order
// (see shard_channel.h and event_queue::stage_sorted). The lane — not a
// plain FIFO insert — is what makes the executed stream independent of
// *which* barrier staged each event: an event's execution slot depends
// only on its canonical key, so every window policy below replays the
// byte-identical simulation.
//
// Conservative-window synchronization: epochs are half-open spans
// [start, end) of the millisecond grid, and every cross-shard event
// posted during an epoch must land at or after the epoch's end (`post`
// asserts it). The end is chosen so that no event executing this epoch
// can schedule into it:
//
//  * static mode: end = start + W with W <= the minimum cross-shard
//    latency — the classic fixed window;
//  * adaptive mode: end = t_min + L, where t_min is the earliest
//    pending event across all shards (staging lanes included) and L is
//    the per-epoch lookahead (>= W; supplied by the transport from its
//    latency model's live classes). Any event executing this epoch has
//    timestamp >= t_min, so its sends land at >= t_min + L = end.
//    Quiet stretches — t_min far ahead, or no events at all — collapse
//    into one epoch instead of thousands of W-sized ones.
//
// Both policies stage a cross event no later than the barrier opening
// the epoch that executes it, so with the canonical staging lane the
// executed stream is identical under either (the adaptive-vs-static
// digest tests pin this).
//
// Determinism: given the same initial state and the same sequence of
// run_until calls, the engine executes the identical event stream
// regardless of how many worker threads run it — and, when producers
// follow the canonical-key discipline and keep all shared state reads
// barrier-stable (see DESIGN.md "Sharded determinism contract"), the
// stream is also independent of the *number of shards* and of the
// window policy.
//
// Between run_until calls every shard is parked at `now()`; the caller
// (the control plane: scenario construction, workload actions, metric
// snapshots) may freely read and mutate world state in that window. The
// epoch machinery's barrier handoff provides the happens-before edges
// between control mutations and worker reads.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "obs/profile.h"
#include "sim/scheduler.h"
#include "sim/shard_channel.h"
#include "sim/time.h"

namespace nylon::sim {

/// Epoch-length policy (see the file comment).
enum class window_mode : std::uint8_t {
  static_window,  ///< fixed conservative window W per epoch
  adaptive,       ///< per-epoch lookahead from the pending-event horizon
};

class shard_engine {
 public:
  /// Returns the current conservative lookahead: an exact lower bound on
  /// the delay of any cross-shard event schedulable from now on. Queried
  /// once per adaptive epoch, always between epochs (all shards parked).
  using lookahead_fn = std::function<sim_time()>;

  /// `shards` >= 1 clones of the scheduler machinery; `window` > 0 is
  /// the static conservative epoch length (at most the minimum
  /// cross-shard latency) and the floor of every adaptive stride. An
  /// empty `lookahead` means adaptive epochs use `window` as the
  /// lookahead (still striding over quiet stretches via t_min).
  shard_engine(std::size_t shards, sim_time window,
               window_mode mode = window_mode::static_window,
               lookahead_fn lookahead = {});
  ~shard_engine();

  shard_engine(const shard_engine&) = delete;
  shard_engine& operator=(const shard_engine&) = delete;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] sim_time window() const noexcept { return window_; }
  [[nodiscard]] window_mode mode() const noexcept { return mode_; }

  /// Barrier time: every shard's clock equals this between run_until
  /// calls.
  [[nodiscard]] sim_time now() const noexcept { return now_; }

  /// Shard s's scheduler. Only the owning worker may touch it mid-epoch;
  /// the control plane may use it freely while the engine is parked.
  [[nodiscard]] scheduler& shard_scheduler(std::size_t s) {
    return shards_[s]->sched;
  }

  /// Buffers `fn` to run on shard `dst` at time `at` (at or after the
  /// current epoch's end), ordered canonically by (at, order_a, order_b)
  /// against everything else draining into `dst`. Callable from the
  /// `src` shard's worker mid-epoch, or from the control plane while
  /// parked.
  void post(std::size_t src, std::size_t dst, sim_time at,
            std::uint64_t order_a, std::uint64_t order_b, util::callback fn);

  /// Runs lockstep epochs until every shard reaches `deadline`
  /// (>= now()). Events with timestamp exactly `deadline` are executed —
  /// including events scheduled at the current barrier time, so a call
  /// with deadline == now() still runs one (zero-length) epoch.
  void run_until(sim_time deadline);

  /// Total events executed across all shards.
  [[nodiscard]] std::uint64_t events_executed() const noexcept;

  /// Latest simulated time through which *every* shard has provably
  /// finished executing (monotone; -1 before the first epoch). The
  /// transport's payload-lease sweep reclaims against this floor — the
  /// only bound that stays valid under adaptive windows, where a shard
  /// clock alone says nothing about the other shards' progress. Safe to
  /// read from worker threads mid-epoch.
  [[nodiscard]] sim_time completed_through() const noexcept {
    return lease_floor_.load(std::memory_order_relaxed);
  }

  /// Lockstep epochs completed so far (deterministic for a fixed window
  /// policy and run_until sequence).
  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }
  /// Widest single epoch so far, in sim-ms (grid points executed).
  [[nodiscard]] sim_time epoch_width_max() const noexcept {
    return width_max_;
  }
  /// Mean epoch width in sim-ms; 0 before the first epoch.
  [[nodiscard]] double epoch_width_mean() const noexcept {
    return epochs_ == 0 ? 0.0
                        : static_cast<double>(width_sum_) /
                              static_cast<double>(epochs_);
  }

  /// Per-shard work/wait wall-clock accounting accumulated across every
  /// epoch so far, plus the epoch-size statistics above (see
  /// obs/profile.h). Read it while parked. The per-shard wall numbers
  /// are empty when telemetry is compiled out (NYLON_OBS=0); the epoch
  /// statistics are deterministic and always present.
  [[nodiscard]] obs::epoch_profile profile() const;

 private:
  struct shard {
    scheduler sched;
    std::vector<channel_event> drain_scratch;  ///< recycled across epochs
    std::vector<std::size_t> drain_bounds;     ///< segment-merge scratch
    // Epoch-profiler accumulators. work/wait are wall-clock seconds,
    // written only by this shard's worker (or the coordinator on the
    // single-shard inline path); read by the control plane while the
    // engine is parked. The wall numbers stay zero when telemetry is
    // compiled out; the barrier-resolution counts are always maintained
    // (they cost two adds per epoch).
    double work_s = 0.0;  ///< run_until + drain_inbound
    double wait_s = 0.0;  ///< blocked at the mid / finish barriers
    std::uint64_t spin_waits = 0;  ///< barrier crossings resolved spinning
    std::uint64_t park_waits = 0;  ///< crossings that slept on the condvar
  };

  /// Picks the next epoch's exclusive end in (now_, bound], per the
  /// window policy. `bound` = final deadline + 1.
  [[nodiscard]] sim_time next_epoch_end(sim_time bound) const;

  /// Runs one epoch over [now_, end): every shard executes its events
  /// with timestamp < end, then every shard drains its inbound channels
  /// into its staging lane. Inline for one shard, on the worker pool
  /// otherwise.
  void run_epoch(sim_time end);

  /// Barrier-side work for shard `dst`: gather the column of channels
  /// (*, dst) in source-shard order, canonical-merge the per-source
  /// segments, and stage the batch into the destination's lane.
  void drain_inbound(std::size_t dst);

  [[nodiscard]] shard_channel& channel(std::size_t src,
                                       std::size_t dst) noexcept {
    return channels_[src * shards_.size() + dst];
  }

  void start_workers();
  void stop_workers() noexcept;

  std::vector<std::unique_ptr<shard>> shards_;
  std::vector<shard_channel> channels_;  ///< K*K, row-major by source
  sim_time window_;
  window_mode mode_;
  lookahead_fn lookahead_;
  sim_time now_ = 0;
  std::uint64_t epochs_ = 0;   ///< lockstep epochs completed
  sim_time width_sum_ = 0;     ///< total grid points covered by epochs
  sim_time width_max_ = 0;
  /// Lower bound `post` enforces: the running epoch's exclusive end, or
  /// the parked barrier time between run_until calls.
  sim_time post_floor_ = 0;
  /// See completed_through(). Published by the coordinator before each
  /// epoch's start barrier; workers read it mid-epoch, so it is the one
  /// atomic in the epoch bookkeeping.
  std::atomic<sim_time> lease_floor_{-1};

  struct worker_pool;  // threads + barriers; built lazily on first use
  std::unique_ptr<worker_pool> pool_;
  std::exception_ptr worker_error_;
};

}  // namespace nylon::sim
