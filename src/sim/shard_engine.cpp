#include "sim/shard_engine.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "obs/counters.h"
#include "obs/trace.h"
#include "sim/spin_barrier.h"
#include "util/contracts.h"

namespace nylon::sim {

namespace {
#if NYLON_OBS
using profile_clock = std::chrono::steady_clock;

double profile_seconds(profile_clock::time_point from,
                       profile_clock::time_point to) noexcept {
  return std::chrono::duration<double>(to - from).count();
}

/// Emits a completed span from timestamps the profiler already read
/// (no extra clock calls on the trace path).
void profile_span(const char* name, profile_clock::time_point from,
                  profile_clock::time_point to) noexcept {
  if (!obs::trace_enabled()) return;
  obs::record_span(name, obs::trace_us(from),
                   static_cast<std::uint64_t>(
                       std::chrono::duration_cast<std::chrono::microseconds>(
                           to - from)
                           .count()));
}
#endif  // NYLON_OBS
}  // namespace

/// Persistent worker threads, one per shard, woken once per epoch
/// through spin-then-park barriers: same-epoch stragglers resolve with a
/// few microseconds of spinning (no syscall), while parked phases — the
/// control plane running between epochs, oversubscribed CI runs — fall
/// back to the condvar. Protocol per epoch, K workers + the coordinator:
///
///   coordinator: publish target -> arrive(start) ... arrive(finish)
///   worker i:    arrive(start) -> run_until(target)
///                -> arrive(mid, workers only) -> drain_inbound(i)
///                -> arrive(finish)
///
/// `mid` separates event execution from channel draining: a drain reads
/// channels *written by other workers* during the run phase, so every
/// producer must be past its run phase first.
struct shard_engine::worker_pool {
  explicit worker_pool(shard_engine& engine)
      : start(engine.shard_count() + 1),
        mid(engine.shard_count()),
        finish(engine.shard_count() + 1) {
    threads.reserve(engine.shard_count());
    for (std::size_t i = 0; i < engine.shard_count(); ++i) {
      threads.emplace_back([&engine, this, i] { run_worker(engine, i); });
    }
  }

  static void note_wait(shard& s, spin_barrier::wait_kind kind) noexcept {
    if (kind == spin_barrier::wait_kind::parked) {
      ++s.park_waits;
    } else if (kind == spin_barrier::wait_kind::spun) {
      ++s.spin_waits;
    }
  }

  void run_worker(shard_engine& engine, std::size_t index) {
#if NYLON_OBS
    // One trace lane per shard: tid == shard index, so a sharded run
    // renders as K parallel tracks in Perfetto.
    obs::set_thread_track(static_cast<std::uint32_t>(index),
                          "shard " + std::to_string(index));
#endif
    shard& s = *engine.shards_[index];
    for (;;) {
      start.arrive_and_wait();
      if (exiting) return;
      // Profiler accounting (per epoch, five clock reads): work is the
      // run phase plus the drain phase; wait is the time blocked at the
      // mid and finish barriers. The start barrier is deliberately
      // excluded — between epochs workers park there while the control
      // plane runs, which is idle time, not straggler imbalance.
#if NYLON_OBS
      const auto t0 = profile_clock::now();
#endif
      try {
        s.sched.run_until(target);
      } catch (...) {
        record_error();
      }
#if NYLON_OBS
      const auto t1 = profile_clock::now();
      profile_span("epoch:run", t0, t1);
#endif
      note_wait(s, mid.arrive_and_wait());
#if NYLON_OBS
      const auto t2 = profile_clock::now();
      profile_span("barrier:mid", t1, t2);
#endif
      try {
        engine.drain_inbound(index);
      } catch (...) {
        record_error();
      }
#if NYLON_OBS
      const auto t3 = profile_clock::now();
      profile_span("epoch:drain", t2, t3);
#endif
      note_wait(s, finish.arrive_and_wait());
#if NYLON_OBS
      const auto t4 = profile_clock::now();
      profile_span("barrier:finish", t3, t4);
      s.work_s += profile_seconds(t0, t1) + profile_seconds(t2, t3);
      s.wait_s += profile_seconds(t1, t2) + profile_seconds(t3, t4);
#endif
    }
  }

  void record_error() noexcept {
    // First error wins; losers are dropped (they are almost always the
    // same contract violation observed from several shards).
    if (!error_flag.test_and_set()) error = std::current_exception();
  }

  std::vector<std::thread> threads;
  spin_barrier start;
  spin_barrier mid;
  spin_barrier finish;
  sim_time target = 0;     ///< published before start, read after it
  bool exiting = false;
  std::atomic_flag error_flag = ATOMIC_FLAG_INIT;
  std::exception_ptr error;
};

shard_engine::shard_engine(std::size_t shards, sim_time window,
                           window_mode mode, lookahead_fn lookahead)
    : window_(window), mode_(mode), lookahead_(std::move(lookahead)) {
  NYLON_EXPECTS(shards >= 1);
  NYLON_EXPECTS(window > 0);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<shard>());
    // Pre-size the drain path so steady-state barriers never grow it
    // (the swap with the staging lane recycles whatever it reaches).
    shards_.back()->drain_scratch.reserve(256);
    shards_.back()->drain_bounds.reserve(shards + 1);
  }
  channels_.resize(shards * shards);
}

shard_engine::~shard_engine() { stop_workers(); }

void shard_engine::start_workers() {
  if (pool_ == nullptr) pool_ = std::make_unique<worker_pool>(*this);
}

void shard_engine::stop_workers() noexcept {
  if (pool_ == nullptr) return;
  pool_->exiting = true;
  pool_->start.arrive_and_wait();
  for (std::thread& t : pool_->threads) t.join();
  pool_.reset();
}

void shard_engine::post(std::size_t src, std::size_t dst, sim_time at,
                        std::uint64_t order_a, std::uint64_t order_b,
                        util::callback fn) {
  NYLON_EXPECTS(src < shards_.size() && dst < shards_.size());
  NYLON_EXPECTS(static_cast<bool>(fn));  // lanes cannot skip null events
  // Never earlier than the running epoch's (exclusive) end: an event
  // strictly inside the epoch could causally depend on shard state still
  // being computed. `at == post_floor_` is the boundary case — a
  // minimum-lookahead send from the epoch's last grid point — and is
  // safe: the epoch's own barrier stages it before any shard's clock
  // reaches `at`. While parked the floor is the barrier time itself,
  // which admits control-plane events at the current instant.
  NYLON_EXPECTS(at >= post_floor_);
  channel(src, dst).push(channel_event{at, order_a, order_b, std::move(fn)});
}

void shard_engine::drain_inbound(std::size_t dst) {
  shard& sh = *shards_[dst];
  std::vector<channel_event>& scratch = sh.drain_scratch;
  std::vector<std::size_t>& bounds = sh.drain_bounds;
  scratch.clear();
  bounds.clear();
  for (std::size_t src = 0; src < shards_.size(); ++src) {
    bounds.push_back(scratch.size());
    channel(src, dst).drain_into(scratch);
  }
  if (scratch.empty()) return;
  bounds.push_back(scratch.size());
#if NYLON_OBS
  if (obs::trace_enabled()) {
    obs::record_counter("drain/batch_events",
                        obs::trace_us(std::chrono::steady_clock::now()),
                        static_cast<double>(scratch.size()));
  }
#endif
  canonical_merge_segments(scratch, bounds);
  sh.sched.stage_sorted(scratch);
  obs::count_peak(obs::counter::drain_bytes_peak,
                  scratch.capacity() * sizeof(channel_event) +
                      sh.sched.lane_reserved_bytes());
}

sim_time shard_engine::next_epoch_end(sim_time bound) const {
  if (mode_ == window_mode::static_window) {
    return std::min(bound, now_ + window_);
  }
  // Adaptive: the earliest pending event anywhere (staging lanes
  // included — the engine cuts epochs on next_event_time, which covers
  // both) bounds what this epoch can execute; nothing executing at
  // >= t_min can schedule before t_min + lookahead. Idle shards
  // contribute time_never and never constrain the stride.
  sim_time t_min = time_never;
  for (const auto& s : shards_) {
    t_min = std::min(t_min, s->sched.next_event_time());
  }
  if (t_min >= bound) return bound;  // nothing due before the deadline
  const sim_time look =
      lookahead_ ? std::max(window_, lookahead_()) : window_;
  return std::min(bound, t_min + look);
}

void shard_engine::run_epoch(sim_time end) {
  // Everything before this epoch's first grid point has globally
  // executed; publish it for the transport's lease sweep before any
  // worker wakes (the start barrier provides the happens-before edge;
  // mid-epoch readers use the atomic).
  lease_floor_.store(now_ - 1, std::memory_order_relaxed);
  post_floor_ = end;
  ++epochs_;
  width_sum_ += end - now_;
  width_max_ = std::max(width_max_, end - now_);
#if NYLON_OBS
  if (obs::trace_enabled()) {
    obs::record_counter("epoch/width_ms",
                        obs::trace_us(profile_clock::now()),
                        static_cast<double>(end - now_));
  }
#endif
  const sim_time target = end - 1;  // inclusive form for the run loops
  if (shards_.size() == 1) {
    // Inline path: no barriers, so the whole epoch is work time.
#if NYLON_OBS
    const auto t0 = profile_clock::now();
#endif
    shards_[0]->sched.run_until(target);
    drain_inbound(0);
#if NYLON_OBS
    const auto t1 = profile_clock::now();
    profile_span("epoch", t0, t1);
    shards_[0]->work_s += profile_seconds(t0, t1);
#endif
    return;
  }
  start_workers();
  pool_->target = target;
  pool_->start.arrive_and_wait();
  pool_->finish.arrive_and_wait();
  if (pool_->error != nullptr) {
    worker_error_ = std::exchange(pool_->error, nullptr);
    pool_->error_flag.clear();
    std::rethrow_exception(worker_error_);
  }
}

void shard_engine::run_until(sim_time deadline) {
  NYLON_EXPECTS(deadline >= now_);
  // Flush control-plane posts first: while parked, `post` only requires
  // at >= now(), which can fall inside the first epoch — stage them now
  // (single-threaded; nothing is running) so they take their canonical
  // slots before any shard advances.
  for (std::size_t s = 0; s < shards_.size(); ++s) drain_inbound(s);
  // Epochs are half-open [now_, end) spans of the grid; the final epoch
  // ends at deadline + 1 so the deadline's own grid point executes,
  // matching scheduler::run_until's inclusive semantics. Always run at
  // least one epoch: events scheduled *at* the current barrier time (a
  // peer started with zero phase, say) must execute even when the
  // deadline equals now().
  const sim_time bound = deadline + 1;
  for (;;) {
    const sim_time end = next_epoch_end(bound);
    run_epoch(end);
    now_ = end - 1;
    if (now_ >= deadline) break;
  }
  post_floor_ = now_;
}

std::uint64_t shard_engine::events_executed() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->sched.events_executed();
  return total;
}

obs::epoch_profile shard_engine::profile() const {
  obs::epoch_profile out;
  // The epoch-size statistics are deterministic facts about the run (the
  // scale bench reports them even in NYLON_OBS=0 builds); only the
  // wall-clock shard accounting is telemetry-gated.
  out.epochs = epochs_;
  out.epoch_width_ms_max = width_max_;
  out.epoch_width_ms_mean = epoch_width_mean();
  const std::uint64_t events = events_executed();
  out.events_per_epoch = epochs_ == 0 ? 0.0
                                      : static_cast<double>(events) /
                                            static_cast<double>(epochs_);
#if NYLON_OBS
  out.shards.reserve(shards_.size());
  for (const auto& s : shards_) {
    out.shards.push_back(obs::shard_profile{s->work_s, s->wait_s,
                                            s->sched.events_executed(),
                                            s->spin_waits, s->park_waits});
  }
#endif
  return out;
}

}  // namespace nylon::sim
