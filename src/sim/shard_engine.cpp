#include "sim/shard_engine.h"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "obs/trace.h"
#include "util/contracts.h"

namespace nylon::sim {

namespace {
#if NYLON_OBS
using profile_clock = std::chrono::steady_clock;

double profile_seconds(profile_clock::time_point from,
                       profile_clock::time_point to) noexcept {
  return std::chrono::duration<double>(to - from).count();
}

/// Emits a completed span from timestamps the profiler already read
/// (no extra clock calls on the trace path).
void profile_span(const char* name, profile_clock::time_point from,
                  profile_clock::time_point to) noexcept {
  if (!obs::trace_enabled()) return;
  obs::record_span(name, obs::trace_us(from),
                   static_cast<std::uint64_t>(
                       std::chrono::duration_cast<std::chrono::microseconds>(
                           to - from)
                           .count()));
}
#endif  // NYLON_OBS
}  // namespace

/// Persistent worker threads, one per shard, woken once per epoch. The
/// barriers block (futex-based), so oversubscribed runs — more shards
/// than cores, the common CI shape — degrade gracefully instead of
/// spinning. Protocol per epoch, K workers + the coordinator:
///
///   coordinator: publish target -> arrive(start) ... arrive(finish)
///   worker i:    arrive(start) -> run_until(target)
///                -> arrive(mid, workers only) -> drain_inbound(i)
///                -> arrive(finish)
///
/// `mid` separates event execution from channel draining: a drain reads
/// channels *written by other workers* during the run phase, so every
/// producer must be past its run phase first.
struct shard_engine::worker_pool {
  explicit worker_pool(shard_engine& engine)
      : start(static_cast<std::ptrdiff_t>(engine.shard_count() + 1)),
        mid(static_cast<std::ptrdiff_t>(engine.shard_count())),
        finish(static_cast<std::ptrdiff_t>(engine.shard_count() + 1)) {
    threads.reserve(engine.shard_count());
    for (std::size_t i = 0; i < engine.shard_count(); ++i) {
      threads.emplace_back([&engine, this, i] { run_worker(engine, i); });
    }
  }

  void run_worker(shard_engine& engine, std::size_t index) {
#if NYLON_OBS
    // One trace lane per shard: tid == shard index, so a sharded run
    // renders as K parallel tracks in Perfetto.
    obs::set_thread_track(static_cast<std::uint32_t>(index),
                          "shard " + std::to_string(index));
#endif
    for (;;) {
      start.arrive_and_wait();
      if (exiting) return;
      // Profiler accounting (per epoch, five clock reads): work is the
      // run phase plus the drain phase; wait is the time blocked at the
      // mid and finish barriers. The start barrier is deliberately
      // excluded — between epochs workers park there while the control
      // plane runs, which is idle time, not straggler imbalance.
#if NYLON_OBS
      const auto t0 = profile_clock::now();
#endif
      try {
        engine.shards_[index]->sched.run_until(target);
      } catch (...) {
        record_error();
      }
#if NYLON_OBS
      const auto t1 = profile_clock::now();
      profile_span("epoch:run", t0, t1);
#endif
      mid.arrive_and_wait();
#if NYLON_OBS
      const auto t2 = profile_clock::now();
      profile_span("barrier:mid", t1, t2);
#endif
      try {
        engine.drain_inbound(index);
      } catch (...) {
        record_error();
      }
#if NYLON_OBS
      const auto t3 = profile_clock::now();
      profile_span("epoch:drain", t2, t3);
#endif
      finish.arrive_and_wait();
#if NYLON_OBS
      const auto t4 = profile_clock::now();
      profile_span("barrier:finish", t3, t4);
      shard& s = *engine.shards_[index];
      s.work_s += profile_seconds(t0, t1) + profile_seconds(t2, t3);
      s.wait_s += profile_seconds(t1, t2) + profile_seconds(t3, t4);
#endif
    }
  }

  void record_error() noexcept {
    // First error wins; losers are dropped (they are almost always the
    // same contract violation observed from several shards).
    if (!error_flag.test_and_set()) error = std::current_exception();
  }

  std::vector<std::thread> threads;
  std::barrier<> start;
  std::barrier<> mid;
  std::barrier<> finish;
  sim_time target = 0;     ///< published before start, read after it
  bool exiting = false;
  std::atomic_flag error_flag = ATOMIC_FLAG_INIT;
  std::exception_ptr error;
};

shard_engine::shard_engine(std::size_t shards, sim_time window)
    : window_(window) {
  NYLON_EXPECTS(shards >= 1);
  NYLON_EXPECTS(window > 0);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<shard>());
  }
  channels_.resize(shards * shards);
}

shard_engine::~shard_engine() { stop_workers(); }

void shard_engine::start_workers() {
  if (pool_ == nullptr) pool_ = std::make_unique<worker_pool>(*this);
}

void shard_engine::stop_workers() noexcept {
  if (pool_ == nullptr) return;
  pool_->exiting = true;
  pool_->start.arrive_and_wait();
  for (std::thread& t : pool_->threads) t.join();
  pool_.reset();
}

void shard_engine::post(std::size_t src, std::size_t dst, sim_time at,
                        std::uint64_t order_a, std::uint64_t order_b,
                        util::callback fn) {
  NYLON_EXPECTS(src < shards_.size() && dst < shards_.size());
  // Never earlier than the running (or just-finished) epoch's end: an
  // event strictly inside the window could causally depend on shard
  // state still being computed. `at == epoch_target_` is the boundary
  // case — a send from an event sitting exactly on the previous barrier
  // with minimum latency — and is safe: the barrier drain schedules it
  // before the destination's clock moves past `at`.
  NYLON_EXPECTS(at >= epoch_target_);
  channel(src, dst).push(channel_event{at, order_a, order_b, std::move(fn)});
}

void shard_engine::drain_inbound(std::size_t dst) {
  std::vector<channel_event>& scratch = shards_[dst]->drain_scratch;
  scratch.clear();
  for (std::size_t src = 0; src < shards_.size(); ++src) {
    channel(src, dst).drain_into(scratch);
  }
  if (scratch.empty()) return;
  canonical_sort(scratch);
  scheduler& sched = shards_[dst]->sched;
  for (channel_event& ev : scratch) {
    sched.at(ev.at, std::move(ev.fn));
  }
  scratch.clear();
}

void shard_engine::run_epoch(sim_time target) {
  epoch_target_ = target;
  ++epochs_;
  if (shards_.size() == 1) {
    // Inline path: no barriers, so the whole epoch is work time.
#if NYLON_OBS
    const auto t0 = profile_clock::now();
#endif
    shards_[0]->sched.run_until(target);
    drain_inbound(0);
#if NYLON_OBS
    const auto t1 = profile_clock::now();
    profile_span("epoch", t0, t1);
    shards_[0]->work_s += profile_seconds(t0, t1);
#endif
    return;
  }
  start_workers();
  pool_->target = target;
  pool_->start.arrive_and_wait();
  pool_->finish.arrive_and_wait();
  if (pool_->error != nullptr) {
    worker_error_ = std::exchange(pool_->error, nullptr);
    pool_->error_flag.clear();
    std::rethrow_exception(worker_error_);
  }
}

void shard_engine::run_until(sim_time deadline) {
  NYLON_EXPECTS(deadline >= now_);
  // Flush control-plane posts first: while parked, `post` only requires
  // at > now(), which can fall inside the first epoch's window — drain
  // now (single-threaded; nothing is running) so those events reach
  // their destination queue before it advances.
  for (std::size_t s = 0; s < shards_.size(); ++s) drain_inbound(s);
  // Always run at least one epoch: events scheduled *at* the current
  // barrier time (a peer started with zero phase, say) must execute even
  // when the deadline equals now(), matching scheduler::run_until's
  // inclusive-deadline semantics.
  for (;;) {
    const sim_time target = std::min(deadline, now_ + window_);
    run_epoch(target);
    now_ = target;
    epoch_target_ = target;
    if (now_ >= deadline) break;
  }
}

std::uint64_t shard_engine::events_executed() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->sched.events_executed();
  return total;
}

obs::epoch_profile shard_engine::profile() const {
  obs::epoch_profile out;
#if NYLON_OBS
  out.epochs = epochs_;
  out.shards.reserve(shards_.size());
  for (const auto& s : shards_) {
    out.shards.push_back(obs::shard_profile{s->work_s, s->wait_s,
                                            s->sched.events_executed()});
  }
#endif
  return out;
}

}  // namespace nylon::sim
