// The discrete-event scheduler: a clock plus the event queue, with the
// run-loop and periodic-task helpers every component builds on.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"
#include "sim/time.h"
#include "util/contracts.h"
#include "util/inplace_function.h"

namespace nylon::sim {

/// Drives simulated time forward by executing events in timestamp order.
///
/// The scheduler is passive: components schedule callbacks and the owner
/// calls `run_until` / `run_for`. Time only advances through events.
class scheduler {
 public:
  /// Current simulated time.
  [[nodiscard]] sim_time now() const noexcept { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now). Templated (like
  /// event_queue::push) so captures land directly in the event pool.
  template <typename F>
  event_handle at(sim_time when, F&& fn) {
    NYLON_EXPECTS(when >= now_);
    return queue_.push(when, std::forward<F>(fn));
  }

  /// Schedules `fn` after `delay` (>= 0) from now.
  template <typename F>
  event_handle after(sim_time delay, F&& fn) {
    NYLON_EXPECTS(delay >= 0);
    return queue_.push(now_ + delay, std::forward<F>(fn));
  }

  /// Schedules `fn` to run every `period` (> 0), first at `first`.
  /// The task reschedules itself until its handle is cancelled.
  event_handle every(sim_time first, sim_time period, util::callback fn);

  /// Bulk FIFO insert of events pre-sorted by ascending time (all
  /// >= now); see event_queue::push_sorted_batch.
  void push_sorted_batch(std::vector<staged_event>& batch) {
    NYLON_EXPECTS(batch.empty() || batch.front().at >= now_);
    queue_.push_sorted_batch(batch);
  }

  /// Stages canonically sorted cross-shard events (all >= now) into the
  /// queue's staging lane; see event_queue::stage_sorted. Shard-engine
  /// barrier use only — never call from inside a running event.
  void stage_sorted(std::vector<staged_event>& batch) {
    NYLON_EXPECTS(batch.empty() || batch.front().at >= now_);
    queue_.stage_sorted(batch);
  }

  /// Bytes reserved by the staging lane (drain-buffer telemetry).
  [[nodiscard]] std::size_t lane_reserved_bytes() const noexcept {
    return queue_.lane_reserved_bytes();
  }

  /// Runs events until the queue is exhausted or `deadline` is passed.
  /// Events with timestamp exactly `deadline` are executed; the clock
  /// finishes at min(deadline, last event time) and then jumps to
  /// `deadline`.
  void run_until(sim_time deadline);

  /// Runs for `duration` of simulated time from now.
  void run_for(sim_time duration) { run_until(now_ + duration); }

  /// Executes the single next event, if any; returns false when idle.
  bool step();

  /// Total events executed.
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return queue_.executed();
  }

  /// Timestamp of the earliest pending event (`time_never` when idle).
  /// The sharded engine uses it to cut epochs at control-event times.
  [[nodiscard]] sim_time next_event_time() const noexcept {
    return queue_.next_time();
  }

  /// True if no further events are queued.
  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }

 private:
  // A periodic task owns its state via shared_ptr so that cancellation of
  // the returned handle stops the self-rescheduling chain.
  struct periodic_state;

  sim_time now_ = 0;
  event_queue queue_;
};

}  // namespace nylon::sim
