// A sense-reversing barrier with a bounded spin phase before parking.
//
// The shard engine synchronizes K workers plus a coordinator several
// times per epoch; with adaptive windows an epoch can be microseconds of
// wall time, where a futex-based std::barrier pays a syscall sleep/wake
// round-trip per crossing. Here a waiter first spins on the generation
// word for a fixed budget — the common case when every shard has similar
// work — and only then takes the mutex/condvar slow path, so
// oversubscribed runs (more shards than cores, the common CI shape)
// still degrade to blocking instead of burning each other's quantum.
//
// The barrier reports how each crossing resolved (last arriver / spun /
// parked), which the engine folds into its per-shard wait telemetry.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/contracts.h"

namespace nylon::sim {

class spin_barrier {
 public:
  enum class wait_kind : std::uint8_t {
    last,    ///< this arrival completed the barrier (no waiting at all)
    spun,    ///< released while still spinning on the generation word
    parked,  ///< gave up spinning and slept on the condvar
  };

  /// `parties` threads must arrive to release a generation. The spin
  /// budget is in generation-word polls; the default (~a few
  /// microseconds) covers same-epoch stragglers without hurting the
  /// parked control-plane case.
  explicit spin_barrier(std::size_t parties,
                        std::uint32_t spin_polls = 4096) noexcept
      : parties_(parties), spin_polls_(spin_polls) {
    NYLON_EXPECTS(parties >= 1);
  }

  spin_barrier(const spin_barrier&) = delete;
  spin_barrier& operator=(const spin_barrier&) = delete;

  wait_kind arrive_and_wait() {
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      // Last arriver releases everyone. The count reset must be ordered
      // before the generation bump (the release store publishes it):
      // a released waiter may immediately re-arrive for the next
      // generation and must observe arrived_ == 0. The bump and notify
      // happen under the mutex so a parking waiter can never miss the
      // wakeup between its predicate check and its sleep.
      std::lock_guard<std::mutex> lock(mutex_);
      arrived_.store(0, std::memory_order_relaxed);
      generation_.store(gen + 1, std::memory_order_release);
      cv_.notify_all();
      return wait_kind::last;
    }
    for (std::uint32_t i = 0; i < spin_polls_; ++i) {
      if (generation_.load(std::memory_order_acquire) != gen) {
        return wait_kind::spun;
      }
      cpu_relax();
    }
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] {
      return generation_.load(std::memory_order_relaxed) != gen;
    });
    return wait_kind::parked;
  }

 private:
  static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

  std::size_t parties_;
  std::uint32_t spin_polls_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::size_t> arrived_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace nylon::sim
