#include "sim/scheduler.h"

#include <memory>
#include <utility>

#include "util/contracts.h"

namespace nylon::sim {

struct scheduler::periodic_state {
  scheduler* owner;
  sim_time period;
  util::callback fn;
  // The externally visible cancellation flag; shared with the returned
  // handle. Each hop of the chain checks it before rescheduling. One
  // allocation per periodic *task* — the per-hop events are pooled, and
  // the chain passes unique ownership of this state from hop to hop
  // (util::callback is move-only, so a unique_ptr capture works where
  // std::function would have forced shared_ptr refcounting per hop).
  std::shared_ptr<bool> cancelled = std::make_shared<bool>(false);

  static void schedule_hop(std::unique_ptr<periodic_state> state,
                           sim_time when) {
    scheduler* owner = state->owner;
    owner->queue_.push(when, [state = std::move(state)]() mutable {
      if (*state->cancelled) return;  // dropping `state` frees the chain
      state->fn();
      if (*state->cancelled) return;
      const sim_time next = state->owner->now() + state->period;
      schedule_hop(std::move(state), next);  // reentrant push is safe
    });
  }
};

event_handle scheduler::every(sim_time first, sim_time period,
                              util::callback fn) {
  NYLON_EXPECTS(first >= now_);
  NYLON_EXPECTS(period > 0);
  auto state = std::make_unique<periodic_state>();
  state->owner = this;
  state->period = period;
  state->fn = std::move(fn);
  // Wrap the shared cancellation flag in a handle compatible with the
  // single-shot API.
  struct access : event_handle {
    explicit access(std::shared_ptr<bool> f)
        : event_handle(std::move(f)) {}
  };
  access handle(state->cancelled);
  periodic_state::schedule_hop(std::move(state), first);
  return handle;
}

void scheduler::run_until(sim_time deadline) {
  NYLON_EXPECTS(deadline >= now_);
  for (;;) {
    const sim_time next = queue_.next_time();
    if (next > deadline) break;  // time_never compares past any deadline
    now_ = next;
    queue_.pop_and_run();
  }
  now_ = deadline;
}

bool scheduler::step() {
  if (queue_.empty()) return false;
  now_ = queue_.next_time();
  queue_.pop_and_run();
  return true;
}

}  // namespace nylon::sim
