#include "sim/scheduler.h"

#include <memory>
#include <utility>

#include "util/contracts.h"

namespace nylon::sim {

event_handle scheduler::at(sim_time when, std::function<void()> fn) {
  NYLON_EXPECTS(when >= now_);
  return queue_.push(when, std::move(fn));
}

event_handle scheduler::after(sim_time delay, std::function<void()> fn) {
  NYLON_EXPECTS(delay >= 0);
  return queue_.push(now_ + delay, std::move(fn));
}

struct scheduler::periodic_state {
  scheduler* owner;
  sim_time period;
  std::function<void()> fn;
  // The externally visible cancellation flag; shared with the returned
  // handle. Each hop of the chain checks it before rescheduling.
  std::shared_ptr<bool> cancelled = std::make_shared<bool>(false);

  void fire(const std::shared_ptr<periodic_state>& self) {
    if (*cancelled) return;
    fn();
    if (*cancelled) return;
    owner->queue_.push(owner->now() + period,
                       [self] { self->fire(self); });
  }
};

event_handle scheduler::every(sim_time first, sim_time period,
                              std::function<void()> fn) {
  NYLON_EXPECTS(first >= now_);
  NYLON_EXPECTS(period > 0);
  auto state = std::make_shared<periodic_state>();
  state->owner = this;
  state->period = period;
  state->fn = std::move(fn);
  queue_.push(first, [state] { state->fire(state); });
  // Wrap the shared cancellation flag in a handle compatible with the
  // single-shot API.
  struct access : event_handle {
    explicit access(std::shared_ptr<bool> f)
        : event_handle(std::move(f)) {}
  };
  return access(state->cancelled);
}

void scheduler::run_until(sim_time deadline) {
  NYLON_EXPECTS(deadline >= now_);
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
  }
  now_ = deadline;
}

bool scheduler::step() {
  if (queue_.empty()) return false;
  now_ = queue_.next_time();
  queue_.pop_and_run();
  return true;
}

}  // namespace nylon::sim
