#include "sim/event_queue.h"

#include "util/contracts.h"

namespace nylon::sim {

event_handle event_queue::push(sim_time at, std::function<void()> fn) {
  NYLON_EXPECTS(fn != nullptr);
  auto flag = std::make_shared<bool>(false);
  heap_.push(entry{at, next_seq_++, std::move(fn), flag});
  return event_handle(std::move(flag));
}

void event_queue::skip_cancelled() const {
  while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
}

bool event_queue::empty() const noexcept {
  skip_cancelled();
  return heap_.empty();
}

sim_time event_queue::next_time() const noexcept {
  skip_cancelled();
  return heap_.empty() ? time_never : heap_.top().at;
}

sim_time event_queue::pop_and_run() {
  skip_cancelled();
  NYLON_EXPECTS(!heap_.empty());
  // std::priority_queue::top() is const; the entry must be moved out via
  // const_cast, which is safe because pop() immediately follows.
  entry e = std::move(const_cast<entry&>(heap_.top()));
  heap_.pop();
  ++executed_;
  e.fn();
  return e.at;
}

}  // namespace nylon::sim
