#include "sim/event_queue.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/contracts.h"

namespace nylon::sim {

void event_queue::grow_slab() {
  // Default-init, not value-init: zeroing every slot's 64-byte inline
  // buffer (~50 KB per chunk) is measurable on queue-heavy benches.
  slab_->chunks.emplace_back(
      new detail::event_slot[detail::event_slab::chunk_size]);
}

void event_queue::heap_push(sim_time t) noexcept {
  time_heap_.push_back(t);
  std::size_t i = time_heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / heap_arity;
    if (time_heap_[parent] <= t) break;
    time_heap_[i] = time_heap_[parent];
    i = parent;
  }
  time_heap_[i] = t;
}

void event_queue::heap_pop() noexcept {
  const sim_time last = time_heap_.back();
  time_heap_.pop_back();
  const std::size_t n = time_heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = heap_arity * i + 1;
    if (first >= n) break;
    const std::size_t end = std::min(first + heap_arity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (time_heap_[c] < time_heap_[best]) best = c;
    }
    if (time_heap_[best] >= last) break;
    time_heap_[i] = time_heap_[best];
    i = best;
  }
  time_heap_[i] = last;
}

std::uint32_t event_queue::bucket_for_new_time(sim_time at,
                                               time_cache_entry& cached) {
  std::uint32_t& bucket_ref =
      by_time_.insert_or_get(static_cast<std::uint64_t>(at));
  if (bucket_ref == 0) {  // first event at this timestamp
    std::uint32_t index;
    if (!bucket_free_.empty()) {
      index = bucket_free_.back();
      bucket_free_.pop_back();
    } else {
      index = static_cast<std::uint32_t>(buckets_.size());
      buckets_.emplace_back();
    }
    bucket_ref = index + 1;
    heap_push(at);
  }
  const std::uint32_t bindex = bucket_ref - 1;
  if (time_heap_.front() == at) front_bucket_ = bindex;
  cached.t = at;
  cached.bucket = bindex;
  return bindex;
}

void event_queue::retire_front_bucket() noexcept {
  const sim_time t = time_heap_.front();
  const std::uint32_t index = front_bucket();
  buckets_[index] = bucket{};
  bucket_free_.push_back(index);
  by_time_.erase(static_cast<std::uint64_t>(t));
  heap_pop();
  front_bucket_ = no_bucket;
  time_cache_entry& cached =
      time_cache_[static_cast<std::uint64_t>(t) & (time_cache_size - 1)];
  if (cached.t == t) cached.t = time_never;  // bucket no longer exists
}

void event_queue::skip_cancelled_slow() const noexcept {
  auto* self = const_cast<event_queue*>(this);
  while (!time_heap_.empty()) {
    bucket& b = self->buckets_[front_bucket()];
    while (b.head != no_slot) {
      detail::event_slot& s = slab_->slot(b.head);
      if (!s.cancelled) return;  // live front event
      const std::uint32_t slot = b.head;
      b.head = s.next;
      if (b.head == no_slot) b.tail = no_slot;
      self->release_slot(slot);  // decrements cancelled_pending
      --self->queued_;
    }
    self->retire_front_bucket();  // bucket fully drained
  }
}

}  // namespace nylon::sim
