#include "sim/event_queue.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/contracts.h"

namespace nylon::sim {

void event_queue::grow_slab() {
  // Default-init, not value-init: zeroing every slot's 64-byte inline
  // buffer (~50 KB per chunk) is measurable on queue-heavy benches.
  slab_->chunks.emplace_back(
      new detail::event_slot[detail::event_slab::chunk_size]);
}

void event_queue::heap_push(sim_time t) noexcept {
  time_heap_.push_back(t);
  std::size_t i = time_heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / heap_arity;
    if (time_heap_[parent] <= t) break;
    time_heap_[i] = time_heap_[parent];
    i = parent;
  }
  time_heap_[i] = t;
}

void event_queue::heap_pop() noexcept {
  const sim_time last = time_heap_.back();
  time_heap_.pop_back();
  const std::size_t n = time_heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = heap_arity * i + 1;
    if (first >= n) break;
    const std::size_t end = std::min(first + heap_arity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (time_heap_[c] < time_heap_[best]) best = c;
    }
    if (time_heap_[best] >= last) break;
    time_heap_[i] = time_heap_[best];
    i = best;
  }
  time_heap_[i] = last;
}

std::uint32_t event_queue::bucket_for_new_time(sim_time at,
                                               time_cache_entry& cached) {
  std::uint32_t& bucket_ref =
      by_time_.insert_or_get(static_cast<std::uint64_t>(at));
  if (bucket_ref == 0) {  // first event at this timestamp
    std::uint32_t index;
    if (!bucket_free_.empty()) {
      index = bucket_free_.back();
      bucket_free_.pop_back();
    } else {
      index = static_cast<std::uint32_t>(buckets_.size());
      buckets_.emplace_back();
    }
    bucket_ref = index + 1;
    heap_push(at);
  }
  const std::uint32_t bindex = bucket_ref - 1;
  if (time_heap_.front() == at) front_bucket_ = bindex;
  cached.t = at;
  cached.bucket = bindex;
  return bindex;
}

void event_queue::retire_front_bucket() noexcept {
  const sim_time t = time_heap_.front();
  const std::uint32_t index = front_bucket();
  buckets_[index] = bucket{};
  bucket_free_.push_back(index);
  by_time_.erase(static_cast<std::uint64_t>(t));
  heap_pop();
  front_bucket_ = no_bucket;
  time_cache_entry& cached =
      time_cache_[static_cast<std::uint64_t>(t) & (time_cache_size - 1)];
  if (cached.t == t) cached.t = time_never;  // bucket no longer exists
}

void event_queue::push_sorted_batch(std::vector<staged_event>& batch) {
  const std::size_t n = batch.size();
  std::size_t i = 0;
  while (i < n) {
    const sim_time at = batch[i].at;
    NYLON_EXPECTS(i == 0 || batch[i - 1].at <= at);  // sorted by time
    // Resolve the bucket once for the whole same-timestamp run.
    time_cache_entry& cached =
        time_cache_[static_cast<std::uint64_t>(at) & (time_cache_size - 1)];
    const std::uint32_t bindex =
        cached.t == at ? cached.bucket : bucket_for_new_time(at, cached);
    // Link the run into a detached chain first: acquire_slot never moves
    // buckets_, so taking the bucket reference afterwards is safe even
    // when bucket_for_new_time grew the pool above.
    std::uint32_t head = no_slot;
    std::uint32_t tail = no_slot;
    for (; i < n && batch[i].at == at; ++i) {
      NYLON_EXPECTS(static_cast<bool>(batch[i].fn));
      const std::uint32_t slot = acquire_slot();
      detail::event_slot& s = slab_->slot(slot);
      s.fn = std::move(batch[i].fn);
      s.next = no_slot;
      s.cancelled = false;
      s.live = true;
      if (tail == no_slot) {
        head = slot;
      } else {
        slab_->slot(tail).next = slot;
      }
      tail = slot;
      ++queued_;
    }
    bucket& b = buckets_[bindex];
    if (b.tail == no_slot) {
      b.head = head;
    } else {
      slab_->slot(b.tail).next = head;
    }
    b.tail = tail;
  }
  obs::count_peak(obs::counter::queue_peak_depth, queued_);
  batch.clear();
}

void event_queue::stage_sorted(std::vector<staged_event>& batch) {
  if (batch.empty()) return;
  for (std::size_t i = 1; i < batch.size(); ++i) {
    NYLON_EXPECTS(canonical_less(batch[i - 1], batch[i]));
  }
  if (lane_pos_ == lane_.size()) {
    // Lane fully consumed: swap storage so the caller's drain buffer
    // inherits the retired lane capacity (and vice versa) — no epoch
    // steady state allocates.
    lane_.clear();
    lane_.swap(batch);
  } else {
    // Merge the un-consumed remainder with the new batch. std::merge is
    // stable, but the canonical keys are unique by contract, so the
    // result is the one total order either way.
    lane_scratch_.clear();
    lane_scratch_.reserve(lane_.size() - lane_pos_ + batch.size());
    std::merge(std::make_move_iterator(lane_.begin() +
                                       static_cast<std::ptrdiff_t>(lane_pos_)),
               std::make_move_iterator(lane_.end()),
               std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()),
               std::back_inserter(lane_scratch_),
               [](const staged_event& a, const staged_event& b) noexcept {
                 return canonical_less(a, b);
               });
    lane_.swap(lane_scratch_);
    lane_scratch_.clear();
    batch.clear();
  }
  lane_pos_ = 0;
  lane_next_ = lane_.front().at;
  obs::count_peak(obs::counter::queue_peak_depth,
                  queued_ + (lane_.size() - lane_pos_));
}

sim_time event_queue::run_lane_front() {
  staged_event& ev = lane_[lane_pos_];
  const sim_time at = ev.at;
  // Move the callback out before running it: it may reenter push (never
  // stage_sorted — that is the lane contract), and dropping the capture
  // eagerly releases whatever it owns.
  util::callback fn = std::move(ev.fn);
  ++lane_pos_;
  if (lane_pos_ == lane_.size()) {
    lane_.clear();
    lane_pos_ = 0;
    lane_next_ = time_never;
  } else {
    lane_next_ = lane_[lane_pos_].at;
  }
  ++executed_;
  obs::count(obs::counter::events_executed);
  fn();
  return at;
}

void event_queue::skip_cancelled_slow() const noexcept {
  auto* self = const_cast<event_queue*>(this);
  while (!time_heap_.empty()) {
    bucket& b = self->buckets_[front_bucket()];
    while (b.head != no_slot) {
      detail::event_slot& s = slab_->slot(b.head);
      if (!s.cancelled) return;  // live front event
      const std::uint32_t slot = b.head;
      b.head = s.next;
      if (b.head == no_slot) b.tail = no_slot;
      self->release_slot(slot);  // decrements cancelled_pending
      --self->queued_;
    }
    self->retire_front_bucket();  // bucket fully drained
  }
}

}  // namespace nylon::sim
