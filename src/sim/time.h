// Simulated time. Integral milliseconds avoid floating-point drift and make
// event ordering exact; helpers keep call sites readable.
#pragma once

#include <cstdint>

namespace nylon::sim {

/// Simulated time point / duration, in milliseconds since simulation start.
using sim_time = std::int64_t;

/// An unreachable time point, used as "never".
inline constexpr sim_time time_never = INT64_MAX;

/// Converts whole seconds to sim_time.
[[nodiscard]] constexpr sim_time seconds(std::int64_t s) noexcept {
  return s * 1000;
}

/// Converts milliseconds to sim_time (identity; documents intent).
[[nodiscard]] constexpr sim_time millis(std::int64_t ms) noexcept {
  return ms;
}

/// Converts sim_time to fractional seconds (for reporting only).
[[nodiscard]] constexpr double to_seconds(sim_time t) noexcept {
  return static_cast<double>(t) / 1000.0;
}

}  // namespace nylon::sim
