#include "sim/shard_channel.h"

#include <algorithm>

namespace nylon::sim {

void shard_channel::drain_into(std::vector<channel_event>& out) {
  out.reserve(out.size() + events_.size());
  for (channel_event& ev : events_) out.push_back(std::move(ev));
  events_.clear();
}

void canonical_sort(std::vector<channel_event>& events) {
  std::sort(events.begin(), events.end(),
            [](const channel_event& a, const channel_event& b) noexcept {
              return canonical_less(a, b);
            });
}

void canonical_merge_segments(std::vector<channel_event>& events,
                              std::vector<std::size_t>& bounds) {
  NYLON_EXPECTS(!bounds.empty() && bounds.front() == 0 &&
                bounds.back() == events.size());
  const auto less = [](const channel_event& a,
                       const channel_event& b) noexcept {
    return canonical_less(a, b);
  };
  const auto begin = events.begin();
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    std::sort(begin + static_cast<std::ptrdiff_t>(bounds[i]),
              begin + static_cast<std::ptrdiff_t>(bounds[i + 1]), less);
  }
  // Pairwise merge rounds: segment starts [0, b2, b4, ...] after each
  // round, log2(k) rounds total. `bounds` doubles as the round's
  // boundary list — no allocation at barrier rates.
  std::vector<std::size_t>& starts = bounds;
  while (starts.size() > 2) {
    std::size_t write = 1;
    for (std::size_t i = 0; i + 2 < starts.size(); i += 2) {
      std::inplace_merge(begin + static_cast<std::ptrdiff_t>(starts[i]),
                         begin + static_cast<std::ptrdiff_t>(starts[i + 1]),
                         begin + static_cast<std::ptrdiff_t>(starts[i + 2]),
                         less);
      starts[write++] = starts[i + 2];
    }
    // An odd trailing segment carries over to the next round untouched.
    if (starts.size() % 2 == 0) starts[write++] = starts.back();
    starts.resize(write);
    starts[0] = 0;
  }
}

}  // namespace nylon::sim
