#include "sim/shard_channel.h"

#include <algorithm>

namespace nylon::sim {

void shard_channel::drain_into(std::vector<channel_event>& out) {
  out.reserve(out.size() + events_.size());
  for (channel_event& ev : events_) out.push_back(std::move(ev));
  events_.clear();
}

void canonical_sort(std::vector<channel_event>& events) {
  std::sort(events.begin(), events.end(),
            [](const channel_event& a, const channel_event& b) noexcept {
              if (a.at != b.at) return a.at < b.at;
              if (a.order_a != b.order_a) return a.order_a < b.order_a;
              return a.order_b < b.order_b;
            });
}

}  // namespace nylon::sim
