// A move-only `void()` callable with small-buffer optimization, sized for
// the simulator's hot-path closures (transport delivery lambdas, shuffle
// timers). `std::function` heap-allocates any capture larger than two
// pointers and drags in copyability the event queue never uses; this type
// stores up to `inline_capacity` bytes in place and only falls back to the
// heap for outsized captures, so scheduling a packet delivery performs no
// allocation at all. Trivially-copyable captures (the common case: ids,
// endpoints, raw pointers) relocate with a plain memcpy — no indirect
// call, which matters because every event is moved slab→stack before it
// runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace nylon::util {

/// Move-only type-erased `void()` callable with inline storage.
class callback {
 public:
  /// Inline capture budget. 64 bytes comfortably holds the transport's
  /// delivery closure (this + endpoints + payload_ptr + byte count); grep
  /// for `static_assert(sizeof` at call sites before growing captures.
  static constexpr std::size_t inline_capacity = 64;

  callback() noexcept = default;
  callback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, callback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  callback(F&& fn) {  // NOLINT(google-explicit-constructor)
    construct(std::forward<F>(fn));
  }

  /// Assignment from a callable constructs the capture directly in this
  /// object's storage — the hot path for slab slots, which would
  /// otherwise pay a temporary + relocation per event.
  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, callback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  callback& operator=(F&& fn) {
    reset();
    construct(std::forward<F>(fn));
    return *this;
  }

  callback& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  callback(callback&& other) noexcept { move_from(other); }

  callback& operator=(callback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  callback(const callback&) = delete;
  callback& operator=(const callback&) = delete;

  ~callback() { reset(); }

  void operator()() { invoke_(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

 private:
  enum class op : std::uint8_t { relocate, destroy };
  using invoke_fn = void (*)(void*);
  using manage_fn = void (*)(op, void* self, void* destination);

  template <typename F>
  void construct(F&& fn) {
    using fun = std::remove_cvref_t<F>;
    constexpr bool fits = sizeof(fun) <= inline_capacity &&
                          alignof(fun) <= alignof(std::max_align_t);
    if constexpr (fits && std::is_trivially_copyable_v<fun>) {
      // Trivial inline capture: manage_ stays null; relocation is memcpy
      // and destruction is a no-op.
      ::new (static_cast<void*>(storage_)) fun(std::forward<F>(fn));
      invoke_ = [](void* s) { (*std::launder(reinterpret_cast<fun*>(s)))(); };
    } else if constexpr (fits && std::is_nothrow_move_constructible_v<fun>) {
      ::new (static_cast<void*>(storage_)) fun(std::forward<F>(fn));
      invoke_ = [](void* s) { (*std::launder(reinterpret_cast<fun*>(s)))(); };
      manage_ = [](op o, void* s, void* other) {
        auto* self = std::launder(reinterpret_cast<fun*>(s));
        if (o == op::relocate) {
          ::new (other) fun(std::move(*self));
        }
        self->~fun();
      };
    } else {
      using ptr_t = fun*;
      ::new (static_cast<void*>(storage_)) ptr_t(new fun(std::forward<F>(fn)));
      invoke_ = [](void* s) { (**std::launder(reinterpret_cast<ptr_t*>(s)))(); };
      manage_ = [](op o, void* s, void* other) {
        const ptr_t p = *std::launder(reinterpret_cast<ptr_t*>(s));
        if (o == op::relocate) {
          ::new (other) ptr_t(p);  // steal the heap object
        } else {
          delete p;
        }
      };
    }
  }

  void reset() noexcept {
    if (manage_) {
      manage_(op::destroy, storage_, nullptr);
      manage_ = nullptr;
    }
    invoke_ = nullptr;
  }

  void move_from(callback& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_) {
      manage_(op::relocate, other.storage_, storage_);
    } else if (invoke_) {
      std::memcpy(storage_, other.storage_, inline_capacity);
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  invoke_fn invoke_ = nullptr;
  manage_fn manage_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[inline_capacity];
};

}  // namespace nylon::util
