// Deterministic pseudo-random number generation for simulations.
//
// The engine is xoshiro256** (Blackman & Vigna), seeded through splitmix64
// so that any 64-bit seed — including 0 — yields a well-mixed state. One
// engine instance is owned by each simulation; determinism follows from
// never sharing engines across logical components in an order-dependent way.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/contracts.h"

namespace nylon::util {

/// xoshiro256** engine. Satisfies `std::uniform_random_bit_generator`.
class rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine state via splitmix64 expansion of `seed`.
  explicit rng(std::uint64_t seed = 0) noexcept { reseed(seed); }

  /// Re-seeds in place (same expansion as the constructor).
  void reseed(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  /// Uses Lemire-style rejection so results are exactly uniform.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform size_t index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform01() noexcept;

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Standard normal draw (Box-Muller, two uniforms per call — no cached
  /// second value, so the draw count per call is fixed and deterministic).
  double normal01() noexcept;

  /// Picks a uniformly random element of the non-empty span.
  template <typename T>
  T& pick(std::span<T> items) {
    NYLON_EXPECTS(!items.empty());
    return items[index(items.size())];
  }

  /// Fisher-Yates shuffle of the span, in place.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[index(i)]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  std::uint64_t state_[4];
};

/// splitmix64 step, exposed for tests and for seeding derived streams.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Derives an independent child seed from a parent seed and a stream id.
/// Used to give every (experiment, repetition) pair its own stream.
std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream) noexcept;

}  // namespace nylon::util
