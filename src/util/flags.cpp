#include "util/flags.h"

#include <charconv>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace nylon::util {

namespace {

std::int64_t parse_int(const std::string& name, const std::string& value) {
  std::int64_t out = 0;
  const auto* begin = value.data();
  const auto* end = begin + value.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr != end) {
    throw std::invalid_argument("flag --" + name + ": bad integer '" + value +
                                "'");
  }
  return out;
}

double parse_double(const std::string& name, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double out = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument("trailing chars");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + ": bad number '" + value +
                                "'");
  }
}

bool parse_bool(const std::string& name, const std::string& value) {
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  throw std::invalid_argument("flag --" + name + ": bad boolean '" + value +
                              "'");
}

}  // namespace

void flag_set::add(std::string name, entry e) {
  if (!entries_.emplace(std::move(name), std::move(e)).second) {
    throw std::invalid_argument("duplicate flag registration");
  }
}

std::int64_t* flag_set::add_int(std::string name, std::int64_t default_value,
                                std::string help) {
  ints_.push_back(std::make_unique<std::int64_t>(default_value));
  auto* target = ints_.back().get();
  add(std::move(name), entry{kind::integer, target,
                             std::to_string(default_value), std::move(help)});
  return target;
}

double* flag_set::add_double(std::string name, double default_value,
                             std::string help) {
  doubles_.push_back(std::make_unique<double>(default_value));
  auto* target = doubles_.back().get();
  std::ostringstream repr;
  repr << default_value;
  add(std::move(name),
      entry{kind::real, target, repr.str(), std::move(help)});
  return target;
}

std::string* flag_set::add_string(std::string name, std::string default_value,
                                  std::string help) {
  strings_.push_back(std::make_unique<std::string>(std::move(default_value)));
  auto* target = strings_.back().get();
  add(std::move(name), entry{kind::text, target, *target, std::move(help)});
  return target;
}

bool* flag_set::add_bool(std::string name, bool default_value,
                         std::string help) {
  bools_.push_back(std::make_unique<bool>(default_value));
  auto* target = bools_.back().get();
  add(std::move(name), entry{kind::boolean, target,
                             default_value ? "true" : "false",
                             std::move(help)});
  return target;
}

void flag_set::assign(const std::string& name, const std::string& value) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument("unknown flag --" + name);
  }
  provided_.push_back(name);
  entry& e = it->second;
  switch (e.type) {
    case kind::integer:
      *static_cast<std::int64_t*>(e.target) = parse_int(name, value);
      break;
    case kind::real:
      *static_cast<double*>(e.target) = parse_double(name, value);
      break;
    case kind::text:
      *static_cast<std::string*>(e.target) = value;
      break;
    case kind::boolean:
      *static_cast<bool*>(e.target) = parse_bool(name, value);
      break;
  }
}

std::vector<std::string> flag_set::parse(int argc, const char* const* argv) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      assign(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    const auto it = entries_.find(arg);
    if (it == entries_.end()) {
      throw std::invalid_argument("unknown flag --" + arg);
    }
    if (it->second.type == kind::boolean) {
      // Bare boolean: `--name`. A following token that parses as a boolean
      // is *not* consumed; booleans use `--name=false` to disable.
      *static_cast<bool*>(it->second.target) = true;
      provided_.push_back(arg);
      continue;
    }
    if (i + 1 >= argc) {
      throw std::invalid_argument("flag --" + arg + ": missing value");
    }
    assign(arg, argv[++i]);
  }
  return positional;
}

bool flag_set::provided(const std::string& name) const noexcept {
  for (const std::string& p : provided_) {
    if (p == name) return true;
  }
  return false;
}

std::string flag_set::usage(std::string_view program) const {
  std::ostringstream out;
  out << "usage: " << program << " [flags]\n";
  for (const auto& [name, e] : entries_) {
    out << "  --" << name << " (default " << e.default_repr << ")  " << e.help
        << "\n";
  }
  return out.str();
}

}  // namespace nylon::util
