// Minimal command-line flag parser for benches and examples.
//
// Supports `--name=value`, `--name value`, and bare boolean `--name`.
// Unknown flags are an error (typos in sweep scripts should fail fast).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace nylon::util {

/// Registry of typed flags with defaults; call parse() once with argv.
class flag_set {
 public:
  /// Registers an integer flag. Returns a stable pointer to the value.
  std::int64_t* add_int(std::string name, std::int64_t default_value,
                        std::string help);

  /// Registers a floating-point flag.
  double* add_double(std::string name, double default_value, std::string help);

  /// Registers a string flag.
  std::string* add_string(std::string name, std::string default_value,
                          std::string help);

  /// Registers a boolean flag (`--name`, `--name=true/false/1/0`).
  bool* add_bool(std::string name, bool default_value, std::string help);

  /// Parses argv; throws std::invalid_argument on unknown flags or bad
  /// values. Returns positional (non-flag) arguments in order.
  std::vector<std::string> parse(int argc, const char* const* argv);

  /// True when the flag was explicitly given on the parsed command line
  /// (as opposed to holding its default). Lets callers layer defaults —
  /// e.g. a spec profile fills in scale parameters the user did not set.
  [[nodiscard]] bool provided(const std::string& name) const noexcept;

  /// Human-readable usage text listing all flags, defaults and help.
  [[nodiscard]] std::string usage(std::string_view program) const;

 private:
  enum class kind { integer, real, text, boolean };
  struct entry {
    kind type;
    void* target;
    std::string default_repr;
    std::string help;
  };

  void add(std::string name, entry e);
  void assign(const std::string& name, const std::string& value);

  std::map<std::string, entry> entries_;
  std::vector<std::string> provided_;
  // Owning storage for registered values (stable addresses).
  std::vector<std::unique_ptr<std::int64_t>> ints_;
  std::vector<std::unique_ptr<double>> doubles_;
  std::vector<std::unique_ptr<std::string>> strings_;
  std::vector<std::unique_ptr<bool>> bools_;
};

}  // namespace nylon::util
