// Open-addressed hash map with linear probing and backward-shift deletion,
// for the simulator's hot lookup tables (NAT filter rules and sessions,
// public-port ownership, rebound-IP routing). Compared to
// `std::unordered_map` it stores key/value pairs contiguously (one cache
// line per probe, no per-node allocation) and erases without tombstones,
// so long churn runs never degrade.
//
// Determinism note: iteration order depends on hash layout and is NOT
// insertion order. Callers must only iterate for order-independent work
// (counting, expiry sweeps) — see DESIGN.md, "Determinism contract".
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "obs/counters.h"
#include "util/contracts.h"

namespace nylon::util {

/// Multiplicative mixer: spreads consecutive integer keys (ports, packed
/// endpoints, timestamps) across the whole table. One multiply and an
/// xor-fold of the high bits — identity hashes + linear probing would
/// cluster badly, while a full murmur finalizer costs measurably more on
/// the event queue's per-push lookup.
struct mix_hash {
  [[nodiscard]] std::size_t operator()(std::uint64_t key) const noexcept {
    const std::uint64_t h = key * 0xff51afd7ed558ccdULL;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

/// Open-addressed map from an integral-like key to a small value.
/// `K` and `V` must be cheap to move; `K` needs `==`.
template <typename K, typename V, typename Hash = mix_hash>
class flat_hash_map {
 public:
  flat_hash_map() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void clear() noexcept {
    for (slot& s : slots_) s.used = false;
    size_ = 0;
  }

  /// Pre-sizes the table for `count` elements (avoids the growth/rehash
  /// chain when the expected population is known).
  void reserve(std::size_t count) {
    if (count > 0) grow(count);
  }

  /// Pointer to the mapped value, or nullptr when absent. Stable until
  /// the next insert/erase.
  [[nodiscard]] V* find(const K& key) noexcept {
    if (slots_.empty()) return nullptr;
    // `probes` feeds the telemetry counter below; in NYLON_OBS=0 builds
    // obs::count is an empty inline and the increment folds away.
    std::uint64_t probes = 0;
    for (std::size_t i = index_of(key);; i = next(i)) {
      slot& s = slots_[i];
      ++probes;
      if (!s.used) {
        obs::count(obs::counter::hash_probes, probes);
        return nullptr;
      }
      if (s.key == key) {
        obs::count(obs::counter::hash_probes, probes);
        return &s.value;
      }
    }
  }
  [[nodiscard]] const V* find(const K& key) const noexcept {
    return const_cast<flat_hash_map*>(this)->find(key);
  }

  /// Inserts `key` with a default value when absent; returns the mapped
  /// value either way (like `operator[]`).
  V& insert_or_get(const K& key) {
    if (slots_.size() < 8 || (size_ + 1) * 2 > slots_.size()) {
      grow(size_ + 1);
    }
    std::uint64_t probes = 0;
    for (std::size_t i = index_of(key);; i = next(i)) {
      slot& s = slots_[i];
      ++probes;
      if (!s.used) {
        s.used = true;
        s.key = key;
        s.value = V{};
        ++size_;
        obs::count(obs::counter::hash_probes, probes);
        return s.value;
      }
      if (s.key == key) {
        obs::count(obs::counter::hash_probes, probes);
        return s.value;
      }
    }
  }

  /// Removes `key`; returns true when it was present. Backward-shift
  /// deletion keeps probe chains intact without tombstones.
  bool erase(const K& key) noexcept {
    if (slots_.empty()) return false;
    std::size_t i = index_of(key);
    for (;; i = next(i)) {
      if (!slots_[i].used) return false;
      if (slots_[i].key == key) break;
    }
    shift_out(i);
    --size_;
    return true;
  }

  /// Calls `fn(key, value)` for every element, in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const slot& s : slots_) {
      if (s.used) fn(s.key, s.value);
    }
  }

  /// Mutable variant: `fn(key, value&)` may update values in place (it
  /// must not change keys).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (slot& s : slots_) {
      if (s.used) fn(std::as_const(s.key), s.value);
    }
  }

  /// Erases every element for which `pred(key, value)` is true; returns
  /// how many were removed. Order of evaluation is unspecified.
  template <typename Pred>
  std::size_t erase_if(Pred&& pred) {
    std::size_t removed = 0;
    // After a backward shift the same index holds a new (shifted-in)
    // element, so only advance when nothing moved. Probe chains never
    // wrap more than the table (there is always at least one empty slot).
    for (std::size_t i = 0; i < slots_.size();) {
      slot& s = slots_[i];
      if (s.used && pred(std::as_const(s.key), s.value)) {
        shift_out(i);
        --size_;
        ++removed;
      } else {
        ++i;
      }
    }
    return removed;
  }

 private:
  /// Value-first member order: with an 8-byte-aligned V and a 4-byte key
  /// this packs to 24 bytes instead of 32 (key would otherwise be padded
  /// to V's alignment), which is one slot more per cache line on the
  /// probe path.
  struct slot {
    V value{};
    K key{};
    bool used = false;
  };

  [[nodiscard]] std::size_t index_of(const K& key) const noexcept {
    return Hash{}(static_cast<std::uint64_t>(key)) & (slots_.size() - 1);
  }
  [[nodiscard]] std::size_t next(std::size_t i) const noexcept {
    return (i + 1) & (slots_.size() - 1);
  }

  /// Grows so that load factor stays below 0.5 (power-of-two capacity).
  /// The generous headroom is deliberate: most lookups on the hot paths
  /// (routing tables, NAT rules) are *misses*, whose probe chains degrade
  /// much faster with load than hits do.
  void grow(std::size_t count) {
    std::size_t capacity = 8;
    while (count * 2 > capacity) capacity *= 2;
    if (capacity <= slots_.size()) return;  // already large enough
    if (size_ > 0) obs::count(obs::counter::hash_rehashes);
    std::vector<slot> old = std::move(slots_);
    slots_.assign(capacity, slot{});
    size_ = 0;
    for (slot& s : old) {
      if (s.used) insert_or_get(s.key) = std::move(s.value);
    }
  }

  /// Removes the element at `hole`, back-shifting the probe chain that
  /// follows it so every remaining element stays reachable.
  void shift_out(std::size_t hole) noexcept {
    std::size_t i = hole;          // current hole
    std::size_t j = hole;          // scan cursor
    for (;;) {
      j = next(j);
      slot& candidate = slots_[j];
      if (!candidate.used) break;
      // candidate may fill the hole only when its home slot does not lie
      // cyclically within (i, j] — otherwise moving it would break the
      // probe chain between its home and j.
      const std::size_t home = index_of(candidate.key);
      const bool movable = (j > i) ? (home <= i || home > j)
                                   : (home <= i && home > j);
      if (movable) {
        slots_[i].key = std::move(candidate.key);
        slots_[i].value = std::move(candidate.value);
        i = j;
      }
    }
    slots_[i].used = false;
  }

  std::vector<slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace nylon::util
