#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/contracts.h"

namespace nylon::util {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_double(std::ostream& os, double d) {
  if (!std::isfinite(d)) {  // JSON has no inf/nan; null is the convention
    os << "null";
    return;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, d);
  NYLON_ENSURES(ec == std::errc{});
  os.write(buf, end - buf);
}

void write_newline_indent(std::ostream& os, int indent, int depth) {
  if (indent <= 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

json json::array() {
  json j;
  j.value_ = array_t{};
  return j;
}

json json::object() {
  json j;
  j.value_ = object_t{};
  return j;
}

json& json::push_back(json v) {
  if (is_null()) value_ = array_t{};
  auto* arr = std::get_if<array_t>(&value_);
  NYLON_EXPECTS(arr != nullptr);
  arr->push_back(std::move(v));
  return arr->back();
}

json& json::operator[](const std::string& key) {
  if (is_null()) value_ = object_t{};
  auto* obj = std::get_if<object_t>(&value_);
  NYLON_EXPECTS(obj != nullptr);
  for (auto& [k, v] : *obj) {
    if (k == key) return v;
  }
  obj->emplace_back(key, json{});
  return obj->back().second;
}

void json::write(std::ostream& os, int indent, int depth) const {
  std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          os << "null";
        } else if constexpr (std::is_same_v<T, bool>) {
          os << (v ? "true" : "false");
        } else if constexpr (std::is_same_v<T, double>) {
          write_double(os, v);
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          os << v;
        } else if constexpr (std::is_same_v<T, std::string>) {
          write_escaped(os, v);
        } else if constexpr (std::is_same_v<T, array_t>) {
          os << '[';
          for (std::size_t i = 0; i < v.size(); ++i) {
            if (i > 0) os << ',';
            write_newline_indent(os, indent, depth + 1);
            v[i].write(os, indent, depth + 1);
          }
          if (!v.empty()) write_newline_indent(os, indent, depth);
          os << ']';
        } else if constexpr (std::is_same_v<T, object_t>) {
          os << '{';
          for (std::size_t i = 0; i < v.size(); ++i) {
            if (i > 0) os << ',';
            write_newline_indent(os, indent, depth + 1);
            write_escaped(os, v[i].first);
            os << (indent > 0 ? ": " : ":");
            v[i].second.write(os, indent, depth + 1);
          }
          if (!v.empty()) write_newline_indent(os, indent, depth);
          os << '}';
        }
      },
      value_);
}

void json::dump(std::ostream& os, int indent) const { write(os, indent, 0); }

std::string json::dump_string(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

void write_json_file(const std::string& path, const json& doc) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  doc.dump(out);
  out << '\n';
}

}  // namespace nylon::util
