#include "util/json.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/contracts.h"

namespace nylon::util {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_double(std::ostream& os, double d) {
  if (!std::isfinite(d)) {  // JSON has no inf/nan; null is the convention
    os << "null";
    return;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, d);
  NYLON_ENSURES(ec == std::errc{});
  os.write(buf, end - buf);
}

void write_newline_indent(std::ostream& os, int indent, int depth) {
  if (indent <= 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

/// Hand-rolled recursive-descent JSON parser. Small by design: the spec
/// files and bench reports this repo reads are a few kilobytes, so
/// clarity and precise error offsets beat raw throughput.
class parser {
 public:
  explicit parser(std::string_view text) : text_(text) {}

  json parse_document() {
    json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw json_parse_error("json parse error at offset " +
                           std::to_string(pos_) + ": " + what);
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  json parse_value() {
    if (++depth_ > max_depth) fail("nesting deeper than 256 levels");
    skip_whitespace();
    json out;
    switch (peek()) {
      case '{': out = parse_object(); break;
      case '[': out = parse_array(); break;
      case '"': out = json(parse_string()); break;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        out = json(true);
        break;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        out = json(false);
        break;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        break;
      default: out = parse_number(); break;
    }
    --depth_;
    return out;
  }

  json parse_object() {
    expect('{');
    json out = json::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_whitespace();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      if (out.find(key) != nullptr) fail("duplicate object key \"" + key + "\"");
      skip_whitespace();
      expect(':');
      out[key] = parse_value();
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  json parse_array() {
    expect('[');
    json out = json::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          const unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDFFF) {
            fail("surrogate \\u escapes are not supported");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("unterminated \\u escape");
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    // BMP only (the caller rejects surrogates, so cp < 0x10000 and the
    // output is always valid UTF-8).
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");
    if (integral) {
      std::int64_t i = 0;
      const auto [end, ec] =
          std::from_chars(token.data(), token.data() + token.size(), i);
      if (ec == std::errc{} && end == token.data() + token.size()) {
        return json(i);
      }
      // Out-of-range integer literal: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const std::string copy(token);  // strtod needs NUL termination
    const double d = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size() || errno == ERANGE) {
      fail("invalid number");
    }
    return json(d);
  }

  static constexpr int max_depth = 256;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

json json::array() {
  json j;
  j.value_ = array_t{};
  return j;
}

json json::object() {
  json j;
  j.value_ = object_t{};
  return j;
}

json& json::push_back(json v) {
  if (is_null()) value_ = array_t{};
  auto* arr = std::get_if<array_t>(&value_);
  NYLON_EXPECTS(arr != nullptr);
  arr->push_back(std::move(v));
  return arr->back();
}

json& json::operator[](const std::string& key) {
  if (is_null()) value_ = object_t{};
  auto* obj = std::get_if<object_t>(&value_);
  NYLON_EXPECTS(obj != nullptr);
  for (auto& [k, v] : *obj) {
    if (k == key) return v;
  }
  obj->emplace_back(key, json{});
  return obj->back().second;
}

json json::parse(std::string_view text) {
  return parser(text).parse_document();
}

bool json::as_bool() const {
  const auto* b = std::get_if<bool>(&value_);
  NYLON_EXPECTS(b != nullptr);
  return *b;
}

std::int64_t json::as_int() const {
  const auto* i = std::get_if<std::int64_t>(&value_);
  NYLON_EXPECTS(i != nullptr);
  return *i;
}

double json::as_double() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  const auto* d = std::get_if<double>(&value_);
  NYLON_EXPECTS(d != nullptr);
  return *d;
}

const std::string& json::as_string() const {
  const auto* s = std::get_if<std::string>(&value_);
  NYLON_EXPECTS(s != nullptr);
  return *s;
}

std::size_t json::size() const noexcept {
  if (const auto* arr = std::get_if<array_t>(&value_)) return arr->size();
  if (const auto* obj = std::get_if<object_t>(&value_)) return obj->size();
  return 0;
}

const json& json::at(std::size_t index) const {
  const auto* arr = std::get_if<array_t>(&value_);
  NYLON_EXPECTS(arr != nullptr);
  NYLON_EXPECTS(index < arr->size());
  return (*arr)[index];
}

const json* json::find(const std::string& key) const noexcept {
  const auto* obj = std::get_if<object_t>(&value_);
  if (obj == nullptr) return nullptr;
  for (const auto& [k, v] : *obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

const json& json::at(const std::string& key) const {
  const json* member = find(key);
  NYLON_EXPECTS(member != nullptr);
  return *member;
}

const json::array_t& json::array_items() const {
  const auto* arr = std::get_if<array_t>(&value_);
  NYLON_EXPECTS(arr != nullptr);
  return *arr;
}

const json::object_t& json::object_items() const {
  const auto* obj = std::get_if<object_t>(&value_);
  NYLON_EXPECTS(obj != nullptr);
  return *obj;
}

void json::write(std::ostream& os, int indent, int depth) const {
  std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          os << "null";
        } else if constexpr (std::is_same_v<T, bool>) {
          os << (v ? "true" : "false");
        } else if constexpr (std::is_same_v<T, double>) {
          write_double(os, v);
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          os << v;
        } else if constexpr (std::is_same_v<T, std::string>) {
          write_escaped(os, v);
        } else if constexpr (std::is_same_v<T, array_t>) {
          os << '[';
          for (std::size_t i = 0; i < v.size(); ++i) {
            if (i > 0) os << ',';
            write_newline_indent(os, indent, depth + 1);
            v[i].write(os, indent, depth + 1);
          }
          if (!v.empty()) write_newline_indent(os, indent, depth);
          os << ']';
        } else if constexpr (std::is_same_v<T, object_t>) {
          os << '{';
          for (std::size_t i = 0; i < v.size(); ++i) {
            if (i > 0) os << ',';
            write_newline_indent(os, indent, depth + 1);
            write_escaped(os, v[i].first);
            os << (indent > 0 ? ": " : ":");
            v[i].second.write(os, indent, depth + 1);
          }
          if (!v.empty()) write_newline_indent(os, indent, depth);
          os << '}';
        }
      },
      value_);
}

void json::dump(std::ostream& os, int indent) const { write(os, indent, 0); }

std::string json::dump_string(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

void write_json_file(const std::string& path, const json& doc) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  doc.dump(out);
  out << '\n';
}

json load_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw std::runtime_error("error reading " + path);
  return json::parse(buffer.str());
}

void require_known_keys(const json& j,
                        std::initializer_list<std::string_view> allowed,
                        std::string_view what, std::string_view error_prefix) {
  const auto fail = [&](const std::string& msg) {
    throw contract_error(std::string(error_prefix) + msg);
  };
  if (!j.is_object()) fail(std::string(what) + " must be an object");
  for (const auto& [key, value] : j.object_items()) {
    (void)value;
    bool known = false;
    for (const std::string_view a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      fail("unknown key \"" + key + "\" in " + std::string(what));
    }
  }
}

}  // namespace nylon::util
