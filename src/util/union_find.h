// Disjoint-set forest with union by size and path halving. Used by the
// graph-analysis metrics to compute connected components of the overlay.
#pragma once

#include <cstddef>
#include <vector>

namespace nylon::util {

/// Disjoint-set over elements 0..n-1.
class union_find {
 public:
  /// Creates n singleton sets.
  explicit union_find(std::size_t n);

  /// Representative of x's set (with path halving).
  [[nodiscard]] std::size_t find(std::size_t x);

  /// Merges the sets of a and b; returns true if they were distinct.
  bool unite(std::size_t a, std::size_t b);

  /// True when a and b are in the same set.
  [[nodiscard]] bool connected(std::size_t a, std::size_t b);

  /// Number of elements in x's set.
  [[nodiscard]] std::size_t size_of(std::size_t x);

  /// Number of disjoint sets remaining.
  [[nodiscard]] std::size_t set_count() const noexcept { return sets_; }

  /// Size of the largest set (0 for an empty structure).
  [[nodiscard]] std::size_t largest_set();

  /// Total number of elements.
  [[nodiscard]] std::size_t size() const noexcept { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t sets_;
};

}  // namespace nylon::util
