// Minimal JSON document builder for machine-readable bench output
// (BENCH_*.json). Write-only by design: the repo needs to *emit* results
// for external tooling, never to parse them, so there is no parser and no
// dependency. Object keys keep insertion order so emitted files diff
// cleanly across runs.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace nylon::util {

/// One JSON value: null, bool, number, string, array or object.
class json {
 public:
  json() = default;  ///< null
  json(bool b) : value_(b) {}
  json(double d) : value_(d) {}
  json(std::int64_t i) : value_(i) {}
  json(int i) : value_(static_cast<std::int64_t>(i)) {}
  json(std::uint64_t u) : value_(static_cast<std::int64_t>(u)) {}
  json(std::string s) : value_(std::move(s)) {}
  json(const char* s) : value_(std::string(s)) {}

  /// An empty array / object (distinct from null).
  static json array();
  static json object();

  /// Appends to an array (null promotes to array).
  json& push_back(json v);

  /// Object member access; inserts a null member on first use (null
  /// promotes to object). Keys keep insertion order.
  json& operator[](const std::string& key);

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::monostate>(value_);
  }

  /// Serializes the document. `indent` = 0 gives compact one-line output;
  /// > 0 pretty-prints with that many spaces per level.
  void dump(std::ostream& os, int indent = 2) const;
  [[nodiscard]] std::string dump_string(int indent = 2) const;

 private:
  using array_t = std::vector<json>;
  using object_t = std::vector<std::pair<std::string, json>>;

  void write(std::ostream& os, int indent, int depth) const;

  std::variant<std::monostate, bool, double, std::int64_t, std::string,
               array_t, object_t>
      value_;
};

/// Writes `doc` to `path` (trailing newline included). Throws
/// std::runtime_error when the file cannot be written.
void write_json_file(const std::string& path, const json& doc);

}  // namespace nylon::util
