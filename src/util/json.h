// JSON document model for machine-readable bench output (BENCH_*.json)
// and declarative experiment specs (examples/specs/*.json). Historically
// write-only; the experiment-spec API added a parser so studies can be
// *loaded* as data, not just emitted. No external dependency. Object keys
// keep insertion order so emitted files diff cleanly across runs.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace nylon::util {

/// Thrown by json::parse on malformed input; the message carries a byte
/// offset so spec files fail with an actionable location.
class json_parse_error : public std::runtime_error {
 public:
  explicit json_parse_error(const std::string& what)
      : std::runtime_error(what) {}
};

/// One JSON value: null, bool, number, string, array or object.
class json {
 public:
  using array_t = std::vector<json>;
  using object_t = std::vector<std::pair<std::string, json>>;

  json() = default;  ///< null
  json(bool b) : value_(b) {}
  json(double d) : value_(d) {}
  json(std::int64_t i) : value_(i) {}
  json(int i) : value_(static_cast<std::int64_t>(i)) {}
  json(std::uint64_t u) : value_(static_cast<std::int64_t>(u)) {}
  json(std::string s) : value_(std::move(s)) {}
  json(const char* s) : value_(std::string(s)) {}

  /// An empty array / object (distinct from null).
  static json array();
  static json object();

  /// Parses a complete JSON document (trailing whitespace allowed,
  /// trailing garbage is an error). Throws json_parse_error.
  static json parse(std::string_view text);

  /// Appends to an array (null promotes to array).
  json& push_back(json v);

  /// Object member access; inserts a null member on first use (null
  /// promotes to object). Keys keep insertion order.
  json& operator[](const std::string& key);

  // --- inspection ------------------------------------------------------------

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<std::monostate>(value_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_int() const noexcept {
    return std::holds_alternative<std::int64_t>(value_);
  }
  [[nodiscard]] bool is_double() const noexcept {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return is_int() || is_double();
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<array_t>(value_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<object_t>(value_);
  }

  // --- typed access (contract_error on type mismatch) ------------------------

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;   ///< integers only
  [[nodiscard]] double as_double() const;      ///< accepts int or double
  [[nodiscard]] const std::string& as_string() const;

  /// Element count of an array or object (0 for everything else).
  [[nodiscard]] std::size_t size() const noexcept;

  /// Array element access (contract_error when not an array / out of
  /// range).
  [[nodiscard]] const json& at(std::size_t index) const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const json* find(const std::string& key) const noexcept;

  /// Object member access; contract_error when absent.
  [[nodiscard]] const json& at(const std::string& key) const;

  /// Underlying containers, for iteration (contract_error on mismatch).
  [[nodiscard]] const array_t& array_items() const;
  [[nodiscard]] const object_t& object_items() const;

  /// Serializes the document. `indent` = 0 gives compact one-line output;
  /// > 0 pretty-prints with that many spaces per level.
  void dump(std::ostream& os, int indent = 2) const;
  [[nodiscard]] std::string dump_string(int indent = 2) const;

 private:
  void write(std::ostream& os, int indent, int depth) const;

  std::variant<std::monostate, bool, double, std::int64_t, std::string,
               array_t, object_t>
      value_;
};

/// Writes `doc` to `path` (trailing newline included). Throws
/// std::runtime_error when the file cannot be written.
void write_json_file(const std::string& path, const json& doc);

/// Reads and parses a JSON file. Throws std::runtime_error when the file
/// cannot be read, json_parse_error when it is malformed.
[[nodiscard]] json load_json_file(const std::string& path);

/// Strict-schema guard shared by the declarative parsers (experiment
/// specs, workload programs): requires `j` to be an object whose keys
/// all appear in `allowed`, so a typo fails loudly instead of silently
/// configuring a different run. Throws nylon::contract_error with
/// `error_prefix` + a message naming `what` and the offending key.
void require_known_keys(const json& j,
                        std::initializer_list<std::string_view> allowed,
                        std::string_view what, std::string_view error_prefix);

}  // namespace nylon::util
