#include "util/rng.h"

#include <cmath>

#include "util/flat_hash.h"

namespace nylon::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream) noexcept {
  // Mix the stream id into the parent with one splitmix64 round each; the
  // constant separates the (parent, stream) lattice from plain increments.
  std::uint64_t s = parent ^ (0xa0761d6478bd642fULL * (stream + 1));
  return splitmix64(s);
}

void rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

rng::result_type rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  NYLON_EXPECTS(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == max()) return (*this)();
  // Lemire's method with rejection for exact uniformity.
  const std::uint64_t n = span + 1;
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::uint64_t>(m >> 64);
}

std::size_t rng::index(std::size_t n) {
  NYLON_EXPECTS(n > 0);
  return static_cast<std::size_t>(uniform(0, n - 1));
}

double rng::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double rng::normal01() noexcept {
  // Box-Muller; 1 - uniform01() maps [0, 1) to (0, 1] so the log is finite.
  const double u1 = 1.0 - uniform01();
  const double u2 = uniform01();
  constexpr double two_pi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

std::vector<std::size_t> rng::sample_indices(std::size_t n, std::size_t k) {
  NYLON_EXPECTS(k <= n);
  // Sparse partial Fisher-Yates: draw-for-draw and output-for-output
  // identical to shuffling a dense 0..n-1 index vector (same
  // uniform(0, n-1-i) sequence, same swaps), but only the displaced
  // positions are materialized. A call is O(k) instead of O(n), which
  // matters because callers pass n = population: bootstrap samples a
  // view per peer, so the dense form made 1M-peer universe
  // construction quadratic (tens of minutes); this form keeps it
  // linear. Do not change the draw pattern — it is digest-pinned.
  std::vector<std::size_t> out(k);
  flat_hash_map<std::size_t, std::size_t> displaced;  // position -> value
  displaced.reserve(2 * k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform(0, n - 1 - i));
    const std::size_t* at_j = displaced.find(j);
    out[i] = at_j != nullptr ? *at_j : j;
    // Position i is never revisited (future j >= i+1), so only j needs
    // the displaced value that a dense swap would have left there.
    if (j != i) {
      const std::size_t* at_i = displaced.find(i);
      displaced.insert_or_get(j) = at_i != nullptr ? *at_i : i;
    }
  }
  return out;
}

}  // namespace nylon::util
