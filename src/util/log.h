// Tiny leveled logger. Simulations are silent by default; examples raise
// the level to `info` to narrate what is happening.
#pragma once

#include <sstream>
#include <string_view>

namespace nylon::util {

/// Severity, lowest to highest.
enum class log_level { trace, debug, info, warn, error, off };

/// Sets the global minimum level that is emitted (default: warn).
void set_log_level(log_level level) noexcept;

/// Current global level.
[[nodiscard]] log_level current_log_level() noexcept;

/// Emits one line to stderr if `level` passes the global threshold.
/// The prefix, message and newline go out in a single write, so lines
/// from concurrent shard workers never interleave mid-line.
void log_line(log_level level, std::string_view message);

namespace detail {
/// Stream-style helper: collects a message and emits it on destruction.
class log_stream {
 public:
  explicit log_stream(log_level level) : level_(level) {}
  ~log_stream() { log_line(level_, stream_.str()); }
  log_stream(const log_stream&) = delete;
  log_stream& operator=(const log_stream&) = delete;

  template <typename T>
  log_stream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  log_level level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace nylon::util

#define NYLON_LOG(level)                                        \
  if (::nylon::util::current_log_level() <= (level))            \
  ::nylon::util::detail::log_stream(level)

#define NYLON_LOG_ERROR NYLON_LOG(::nylon::util::log_level::error)
#define NYLON_LOG_INFO NYLON_LOG(::nylon::util::log_level::info)
#define NYLON_LOG_WARN NYLON_LOG(::nylon::util::log_level::warn)
#define NYLON_LOG_DEBUG NYLON_LOG(::nylon::util::log_level::debug)
#define NYLON_LOG_TRACE NYLON_LOG(::nylon::util::log_level::trace)
