#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace nylon::util {

void running_stats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void running_stats::merge(const running_stats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double running_stats::mean() const noexcept { return count_ ? mean_ : 0.0; }

double running_stats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
}

double running_stats::stddev() const noexcept { return std::sqrt(variance()); }

double running_stats::min() const noexcept { return count_ ? min_ : 0.0; }

double running_stats::max() const noexcept { return count_ ? max_ : 0.0; }

double percentile_sorted(std::span<const double> sorted, double q) {
  NYLON_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

summary summarize(std::span<const double> values) {
  summary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  running_stats acc;
  for (double v : sorted) acc.add(v);
  s.count = sorted.size();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = percentile_sorted(sorted, 0.5);
  s.p90 = percentile_sorted(sorted, 0.9);
  s.p99 = percentile_sorted(sorted, 0.99);
  return s;
}

double mean_of(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace nylon::util
