// Wall-clock stopwatch over std::chrono::steady_clock — the one-liner
// every bench main used to hand-roll as `seconds_since(t0)`. Shared by
// bench_scale, nylon_exp and the epoch profiler so elapsed-time
// arithmetic lives in exactly one place.
#pragma once

#include <chrono>

namespace nylon::util {

class wall_timer {
 public:
  /// Starts timing at construction.
  wall_timer() noexcept : start_(std::chrono::steady_clock::now()) {}

  /// Restarts the stopwatch.
  void reset() noexcept { start_ = std::chrono::steady_clock::now(); }

  /// Seconds elapsed since construction / last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace nylon::util
