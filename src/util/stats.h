// Streaming and batch descriptive statistics used by the metrics layer and
// by the experiment runner when aggregating across seeds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace nylon::util {

/// Numerically stable streaming accumulator (Welford) for count / mean /
/// variance / min / max. Cheap enough to keep one per metric per peer.
class running_stats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const running_stats& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept;
  /// Population variance; 0 when fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double sum() const noexcept { return mean() * count_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One-shot summary of a batch of values.
struct summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Computes a full summary of `values` (copies and sorts internally).
/// An empty input yields an all-zero summary.
[[nodiscard]] summary summarize(std::span<const double> values);

/// Linear-interpolated percentile of a *sorted* span; `q` in [0, 1].
[[nodiscard]] double percentile_sorted(std::span<const double> sorted,
                                       double q);

/// Sample mean of a span (0 for an empty span).
[[nodiscard]] double mean_of(std::span<const double> values) noexcept;

}  // namespace nylon::util
