// Lightweight contract checking in the spirit of the C++ Core Guidelines'
// Expects/Ensures (I.6, I.8). Violations throw `nylon::contract_error` so
// that tests can assert on them and simulations fail loudly instead of
// silently corrupting state.
#pragma once

#include <stdexcept>
#include <string>

namespace nylon {

/// Thrown when a precondition, postcondition or invariant is violated.
class contract_error : public std::logic_error {
 public:
  explicit contract_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw contract_error(std::string(kind) + " failed: (" + expr + ") at " +
                       file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace nylon

/// Precondition check: use at function entry to validate arguments/state.
#define NYLON_EXPECTS(expr)                                              \
  ((expr) ? static_cast<void>(0)                                         \
          : ::nylon::detail::contract_fail("precondition", #expr,        \
                                           __FILE__, __LINE__))

/// Postcondition / invariant check.
#define NYLON_ENSURES(expr)                                              \
  ((expr) ? static_cast<void>(0)                                         \
          : ::nylon::detail::contract_fail("postcondition", #expr,       \
                                           __FILE__, __LINE__))
