#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <string>

namespace nylon::util {

namespace {
std::atomic<log_level> g_level{log_level::warn};

constexpr const char* level_name(log_level level) noexcept {
  switch (level) {
    case log_level::trace: return "TRACE";
    case log_level::debug: return "DEBUG";
    case log_level::info: return "INFO";
    case log_level::warn: return "WARN";
    case log_level::error: return "ERROR";
    case log_level::off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(log_level level) noexcept { g_level.store(level); }

log_level current_log_level() noexcept { return g_level.load(); }

void log_line(log_level level, std::string_view message) {
  if (level < g_level.load() || level == log_level::off) return;
  // Assemble the whole line first and hand it to stderr in one fwrite:
  // stdio locks the stream per call, so concurrent shard workers may
  // interleave whole lines but never fragments of one.
  std::string line;
  line.reserve(message.size() + 16);
  line += "[";
  line += level_name(level);
  line += "] ";
  line += message;
  line += "\n";
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace nylon::util
