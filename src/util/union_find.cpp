#include "util/union_find.h"

#include <algorithm>

#include "util/contracts.h"

namespace nylon::util {

union_find::union_find(std::size_t n)
    : parent_(n), size_(n, 1), sets_(n) {
  for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
}

std::size_t union_find::find(std::size_t x) {
  NYLON_EXPECTS(x < parent_.size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool union_find::unite(std::size_t a, std::size_t b) {
  std::size_t ra = find(a);
  std::size_t rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --sets_;
  return true;
}

bool union_find::connected(std::size_t a, std::size_t b) {
  return find(a) == find(b);
}

std::size_t union_find::size_of(std::size_t x) { return size_[find(x)]; }

std::size_t union_find::largest_set() {
  std::size_t best = 0;
  for (std::size_t i = 0; i < parent_.size(); ++i) {
    if (parent_[i] == i) best = std::max(best, size_[i]);
  }
  return best;
}

}  // namespace nylon::util
