#include "obs/msglog.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "sim/time.h"

namespace nylon::obs {

std::string_view to_string(hop_kind k) noexcept {
  switch (k) {
    case hop_kind::send: return "send";
    case hop_kind::nat_translate: return "nat_translate";
    case hop_kind::drop: return "drop";
    case hop_kind::deliver: return "deliver";
  }
  return "?";
}

}  // namespace nylon::obs

#if NYLON_OBS

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace nylon::obs {

namespace {

/// A hop plus its ring-local arrival ordinal, the tiebreak that keeps
/// same-millisecond hops (translate, send) in recording order.
struct stamped_hop {
  hop_record rec;
  std::uint64_t seq = 0;
};

struct msg_ring {
  std::vector<stamped_hop> buf;
  std::size_t head = 0;   ///< oldest element
  std::size_t count = 0;  ///< live elements
  std::size_t dropped = 0;
  std::uint64_t next_seq = 0;

  void push(const hop_record& rec, std::size_t capacity) noexcept {
    if (buf.size() < capacity) buf.resize(capacity);
    const stamped_hop stamped{rec, next_seq++};
    if (count == buf.size()) {  // full: overwrite the oldest
      buf[head] = stamped;
      head = (head + 1) % buf.size();
      ++dropped;
    } else {
      buf[(head + count) % buf.size()] = stamped;
      ++count;
    }
  }
};

struct msg_recorder {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> rate{1};
  std::size_t capacity = std::size_t{1} << 12;

  std::mutex mutex;  ///< guards rings
  std::vector<std::unique_ptr<msg_ring>> rings;
};

msg_recorder& mrec() {
  static msg_recorder* r = new msg_recorder();  // never destroyed
  return *r;
}

thread_local msg_ring* tls_msg_ring = nullptr;

msg_ring& local_msg_ring() {
  msg_ring* ring = tls_msg_ring;
  if (ring == nullptr) {
    msg_recorder& r = mrec();
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.rings.push_back(std::make_unique<msg_ring>());
    ring = r.rings.back().get();
    tls_msg_ring = ring;
  }
  return *ring;
}

/// splitmix64 finalizer: every input bit avalanches into the output, so
/// `% rate` sampling is unbiased for any rate.
[[nodiscard]] std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// All live hops across all rings, sorted by (time, ring seq) — the
/// lifecycle order within a message.
[[nodiscard]] std::vector<stamped_hop> collect_hops() {
  msg_recorder& r = mrec();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<stamped_hop> hops;
  for (const auto& ring : r.rings) {
    for (std::size_t i = 0; i < ring->count; ++i) {
      hops.push_back(ring->buf[(ring->head + i) % ring->buf.size()]);
    }
  }
  std::sort(hops.begin(), hops.end(),
            [](const stamped_hop& a, const stamped_hop& b) {
              if (a.rec.at != b.rec.at) return a.rec.at < b.rec.at;
              return a.seq < b.seq;
            });
  return hops;
}

/// Hops grouped per tag, groups ordered by first-hop time (tag as a
/// deterministic tiebreak for cross-ring collisions).
[[nodiscard]] std::vector<std::vector<hop_record>> group_by_tag(
    const std::vector<stamped_hop>& hops) {
  std::map<std::uint64_t, std::size_t> index;  // tag -> group slot
  std::vector<std::vector<hop_record>> groups;
  for (const stamped_hop& h : hops) {
    const auto [it, fresh] = index.try_emplace(h.rec.tag, groups.size());
    if (fresh) groups.emplace_back();
    groups[it->second].push_back(h.rec);
  }
  return groups;  // insertion order == first-hop time order
}

void format_tag(char (&buf)[24], std::uint64_t tag) {
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, tag);
}

}  // namespace

void msglog_start(std::uint64_t sample_one_in, std::size_t ring_capacity) {
  msg_recorder& r = mrec();
  r.enabled.store(false, std::memory_order_release);
  {
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.capacity = ring_capacity == 0 ? 1 : ring_capacity;
    for (const auto& ring : r.rings) {
      ring->head = ring->count = ring->dropped = 0;
      ring->next_seq = 0;
      ring->buf.clear();
      ring->buf.shrink_to_fit();
    }
  }
  r.rate.store(sample_one_in == 0 ? 1 : sample_one_in,
               std::memory_order_release);
  r.enabled.store(true, std::memory_order_release);
}

void msglog_stop() noexcept {
  mrec().enabled.store(false, std::memory_order_release);
}

bool msglog_enabled() noexcept {
  return mrec().enabled.load(std::memory_order_relaxed);
}

std::uint64_t msglog_tag(std::uint64_t sender, std::uint64_t ordinal,
                         std::int64_t at) noexcept {
  msg_recorder& r = mrec();
  if (!r.enabled.load(std::memory_order_relaxed)) return 0;
  std::uint64_t x = mix(sender + 0x9E3779B97F4A7C15ULL);
  x = mix(x ^ ordinal);
  x = mix(x ^ static_cast<std::uint64_t>(at));
  const std::uint64_t rate = r.rate.load(std::memory_order_relaxed);
  if (rate > 1 && x % rate != 0) return 0;
  return x | 1;  // 0 is reserved for "unsampled"
}

void msglog_record(const hop_record& rec) noexcept {
  if (rec.tag == 0) return;
  msg_recorder& r = mrec();
  if (!r.enabled.load(std::memory_order_relaxed)) return;
  local_msg_ring().push(rec, r.capacity);
}

msglog_stats msglog_statistics() noexcept {
  msg_recorder& r = mrec();
  const std::lock_guard<std::mutex> lock(r.mutex);
  msglog_stats stats;
  for (const auto& ring : r.rings) {
    if (ring->count == 0 && ring->dropped == 0) continue;
    ++stats.threads;
    stats.recorded += ring->count;
    stats.dropped += ring->dropped;
  }
  return stats;
}

util::json msglog_to_json() {
  const std::vector<stamped_hop> hops = collect_hops();
  util::json doc = util::json::object();
  doc["sample_one_in"] = mrec().rate.load(std::memory_order_relaxed);
  doc["dropped"] = static_cast<std::uint64_t>(msglog_statistics().dropped);
  util::json messages = util::json::array();
  for (const std::vector<hop_record>& group : group_by_tag(hops)) {
    util::json& msg = messages.push_back(util::json::object());
    char tag[24];
    format_tag(tag, group.front().tag);
    msg["tag"] = std::string(tag);
    msg["from"] = group.front().from;
    msg["msg"] = std::string(group.front().msg);
    util::json& out_hops = msg["hops"] = util::json::array();
    for (const hop_record& h : group) {
      util::json& hop = out_hops.push_back(util::json::object());
      hop["t_s"] = sim::to_seconds(h.at);
      hop["hop"] = std::string(to_string(h.kind));
      hop["from"] = h.from;
      hop["to"] = h.to;
      if (h.note != nullptr) hop["note"] = std::string(h.note);
    }
  }
  doc["messages"] = std::move(messages);
  return doc;
}

void msglog_dump(std::ostream& out, std::size_t limit) {
  const std::vector<std::vector<hop_record>> groups =
      group_by_tag(collect_hops());
  const msglog_stats stats = msglog_statistics();
  out << "# msglog: " << groups.size() << " sampled messages, "
      << stats.recorded << " hops held, " << stats.dropped
      << " hops overwritten\n";
  std::size_t emitted = 0;
  for (const std::vector<hop_record>& group : groups) {
    if (limit != 0 && emitted++ >= limit) {
      out << "# msglog: ... " << (groups.size() - limit)
          << " more (raise --msglog ring or lower the limit)\n";
      break;
    }
    char tag[24];
    format_tag(tag, group.front().tag);
    out << "# msg " << tag << ' ' << group.front().msg << ' '
        << group.front().from << "->" << group.front().to << ':';
    char cell[64];
    for (const hop_record& h : group) {
      std::snprintf(cell, sizeof(cell), " %s@%.3fs",
                    std::string(to_string(h.kind)).c_str(),
                    sim::to_seconds(h.at));
      out << cell;
      if (h.note != nullptr) out << '(' << h.note << ')';
    }
    out << '\n';
  }
}

}  // namespace nylon::obs

#else  // NYLON_OBS == 0: recording compiled out, export stays valid

namespace nylon::obs {

void msglog_start(std::uint64_t, std::size_t) {}
void msglog_stop() noexcept {}
bool msglog_enabled() noexcept { return false; }
std::uint64_t msglog_tag(std::uint64_t, std::uint64_t, std::int64_t) noexcept {
  return 0;
}
void msglog_record(const hop_record&) noexcept {}
msglog_stats msglog_statistics() noexcept { return msglog_stats{}; }

util::json msglog_to_json() {
  util::json doc = util::json::object();
  doc["sample_one_in"] = std::uint64_t{0};
  doc["dropped"] = std::uint64_t{0};
  doc["messages"] = util::json::array();
  return doc;
}

void msglog_dump(std::ostream& out, std::size_t) {
  out << "# msglog: telemetry compiled out (NYLON_OBS=0)\n";
}

}  // namespace nylon::obs

#endif  // NYLON_OBS
