#include "obs/counters.h"

#include <memory>
#include <mutex>
#include <vector>

namespace nylon::obs {

std::string_view to_string(counter c) noexcept {
  switch (c) {
    case counter::events_executed: return "events_executed";
    case counter::queue_peak_depth: return "queue_peak_depth";
    case counter::pool_event_allocs: return "pool_event_allocs";
    case counter::pool_event_reuses: return "pool_event_reuses";
    case counter::hash_probes: return "hash_probes";
    case counter::hash_rehashes: return "hash_rehashes";
    case counter::route_table_peak: return "route_table_peak";
    case counter::nat_table_peak: return "nat_table_peak";
    case counter::arena_bytes_peak: return "arena_bytes_peak";
    case counter::msg_request: return "msg_request";
    case counter::msg_response: return "msg_response";
    case counter::msg_open_hole: return "msg_open_hole";
    case counter::msg_ping: return "msg_ping";
    case counter::msg_pong: return "msg_pong";
    case counter::msg_other: return "msg_other";
    case counter::sim_time_ms: return "sim_time_ms";
    case counter::nodes_added: return "nodes_added";
    case counter::nodes_removed: return "nodes_removed";
    case counter::drain_bytes_peak: return "drain_bytes_peak";
    case counter::count_: break;
  }
  return "?";
}

std::uint64_t counter_snapshot::messages_total() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t c = static_cast<std::size_t>(counter::msg_request);
       c <= static_cast<std::size_t>(counter::msg_other); ++c) {
    total += values[c];
  }
  return total;
}

util::json to_json(const counter_snapshot& snap) {
  util::json out = util::json::object();
  for (std::size_t c = 0; c < counter_count; ++c) {
    out[std::string(to_string(static_cast<counter>(c)))] = snap.values[c];
  }
  return out;
}

#if NYLON_OBS

namespace {

/// Blocks live for the whole process: a thread may die while a reader
/// still wants its (monotone) totals, and the thread-local fast-path
/// pointer must never dangle. One block is ~2 cache lines, so even a
/// test binary spawning thousands of runner threads stays in the KBs.
struct block_registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<detail::counter_block>> blocks;
};

block_registry& registry() {
  static block_registry* r = new block_registry();  // never destroyed
  return *r;
}

}  // namespace

namespace detail {

counter_block& acquire_block() {
  block_registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.blocks.push_back(std::make_unique<counter_block>());
  return *r.blocks.back();
}

}  // namespace detail

counter_snapshot read_counters() noexcept {
  counter_snapshot snap;
  block_registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& block : r.blocks) {
    for (std::size_t c = 0; c < counter_count; ++c) {
      const std::uint64_t v = block->values[c].load(std::memory_order_relaxed);
      if (is_peak(static_cast<counter>(c))) {
        if (v > snap.values[c]) snap.values[c] = v;
      } else {
        snap.values[c] += v;
      }
    }
  }
  return snap;
}

void reset_counters() noexcept {
  block_registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& block : r.blocks) {
    for (std::size_t c = 0; c < counter_count; ++c) {
      block->values[c].store(0, std::memory_order_relaxed);
    }
  }
}

#else  // NYLON_OBS == 0

counter_snapshot read_counters() noexcept { return counter_snapshot{}; }
void reset_counters() noexcept {}

#endif  // NYLON_OBS

}  // namespace nylon::obs
