// Periodic progress line for long runs: a background thread that wakes
// every `period_s` of *wall* time, reads the telemetry counters and
// emits one "# heartbeat ..." line to stderr — wall and simulated time
// reached, cumulative totals, the rolling events/s since the previous
// beat, the alive-peer count (nodes added - removed) and the payload
// arena's high-water bytes — the signal that a multi-hour bench_scale
// run is still making progress (and how far into the simulation it
// got), without touching stdout (which benches pipe and diff).
//
// Off by default: a non-positive period starts no thread and costs
// nothing. Observation-only like the rest of src/obs/ — with telemetry
// compiled out (NYLON_OBS=0) the thread still beats but reports zeros.
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>

namespace nylon::obs {

class heartbeat {
 public:
  /// Starts beating every `period_s` wall seconds (<= 0: disabled).
  explicit heartbeat(double period_s);
  /// Stops the thread promptly (no final beat).
  ~heartbeat();

  heartbeat(const heartbeat&) = delete;
  heartbeat& operator=(const heartbeat&) = delete;

  /// True when a beating thread is running.
  [[nodiscard]] bool active() const noexcept { return thread_.joinable(); }

 private:
  void run(double period_s);

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace nylon::obs
