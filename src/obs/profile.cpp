#include "obs/profile.h"

namespace nylon::obs {

double epoch_profile::imbalance() const noexcept {
  if (shards.empty()) return 0.0;
  double max_work = 0.0;
  double total_work = 0.0;
  for (const shard_profile& s : shards) {
    if (s.work_s > max_work) max_work = s.work_s;
    total_work += s.work_s;
  }
  if (total_work <= 0.0) return 0.0;
  const double mean = total_work / static_cast<double>(shards.size());
  return max_work / mean;
}

double epoch_profile::barrier_overhead() const noexcept {
  double work = 0.0;
  double wait = 0.0;
  for (const shard_profile& s : shards) {
    work += s.work_s;
    wait += s.wait_s;
  }
  const double total = work + wait;
  return total > 0.0 ? wait / total : 0.0;
}

util::json to_json(const epoch_profile& profile) {
  util::json out = util::json::object();
  out["epochs"] = profile.epochs;
  out["epoch_width_ms_mean"] = profile.epoch_width_ms_mean;
  out["epoch_width_ms_max"] = profile.epoch_width_ms_max;
  out["events_per_epoch"] = profile.events_per_epoch;
  out["imbalance"] = profile.imbalance();
  out["barrier_overhead_pct"] = 100.0 * profile.barrier_overhead();
  util::json shards = util::json::array();
  for (const shard_profile& s : profile.shards) {
    util::json& entry = shards.push_back(util::json::object());
    entry["work_s"] = s.work_s;
    entry["wait_s"] = s.wait_s;
    entry["events"] = s.events;
    entry["spin_waits"] = s.spin_waits;
    entry["park_waits"] = s.park_waits;
  }
  out["shards"] = std::move(shards);
  return out;
}

}  // namespace nylon::obs
