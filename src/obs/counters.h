// Runtime telemetry counters: the hot paths (event queue, flat-hash
// tables, transport sends) bump per-thread cache-line-aligned counter
// blocks, and observers (bench telemetry blocks, the heartbeat) sum the
// blocks on read — the exact shape PR 4 introduced for the transport's
// per-shard drop/byte accounting, generalized into a subsystem.
//
// Contract (DESIGN.md "Observability & the determinism contract"):
// telemetry is *observation only*. Counters never feed back into
// simulation decisions, never touch an rng, and never reorder events, so
// every digest — golden, spec-equivalence, shard cross-check — is
// byte-identical whether telemetry is enabled, ignored, or compiled out
// entirely (build with -DNYLON_OBS=OFF / NYLON_OBS=0, which turns every
// hook below into an empty inline function).
//
// Threading: each thread owns one block (lazily registered in a global
// registry that outlives the thread), so increments are single-writer
// and contention-free. Cells are relaxed atomics written with a plain
// load+store pair — one writer per cell means this compiles to an
// ordinary add, while cross-thread readers (the heartbeat, end-of-run
// snapshots) still get tear-free values.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/json.h"

#ifndef NYLON_OBS
#define NYLON_OBS 1
#endif

#if NYLON_OBS
#include <atomic>
#endif

namespace nylon::obs {

/// Everything the subsystem counts. The msg_* slots mirror
/// net::message_kind order (transport.cpp static_asserts the mapping).
enum class counter : std::uint8_t {
  events_executed,      ///< scheduler events popped and run
  queue_peak_depth,     ///< peak pending events in any one queue (max)
  pool_event_allocs,    ///< event-slab slots created fresh
  pool_event_reuses,    ///< event-slab slots recycled off the free list
  hash_probes,          ///< flat-hash slots inspected (find + insert)
  hash_rehashes,        ///< flat-hash table growths that moved elements
  route_table_peak,     ///< peak destinations in any one routing table (max)
  nat_table_peak,       ///< peak entries in any one NAT device table (max)
  arena_bytes_peak,     ///< peak bytes held by any one payload arena (max)
  msg_request,          ///< messages sent, by net::message_kind
  msg_response,
  msg_open_hole,
  msg_ping,
  msg_pong,
  msg_other,
  sim_time_ms,          ///< furthest simulated time reached, in ms (max)
  nodes_added,          ///< transport nodes brought alive
  nodes_removed,        ///< transport nodes departed (alive = added - removed)
  drain_bytes_peak,     ///< peak bytes in any one shard's cross-shard
                        ///< drain buffers (scratch + staging lane) (max)
  count_                ///< number of counters (internal)
};

inline constexpr std::size_t counter_count =
    static_cast<std::size_t>(counter::count_);

/// Stable snake_case name, used as the JSON key in telemetry blocks.
[[nodiscard]] std::string_view to_string(counter c) noexcept;

/// True for high-water-mark counters, which aggregate across blocks by
/// max instead of sum (a per-thread peak summed over threads would be
/// meaningless).
[[nodiscard]] constexpr bool is_peak(counter c) noexcept {
  return c == counter::queue_peak_depth ||
         c == counter::route_table_peak || c == counter::nat_table_peak ||
         c == counter::arena_bytes_peak || c == counter::sim_time_ms ||
         c == counter::drain_bytes_peak;
}

/// One coherent read of every counter, aggregated across all registered
/// blocks (sum, or max for peak counters).
struct counter_snapshot {
  std::array<std::uint64_t, counter_count> values{};

  [[nodiscard]] std::uint64_t operator[](counter c) const noexcept {
    return values[static_cast<std::size_t>(c)];
  }
  /// Total messages sent across every message kind.
  [[nodiscard]] std::uint64_t messages_total() const noexcept;
};

/// Aggregates all registered blocks. Safe to call from any thread at any
/// time; concurrent increments may or may not be included (monotone
/// counters, so rolling readers like the heartbeat don't care).
[[nodiscard]] counter_snapshot read_counters() noexcept;

/// Zeroes every registered block — scopes counters to a measured window
/// (bench_scale resets after universe construction). Not atomic across
/// blocks; call it while the hot paths are quiescent.
void reset_counters() noexcept;

/// {"events_executed": ..., ...} with every counter, in enum order.
[[nodiscard]] util::json to_json(const counter_snapshot& snap);

#if NYLON_OBS

namespace detail {

/// Per-thread counter block. Cache-line aligned so adjacent threads'
/// hot counters never share a line.
struct alignas(64) counter_block {
  std::atomic<std::uint64_t> values[counter_count] = {};
};

/// Registers (and returns) the calling thread's block; out of line so
/// the fast path below stays a pointer test.
[[nodiscard]] counter_block& acquire_block();

inline thread_local counter_block* tls_block = nullptr;

[[nodiscard]] inline counter_block& local_block() {
  counter_block* block = tls_block;
  if (block == nullptr) {
    block = &acquire_block();
    tls_block = block;
  }
  return *block;
}

}  // namespace detail

/// Adds `add` to this thread's counter. Single writer per cell: the
/// load/store pair compiles to a plain add, no lock prefix.
inline void count(counter c, std::uint64_t add = 1) noexcept {
  std::atomic<std::uint64_t>& cell =
      detail::local_block().values[static_cast<std::size_t>(c)];
  cell.store(cell.load(std::memory_order_relaxed) + add,
             std::memory_order_relaxed);
}

/// Raises a high-water-mark counter to `value` if it is higher.
inline void count_peak(counter c, std::uint64_t value) noexcept {
  std::atomic<std::uint64_t>& cell =
      detail::local_block().values[static_cast<std::size_t>(c)];
  if (value > cell.load(std::memory_order_relaxed)) {
    cell.store(value, std::memory_order_relaxed);
  }
}

#else  // telemetry compiled out: every hook is an empty inline

inline void count(counter, std::uint64_t = 1) noexcept {}
inline void count_peak(counter, std::uint64_t) noexcept {}

#endif  // NYLON_OBS

}  // namespace nylon::obs
