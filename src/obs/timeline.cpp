#include "obs/timeline.h"

#include <cstdio>
#include <utility>

#include "obs/trace.h"
#include "util/contracts.h"

namespace nylon::obs {

namespace {

/// Shortest round-trippable decimal — CSV cells must survive a parse
/// back to the same double (%.17g would too, but is unreadable).
void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

}  // namespace

timeline_recorder::timeline_recorder(double period_s,
                                     std::vector<std::string> columns)
    : period_s_(period_s), columns_(std::move(columns)) {
  NYLON_EXPECTS(period_s_ > 0.0);
  NYLON_EXPECTS(!columns_.empty());
}

void timeline_recorder::append(double t_s, std::vector<double> values) {
  NYLON_EXPECTS(values.size() == columns_.size());
  rows_.push_back(row{t_s, std::move(values)});
}

util::json timeline_recorder::samples_json() const {
  util::json samples = util::json::array();
  for (const row& r : rows_) {
    util::json& sample = samples.push_back(util::json::array());
    sample.push_back(r.t_s);
    for (const double v : r.values) sample.push_back(v);
  }
  return samples;
}

void timeline_recorder::write_csv(std::ostream& out, std::string_view cell,
                                  int seed) const {
  std::string line;
  for (const row& r : rows_) {
    line.assign(cell);
    line += ',';
    line += std::to_string(seed);
    line += ',';
    append_double(line, r.t_s);
    for (const double v : r.values) {
      line += ',';
      append_double(line, v);
    }
    line += '\n';
    out << line;
  }
}

void timeline_recorder::write_csv_header(
    std::ostream& out, const std::vector<std::string>& columns) {
  std::string line = "cell,seed,t_s";
  for (const std::string& c : columns) {
    line += ',';
    line += c;
  }
  line += '\n';
  out << line;
}

std::vector<const char*> counter_track_names(
    const std::vector<std::string>& columns) {
  std::vector<const char*> tracks;
  if (!trace_enabled()) return tracks;
  tracks.reserve(columns.size());
  for (const std::string& c : columns) {
    tracks.push_back(intern_name("timeline/" + c));
  }
  return tracks;
}

void record_counter_samples(const std::vector<const char*>& tracks,
                            const std::vector<double>& values) {
  if (tracks.empty() || !trace_enabled()) return;
  const std::uint64_t ts = trace_now_us();
  const std::size_t n = tracks.size() < values.size() ? tracks.size()
                                                      : values.size();
  for (std::size_t i = 0; i < n; ++i) {
    record_counter(tracks[i], ts, values[i]);
  }
}

}  // namespace nylon::obs
