// Ring-buffered span recorder with Chrome/Perfetto Trace Event export.
//
// Recording is off until start_trace(); while off, a trace_span costs one
// relaxed atomic load. While on, each span is two steady_clock reads plus
// one write into the recording thread's private ring — no locks on the
// record path, so shard workers trace without contending. Rings are
// bounded: when one fills, the oldest spans are overwritten (the tail of
// a long run is usually the interesting part) and the drop is counted.
//
// Export (trace_to_json / write_trace_file) produces the Trace Event
// JSON format that chrome://tracing and https://ui.perfetto.dev load
// directly: one "complete" ("ph":"X") event per span, one track (tid)
// per recording thread — shard workers claim tid == shard index via
// set_thread_track, so a sharded run renders as one lane per shard.
//
// Span names must outlive the trace: pass string literals, or intern
// dynamic names (trace_span's string_view overload does it for you).
//
// Like the counters, tracing is observation-only and disappears entirely
// in NYLON_OBS=0 builds (start_trace is a no-op and every span
// compiles to nothing); see DESIGN.md "Observability & the determinism
// contract".
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/counters.h"  // the NYLON_OBS gate
#include "util/json.h"

namespace nylon::obs {

/// Recording totals, for tests and end-of-run reporting.
struct trace_stats {
  std::size_t recorded = 0;  ///< spans currently held in rings
  std::size_t dropped = 0;   ///< spans overwritten by ring wrap-around
  std::size_t threads = 0;   ///< threads that recorded at least once
  std::size_t counters_recorded = 0;  ///< counter samples held in rings
  std::size_t counters_dropped = 0;   ///< counter samples overwritten
};

/// Starts (or restarts) recording. Existing rings are cleared and every
/// ring holds up to `ring_capacity` spans per thread. Not thread-safe
/// against concurrent recorders — call it before the traced work starts.
void start_trace(std::size_t ring_capacity = std::size_t{1} << 16);

/// Stops recording; buffered spans stay readable until the next
/// start_trace.
void stop_trace() noexcept;

/// True while recording. The one check every hook makes first.
[[nodiscard]] bool trace_enabled() noexcept;

/// Assigns the calling thread's track id and display name (shard workers
/// use tid == shard index). Unnamed threads get auto tracks from 1000 up.
void set_thread_track(std::uint32_t tid, std::string name);

/// Copies `name` into the process-lifetime intern pool and returns a
/// stable pointer — the escape hatch for dynamic span names.
[[nodiscard]] const char* intern_name(std::string_view name);

/// Microseconds since start_trace (0 when not tracing).
[[nodiscard]] std::uint64_t trace_now_us() noexcept;

/// Converts a steady_clock time into trace microseconds — for callers
/// (the epoch profiler) that already read the clock.
[[nodiscard]] std::uint64_t trace_us(
    std::chrono::steady_clock::time_point tp) noexcept;

/// Records one complete span on the calling thread's track. `name` must
/// have static storage (literal or interned).
void record_span(const char* name, std::uint64_t start_us,
                 std::uint64_t dur_us) noexcept;

/// Records one counter-track sample: exported as a Perfetto counter
/// event (`"ph":"C"`) named `name` with value `value` at trace time
/// `ts_us`, so health curves (connectivity, drop rates, arena peaks)
/// render beside the span lanes. `name` must have static storage
/// (literal or interned); samples land in the calling thread's ring and
/// overwrite oldest-first like spans.
void record_counter(const char* name, std::uint64_t ts_us,
                    double value) noexcept;

/// The whole trace as a Trace Event document:
/// {"traceEvents": [...], "displayTimeUnit": "ms"}.
[[nodiscard]] util::json trace_to_json();

/// Writes trace_to_json() to `path`; logs and returns false on I/O
/// failure (a broken trace must not abort a finished run).
bool write_trace_file(const std::string& path);

[[nodiscard]] trace_stats trace_statistics() noexcept;

/// RAII span: records [construction, destruction) when tracing is on.
class trace_span {
 public:
  explicit trace_span(const char* name) noexcept {
    if (trace_enabled()) arm(name);
  }
  /// Dynamic-name form; interns (one mutex hit) only while tracing.
  explicit trace_span(std::string_view name) noexcept {
    if (trace_enabled()) arm(intern_name(name));
  }
  ~trace_span() {
    if (name_ != nullptr) {
      record_span(name_, start_us_, trace_now_us() - start_us_);
    }
  }
  trace_span(const trace_span&) = delete;
  trace_span& operator=(const trace_span&) = delete;

 private:
  void arm(const char* name) noexcept {
    name_ = name;
    start_us_ = trace_now_us();
  }

  const char* name_ = nullptr;  ///< null = disabled at construction
  std::uint64_t start_us_ = 0;
};

}  // namespace nylon::obs
