#include "obs/heartbeat.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>

#include "obs/counters.h"
#include "util/wall_timer.h"

namespace nylon::obs {

heartbeat::heartbeat(double period_s) {
  if (period_s <= 0.0) return;
  thread_ = std::thread([this, period_s] { run(period_s); });
}

heartbeat::~heartbeat() {
  if (!thread_.joinable()) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void heartbeat::run(double period_s) {
  const auto period = std::chrono::duration<double>(period_s);
  util::wall_timer total;
  std::uint64_t last_events = 0;
  double last_s = 0.0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (!cv_.wait_for(lock, period, [this] { return stop_; })) {
    lock.unlock();
    const counter_snapshot snap = read_counters();
    const std::uint64_t events = snap[counter::events_executed];
    const double now_s = total.seconds();
    const double window = now_s - last_s;
    const double rate =
        window > 0.0
            ? static_cast<double>(events - last_events) / window
            : 0.0;
    last_events = events;
    last_s = now_s;
    // One buffer, one fwrite: heartbeat lines never shear against log
    // output from the shard workers.
    const std::uint64_t added = snap[counter::nodes_added];
    const std::uint64_t removed = snap[counter::nodes_removed];
    char line[256];
    const int n = std::snprintf(
        line, sizeof(line),
        "# heartbeat t=%.1fs sim=%.1fs events=%" PRIu64 " messages=%" PRIu64
        " events/s=%.0f alive=%" PRIu64 " arena_peak=%" PRIu64 "\n",
        now_s, static_cast<double>(snap[counter::sim_time_ms]) / 1000.0,
        events, snap.messages_total(), rate,
        added >= removed ? added - removed : 0,
        snap[counter::arena_bytes_peak]);
    if (n > 0) {
      std::fwrite(line, 1, static_cast<std::size_t>(n) < sizeof(line)
                               ? static_cast<std::size_t>(n)
                               : sizeof(line) - 1,
                  stderr);
    }
    lock.lock();
  }
}

}  // namespace nylon::obs
