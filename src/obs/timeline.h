// Sim-time health timelines: per-seed time-series of protocol health
// columns (connectivity, isolated peers, drop rates, bytes by class,
// obs counters), sampled at a spec-configurable cadence by the
// runtime::scenario sampler and emitted three ways —
//
//  * BENCH json, under a "timeline" key next to "trajectories";
//  * long-form CSV via `nylon_exp --timeline-csv` (one line per
//    sample, ready for pandas / gnuplot);
//  * Perfetto counter tracks ("ph":"C") merged into the existing
//    trace export so health curves render beside the shard lanes.
//
// The recorder is storage only: column *evaluation* stays in the
// runtime layer (metrics::probe selectors and obs counter reads), so
// this file carries no protocol dependencies. Sampling is
// observation-only per DESIGN.md "Observability & the determinism
// contract": ticks are interleaved into scenario::run_until without
// scheduling events, columns are restricted to passive (rng-free)
// probes, and state digests are byte-identical with timelines on or
// off, in NYLON_OBS=OFF builds included (the recorder itself is plain
// data and works in both builds; only the Perfetto mirror disappears).
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace nylon::obs {

/// One experiment cell's health time-series: sim-time rows, one value
/// per column. Each seed records into its own instance (the multi-seed
/// runner keeps seeds independent), and the runtime layer merges the
/// per-seed series into the report.
class timeline_recorder {
 public:
  timeline_recorder(double period_s, std::vector<std::string> columns);

  /// Appends one sample row. `values` must carry exactly one value per
  /// column, in column order.
  void append(double t_s, std::vector<double> values);

  [[nodiscard]] double period_s() const noexcept { return period_s_; }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] std::size_t sample_count() const noexcept {
    return rows_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }

  /// The samples as a JSON array of arrays: [[t_s, v0, v1, ...], ...].
  /// Column names and the period are emitted once at the block level by
  /// the caller, not repeated per seed.
  [[nodiscard]] util::json samples_json() const;

  /// Long-form CSV sample lines: `cell,seed,t_s,<v0>,<v1>,...`, one per
  /// sample. The caller writes the header (write_csv_header) once.
  void write_csv(std::ostream& out, std::string_view cell,
                 int seed) const;

  /// `cell,seed,t_s,<col0>,<col1>,...` header line for write_csv.
  static void write_csv_header(std::ostream& out,
                               const std::vector<std::string>& columns);

 private:
  struct row {
    double t_s = 0.0;
    std::vector<double> values;
  };

  double period_s_ = 0.0;
  std::vector<std::string> columns_;
  std::vector<row> rows_;
};

/// Interns "timeline/<column>" Perfetto counter-track names for live
/// mirroring: the sampler calls record_counter_samples at every tick
/// while a trace is recording, stamping the *wall-clock* trace time so
/// the curves line up under the span lanes. Returns empty when tracing
/// is off or telemetry is compiled out.
[[nodiscard]] std::vector<const char*> counter_track_names(
    const std::vector<std::string>& columns);

/// Records one "ph":"C" sample per column at the current trace time.
/// `tracks` comes from counter_track_names; size mismatch records the
/// shared prefix. No-op while tracing is off.
void record_counter_samples(const std::vector<const char*>& tracks,
                            const std::vector<double>& values);

}  // namespace nylon::obs
