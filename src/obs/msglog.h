// Message lifecycle flight recorder: hop-by-hop forensics for a
// deterministically-sampled subset of messages ("why did this punch
// die?"). The transport's send / NAT-translate / drop / deliver paths
// call the hooks below; sampled messages carry a non-zero tag through
// their delivery closure, and every hop lands in the recording
// thread's private overwrite ring (oldest hops evicted first, the
// eviction counted — the tail of a long run is the interesting part).
//
// Sampling is a pure hash of digest-pinned send facts (sender id,
// sender's message ordinal, sim time), so the same messages are
// sampled on the serial engine and on every shard count, and the
// decision never touches an rng. Like all obs instrumentation the
// recorder is observation-only (DESIGN.md "Observability & the
// determinism contract"): state digests are byte-identical with the
// recorder on, off, or compiled out (NYLON_OBS=0 turns every hook into
// an empty inline and msglog_tag into a constant 0, so no message is
// ever tagged).
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string_view>

#include "obs/counters.h"  // the NYLON_OBS gate
#include "util/json.h"

namespace nylon::obs {

/// The lifecycle stations a message passes through.
enum class hop_kind : std::uint8_t {
  send,           ///< accepted by transport::send (post NAT translate)
  nat_translate,  ///< source endpoint rewritten by the sender's NAT
  drop,           ///< terminated; note names the net::drop_reason
  deliver,        ///< handed to the destination's handler
};

/// Display name ("send", "nat_translate", "drop", "deliver").
[[nodiscard]] std::string_view to_string(hop_kind k) noexcept;

/// One recorded hop. The string fields must have static storage
/// (literals or obs::intern_name) — hooks fire on the hot path and must
/// not allocate.
struct hop_record {
  std::uint64_t tag = 0;       ///< sampled-message id (msglog_tag)
  std::int64_t at = 0;         ///< sim time, ms
  std::uint64_t from = 0;      ///< sender node id
  std::uint64_t to = 0;        ///< destination node id (0 when unknown)
  hop_kind kind = hop_kind::send;
  const char* msg = "";        ///< message kind name ("open_hole", ...)
  const char* note = nullptr;  ///< drop reason / hop detail, or null
};

/// Recording totals, for tests and end-of-run reporting.
struct msglog_stats {
  std::size_t recorded = 0;  ///< hops currently held in rings
  std::size_t dropped = 0;   ///< hops overwritten by ring wrap-around
  std::size_t threads = 0;   ///< threads that recorded at least once
};

/// Starts (or restarts) the recorder, sampling one in `sample_one_in`
/// messages (1 = every message). Existing rings are cleared; each ring
/// holds up to `ring_capacity` hops per thread. Call before the traced
/// work starts — not thread-safe against concurrent recorders.
void msglog_start(std::uint64_t sample_one_in,
                  std::size_t ring_capacity = std::size_t{1} << 12);

/// Stops recording; buffered hops stay readable until the next start.
void msglog_stop() noexcept;

/// True while recording. The one check every hook makes first.
[[nodiscard]] bool msglog_enabled() noexcept;

/// The deterministic sampling decision: hashes the digest-pinned send
/// facts and returns a non-zero tag when the message is sampled, 0
/// otherwise (0 also while the recorder is off or compiled out). The
/// tag identifies the message across all of its hops.
[[nodiscard]] std::uint64_t msglog_tag(std::uint64_t sender,
                                       std::uint64_t ordinal,
                                       std::int64_t at) noexcept;

/// Records one hop on the calling thread's ring (no-op when
/// `rec.tag == 0` or the recorder is off).
void msglog_record(const hop_record& rec) noexcept;

[[nodiscard]] msglog_stats msglog_statistics() noexcept;

/// The whole recording as JSON, hops grouped per sampled message:
/// {"sample_one_in": R, "dropped": D, "messages":
///   [{"tag": "0x...", "from": ..., "hops": [{...}, ...]}, ...]}
/// Messages are ordered by first-hop time, hops within a message by
/// (time, station) — the forensics view for "name the drop_reason".
[[nodiscard]] util::json msglog_to_json();

/// Human-readable dump (one line per sampled message), for the
/// automatic dump when a check probe fails. `limit` caps the message
/// count (0 = all).
void msglog_dump(std::ostream& out, std::size_t limit = 0);

}  // namespace nylon::obs
