#include "obs/trace.h"

#include <fstream>

#include "util/log.h"

#if NYLON_OBS

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace nylon::obs {

namespace {

struct span_record {
  const char* name = nullptr;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
};

struct counter_record {
  const char* name = nullptr;
  std::uint64_t ts_us = 0;
  double value = 0.0;
};

/// One thread's private span ring. Owned by the global recorder for the
/// process lifetime so the thread-local fast-path pointer never dangles;
/// only the owning thread writes, export reads while recording is off
/// (or tolerates a benign in-flight update).
struct thread_ring {
  std::vector<span_record> buf;
  std::size_t head = 0;   ///< oldest element
  std::size_t count = 0;  ///< live elements
  std::size_t dropped = 0;
  std::uint32_t tid = 0;
  std::string name;
  /// Counter-track samples keep their own ring so a chatty health
  /// timeline can never evict span history (and vice versa).
  std::vector<counter_record> cbuf;
  std::size_t chead = 0;
  std::size_t ccount = 0;
  std::size_t cdropped = 0;

  void push(const span_record& rec, std::size_t capacity) noexcept {
    if (buf.size() < capacity) buf.resize(capacity);
    if (count == buf.size()) {  // full: overwrite the oldest
      buf[head] = rec;
      head = (head + 1) % buf.size();
      ++dropped;
    } else {
      buf[(head + count) % buf.size()] = rec;
      ++count;
    }
  }

  void push(const counter_record& rec, std::size_t capacity) noexcept {
    if (cbuf.size() < capacity) cbuf.resize(capacity);
    if (ccount == cbuf.size()) {
      cbuf[chead] = rec;
      chead = (chead + 1) % cbuf.size();
      ++cdropped;
    } else {
      cbuf[(chead + ccount) % cbuf.size()] = rec;
      ++ccount;
    }
  }
};

struct recorder {
  std::atomic<bool> enabled{false};
  std::chrono::steady_clock::time_point epoch{};
  std::size_t capacity = std::size_t{1} << 16;

  std::mutex mutex;  ///< guards rings / interned / next_auto_tid
  std::vector<std::unique_ptr<thread_ring>> rings;
  std::deque<std::string> interned;  ///< stable storage for dynamic names
  std::unordered_map<std::string_view, const char*> intern_index;
  std::uint32_t next_auto_tid = 1000;
};

recorder& rec() {
  static recorder* r = new recorder();  // never destroyed
  return *r;
}

thread_local thread_ring* tls_ring = nullptr;

thread_ring& local_ring() {
  thread_ring* ring = tls_ring;
  if (ring == nullptr) {
    recorder& r = rec();
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.rings.push_back(std::make_unique<thread_ring>());
    ring = r.rings.back().get();
    ring->tid = r.next_auto_tid++;
    ring->name = "thread-" + std::to_string(ring->tid - 1000);
    tls_ring = ring;
  }
  return *ring;
}

}  // namespace

void start_trace(std::size_t ring_capacity) {
  recorder& r = rec();
  r.enabled.store(false, std::memory_order_release);
  {
    const std::lock_guard<std::mutex> lock(r.mutex);
    r.capacity = ring_capacity == 0 ? 1 : ring_capacity;
    for (const auto& ring : r.rings) {
      ring->head = ring->count = ring->dropped = 0;
      ring->chead = ring->ccount = ring->cdropped = 0;
      // Drop the old buffers so push() re-sizes to the *new* capacity
      // (a restart may shrink the rings).
      ring->buf.clear();
      ring->buf.shrink_to_fit();
      ring->cbuf.clear();
      ring->cbuf.shrink_to_fit();
    }
  }
  r.epoch = std::chrono::steady_clock::now();
  r.enabled.store(true, std::memory_order_release);
}

void stop_trace() noexcept {
  rec().enabled.store(false, std::memory_order_release);
}

bool trace_enabled() noexcept {
  return rec().enabled.load(std::memory_order_relaxed);
}

void set_thread_track(std::uint32_t tid, std::string name) {
  thread_ring& ring = local_ring();
  const std::lock_guard<std::mutex> lock(rec().mutex);
  ring.tid = tid;
  ring.name = std::move(name);
}

const char* intern_name(std::string_view name) {
  recorder& r = rec();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto hit = r.intern_index.find(name);
  if (hit != r.intern_index.end()) return hit->second;
  r.interned.emplace_back(name);
  const std::string& stored = r.interned.back();
  r.intern_index.emplace(std::string_view(stored), stored.c_str());
  return stored.c_str();
}

std::uint64_t trace_now_us() noexcept {
  return trace_us(std::chrono::steady_clock::now());
}

std::uint64_t trace_us(std::chrono::steady_clock::time_point tp) noexcept {
  recorder& r = rec();
  if (!r.enabled.load(std::memory_order_relaxed)) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(tp - r.epoch)
          .count());
}

void record_span(const char* name, std::uint64_t start_us,
                 std::uint64_t dur_us) noexcept {
  recorder& r = rec();
  if (!r.enabled.load(std::memory_order_relaxed)) return;
  local_ring().push(span_record{name, start_us, dur_us}, r.capacity);
}

void record_counter(const char* name, std::uint64_t ts_us,
                    double value) noexcept {
  recorder& r = rec();
  if (!r.enabled.load(std::memory_order_relaxed)) return;
  local_ring().push(counter_record{name, ts_us, value}, r.capacity);
}

util::json trace_to_json() {
  recorder& r = rec();
  const std::lock_guard<std::mutex> lock(r.mutex);
  util::json events = util::json::array();
  for (const auto& ring : r.rings) {
    if (ring->count == 0 && ring->ccount == 0) continue;
    // Track metadata first, so viewers label the lane.
    util::json& meta = events.push_back(util::json::object());
    meta["ph"] = "M";
    meta["pid"] = 1;
    meta["tid"] = static_cast<std::int64_t>(ring->tid);
    meta["name"] = "thread_name";
    meta["args"]["name"] = ring->name;
    for (std::size_t i = 0; i < ring->count; ++i) {
      const span_record& s = ring->buf[(ring->head + i) % ring->buf.size()];
      util::json& ev = events.push_back(util::json::object());
      ev["ph"] = "X";
      ev["pid"] = 1;
      ev["tid"] = static_cast<std::int64_t>(ring->tid);
      ev["ts"] = s.start_us;
      ev["dur"] = s.dur_us;
      ev["name"] = s.name;
    }
    // Counter tracks: Perfetto groups "ph":"C" events into one counter
    // lane per (pid, name), rendered beside the span lanes.
    for (std::size_t i = 0; i < ring->ccount; ++i) {
      const counter_record& c =
          ring->cbuf[(ring->chead + i) % ring->cbuf.size()];
      util::json& ev = events.push_back(util::json::object());
      ev["ph"] = "C";
      ev["pid"] = 1;
      ev["tid"] = static_cast<std::int64_t>(ring->tid);
      ev["ts"] = c.ts_us;
      ev["name"] = c.name;
      ev["args"]["value"] = c.value;
    }
  }
  util::json doc = util::json::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

trace_stats trace_statistics() noexcept {
  recorder& r = rec();
  const std::lock_guard<std::mutex> lock(r.mutex);
  trace_stats stats;
  for (const auto& ring : r.rings) {
    if (ring->count == 0 && ring->dropped == 0 && ring->ccount == 0 &&
        ring->cdropped == 0) {
      continue;
    }
    ++stats.threads;
    stats.recorded += ring->count;
    stats.dropped += ring->dropped;
    stats.counters_recorded += ring->ccount;
    stats.counters_dropped += ring->cdropped;
  }
  return stats;
}

}  // namespace nylon::obs

#else  // NYLON_OBS == 0: recording compiled out, export stays valid

namespace nylon::obs {

void start_trace(std::size_t) {}
void stop_trace() noexcept {}
bool trace_enabled() noexcept { return false; }
void set_thread_track(std::uint32_t, std::string) {}
const char* intern_name(std::string_view) { return ""; }
std::uint64_t trace_now_us() noexcept { return 0; }
std::uint64_t trace_us(std::chrono::steady_clock::time_point) noexcept {
  return 0;
}
void record_span(const char*, std::uint64_t, std::uint64_t) noexcept {}
void record_counter(const char*, std::uint64_t, double) noexcept {}

util::json trace_to_json() {
  util::json doc = util::json::object();
  doc["traceEvents"] = util::json::array();
  doc["displayTimeUnit"] = "ms";
  return doc;
}

trace_stats trace_statistics() noexcept { return trace_stats{}; }

}  // namespace nylon::obs

#endif  // NYLON_OBS

namespace nylon::obs {

bool write_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    NYLON_LOG_ERROR << "cannot open trace file " << path;
    return false;
  }
  trace_to_json().dump(out, 0);
  out << "\n";
  if (!out) {
    NYLON_LOG_ERROR << "failed writing trace file " << path;
    return false;
  }
  return true;
}

}  // namespace nylon::obs
