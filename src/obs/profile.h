// Epoch-profiler results: per-shard wall-clock work vs barrier-wait time
// accumulated by sim::shard_engine, plus the two derived numbers the
// speedup-curve work needs — shard imbalance and barrier overhead. The
// accumulation itself lives in the engine (and compiles out with
// NYLON_OBS=0); this header is the always-available result type so
// callers need no conditional code.
#pragma once

#include <cstdint>
#include <vector>

#include "util/json.h"

namespace nylon::obs {

/// One shard's wall-clock accounting across all epochs.
struct shard_profile {
  double work_s = 0.0;  ///< executing events + draining inbound channels
  double wait_s = 0.0;  ///< blocked at the mid / finish epoch barriers
  std::uint64_t events = 0;  ///< events executed on this shard
  /// How this shard's barrier crossings resolved (spin-then-park
  /// barrier): released while spinning vs after parking on the condvar.
  std::uint64_t spin_waits = 0;
  std::uint64_t park_waits = 0;
};

/// The whole engine's profile. The per-shard wall-clock vector is empty
/// in serial mode or when telemetry is compiled out; the epoch-size
/// statistics are deterministic and filled whenever the sharded engine
/// ran.
struct epoch_profile {
  std::vector<shard_profile> shards;
  std::uint64_t epochs = 0;
  /// Epoch widths in sim-ms (grid points per epoch): the direct read on
  /// how far the window policy strides. Static windows pin both numbers
  /// at W; adaptive windows stretch over quiet stretches.
  std::int64_t epoch_width_ms_max = 0;
  double epoch_width_ms_mean = 0.0;
  double events_per_epoch = 0.0;

  [[nodiscard]] bool empty() const noexcept { return shards.empty(); }

  /// Shard-imbalance metric: max work time / mean work time. 1.0 is a
  /// perfectly balanced partition; 0 when there is no work at all.
  [[nodiscard]] double imbalance() const noexcept;

  /// Fraction of total shard wall-time spent waiting at barriers,
  /// in [0, 1]: sum(wait) / (sum(work) + sum(wait)); 0 when idle.
  [[nodiscard]] double barrier_overhead() const noexcept;
};

/// {"epochs": ..., "epoch_width_ms_mean": ..., "epoch_width_ms_max": ...,
///  "events_per_epoch": ..., "imbalance": ..., "barrier_overhead_pct": ...,
///  "shards": [{"work_s": ..., "wait_s": ..., "events": ...,
///              "spin_waits": ..., "park_waits": ...}, ...]}.
[[nodiscard]] util::json to_json(const epoch_profile& profile);

}  // namespace nylon::obs
