// Multi-seed experiment driver: runs a measurement across independent
// seeds (the paper averages 30) and aggregates — serially or on a thread
// pool, with bit-identical results either way.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/json.h"
#include "util/stats.h"

namespace nylon::runtime {

/// Aggregate of one scalar metric across seeds.
struct seed_aggregate {
  std::vector<double> values;  ///< per-seed results, in seed order
  util::summary stats;         ///< summary over `values`
};

/// Execution knobs for the multi-seed drivers.
struct run_options {
  /// Worker threads: 1 = serial (default), 0 = one per hardware core,
  /// n > 1 = exactly n. Each seed runs in its own fully independent
  /// universe (scheduler + transport + rng), and results are stored by
  /// seed index, so the aggregate is bit-identical to a serial run
  /// regardless of scheduling. The experiment callback must not touch
  /// shared mutable state.
  int threads = 1;
  /// Shards per universe (experiment_config::shards). Each sharded seed
  /// spawns its own K worker threads, so concurrent seeds are budgeted
  /// to keep seeds × shards within `threads`: with an 8-thread budget
  /// and 4-shard universes, at most 2 seeds run at once. 0 (serial
  /// engine) and 1 cost one thread per seed. Results are unaffected —
  /// this only throttles concurrency.
  std::size_t shards = 0;
};

/// Resolved concurrent-seed count for `opt`: the thread budget
/// (0 = hardware cores) divided by the per-seed thread cost
/// (max(1, shards)), clamped to [1, seed_count].
[[nodiscard]] int resolve_threads(const run_options& opt, int seed_count);

/// Runs `experiment` once per seed (seeds derived deterministically from
/// `base_seed`) and aggregates the returned metric.
[[nodiscard]] seed_aggregate run_seeds(
    int seed_count, std::uint64_t base_seed,
    const std::function<double(std::uint64_t seed)>& experiment,
    run_options opt = {});

/// Variant for experiments that produce several named metrics at once:
/// returns one aggregate per metric index.
[[nodiscard]] std::vector<seed_aggregate> run_seeds_multi(
    int seed_count, std::uint64_t base_seed, std::size_t metric_count,
    const std::function<std::vector<double>(std::uint64_t seed)>& experiment,
    run_options opt = {});

/// Multi-metric aggregates plus one opaque JSON capture per seed —
/// the opt-in channel for rich per-seed artifacts (e.g. workload
/// trajectory snapshots) that scalar aggregation would flatten away.
struct multi_seed_result {
  std::vector<seed_aggregate> aggregates;  ///< one per metric index
  std::vector<util::json> captures;        ///< per-seed, in seed order
};

/// Like run_seeds_multi, but the experiment may additionally fill
/// `capture` with arbitrary JSON (left null when it does not). Captures
/// are stored by seed index, so the result is bit-identical to a serial
/// run regardless of `opt.threads`.
[[nodiscard]] multi_seed_result run_seeds_multi_captured(
    int seed_count, std::uint64_t base_seed, std::size_t metric_count,
    const std::function<std::vector<double>(std::uint64_t seed,
                                            util::json& capture)>& experiment,
    run_options opt = {});

}  // namespace nylon::runtime
