// Multi-seed experiment driver: runs a measurement across independent
// seeds (the paper averages 30) and aggregates.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/stats.h"

namespace nylon::runtime {

/// Aggregate of one scalar metric across seeds.
struct seed_aggregate {
  std::vector<double> values;  ///< per-seed results, in seed order
  util::summary stats;         ///< summary over `values`
};

/// Runs `experiment` once per seed (seeds derived deterministically from
/// `base_seed`) and aggregates the returned metric.
[[nodiscard]] seed_aggregate run_seeds(
    int seed_count, std::uint64_t base_seed,
    const std::function<double(std::uint64_t seed)>& experiment);

/// Variant for experiments that produce several named metrics at once:
/// returns one aggregate per metric index.
[[nodiscard]] std::vector<seed_aggregate> run_seeds_multi(
    int seed_count, std::uint64_t base_seed, std::size_t metric_count,
    const std::function<std::vector<double>(std::uint64_t seed)>& experiment);

}  // namespace nylon::runtime
