#include "runtime/scenario.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/nylon_peer.h"
#include "gossip/bootstrap.h"
#include "net/latency.h"
#include "obs/counters.h"
#include "util/contracts.h"
#include "wire/codec.h"

namespace nylon::runtime {

namespace {

std::unique_ptr<net::latency_model> make_latency(const experiment_config& cfg) {
  switch (cfg.latency_model) {
    case experiment_config::latency_kind::uniform:
      return std::make_unique<net::uniform_latency>(cfg.latency,
                                                    cfg.latency_max);
    case experiment_config::latency_kind::lognormal:
      return std::make_unique<net::lognormal_latency>(cfg.latency,
                                                      cfg.latency_sigma);
    case experiment_config::latency_kind::fixed:
      break;
  }
  return std::make_unique<net::fixed_latency>(cfg.latency);
}

/// Stream tag for per-peer rngs, far above the workload engine's
/// 0xD1CE____ phase streams so derived seeds never collide.
constexpr std::uint64_t peer_stream_base = std::uint64_t{1} << 32;

}  // namespace

scenario::scenario(const experiment_config& cfg) : cfg_(cfg), rng_(cfg.seed) {
  cfg_.validate();

  net::transport_config tcfg;
  tcfg.hole_timeout = cfg_.hole_timeout;
  tcfg.loss_rate = cfg_.loss_rate;
  std::unique_ptr<net::latency_model> latency = make_latency(cfg_);
  if (cfg_.shards > 0) {
    // Conservative window = the latency floor: every packet posted
    // during an epoch then lands strictly after the epoch barrier.
    const sim::sim_time window = latency->min_delay();
    NYLON_EXPECTS(window >= 1);
    // The lookahead provider defers to the transport (constructed just
    // below), so adaptive epochs see the live latency-class floor, not a
    // snapshot taken at build time.
    shards_ = std::make_unique<sim::shard_engine>(
        cfg_.shards, window, cfg_.window_mode,
        [this]() noexcept { return transport_->lookahead(); });
  }
  transport_ = std::make_unique<net::transport>(sched_, rng_,
                                                std::move(latency), tcfg);
  if (shards_ != nullptr) transport_->set_shard_router(this);
  switch (cfg_.transport) {
    case transport_kind::sim:
      break;
    case transport_kind::sim_frames:
      // Every datagram flies as its serialized frame, decoded right
      // before dispatch. Encode/decode happen outside all accounting
      // and rng draws, so digests stay byte-identical to plain sim
      // (pinned by tests/wire/frames_digest_test).
      transport_->set_codec(&wire::gossip_codec());
      break;
    case transport_kind::udp: {
      net::udp_backend::config ucfg;
      ucfg.time_scale = cfg_.udp_time_scale;
      udp_ = std::make_unique<net::udp_backend>(
          *transport_, sched_, wire::gossip_codec(), ucfg);
      transport_->set_backend(udp_.get());
      break;
    }
  }

  // Control-plane construction draws (type assignment, bootstrap, timer
  // phases) use the shared stream in both engines, so a sharded universe
  // starts from the exact initial state its serial sibling would.
  const std::vector<nat::nat_type> types =
      nat::assign_types(cfg_.peer_count, cfg_.natted_fraction, cfg_.mix, rng_);

  peers_.reserve(cfg_.peer_count);
  for (std::size_t i = 0; i < cfg_.peer_count; ++i) {
    const auto id = static_cast<net::node_id>(i);
    util::rng& peer_rng = shards_ != nullptr ? peer_rng_for(id) : rng_;
    auto p = core::make_peer(cfg_.protocol, *transport_, peer_rng,
                             cfg_.gossip);
    const net::node_id assigned = transport_->add_node(types[i], *p);
    NYLON_ENSURES(assigned == id);
    p->attach(id);
    peers_.push_back(std::move(p));
  }

  std::vector<gossip::peer*> raw;
  raw.reserve(peers_.size());
  for (const auto& p : peers_) raw.push_back(p.get());
  gossip::bootstrap_with_public_peers(raw, rng_);

  // Random phase within the first period so peers do not fire in
  // lockstep; afterwards every peer gossips exactly once per period.
  for (const auto& p : peers_) {
    const auto phase = static_cast<sim::sim_time>(rng_.uniform(
        0, static_cast<std::uint64_t>(cfg_.gossip.shuffle_period - 1)));
    p->start(phase);
  }

  // Periodic NAT garbage collection keeps device tables bounded. A
  // control-plane event in shard mode: it runs at an epoch barrier with
  // every shard parked.
  sched_.every(sim::seconds(30), sim::seconds(30),
               [this] { transport_->purge_nat_state(); });
}

util::rng& scenario::peer_rng_for(net::node_id id) {
  while (peer_rngs_.size() <= id) {
    peer_rngs_.emplace_back(util::derive_seed(
        cfg_.seed, peer_stream_base + peer_rngs_.size()));
  }
  return peer_rngs_[id];
}

// --- net::shard_router -------------------------------------------------------

std::size_t scenario::shard_count() const noexcept {
  return shards_->shard_count();
}

std::size_t scenario::shard_of(net::node_id id) const noexcept {
  return id % shards_->shard_count();
}

sim::scheduler& scenario::scheduler_of(std::size_t shard) noexcept {
  return shards_->shard_scheduler(shard);
}

util::rng& scenario::rng_of(net::node_id id) noexcept {
  return peer_rngs_[id];
}

sim::sim_time scenario::completed_through() const noexcept {
  return shards_->completed_through();
}

void scenario::post(std::size_t src_shard, std::size_t dst_shard,
                    sim::sim_time at, std::uint64_t order_a,
                    std::uint64_t order_b, util::callback fn) {
  shards_->post(src_shard, dst_shard, at, order_a, order_b, std::move(fn));
}

// --- time --------------------------------------------------------------------

void scenario::run_periods(std::int64_t periods) {
  NYLON_EXPECTS(periods >= 0);
  run_until(sched_.now() + periods * cfg_.gossip.shuffle_period);
}

void scenario::run_until(sim::sim_time deadline) {
  const sim::sim_time next_tick = next_sample_time();
  if (next_tick > deadline) {
    // No sampler due before the deadline: the plain engine dispatch,
    // byte-for-byte the pre-sampler behavior.
    run_until_plain(deadline);
    obs::count_peak(obs::counter::sim_time_ms,
                    static_cast<std::uint64_t>(std::max<sim::sim_time>(
                        sched_.now(), 0)));
    return;
  }
  // Sampler ticks interleave by splitting run_until at the tick times.
  // run_until_plain(t) executes every event at or before t and then
  // advances the clock to exactly t, so the split is invisible to the
  // event stream — digests match the unsampled run byte-for-byte.
  for (;;) {
    const sim::sim_time target = std::min(deadline, next_sample_time());
    run_until_plain(target);
    fire_samplers(target);
    if (target >= deadline) break;
  }
  obs::count_peak(obs::counter::sim_time_ms,
                  static_cast<std::uint64_t>(std::max<sim::sim_time>(
                      sched_.now(), 0)));
}

void scenario::run_until_plain(sim::sim_time deadline) {
  if (udp_ != nullptr) {
    // Real-socket mode: the backend owns the clock (wall-paced), the
    // sockets, and the scheduler advance.
    udp_->run_until(deadline);
    return;
  }
  if (shards_ == nullptr) {
    sched_.run_until(deadline);
    return;
  }
  NYLON_EXPECTS(deadline >= sched_.now());
  // Lockstep epochs, cut short at control-event times (NAT GC) so those
  // run at their exact timestamps — after every shard event at or before
  // them, like workload actions.
  for (;;) {
    const sim::sim_time next_control = sched_.next_event_time();
    const sim::sim_time target = std::min(deadline, next_control);
    shards_->run_until(target);
    sched_.run_until(target);
    if (target >= deadline) break;
  }
}

void scenario::set_sampler(std::size_t slot, sim::sim_time period,
                           std::function<void(sim::sim_time)> fn) {
  NYLON_EXPECTS(slot < sampler_slots);
  NYLON_EXPECTS(period > 0);
  NYLON_EXPECTS(fn != nullptr);
  samplers_[slot] =
      sampler_entry{period, sched_.now() + period, std::move(fn)};
}

void scenario::clear_sampler(std::size_t slot) noexcept {
  if (slot < sampler_slots) samplers_[slot] = sampler_entry{};
}

sim::sim_time scenario::next_sample_time() const noexcept {
  sim::sim_time next = sim::time_never;
  for (const sampler_entry& s : samplers_) {
    if (s.period > 0 && s.next < next) next = s.next;
  }
  return next;
}

void scenario::fire_samplers(sim::sim_time t) {
  for (sampler_entry& s : samplers_) {
    if (s.period > 0 && s.next <= t) {
      const sim::sim_time at = s.next;
      s.next += s.period;
      s.fn(at);  // observation-only: reads the parked world
    }
  }
}

std::uint64_t scenario::events_executed() const noexcept {
  std::uint64_t total = sched_.events_executed();
  if (shards_ != nullptr) total += shards_->events_executed();
  return total;
}

obs::epoch_profile scenario::shard_profile() const {
  return shards_ != nullptr ? shards_->profile() : obs::epoch_profile{};
}

gossip::peer& scenario::peer_at(net::node_id id) {
  NYLON_EXPECTS(id < peers_.size());
  return *peers_[id];
}

punch_stat_totals scenario::punch_totals() const {
  punch_stat_totals out;
  for (const auto& p : peers_) {
    const auto* np = dynamic_cast<const core::nylon_peer*>(p.get());
    if (np == nullptr) continue;
    out.started += np->nat_stats().punches_started;
    out.completed += np->nat_stats().punches_completed;
    out.expired += np->nat_stats().punches_expired;
    out.punch_chains.merge(np->nat_stats().punch_chain_hops);
    out.rvp_chains.merge(np->nat_stats().punch_chain_hops);
    out.rvp_chains.merge(np->nat_stats().relay_chain_hops);
  }
  return out;
}

std::size_t scenario::alive_count() const {
  return transport_->alive_count();
}

std::vector<net::node_id> scenario::alive_ids() const {
  // Merge the transport's per-class alive lists (both id-ascending) so the
  // result keeps the id order the old full scan produced.
  const std::span<const net::node_id> pub = transport_->alive_public();
  const std::span<const net::node_id> nat = transport_->alive_natted();
  std::vector<net::node_id> out;
  out.reserve(pub.size() + nat.size());
  std::merge(pub.begin(), pub.end(), nat.begin(), nat.end(),
             std::back_inserter(out));
  return out;
}

void scenario::set_nat_distribution(double natted_fraction,
                                    const nat::nat_mix& mix) {
  NYLON_EXPECTS(natted_fraction >= 0.0 && natted_fraction <= 1.0);
  cfg_.natted_fraction = natted_fraction;
  cfg_.mix = mix;
}

std::size_t scenario::partition_fraction(double fraction) {
  NYLON_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  const std::vector<net::node_id> alive = alive_ids();
  const auto take = static_cast<std::size_t>(
      std::lround(fraction * static_cast<double>(alive.size())));
  std::vector<std::uint8_t> side(peers_.size(), 0);
  const std::vector<std::size_t> picks = rng_.sample_indices(alive.size(), take);
  for (const std::size_t k : picks) side[alive[k]] = 1;
  transport_->set_partition(std::move(side));
  return take;
}

void scenario::heal_partition() { transport_->clear_partition(); }

std::size_t scenario::upheave_natted_fraction(
    double fraction, const std::function<void(net::node_id)>& upheave) {
  NYLON_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  const std::span<const net::node_id> alive = transport_->alive_natted();
  const std::vector<net::node_id> natted(alive.begin(), alive.end());
  const auto take = static_cast<std::size_t>(
      std::lround(fraction * static_cast<double>(natted.size())));
  const std::vector<std::size_t> picks =
      rng_.sample_indices(natted.size(), take);
  for (const std::size_t k : picks) {
    const net::node_id id = natted[k];
    upheave(id);
    peers_[id]->refresh_self();
  }
  return take;
}

std::size_t scenario::rebind_fraction(double fraction) {
  return upheave_natted_fraction(
      fraction, [this](net::node_id id) { transport_->rebind_nat(id); });
}

std::size_t scenario::migrate_fraction(double fraction,
                                       const nat::nat_mix& to_mix) {
  return upheave_natted_fraction(fraction, [this, &to_mix](net::node_id id) {
    transport_->migrate_nat(id, nat::draw_type(to_mix, rng_));
  });
}

void scenario::remove_peer(net::node_id id) {
  NYLON_EXPECTS(id < peers_.size());
  peers_[id]->stop();
  transport_->remove_node(id);
}

net::node_id scenario::add_peer(std::optional<nat::nat_type> type) {
  const nat::nat_type chosen = type.has_value()
                                   ? *type
                                   : nat::assign_types(1, cfg_.natted_fraction,
                                                       cfg_.mix, rng_)[0];
  const auto id = static_cast<net::node_id>(peers_.size());
  util::rng& peer_rng = shards_ != nullptr ? peer_rng_for(id) : rng_;
  auto p = core::make_peer(cfg_.protocol, *transport_, peer_rng, cfg_.gossip);
  const net::node_id assigned = transport_->add_node(chosen, *p);
  NYLON_ENSURES(assigned == id);
  p->attach(id);

  // Bootstrap with up to view_size alive public peers (fallback: any
  // alive peer), like the initial §5 bootstrap but against the current
  // population. The transport's alive lists already include the joiner
  // itself (add_node above); as the freshest id it sits at its list's
  // tail, so excluding it — the old scan stopped before it — is a pop.
  std::vector<gossip::view_entry> seeds;
  const auto without_self = [id](std::span<const net::node_id> list) {
    if (!list.empty() && list.back() == id) list = list.first(list.size() - 1);
    return list;
  };
  const std::span<const net::node_id> pub =
      without_self(transport_->alive_public());
  std::vector<net::node_id> candidates(pub.begin(), pub.end());
  if (candidates.empty()) {
    const std::span<const net::node_id> nat =
        without_self(transport_->alive_natted());
    std::merge(pub.begin(), pub.end(), nat.begin(), nat.end(),
               std::back_inserter(candidates));
  }
  const std::vector<std::size_t> picks = rng_.sample_indices(
      candidates.size(),
      std::min(candidates.size(), cfg_.gossip.view_size));
  for (const std::size_t k : picks) {
    seeds.push_back(
        gossip::view_entry{peers_[candidates[k]]->self(), 0, 0});
  }
  p->set_initial_view(std::move(seeds));

  const auto phase = static_cast<sim::sim_time>(rng_.uniform(
      0, static_cast<std::uint64_t>(cfg_.gossip.shuffle_period - 1)));
  p->start(sched_.now() + phase);
  peers_.push_back(std::move(p));
  return id;
}

std::size_t scenario::remove_fraction(double fraction) {
  NYLON_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  // Snapshots: remove_peer mutates the transport's lists mid-loop.
  const std::span<const net::node_id> pub = transport_->alive_public();
  const std::span<const net::node_id> nat = transport_->alive_natted();
  std::vector<net::node_id> alive_public(pub.begin(), pub.end());
  std::vector<net::node_id> alive_natted(nat.begin(), nat.end());
  // Proportional removal across the two classes (Fig. 10's setup).
  std::size_t removed = 0;
  for (auto* group : {&alive_public, &alive_natted}) {
    const auto take = static_cast<std::size_t>(
        std::lround(fraction * static_cast<double>(group->size())));
    const std::vector<std::size_t> picks =
        rng_.sample_indices(group->size(), take);
    for (const std::size_t k : picks) {
      remove_peer((*group)[k]);
      ++removed;
    }
  }
  return removed;
}

std::uint64_t scenario::state_digest() const {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (i * 8)) & 0xFF;
      hash *= 0x100000001b3ULL;
    }
  };
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    const auto id = static_cast<net::node_id>(i);
    const gossip::peer& p = *peers_[i];
    mix(transport_->alive(id) ? 1 : 0);
    mix(static_cast<std::uint64_t>(transport_->type_of(id)));
    const net::endpoint adv = transport_->advertised_endpoint(id);
    mix(adv.ip.value);
    mix(adv.port);
    for (const gossip::view_entry& e : p.current_view().entries()) {
      mix(e.peer.id);
      mix(e.peer.addr.ip.value);
      mix(e.peer.addr.port);
      mix(static_cast<std::uint64_t>(e.peer.type));
      mix(static_cast<std::uint64_t>(e.age));
      mix(static_cast<std::uint64_t>(e.route_ttl));
    }
    const gossip::shuffle_stats& s = p.stats();
    mix(s.initiated);
    mix(s.requests_received);
    mix(s.responses_received);
    mix(s.messages_forwarded);
    const net::node_traffic& t = transport_->traffic(id);
    mix(t.bytes_sent);
    mix(t.bytes_received);
    mix(t.msgs_sent);
    mix(t.msgs_received);
  }
  for (std::size_t r = 0;
       r < static_cast<std::size_t>(net::drop_reason::count_); ++r) {
    mix(transport_->drops(static_cast<net::drop_reason>(r)));
  }
  for (std::size_t k = 0;
       k < static_cast<std::size_t>(net::message_kind::count_); ++k) {
    mix(transport_->bytes_by_kind(static_cast<net::message_kind>(k)));
  }
  mix(events_executed());
  return hash;
}

metrics::reachability_oracle scenario::oracle() const {
  return metrics::reachability_oracle(*transport_, peers_);
}

}  // namespace nylon::runtime
