#include "runtime/scenario.h"

#include <algorithm>
#include <cmath>

#include "gossip/bootstrap.h"
#include "net/latency.h"
#include "util/contracts.h"

namespace nylon::runtime {

scenario::scenario(const experiment_config& cfg) : cfg_(cfg), rng_(cfg.seed) {
  cfg_.validate();

  net::transport_config tcfg;
  tcfg.hole_timeout = cfg_.hole_timeout;
  tcfg.loss_rate = cfg_.loss_rate;
  std::unique_ptr<net::latency_model> latency;
  switch (cfg_.latency_model) {
    case experiment_config::latency_kind::uniform:
      latency = std::make_unique<net::uniform_latency>(cfg_.latency,
                                                       cfg_.latency_max);
      break;
    case experiment_config::latency_kind::lognormal:
      latency = std::make_unique<net::lognormal_latency>(cfg_.latency,
                                                         cfg_.latency_sigma);
      break;
    case experiment_config::latency_kind::fixed:
      latency = std::make_unique<net::fixed_latency>(cfg_.latency);
      break;
  }
  transport_ = std::make_unique<net::transport>(sched_, rng_,
                                                std::move(latency), tcfg);

  const std::vector<nat::nat_type> types =
      nat::assign_types(cfg_.peer_count, cfg_.natted_fraction, cfg_.mix, rng_);

  peers_.reserve(cfg_.peer_count);
  for (std::size_t i = 0; i < cfg_.peer_count; ++i) {
    auto p = core::make_peer(cfg_.protocol, *transport_, rng_, cfg_.gossip);
    const net::node_id id = transport_->add_node(types[i], *p);
    NYLON_ENSURES(id == static_cast<net::node_id>(i));
    p->attach(id);
    peers_.push_back(std::move(p));
  }

  std::vector<gossip::peer*> raw;
  raw.reserve(peers_.size());
  for (const auto& p : peers_) raw.push_back(p.get());
  gossip::bootstrap_with_public_peers(raw, rng_);

  // Random phase within the first period so peers do not fire in
  // lockstep; afterwards every peer gossips exactly once per period.
  for (const auto& p : peers_) {
    const auto phase = static_cast<sim::sim_time>(rng_.uniform(
        0, static_cast<std::uint64_t>(cfg_.gossip.shuffle_period - 1)));
    p->start(phase);
  }

  // Periodic NAT garbage collection keeps device tables bounded.
  sched_.every(sim::seconds(30), sim::seconds(30),
               [this] { transport_->purge_nat_state(); });
}

void scenario::run_periods(std::int64_t periods) {
  NYLON_EXPECTS(periods >= 0);
  sched_.run_for(periods * cfg_.gossip.shuffle_period);
}

void scenario::run_until(sim::sim_time deadline) { sched_.run_until(deadline); }

gossip::peer& scenario::peer_at(net::node_id id) {
  NYLON_EXPECTS(id < peers_.size());
  return *peers_[id];
}

std::size_t scenario::alive_count() const {
  std::size_t alive = 0;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (transport_->alive(static_cast<net::node_id>(i))) ++alive;
  }
  return alive;
}

std::vector<net::node_id> scenario::alive_ids() const {
  std::vector<net::node_id> out;
  out.reserve(peers_.size());
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    const auto id = static_cast<net::node_id>(i);
    if (transport_->alive(id)) out.push_back(id);
  }
  return out;
}

void scenario::set_nat_distribution(double natted_fraction,
                                    const nat::nat_mix& mix) {
  NYLON_EXPECTS(natted_fraction >= 0.0 && natted_fraction <= 1.0);
  cfg_.natted_fraction = natted_fraction;
  cfg_.mix = mix;
}

std::size_t scenario::partition_fraction(double fraction) {
  NYLON_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  const std::vector<net::node_id> alive = alive_ids();
  const auto take = static_cast<std::size_t>(
      std::lround(fraction * static_cast<double>(alive.size())));
  std::vector<std::uint8_t> side(peers_.size(), 0);
  const std::vector<std::size_t> picks = rng_.sample_indices(alive.size(), take);
  for (const std::size_t k : picks) side[alive[k]] = 1;
  transport_->set_partition(std::move(side));
  return take;
}

void scenario::heal_partition() { transport_->clear_partition(); }

std::size_t scenario::rebind_fraction(double fraction) {
  NYLON_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  std::vector<net::node_id> natted;
  for (const net::node_id id : alive_ids()) {
    if (nat::is_natted(transport_->type_of(id))) natted.push_back(id);
  }
  const auto take = static_cast<std::size_t>(
      std::lround(fraction * static_cast<double>(natted.size())));
  const std::vector<std::size_t> picks =
      rng_.sample_indices(natted.size(), take);
  for (const std::size_t k : picks) {
    const net::node_id id = natted[k];
    transport_->rebind_nat(id);
    peers_[id]->refresh_self();
  }
  return take;
}

void scenario::remove_peer(net::node_id id) {
  NYLON_EXPECTS(id < peers_.size());
  peers_[id]->stop();
  transport_->remove_node(id);
}

net::node_id scenario::add_peer(std::optional<nat::nat_type> type) {
  const nat::nat_type chosen = type.has_value()
                                   ? *type
                                   : nat::assign_types(1, cfg_.natted_fraction,
                                                       cfg_.mix, rng_)[0];
  auto p = core::make_peer(cfg_.protocol, *transport_, rng_, cfg_.gossip);
  const net::node_id id = transport_->add_node(chosen, *p);
  p->attach(id);

  // Bootstrap with up to view_size alive public peers (fallback: any
  // alive peer), like the initial §5 bootstrap but against the current
  // population.
  std::vector<gossip::view_entry> seeds;
  std::vector<net::node_id> candidates;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    const auto other = static_cast<net::node_id>(i);
    if (!transport_->alive(other)) continue;
    if (nat::is_natted(transport_->type_of(other))) continue;
    candidates.push_back(other);
  }
  if (candidates.empty()) {
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      const auto other = static_cast<net::node_id>(i);
      if (transport_->alive(other)) candidates.push_back(other);
    }
  }
  const std::vector<std::size_t> picks = rng_.sample_indices(
      candidates.size(),
      std::min(candidates.size(), cfg_.gossip.view_size));
  for (const std::size_t k : picks) {
    seeds.push_back(
        gossip::view_entry{peers_[candidates[k]]->self(), 0, 0});
  }
  p->set_initial_view(std::move(seeds));

  const auto phase = static_cast<sim::sim_time>(rng_.uniform(
      0, static_cast<std::uint64_t>(cfg_.gossip.shuffle_period - 1)));
  p->start(sched_.now() + phase);
  peers_.push_back(std::move(p));
  return id;
}

std::size_t scenario::remove_fraction(double fraction) {
  NYLON_EXPECTS(fraction >= 0.0 && fraction <= 1.0);
  std::vector<net::node_id> alive_public;
  std::vector<net::node_id> alive_natted;
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    const auto id = static_cast<net::node_id>(i);
    if (!transport_->alive(id)) continue;
    if (nat::is_natted(transport_->type_of(id))) {
      alive_natted.push_back(id);
    } else {
      alive_public.push_back(id);
    }
  }
  // Proportional removal across the two classes (Fig. 10's setup).
  std::size_t removed = 0;
  for (auto* group : {&alive_public, &alive_natted}) {
    const auto take = static_cast<std::size_t>(
        std::lround(fraction * static_cast<double>(group->size())));
    const std::vector<std::size_t> picks =
        rng_.sample_indices(group->size(), take);
    for (const std::size_t k : picks) {
      remove_peer((*group)[k]);
      ++removed;
    }
  }
  return removed;
}

metrics::reachability_oracle scenario::oracle() const {
  return metrics::reachability_oracle(*transport_, peers_);
}

}  // namespace nylon::runtime
