#include "runtime/experiment_config.h"

#include "util/contracts.h"

namespace nylon::runtime {

void experiment_config::validate() const {
  NYLON_EXPECTS(peer_count >= 2);
  NYLON_EXPECTS(natted_fraction >= 0.0 && natted_fraction <= 1.0);
  NYLON_EXPECTS(gossip.view_size > 0);
  NYLON_EXPECTS(gossip.view_size < peer_count);
  NYLON_EXPECTS(gossip.shuffle_period > 0);
  NYLON_EXPECTS(latency >= 0);
  NYLON_EXPECTS(latency < gossip.shuffle_period);
  if (latency_model == latency_kind::uniform) {
    NYLON_EXPECTS(latency_max >= latency);
    NYLON_EXPECTS(latency_max < gossip.shuffle_period);
  }
  if (latency_model == latency_kind::lognormal) {
    NYLON_EXPECTS(latency > 0);
    NYLON_EXPECTS(latency_sigma >= 0.0);
  }
  NYLON_EXPECTS(hole_timeout > 0);
  NYLON_EXPECTS(loss_rate >= 0.0 && loss_rate <= 1.0);
  if (shards > 0) {
    // The conservative window is the latency floor; a zero floor would
    // allow same-epoch cross-shard causality. (lognormal clamps to 1 ms.)
    NYLON_EXPECTS(latency >= 1);
    NYLON_EXPECTS(shards <= 1024);
  }
}

}  // namespace nylon::runtime
