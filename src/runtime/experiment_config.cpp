#include "runtime/experiment_config.h"

#include "util/contracts.h"

namespace nylon::runtime {

std::string_view to_string(transport_kind k) noexcept {
  switch (k) {
    case transport_kind::sim: return "sim";
    case transport_kind::sim_frames: return "sim-frames";
    case transport_kind::udp: return "udp";
  }
  return "?";
}

void experiment_config::validate() const {
  NYLON_EXPECTS(peer_count >= 2);
  NYLON_EXPECTS(natted_fraction >= 0.0 && natted_fraction <= 1.0);
  NYLON_EXPECTS(gossip.view_size > 0);
  NYLON_EXPECTS(gossip.view_size < peer_count);
  NYLON_EXPECTS(gossip.shuffle_period > 0);
  NYLON_EXPECTS(latency >= 0);
  NYLON_EXPECTS(latency < gossip.shuffle_period);
  if (latency_model == latency_kind::uniform) {
    NYLON_EXPECTS(latency_max >= latency);
    NYLON_EXPECTS(latency_max < gossip.shuffle_period);
  }
  if (latency_model == latency_kind::lognormal) {
    NYLON_EXPECTS(latency > 0);
    NYLON_EXPECTS(latency_sigma >= 0.0);
  }
  NYLON_EXPECTS(hole_timeout > 0);
  NYLON_EXPECTS(loss_rate >= 0.0 && loss_rate <= 1.0);
  if (shards > 0) {
    // The conservative window is the latency floor; a zero floor would
    // allow same-epoch cross-shard causality. (lognormal clamps to 1 ms.)
    NYLON_EXPECTS(latency >= 1);
    NYLON_EXPECTS(shards <= 1024);
  }
  NYLON_EXPECTS(udp_time_scale > 0.0);
  if (transport == transport_kind::udp) {
    // Real sockets drive the serial engine's scheduler directly; the
    // sharded epoch barriers cannot pace a kernel.
    NYLON_EXPECTS(shards == 0);
  }
}

}  // namespace nylon::runtime
