// Aligned text tables (and CSV) for the bench harnesses, so every bench
// prints the same rows/series the paper's figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace nylon::runtime {

/// Simple column-aligned table builder.
class text_table {
 public:
  explicit text_table(std::vector<std::string> headers);

  /// Adds one row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders with padded columns and a header rule.
  void print(std::ostream& os) const;

  /// Renders as CSV (comma-separated, no quoting — cells must be plain).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Raw cells, for machine-readable emitters (workload::to_json).
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& row_data()
      const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (default 1 decimal).
[[nodiscard]] std::string fmt(double value, int precision = 1);

}  // namespace nylon::runtime
