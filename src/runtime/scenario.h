// A fully wired simulation: scheduler + rng + transport + peers, built
// from an experiment_config, with churn injection and metric access.
//
// Two execution engines behind one API (selected by config.shards):
//  * shards == 0 — the classic serial engine: one scheduler, one shared
//    rng, golden-digest pinned (DESIGN.md "Determinism contract").
//  * shards == K >= 1 — the sharded universe engine: peers partitioned
//    across K shards by node_id (id % K), each shard a full scheduler
//    clone advancing in lockstep epochs, per-peer rng streams, and
//    canonical cross-shard packet channels. Results are byte-identical
//    for every K (DESIGN.md "Sharded determinism contract") but form a
//    distinct deterministic stream from the serial engine.
// All mutation entry points below are control-plane operations: in shard
// mode they run at epoch barriers, where every shard is parked at the
// same simulated time.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "gossip/peer.h"
#include "metrics/reachability.h"
#include "net/transport.h"
#include "net/udp_backend.h"
#include "runtime/experiment_config.h"
#include "sim/scheduler.h"
#include "sim/shard_engine.h"
#include "util/rng.h"
#include "util/stats.h"

namespace nylon::runtime {

/// Aggregated Nylon hole-punching statistics over every peer created in
/// the run (dead peers keep their counters, exactly like the hand-rolled
/// ablation benches summed them). All zero for non-Nylon protocols.
struct punch_stat_totals {
  std::uint64_t started = 0;    ///< OPEN_HOLEs emitted
  std::uint64_t completed = 0;  ///< PONG received, REQUEST sent
  std::uint64_t expired = 0;    ///< no PONG within the horizon
  /// Chain lengths of completed punches only.
  util::running_stats punch_chains;
  /// Punch *and* fully-relayed REQUEST chains merged per peer (punch
  /// first), the Fig. 9 "RVPs traversed" population.
  util::running_stats rvp_chains;
};

class scenario : private net::shard_router {
 public:
  /// Builds the whole system: assigns NAT types, creates peers, seeds
  /// views with random public peers (§5 bootstrap) and schedules every
  /// peer's shuffle timer with a random phase within the first period.
  explicit scenario(const experiment_config& cfg);

  /// Advances the simulation by `periods` shuffle periods.
  void run_periods(std::int64_t periods);

  /// Advances to an absolute simulated time. In shard mode this runs
  /// conservative-window epochs, interleaving control-plane events (NAT
  /// GC) at their exact timestamps, and returns with every shard parked
  /// at `deadline`.
  void run_until(sim::sim_time deadline);

  // --- sim-time sampling (obs timelines, workload trajectories) --------------

  /// Sampler slots: the spec-level health timeline and the workload
  /// engine's trajectory snapshots share the tick machinery but anchor
  /// and clear independently.
  static constexpr std::size_t sampler_timeline = 0;
  static constexpr std::size_t sampler_workload = 1;
  static constexpr std::size_t sampler_slots = 2;

  /// Installs (or re-anchors) the observation sampler in `slot`: `fn(t)`
  /// fires every `period` of sim time, first at now() + period. Ticks
  /// are interleaved into run_until — the engine runs to the tick time,
  /// parks (all shards, in shard mode), fires `fn`, and resumes — so no
  /// scheduler event is created and the event stream is untouched: state
  /// digests are byte-identical with samplers installed or not
  /// (DESIGN.md "Observability & the determinism contract"). `fn` must
  /// not draw from shared rngs or reentrantly run_until. The timeline
  /// slot is observation-only (const reads of the parked world); the
  /// workload slot may additionally run control-plane actions that were
  /// due at exactly the tick time — they would have run at the same
  /// barrier anyway, so the event stream is unchanged.
  void set_sampler(std::size_t slot, sim::sim_time period,
                   std::function<void(sim::sim_time)> fn);

  /// Uninstalls the sampler in `slot`; pending ticks are abandoned.
  void clear_sampler(std::size_t slot) noexcept;

  // --- churn -----------------------------------------------------------------

  /// Fail-stop removal of `fraction` of the alive peers, public and
  /// natted peers removed proportionally to their share (Fig. 10).
  /// Returns the number of peers removed.
  std::size_t remove_fraction(double fraction);

  /// Removes one specific peer (fail-stop).
  void remove_peer(net::node_id id);

  /// A new peer joins mid-run: it is created with the scenario's protocol
  /// and NAT type drawn from the configured distribution (or forced via
  /// `type`), bootstrapped with alive public peers, and starts gossiping
  /// within one period. Returns its id. (Arrival-side churn — the paper's
  /// motivation mentions arrivals, its evaluation only departures.)
  net::node_id add_peer(std::optional<nat::nat_type> type = std::nullopt);

  /// Number of peers still alive.
  [[nodiscard]] std::size_t alive_count() const;

  /// All alive node ids, in id order.
  [[nodiscard]] std::vector<net::node_id> alive_ids() const;

  // --- dynamics beyond plain churn (driven by workload::engine) --------------

  /// Changes the NAT distribution that future `add_peer` draws use —
  /// models a population whose newcomers differ from the incumbents
  /// (e.g. an ISP rolling out CGNAT). Does not touch existing peers.
  void set_nat_distribution(double natted_fraction, const nat::nat_mix& mix);

  /// Splits the network: round(fraction * alive) random peers land on
  /// side 1, everyone else stays on side 0, and cross-side packets drop.
  /// Returns the side-1 population. Replaces any existing partition.
  std::size_t partition_fraction(double fraction);

  /// Heals any installed partition.
  void heal_partition();

  /// Re-binds the NAT of round(fraction * alive natted peers) random
  /// natted peers (lease expiry: new public IP, all state lost) and
  /// refreshes their self-descriptors. Returns how many were re-bound.
  std::size_t rebind_fraction(double fraction);

  /// In-place NAT *type* migration of round(fraction * alive natted)
  /// random natted peers: each gets a fresh device of a type drawn from
  /// `to_mix` (the ISP swapped the box — cone customers waking up behind
  /// symmetric CGNAT, say), with the full rebind upheaval on top (new
  /// public IP, NAT state lost, self-descriptor refreshed). Returns how
  /// many migrated.
  std::size_t migrate_fraction(double fraction, const nat::nat_mix& to_mix);

  // --- access ----------------------------------------------------------------

  [[nodiscard]] net::transport& transport() noexcept { return *transport_; }
  [[nodiscard]] const net::transport& transport() const noexcept {
    return *transport_;
  }
  [[nodiscard]] std::span<const std::unique_ptr<gossip::peer>> peers()
      const noexcept {
    return peers_;
  }
  [[nodiscard]] gossip::peer& peer_at(net::node_id id);
  /// The control-plane scheduler. Its clock is the authoritative "now"
  /// between events in serial mode and at barriers in shard mode; its
  /// events_executed() covers only control events when sharded — use
  /// scenario::events_executed() for the whole universe.
  [[nodiscard]] sim::scheduler& scheduler() noexcept { return sched_; }
  [[nodiscard]] util::rng& rng() noexcept { return rng_; }
  [[nodiscard]] const experiment_config& config() const noexcept {
    return cfg_;
  }

  /// Total events executed across the whole universe (all shards plus
  /// the control plane; just the one scheduler in serial mode).
  [[nodiscard]] std::uint64_t events_executed() const noexcept;

  /// True when running on the sharded engine.
  [[nodiscard]] bool sharded() const noexcept { return shards_ != nullptr; }

  /// The real-socket backend, non-null iff config.transport == udp
  /// (wire-level telemetry: socket count, datagrams, jitter).
  [[nodiscard]] const net::udp_backend* udp() const noexcept {
    return udp_.get();
  }

  /// The shard engine's per-shard work/wait profile (obs/profile.h).
  /// Empty in serial mode and in NYLON_OBS=0 builds.
  [[nodiscard]] obs::epoch_profile shard_profile() const;

  /// FNV-1a digest of the observable world state: per-peer liveness,
  /// views, shuffle statistics and traffic counters (id order), plus the
  /// transport's drop/byte accounting and the event count. Two runs are
  /// "the same simulation" iff their digests match; the shard
  /// determinism tests pin this across shard counts.
  [[nodiscard]] std::uint64_t state_digest() const;

  /// Builds a fresh staleness/connectivity oracle over the current state.
  [[nodiscard]] metrics::reachability_oracle oracle() const;

  /// Aggregated Nylon traversal counters across all peers (id order);
  /// all zero when the protocol has no NAT awareness.
  [[nodiscard]] punch_stat_totals punch_totals() const;

 private:
  // --- net::shard_router (shard mode only) -----------------------------------
  [[nodiscard]] std::size_t shard_count() const noexcept override;
  [[nodiscard]] std::size_t shard_of(net::node_id id) const noexcept override;
  [[nodiscard]] sim::scheduler& scheduler_of(
      std::size_t shard) noexcept override;
  [[nodiscard]] util::rng& rng_of(net::node_id id) noexcept override;
  [[nodiscard]] sim::sim_time completed_through() const noexcept override;
  void post(std::size_t src_shard, std::size_t dst_shard, sim::sim_time at,
            std::uint64_t order_a, std::uint64_t order_b,
            util::callback fn) override;

  /// The dedicated rng stream for peer `id` (shard mode), created on
  /// first use in id order. Streams derive from (seed, id), so they are
  /// independent of the shard count and of join order timing.
  util::rng& peer_rng_for(net::node_id id);

  /// Shared scaffolding of rebind_fraction / migrate_fraction: picks
  /// round(fraction * alive natted) random natted peers, applies
  /// `upheave` to each and refreshes its self-descriptor. Returns how
  /// many were hit.
  std::size_t upheave_natted_fraction(
      double fraction, const std::function<void(net::node_id)>& upheave);

  /// One installed observation sampler (see set_sampler).
  struct sampler_entry {
    sim::sim_time period = 0;  ///< 0 = slot empty
    sim::sim_time next = 0;
    std::function<void(sim::sim_time)> fn;
  };

  /// Earliest pending tick across slots (time_never when none).
  [[nodiscard]] sim::sim_time next_sample_time() const noexcept;
  /// Fires every sampler whose tick is due at `t` (slot order).
  void fire_samplers(sim::sim_time t);
  /// run_until without sampler interleaving — the original engine
  /// dispatch, shared by the plain and sampled paths.
  void run_until_plain(sim::sim_time deadline);

  experiment_config cfg_;
  sim::scheduler sched_;  ///< the universe (serial) / control (sharded)
  util::rng rng_;         ///< shared stream (serial) / control stream
  std::unique_ptr<sim::shard_engine> shards_;  ///< null in serial mode
  /// Per-peer rng streams (shard mode; deque for reference stability).
  std::deque<util::rng> peer_rngs_;
  std::unique_ptr<net::transport> transport_;
  /// Real-socket carrier; null unless config.transport == udp.
  std::unique_ptr<net::udp_backend> udp_;
  std::vector<std::unique_ptr<gossip::peer>> peers_;
  std::array<sampler_entry, sampler_slots> samplers_;
};

}  // namespace nylon::runtime
