// A fully wired simulation: scheduler + rng + transport + peers, built
// from an experiment_config, with churn injection and metric access.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "gossip/peer.h"
#include "metrics/reachability.h"
#include "net/transport.h"
#include "runtime/experiment_config.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace nylon::runtime {

class scenario {
 public:
  /// Builds the whole system: assigns NAT types, creates peers, seeds
  /// views with random public peers (§5 bootstrap) and schedules every
  /// peer's shuffle timer with a random phase within the first period.
  explicit scenario(const experiment_config& cfg);

  /// Advances the simulation by `periods` shuffle periods.
  void run_periods(std::int64_t periods);

  /// Advances to an absolute simulated time.
  void run_until(sim::sim_time deadline);

  // --- churn -----------------------------------------------------------------

  /// Fail-stop removal of `fraction` of the alive peers, public and
  /// natted peers removed proportionally to their share (Fig. 10).
  /// Returns the number of peers removed.
  std::size_t remove_fraction(double fraction);

  /// Removes one specific peer (fail-stop).
  void remove_peer(net::node_id id);

  /// A new peer joins mid-run: it is created with the scenario's protocol
  /// and NAT type drawn from the configured distribution (or forced via
  /// `type`), bootstrapped with alive public peers, and starts gossiping
  /// within one period. Returns its id. (Arrival-side churn — the paper's
  /// motivation mentions arrivals, its evaluation only departures.)
  net::node_id add_peer(std::optional<nat::nat_type> type = std::nullopt);

  /// Number of peers still alive.
  [[nodiscard]] std::size_t alive_count() const;

  /// All alive node ids, in id order.
  [[nodiscard]] std::vector<net::node_id> alive_ids() const;

  // --- dynamics beyond plain churn (driven by workload::engine) --------------

  /// Changes the NAT distribution that future `add_peer` draws use —
  /// models a population whose newcomers differ from the incumbents
  /// (e.g. an ISP rolling out CGNAT). Does not touch existing peers.
  void set_nat_distribution(double natted_fraction, const nat::nat_mix& mix);

  /// Splits the network: round(fraction * alive) random peers land on
  /// side 1, everyone else stays on side 0, and cross-side packets drop.
  /// Returns the side-1 population. Replaces any existing partition.
  std::size_t partition_fraction(double fraction);

  /// Heals any installed partition.
  void heal_partition();

  /// Re-binds the NAT of round(fraction * alive natted peers) random
  /// natted peers (lease expiry: new public IP, all state lost) and
  /// refreshes their self-descriptors. Returns how many were re-bound.
  std::size_t rebind_fraction(double fraction);

  // --- access ----------------------------------------------------------------

  [[nodiscard]] net::transport& transport() noexcept { return *transport_; }
  [[nodiscard]] const net::transport& transport() const noexcept {
    return *transport_;
  }
  [[nodiscard]] std::span<const std::unique_ptr<gossip::peer>> peers()
      const noexcept {
    return peers_;
  }
  [[nodiscard]] gossip::peer& peer_at(net::node_id id);
  [[nodiscard]] sim::scheduler& scheduler() noexcept { return sched_; }
  [[nodiscard]] util::rng& rng() noexcept { return rng_; }
  [[nodiscard]] const experiment_config& config() const noexcept {
    return cfg_;
  }

  /// Builds a fresh staleness/connectivity oracle over the current state.
  [[nodiscard]] metrics::reachability_oracle oracle() const;

 private:
  experiment_config cfg_;
  sim::scheduler sched_;
  util::rng rng_;
  std::unique_ptr<net::transport> transport_;
  std::vector<std::unique_ptr<gossip::peer>> peers_;
};

}  // namespace nylon::runtime
