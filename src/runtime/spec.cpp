#include "runtime/spec.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <map>
#include <optional>
#include <ostream>
#include <span>
#include <stdexcept>

#include "core/peer_factory.h"
#include "gossip/policies.h"
#include "metrics/probe.h"
#include "obs/counters.h"
#include "obs/msglog.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "runtime/experiment_config.h"
#include "runtime/runner.h"
#include "runtime/scenario.h"
#include "runtime/table_printer.h"
#include "util/contracts.h"
#include "workload/engine.h"
#include "workload/program.h"
#include "workload/report.h"

namespace nylon::runtime {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw contract_error("experiment spec: " + what);
}

/// Rejects unknown keys so a typo runs nothing instead of the wrong study.
void ensure_keys(const util::json& j,
                 std::initializer_list<std::string_view> allowed,
                 const char* what) {
  util::require_known_keys(j, allowed, what, "experiment spec: ");
}

/// The raw token of a JSON scalar, preserving the literal's spelling
/// ("40" stays "40", 0.25 stays "0.25") so it doubles as the row label.
std::string token_of(const util::json& v) {
  if (v.is_string()) return v.as_string();
  if (v.is_int()) return std::to_string(v.as_int());
  if (v.is_double()) {
    char buf[32];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v.as_double());
    NYLON_ENSURES(ec == std::errc{});
    return std::string(buf, end);
  }
  bad("axis / setting values must be numbers or strings");
}

/// Resolves a value token to a number. "$view_a"/"$view_b" refer to the
/// driver options (the legacy --view-a/--view-b flags).
double numeric_token(const std::string& key, const std::string& token,
                     const spec_options& opt) {
  if (token == "$view_a") return static_cast<double>(opt.view_a);
  if (token == "$view_b") return static_cast<double>(opt.view_b);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (token.empty() || end != token.c_str() + token.size() ||
      errno == ERANGE) {
    bad("\"" + key + "\" value \"" + token + "\" is not a number");
  }
  return v;
}

std::size_t count_token(const std::string& key, const std::string& token,
                        const spec_options& opt) {
  const double v = numeric_token(key, token, opt);
  if (v < 0 || v != std::floor(v)) {
    bad("\"" + key + "\" value \"" + token +
        "\" must be a non-negative integer");
  }
  return static_cast<std::size_t>(v);
}

/// Applies one key=value override to a config and returns the table
/// label of the value ("nylon", "40", "pushpull,rand,healer", ...).
std::string apply_setting(experiment_config& cfg, const std::string& key,
                          const std::string& token, const spec_options& opt) {
  const bool symbolic = token == "$view_a" || token == "$view_b";
  if (key == "peers") {
    cfg.peer_count = count_token(key, token, opt);
    return token;
  }
  if (key == "natted_pct") {
    const double v = numeric_token(key, token, opt);
    if (v < 0 || v > 100) bad("\"natted_pct\" must be within [0, 100]");
    cfg.natted_fraction = v / 100.0;
    return token;
  }
  if (key == "natted_fraction") {
    const double v = numeric_token(key, token, opt);
    if (v < 0 || v > 1) bad("\"natted_fraction\" must be within [0, 1]");
    cfg.natted_fraction = v;
    return token;
  }
  if (key == "view_size") {
    const std::size_t v = count_token(key, token, opt);
    if (v == 0) bad("\"view_size\" must be positive");
    cfg.gossip.view_size = v;
    return symbolic ? std::to_string(v) : token;
  }
  if (key == "baseline_config") {
    const std::size_t i = count_token(key, token, opt);
    if (i >= gossip::baseline_config_count()) {
      bad("\"baseline_config\" index out of range");
    }
    cfg.gossip = gossip::baseline_config(static_cast<std::uint8_t>(i),
                                         cfg.gossip.view_size);
    return gossip::config_label(cfg.gossip);
  }
  if (key == "protocol") {
    if (token == "reference") {
      cfg.protocol = core::protocol_kind::reference;
    } else if (token == "nylon") {
      cfg.protocol = core::protocol_kind::nylon;
    } else if (token == "arrg") {
      cfg.protocol = core::protocol_kind::arrg;
    } else {
      bad("unknown protocol \"" + token + "\" (reference | nylon | arrg)");
    }
    return token;
  }
  if (key == "mix") {
    if (token == "paper") {
      cfg.mix = nat::paper_mix();
    } else if (token == "prc_only") {
      cfg.mix = nat::prc_only_mix();
    } else {
      bad("unknown mix \"" + token + "\" (paper | prc_only)");
    }
    return token;
  }
  if (key == "selection") {
    if (token == "rand") {
      cfg.gossip.selection = gossip::selection_policy::rand;
    } else if (token == "tail") {
      cfg.gossip.selection = gossip::selection_policy::tail;
    } else {
      bad("unknown selection \"" + token + "\" (rand | tail)");
    }
    return token;
  }
  if (key == "propagation") {
    if (token == "push") {
      cfg.gossip.propagation = gossip::propagation_policy::push;
    } else if (token == "pushpull") {
      cfg.gossip.propagation = gossip::propagation_policy::pushpull;
    } else {
      bad("unknown propagation \"" + token + "\" (push | pushpull)");
    }
    return token;
  }
  if (key == "merge") {
    if (token == "blind") {
      cfg.gossip.merge = gossip::merge_policy::blind;
    } else if (token == "healer") {
      cfg.gossip.merge = gossip::merge_policy::healer;
    } else if (token == "swapper") {
      cfg.gossip.merge = gossip::merge_policy::swapper;
    } else {
      bad("unknown merge \"" + token + "\" (blind | healer | swapper)");
    }
    return token;
  }
  if (key == "shuffle_period_s") {
    const double v = numeric_token(key, token, opt);
    if (v <= 0) bad("\"shuffle_period_s\" must be positive");
    cfg.gossip.shuffle_period =
        static_cast<sim::sim_time>(std::llround(v * 1000.0));
    return token;
  }
  if (key == "hole_timeout_s") {
    const double v = numeric_token(key, token, opt);
    if (v <= 0) bad("\"hole_timeout_s\" must be positive");
    cfg.hole_timeout = static_cast<sim::sim_time>(std::llround(v * 1000.0));
    return token;
  }
  if (key == "latency_model") {
    if (token == "fixed") {
      cfg.latency_model = experiment_config::latency_kind::fixed;
    } else if (token == "uniform") {
      cfg.latency_model = experiment_config::latency_kind::uniform;
    } else if (token == "lognormal") {
      cfg.latency_model = experiment_config::latency_kind::lognormal;
    } else {
      bad("unknown latency_model \"" + token +
          "\" (fixed | uniform | lognormal)");
    }
    return token;
  }
  if (key == "latency_ms") {
    cfg.latency = static_cast<sim::sim_time>(count_token(key, token, opt));
    return token;
  }
  if (key == "latency_max_ms") {
    cfg.latency_max = static_cast<sim::sim_time>(count_token(key, token, opt));
    return token;
  }
  if (key == "latency_sigma") {
    const double v = numeric_token(key, token, opt);
    if (v <= 0) bad("\"latency_sigma\" must be positive");
    cfg.latency_sigma = v;
    return token;
  }
  if (key == "loss_rate") {
    const double v = numeric_token(key, token, opt);
    if (v < 0 || v > 1) bad("\"loss_rate\" must be within [0, 1]");
    cfg.loss_rate = v;
    return token;
  }
  if (key == "shards") {
    cfg.shards = count_token(key, token, opt);
    return token;
  }
  if (key == "window_mode") {
    if (token == "static") {
      cfg.window_mode = sim::window_mode::static_window;
    } else if (token == "adaptive") {
      cfg.window_mode = sim::window_mode::adaptive;
    } else {
      bad("unknown window_mode \"" + token + "\" (static | adaptive)");
    }
    return token;
  }
  if (key == "transport") {
    if (token == "sim") {
      cfg.transport = transport_kind::sim;
    } else if (token == "sim-frames") {
      cfg.transport = transport_kind::sim_frames;
    } else if (token == "udp") {
      cfg.transport = transport_kind::udp;
    } else {
      bad("unknown transport \"" + token + "\" (sim | sim-frames | udp)");
    }
    return token;
  }
  if (key == "udp_time_scale") {
    const double v = numeric_token(key, token, opt);
    if (v <= 0) bad("\"udp_time_scale\" must be positive");
    cfg.udp_time_scale = v;
    return token;
  }
  bad("unknown config key \"" + key + "\"");
}

/// '$'-prefixed keys are workload variables, not config keys: their
/// tokens substitute into the spec's workload JSON instead of touching
/// the experiment_config.
bool is_workload_var(const std::string& key) {
  return !key.empty() && key.front() == '$';
}

/// '%'-prefixed keys are probe parameters: their tokens land in
/// probe_context::params (the §2.2 table's NAT-type axes).
bool is_param_key(const std::string& key) {
  return !key.empty() && key.front() == '%';
}

/// Leading numeric value of a variable token; tolerates a trailing
/// annotation ("50%" -> 50) so tokens double as table labels.
double var_numeric(const std::string& name, const std::string& token) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || errno == ERANGE) {
    bad("variable \"" + name + "\" value \"" + token + "\" is not numeric");
  }
  return v;
}

/// JSON number for a resolved variable (int when integral, like the
/// literals it replaces).
util::json var_value(double v) {
  const auto as_int = static_cast<std::int64_t>(std::llround(v));
  if (std::abs(v - static_cast<double>(as_int)) < 1e-9) {
    return util::json(as_int);
  }
  return util::json(v);
}

using var_map = std::map<std::string, std::string>;
using param_map = std::map<std::string, std::string>;

/// Resolves "$name" / "$name/DIVISOR" string values against `vars`,
/// recursing through objects and arrays; everything else copies through.
util::json resolve_workload_vars(const util::json& j, const var_map& vars) {
  if (j.is_string()) {
    const std::string& s = j.as_string();
    if (s.size() < 2 || s.front() != '$') return j;
    const std::size_t slash = s.find('/');
    const std::string name = s.substr(1, slash == std::string::npos
                                             ? std::string::npos
                                             : slash - 1);
    const auto it = vars.find(name);
    if (it == vars.end()) return j;  // not a variable (e.g. "$view_a")
    double v = var_numeric(name, it->second);
    if (slash != std::string::npos) {
      const double divisor = var_numeric(name, s.substr(slash + 1));
      if (divisor == 0.0) bad("variable \"" + s + "\" divides by zero");
      v /= divisor;
    }
    return var_value(v);
  }
  if (j.is_array()) {
    util::json out = util::json::array();
    for (const util::json& item : j.array_items()) {
      out.push_back(resolve_workload_vars(item, vars));
    }
    return out;
  }
  if (j.is_object()) {
    util::json out = util::json::object();
    for (const auto& [key, value] : j.object_items()) {
      out[key] = resolve_workload_vars(value, vars);
    }
    return out;
  }
  return j;
}

/// The driver-derived builtin variables every spec may reference.
var_map builtin_vars(const spec_options& opt) {
  var_map vars;
  vars["rounds"] = std::to_string(opt.rounds);
  vars["half_rounds"] = std::to_string(opt.rounds / 2);
  return vars;
}

/// Parses a "name=$var" / "name=literal" report-param entry against the
/// builtin variables; nullopt when `p` is a plain builtin param name
/// (no '='). One parser serves validate() and run_spec() so the two can
/// never drift. Throws on unknown variables or non-numeric literals.
std::optional<std::pair<std::string, util::json>> param_override(
    const std::string& p, const var_map& builtins) {
  const std::size_t eq = p.find('=');
  if (eq == std::string::npos) return std::nullopt;
  const std::string name = p.substr(0, eq);
  std::string value = p.substr(eq + 1);
  if (name.empty()) bad("report param \"" + p + "\" has no name");
  if (value.size() > 1 && value.front() == '$') {
    const auto it = builtins.find(value.substr(1));
    if (it == builtins.end()) {
      bad("report param \"" + p + "\" references unknown variable \"" +
          value + "\" ($rounds | $half_rounds | a profile var)");
    }
    value = it->second;
  }
  return std::make_pair(name, var_value(var_numeric(name, value)));
}

/// Replaces $view_a / $view_b in header text with the resolved sizes.
std::string subst_views(std::string text, const spec_options& opt) {
  for (const auto& [token, value] :
       {std::pair<std::string_view, std::size_t>{"$view_a", opt.view_a},
        std::pair<std::string_view, std::size_t>{"$view_b", opt.view_b}}) {
    for (std::size_t at = text.find(token); at != std::string::npos;
         at = text.find(token, at)) {
      text.replace(at, token.size(), std::to_string(value));
    }
  }
  return text;
}

/// Replaces the first "{}" with `label` (section / table-key patterns).
std::string subst_braces(std::string pattern, const std::string& label) {
  const std::size_t at = pattern.find("{}");
  if (at != std::string::npos) pattern.replace(at, 2, label);
  return pattern;
}

std::vector<spec_setting> settings_from_json(const util::json& j,
                                             const char* what) {
  if (!j.is_object()) bad(std::string(what) + " must be an object");
  std::vector<spec_setting> out;
  out.reserve(j.size());
  for (const auto& [key, value] : j.object_items()) {
    out.emplace_back(key, token_of(value));
  }
  return out;
}

std::vector<std::string> values_from_json(const util::json& j,
                                          const char* what) {
  std::vector<std::string> out;
  if (const util::json* values = j.find("values")) {
    if (j.find("range") != nullptr) {
      bad(std::string(what) + ": \"values\" and \"range\" are exclusive");
    }
    if (!values->is_array() || values->size() == 0) {
      bad(std::string(what) + ": \"values\" must be a non-empty array");
    }
    for (const util::json& v : values->array_items()) {
      out.push_back(token_of(v));
    }
    return out;
  }
  const util::json* range = j.find("range");
  if (range == nullptr) {
    bad(std::string(what) + ": one of \"values\" / \"range\" required");
  }
  ensure_keys(*range, {"from", "to", "step"}, "range");
  const util::json* from = range->find("from");
  const util::json* to = range->find("to");
  const util::json* step = range->find("step");
  if (from == nullptr || to == nullptr || !from->is_int() || !to->is_int()) {
    bad(std::string(what) + ": range needs integer \"from\" / \"to\"");
  }
  std::int64_t stride = 1;
  if (step != nullptr) {
    if (!step->is_int() || step->as_int() <= 0) {
      bad(std::string(what) + ": range \"step\" must be a positive integer");
    }
    stride = step->as_int();
  }
  if (to->as_int() < from->as_int()) {
    bad(std::string(what) + ": range \"to\" below \"from\"");
  }
  for (std::int64_t v = from->as_int(); v <= to->as_int(); v += stride) {
    out.push_back(std::to_string(v));
  }
  return out;
}

spec_axis axis_from_json(const util::json& j, bool needs_header,
                         const char* what) {
  ensure_keys(j, {"axis", "header", "values", "range", "cell_key"}, what);
  spec_axis out;
  const util::json* key = j.find("axis");
  if (key == nullptr || !key->is_string()) {
    bad(std::string(what) + " needs an \"axis\" key name");
  }
  out.key = key->as_string();
  if (const util::json* header = j.find("header")) {
    if (!header->is_string()) bad("axis \"header\" must be a string");
    out.header = header->as_string();
  } else if (needs_header) {
    bad(std::string(what) + " needs a \"header\"");
  }
  if (const util::json* cell_key = j.find("cell_key")) {
    if (!cell_key->is_string()) bad("axis \"cell_key\" must be a string");
    out.cell_key = cell_key->as_string();
  }
  out.values = values_from_json(j, what);
  return out;
}

int precision_from_json(const util::json& j) {
  const util::json* p = j.find("precision");
  if (p == nullptr) return 1;
  if (!p->is_int() || p->as_int() < 0 || p->as_int() > 9) {
    bad("\"precision\" must be an integer in [0, 9]");
  }
  return static_cast<int>(p->as_int());
}

std::string selector_part_from_json(const util::json& j, const char* key) {
  const util::json* v = j.find(key);
  if (v == nullptr) return {};
  if (!v->is_string()) {
    bad(std::string("\"") + key + "\" must be a string");
  }
  return v->as_string();
}

std::vector<spec_column> columns_from_json(const util::json& j) {
  if (!j.is_array() || j.size() == 0) {
    bad("\"columns\" must be a non-empty array");
  }
  std::vector<spec_column> out;
  for (const util::json& c : j.array_items()) {
    if (!c.is_object()) bad("column entries must be objects");

    if (const util::json* sweep = c.find("sweep")) {
      // Sugar: one column per swept value; "{}" in the header pattern
      // becomes the value token.
      ensure_keys(c,
                  {"sweep", "header", "probe", "class", "stat", "set",
                   "precision"},
                  "sweep column");
      const spec_axis axis = axis_from_json(*sweep, false, "column sweep");
      const util::json* header = c.find("header");
      const util::json* probe = c.find("probe");
      if (header == nullptr || !header->is_string()) {
        bad("sweep column needs a \"header\" pattern");
      }
      if (probe == nullptr || !probe->is_string()) {
        bad("sweep column needs a \"probe\"");
      }
      for (const std::string& token : axis.values) {
        spec_column col;
        col.k = spec_column::kind::probe;
        col.header = subst_braces(header->as_string(), token);
        if (const util::json* set = c.find("set")) {
          col.set = settings_from_json(*set, "column \"set\"");
        }
        col.set.emplace_back(axis.key, token);
        col.probe = probe->as_string();
        col.cls = selector_part_from_json(c, "class");
        col.stat = selector_part_from_json(c, "stat");
        col.precision = precision_from_json(c);
        col.cell_key = axis.cell_key;
        col.cell_token = token;
        out.push_back(std::move(col));
      }
      continue;
    }

    spec_column col;
    const util::json* header = c.find("header");
    if (header == nullptr || !header->is_string()) {
      bad("every column needs a \"header\"");
    }
    col.header = header->as_string();
    col.precision = precision_from_json(c);

    if (const util::json* ratio = c.find("ratio")) {
      ensure_keys(c, {"header", "ratio", "precision"}, "ratio column");
      if (!ratio->is_array() || ratio->size() != 2 ||
          !ratio->at(std::size_t{0}).is_int() ||
          !ratio->at(std::size_t{1}).is_int()) {
        bad("\"ratio\" must be [numerator_index, denominator_index]");
      }
      col.k = spec_column::kind::ratio;
      col.ratio_num = static_cast<int>(ratio->at(std::size_t{0}).as_int());
      col.ratio_den = static_cast<int>(ratio->at(std::size_t{1}).as_int());
    } else if (const util::json* rv = c.find("row_value")) {
      ensure_keys(c, {"header", "row_value", "precision"}, "row_value column");
      if (!rv->is_bool() || !rv->as_bool()) {
        bad("\"row_value\" must be true when present");
      }
      col.k = spec_column::kind::row_value;
    } else {
      ensure_keys(c,
                  {"header", "probe", "class", "stat", "set", "precision",
                   "cell_key", "cell_value"},
                  "probe column");
      const util::json* probe = c.find("probe");
      if (probe == nullptr || !probe->is_string()) {
        bad("column \"" + col.header + "\" needs a \"probe\"");
      }
      col.k = spec_column::kind::probe;
      col.probe = probe->as_string();
      col.cls = selector_part_from_json(c, "class");
      col.stat = selector_part_from_json(c, "stat");
      if (const util::json* set = c.find("set")) {
        col.set = settings_from_json(*set, "column \"set\"");
      }
      // The expanded (non-sweep) spelling of a cells-mode column.
      if (const util::json* cell_key = c.find("cell_key")) {
        if (!cell_key->is_string()) bad("\"cell_key\" must be a string");
        col.cell_key = cell_key->as_string();
        const util::json* cell_value = c.find("cell_value");
        if (cell_value == nullptr) bad("\"cell_key\" needs a \"cell_value\"");
        col.cell_token = token_of(*cell_value);
      }
    }
    out.push_back(std::move(col));
  }
  return out;
}

std::vector<spec_probe> probes_from_json(const util::json& j) {
  if (!j.is_array() || j.size() == 0) {
    bad("\"probes\" must be a non-empty array");
  }
  std::vector<spec_probe> out;
  for (const util::json& p : j.array_items()) {
    spec_probe entry;
    if (const util::json* ratio = p.find("ratio")) {
      // Computed entry: a ratio of two earlier probe entries' means.
      ensure_keys(p, {"header", "ratio", "precision"}, "ratio probe entry");
      if (!ratio->is_array() || ratio->size() != 2 ||
          !ratio->at(std::size_t{0}).is_int() ||
          !ratio->at(std::size_t{1}).is_int()) {
        bad("\"ratio\" must be [numerator_index, denominator_index]");
      }
      const util::json* header = p.find("header");
      if (header == nullptr || !header->is_string()) {
        bad("ratio probe entries need a \"header\"");
      }
      entry.header = header->as_string();
      entry.ratio_num = static_cast<int>(ratio->at(std::size_t{0}).as_int());
      entry.ratio_den = static_cast<int>(ratio->at(std::size_t{1}).as_int());
      entry.precision = precision_from_json(p);
      out.push_back(std::move(entry));
      continue;
    }
    ensure_keys(p, {"probe", "header", "class", "stat", "precision"},
                "probe entry");
    const util::json* name = p.find("probe");
    if (name == nullptr || !name->is_string()) {
      bad("probe entries need a \"probe\" name");
    }
    entry.probe = name->as_string();
    const util::json* header = p.find("header");
    entry.header = header != nullptr && header->is_string()
                       ? header->as_string()
                       : entry.probe;
    entry.cls = selector_part_from_json(p, "class");
    entry.stat = selector_part_from_json(p, "stat");
    entry.precision = precision_from_json(p);
    out.push_back(std::move(entry));
  }
  return out;
}

std::vector<spec_check> checks_from_json(const util::json& j) {
  if (!j.is_array() || j.size() == 0) {
    bad("\"checks\" must be a non-empty array");
  }
  std::vector<spec_check> out;
  for (const util::json& c : j.array_items()) {
    if (!c.is_object()) bad("check entries must be objects");
    ensure_keys(c, {"probe", "name"}, "check entry");
    spec_check entry;
    const util::json* probe = c.find("probe");
    if (probe == nullptr || !probe->is_string()) {
      bad("check entries need a \"probe\" name");
    }
    entry.probe = probe->as_string();
    if (const util::json* name = c.find("name")) {
      if (!name->is_string()) bad("check \"name\" must be a string");
      entry.name = name->as_string();
    } else {
      entry.name = entry.probe;
    }
    out.push_back(std::move(entry));
  }
  return out;
}

spec_verdict verdict_from_json(const util::json& j) {
  if (!j.is_object()) bad("\"verdict\" must be an object");
  ensure_keys(j, {"pass", "fail"}, "verdict");
  const util::json* pass = j.find("pass");
  const util::json* fail = j.find("fail");
  if (pass == nullptr || !pass->is_string() || fail == nullptr ||
      !fail->is_string()) {
    bad("\"verdict\" needs string \"pass\" and \"fail\" lines");
  }
  return spec_verdict{pass->as_string(), fail->as_string()};
}

std::optional<std::int64_t> profile_count_from_json(const util::json& j,
                                                    const char* key) {
  const util::json* v = j.find(key);
  if (v == nullptr) return std::nullopt;
  if (!v->is_int() || v->as_int() <= 0) {
    bad(std::string("profile \"") + key + "\" must be a positive integer");
  }
  return v->as_int();
}

std::vector<std::pair<std::string, spec_profile>> profiles_from_json(
    const util::json& j) {
  if (!j.is_object() || j.size() == 0) {
    bad("\"profiles\" must be a non-empty object of named profiles");
  }
  std::vector<std::pair<std::string, spec_profile>> out;
  for (const auto& [name, body] : j.object_items()) {
    if (name.empty()) bad("profile names must be non-empty");
    if (!body.is_object()) {
      bad("profile \"" + name + "\" must be an object");
    }
    ensure_keys(body, {"peers", "seeds", "rounds", "view_a", "view_b", "vars"},
                "profile");
    spec_profile prof;
    prof.peers = profile_count_from_json(body, "peers");
    prof.seeds = profile_count_from_json(body, "seeds");
    prof.rounds = profile_count_from_json(body, "rounds");
    prof.view_a = profile_count_from_json(body, "view_a");
    prof.view_b = profile_count_from_json(body, "view_b");
    if (const util::json* vars = body.find("vars")) {
      prof.vars = settings_from_json(*vars, "profile \"vars\"");
      for (const auto& [var, token] : prof.vars) {
        if (var.empty()) bad("profile variable names must be non-empty");
        (void)var_numeric(var, token);
      }
    }
    out.emplace_back(name, std::move(prof));
  }
  return out;
}

/// One resolved timeline column: a passive probe selector, or (when
/// `sel.p == nullptr`) a runtime telemetry counter ("obs.<name>").
struct timeline_column {
  metrics::probe_selector sel;
  obs::counter counter = obs::counter::count_;
};

/// Resolves a timeline column token — "name", "name.<class>",
/// "name.<stat>" or "obs.<counter>" — rejecting unknown names and
/// non-passive probes (shared by validate() and run_spec so the two
/// can never drift).
timeline_column resolve_timeline_column(const std::string& token) {
  timeline_column col;
  const std::size_t dot = token.find('.');
  const std::string head =
      token.substr(0, dot == std::string::npos ? token.size() : dot);
  const std::string part =
      dot == std::string::npos ? std::string() : token.substr(dot + 1);
  if (head == "obs") {
    for (std::size_t i = 0; i < obs::counter_count; ++i) {
      const auto c = static_cast<obs::counter>(i);
      if (obs::to_string(c) == part) {
        col.counter = c;
        return col;
      }
    }
    bad("timeline column \"" + token + "\": unknown obs counter \"" + part +
        "\"");
  }
  const metrics::probe* p = metrics::find_probe(head);
  if (p == nullptr) {
    bad("timeline column \"" + token + "\": unknown probe \"" + head + "\"");
  }
  if (!p->passive) {
    bad("timeline column \"" + token + "\": probe \"" + head +
        "\" is not passive (it consumes peer rngs), so a mid-run "
        "evaluation would perturb the simulation");
  }
  if (p->kind == metrics::probe_kind::check) {
    bad("timeline column \"" + token +
        "\": check probes render verdicts, not scalar series");
  }
  const bool wants_stat = p->kind == metrics::probe_kind::distribution;
  col.sel = metrics::resolve_selector(head, wants_stat ? std::string() : part,
                                      wants_stat ? part : std::string());
  return col;
}

/// The column set a bare `--timeline` uses when the spec declares none.
std::vector<std::string> default_timeline_columns() {
  return {"alive_count", "biggest_cluster_pct", "cluster_count",
          "isolated_count", "drop_count.total"};
}

}  // namespace

void experiment_spec::validate() const {
  if (name.empty()) bad("\"name\" is required");
  if (!preamble.empty() && !title.empty()) {
    bad("\"preamble\" replaces the standard preamble; drop \"title\"");
  }
  if (rows.empty()) bad("at least one row axis is required");
  const bool has_columns = !columns.empty();
  const bool has_probes = !probes.empty();
  if (has_columns == has_probes) {
    bad("exactly one of \"columns\" / \"probes\" is required");
  }

  // Dry-run every override against a scratch config with default driver
  // options: catches unknown keys and malformed tokens up front.
  // '$'-keys are workload variables — they bypass the config but their
  // tokens must carry a numeric value, and they need a workload to
  // substitute into. '%'-keys are probe parameters: any non-empty token.
  const spec_options defaults;
  experiment_config scratch;
  const auto check_setting = [&](experiment_config& cfg,
                                 const std::string& key,
                                 const std::string& token) {
    if (is_workload_var(key)) {
      if (!workload.has_value()) {
        bad("variable axis \"" + key + "\" requires a \"workload\"");
      }
      (void)var_numeric(key, token);
      return;
    }
    if (is_param_key(key)) {
      if (key.size() < 2) bad("probe parameter keys need a name after '%'");
      if (token.empty()) {
        bad("probe parameter \"" + key + "\" has an empty value");
      }
      return;
    }
    apply_setting(cfg, key, token, defaults);
  };
  for (const auto& [key, token] : base) {
    check_setting(scratch, key, token);
  }
  if (split.has_value()) {
    if (static_eval) bad("\"split\" is not supported in a static spec");
    if (split->axis.values.empty()) bad("split axis needs values");
    if (split->table_key.empty()) bad("split needs a \"table_key\"");
    for (const std::string& token : split->axis.values) {
      check_setting(scratch, split->axis.key, token);
    }
  }
  for (const spec_axis& axis : rows) {
    if (axis.values.empty()) bad("row axis \"" + axis.key + "\" needs values");
    for (const std::string& token : axis.values) {
      check_setting(scratch, axis.key, token);
    }
  }

  // A probe reference is either a plain scalar-view selector (validated
  // by metrics::resolve_selector, which owns the misuse messages) or a
  // check probe, which renders verdict cells and is only legal in a
  // static spec's columns/probes or the "checks" list.
  const auto check_probe_ref = [&](const std::string& probe_name,
                                   const std::string& cls,
                                   const std::string& stat,
                                   const char* where) {
    const metrics::probe* p = metrics::find_probe(probe_name);
    if (p == nullptr) bad("unknown probe \"" + probe_name + "\"");
    if (static_eval && p->needs_world) {
      bad("probe \"" + probe_name +
          "\" needs a simulated world; it cannot run in a \"static\" spec");
    }
    if (p->kind == metrics::probe_kind::check) {
      if (!static_eval) {
        bad("check probe \"" + probe_name + "\" in " + where +
            " needs a \"static\" spec or the \"checks\" list");
      }
      if (!cls.empty() || !stat.empty()) {
        bad("check probe \"" + probe_name +
            "\" takes neither \"class\" nor \"stat\"");
      }
      return;
    }
    (void)metrics::resolve_selector(probe_name, cls, stat);
  };

  for (std::size_t j = 0; j < columns.size(); ++j) {
    const spec_column& col = columns[j];
    switch (col.k) {
      case spec_column::kind::probe: {
        check_probe_ref(col.probe, col.cls, col.stat, "\"columns\"");
        experiment_config cfg = scratch;
        for (const auto& [key, token] : col.set) {
          check_setting(cfg, key, token);
        }
        break;
      }
      case spec_column::kind::ratio: {
        if (static_eval) {
          bad("ratio columns need seed aggregates; they cannot run in a "
              "\"static\" spec");
        }
        const auto in_range = [&](int i) {
          return i >= 0 && static_cast<std::size_t>(i) < j &&
                 columns[static_cast<std::size_t>(i)].k ==
                     spec_column::kind::probe;
        };
        if (!in_range(col.ratio_num) || !in_range(col.ratio_den)) {
          bad("ratio column \"" + col.header +
              "\" must reference earlier probe columns");
        }
        break;
      }
      case spec_column::kind::row_value:
        break;
    }
  }
  for (std::size_t j = 0; j < probes.size(); ++j) {
    const spec_probe& p = probes[j];
    if (p.ratio_num >= 0 || p.ratio_den >= 0) {
      if (static_eval) {
        bad("ratio probe entries need seed aggregates; they cannot run in "
            "a \"static\" spec");
      }
      const auto in_range = [&](int i) {
        return i >= 0 && static_cast<std::size_t>(i) < j &&
               probes[static_cast<std::size_t>(i)].ratio_num < 0;
      };
      if (!in_range(p.ratio_num) || !in_range(p.ratio_den)) {
        bad("ratio probe entry \"" + p.header +
            "\" must reference earlier probe entries");
      }
      continue;
    }
    check_probe_ref(p.probe, p.cls, p.stat, "\"probes\"");
  }

  for (const spec_check& c : checks) {
    const metrics::probe* p = metrics::find_probe(c.probe);
    if (p == nullptr) bad("unknown check probe \"" + c.probe + "\"");
    if (p->kind != metrics::probe_kind::check) {
      bad("\"checks\" entry \"" + c.probe + "\" is a " +
          std::string(metrics::to_string(p->kind)) +
          " probe, not a check probe");
    }
  }
  if (!checks.empty()) {
    if (static_eval) {
      bad("a static spec carries its checks as columns/probes; drop the "
          "\"checks\" list");
    }
    if (probes.empty()) {
      bad("\"checks\" ride the shared run of \"probes\" mode");
    }
  }
  if (verdict.has_value()) {
    bool has_check_cells = !checks.empty();
    if (static_eval) {
      for (const spec_column& col : columns) {
        if (col.k != spec_column::kind::probe) continue;
        const metrics::probe* p = metrics::find_probe(col.probe);
        has_check_cells = has_check_cells ||
                          (p != nullptr &&
                           p->kind == metrics::probe_kind::check);
      }
      for (const spec_probe& p : probes) {
        const metrics::probe* probe = metrics::find_probe(p.probe);
        has_check_cells = has_check_cells ||
                          (probe != nullptr &&
                           probe->kind == metrics::probe_kind::check);
      }
    }
    if (!has_check_cells) {
      bad("\"verdict\" needs check probes (a \"checks\" list or check "
          "columns in a static spec)");
    }
  }

  if (static_eval) {
    if (workload.has_value()) bad("a \"static\" spec cannot have a workload");
    if (!warmup.empty()) bad("a \"static\" spec cannot have a warmup");
    if (cells) bad("\"cells\" needs seed aggregates (non-static specs)");
    if (trajectories) bad("\"trajectories\" requires a \"workload\"");
    if (single_seed) {
      bad("\"single_seed\" is meaningless in a \"static\" spec");
    }
    if (distributions) {
      bad("\"distributions\" needs seed aggregates (non-static specs)");
    }
  }
  if (distributions && probes.empty()) {
    bad("\"distributions\" rides the shared run of \"probes\" mode");
  }

  if (!warmup.empty() && warmup != "half") {
    const std::size_t v = count_token("warmup", warmup, defaults);
    (void)v;
  }
  // Report params must resolve WITHOUT a profile (profiles only override
  // the *values* of builtin variables, never introduce report-param
  // names): a spec that validates must also run profile-less.
  const var_map default_builtins = builtin_vars(defaults);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    for (std::size_t j = i + 1; j < profiles.size(); ++j) {
      if (profiles[i].first == profiles[j].first) {
        bad("duplicate profile \"" + profiles[i].first + "\"");
      }
    }
  }
  for (const std::string& p : report_params) {
    if (param_override(p, default_builtins).has_value()) continue;
    if (p != "peers" && p != "seeds" && p != "rounds" && p != "seed" &&
        p != "workload") {
      bad("unknown report param \"" + p + "\"");
    }
  }
  if (cells && columns.empty()) {
    bad("\"cells\" requires \"columns\" mode");
  }
  if (cells) {
    // Cell entries serialize cell_key'd axis values as numbers; reject
    // non-numeric tokens here instead of after the first cell's full
    // multi-seed simulation.
    for (const spec_axis& axis : rows) {
      if (axis.cell_key.empty()) continue;
      for (const std::string& token : axis.values) {
        (void)var_numeric(axis.key, token);
      }
    }
    for (const spec_column& col : columns) {
      if (!col.cell_key.empty()) {
        (void)var_numeric(col.cell_key, col.cell_token);
      }
    }
  }
  if (workload.has_value()) {
    // Validates phases / sessions; the period only scales durations.
    // Variables resolve against builtins plus each '$' axis's first
    // value, so a parameterized program is structurally checked too.
    var_map vars = builtin_vars(defaults);
    const auto add_first_value = [&vars](const spec_axis& axis) {
      if (is_workload_var(axis.key) && !axis.values.empty()) {
        vars[axis.key.substr(1)] = axis.values.front();
      }
    };
    if (split.has_value()) add_first_value(split->axis);
    for (const spec_axis& axis : rows) add_first_value(axis);
    // Column `set` entries can carry '$' variables too (a column sweep
    // over a workload parameter); seed each one's first value so such
    // specs validate.
    for (const spec_column& col : columns) {
      for (const auto& [key, token] : col.set) {
        if (is_workload_var(key)) vars.emplace(key.substr(1), token);
      }
    }
    (void)workload::program_from_json(resolve_workload_vars(*workload, vars),
                                      sim::seconds(5));
    if (!warmup.empty()) {
      bad("\"warmup\" has no effect with a \"workload\" (the program "
          "defines the timeline; add a steady phase instead)");
    }
  } else if (trajectories) {
    bad("\"trajectories\" requires a \"workload\"");
  }
  if (trajectory_sample_periods < 0) {
    bad("\"trajectory_sample_periods\" must be >= 0");
  }
  if (timeline.enabled) {
    if (static_eval) {
      bad("a \"static\" spec has no sim time; drop \"timeline\"");
    }
    if (timeline.period_s <= 0) {
      bad("\"timeline\" needs a positive \"period_s\"");
    }
    if (timeline.probes.empty()) {
      bad("\"timeline\" needs a non-empty \"probes\" array");
    }
    for (const std::string& token : timeline.probes) {
      (void)resolve_timeline_column(token);
    }
  }
}

experiment_spec spec_from_json(const util::json& doc) {
  ensure_keys(doc,
              {"name", "title", "preamble", "footer", "base", "split", "rows",
               "columns", "probes", "checks", "verdict", "profiles",
               "report_params", "warmup", "workload", "trajectories",
               "trajectory_sample_periods", "timeline", "cells",
               "distributions", "static", "single_seed"},
              "spec");
  experiment_spec spec;
  const util::json* name = doc.find("name");
  if (name == nullptr || !name->is_string()) {
    bad("spec needs a string \"name\"");
  }
  spec.name = name->as_string();
  if (const util::json* title = doc.find("title")) {
    if (!title->is_string()) bad("\"title\" must be a string");
    spec.title = title->as_string();
  }
  if (const util::json* preamble = doc.find("preamble")) {
    if (!preamble->is_array()) {
      bad("\"preamble\" must be an array of strings");
    }
    for (const util::json& line : preamble->array_items()) {
      if (!line.is_string()) bad("\"preamble\" must be an array of strings");
      spec.preamble.push_back(line.as_string());
    }
  }
  if (const util::json* footer = doc.find("footer")) {
    if (!footer->is_array()) bad("\"footer\" must be an array of strings");
    for (const util::json& line : footer->array_items()) {
      if (!line.is_string()) bad("\"footer\" must be an array of strings");
      spec.footer.push_back(line.as_string());
    }
  }
  if (const util::json* base = doc.find("base")) {
    spec.base = settings_from_json(*base, "\"base\"");
  }
  if (const util::json* split = doc.find("split")) {
    ensure_keys(*split,
                {"axis", "values", "range", "section", "table_key"},
                "split");
    spec_split s;
    util::json axis_part = util::json::object();
    for (const auto& [key, value] : split->object_items()) {
      if (key == "axis" || key == "values" || key == "range") {
        axis_part[key] = value;
      }
    }
    s.axis = axis_from_json(axis_part, false, "split");
    if (const util::json* section = split->find("section")) {
      if (!section->is_string()) bad("split \"section\" must be a string");
      s.section = section->as_string();
    }
    const util::json* table_key = split->find("table_key");
    if (table_key == nullptr || !table_key->is_string()) {
      bad("split needs a string \"table_key\"");
    }
    s.table_key = table_key->as_string();
    spec.split = std::move(s);
  }
  const util::json* rows = doc.find("rows");
  if (rows == nullptr || !rows->is_array() || rows->size() == 0) {
    bad("spec needs a non-empty \"rows\" array");
  }
  for (const util::json& axis : rows->array_items()) {
    spec.rows.push_back(axis_from_json(axis, true, "row axis"));
  }
  if (const util::json* columns = doc.find("columns")) {
    spec.columns = columns_from_json(*columns);
  }
  if (const util::json* probes = doc.find("probes")) {
    spec.probes = probes_from_json(*probes);
  }
  if (const util::json* checks = doc.find("checks")) {
    spec.checks = checks_from_json(*checks);
  }
  if (const util::json* verdict = doc.find("verdict")) {
    spec.verdict = verdict_from_json(*verdict);
  }
  if (const util::json* profiles = doc.find("profiles")) {
    spec.profiles = profiles_from_json(*profiles);
  }
  if (const util::json* params = doc.find("report_params")) {
    if (!params->is_array()) bad("\"report_params\" must be an array");
    for (const util::json& p : params->array_items()) {
      if (!p.is_string()) bad("\"report_params\" entries must be strings");
      spec.report_params.push_back(p.as_string());
    }
  }
  if (const util::json* warmup = doc.find("warmup")) {
    spec.warmup = warmup->is_string() ? warmup->as_string() : token_of(*warmup);
  }
  if (const util::json* workload = doc.find("workload")) {
    spec.workload = *workload;
  }
  if (const util::json* t = doc.find("trajectories")) {
    if (!t->is_bool()) bad("\"trajectories\" must be a bool");
    spec.trajectories = t->as_bool();
  }
  if (const util::json* c = doc.find("cells")) {
    if (!c->is_bool()) bad("\"cells\" must be a bool");
    spec.cells = c->as_bool();
  }
  if (const util::json* d = doc.find("distributions")) {
    if (!d->is_bool()) bad("\"distributions\" must be a bool");
    spec.distributions = d->as_bool();
  }
  if (const util::json* s = doc.find("static")) {
    if (!s->is_bool()) bad("\"static\" must be a bool");
    spec.static_eval = s->as_bool();
  }
  if (const util::json* s = doc.find("single_seed")) {
    if (!s->is_bool()) bad("\"single_seed\" must be a bool");
    spec.single_seed = s->as_bool();
  }
  if (const util::json* n = doc.find("trajectory_sample_periods")) {
    if (!n->is_int()) bad("\"trajectory_sample_periods\" must be an integer");
    spec.trajectory_sample_periods = static_cast<int>(n->as_int());
  }
  if (const util::json* t = doc.find("timeline")) {
    ensure_keys(*t, {"period_s", "probes"}, "timeline");
    spec.timeline.enabled = true;
    const util::json* period = t->find("period_s");
    if (period == nullptr || (!period->is_int() && !period->is_double())) {
      bad("\"timeline\" needs a numeric \"period_s\"");
    }
    spec.timeline.period_s = period->is_int()
                                 ? static_cast<double>(period->as_int())
                                 : period->as_double();
    const util::json* probes = t->find("probes");
    if (probes == nullptr || !probes->is_array() || probes->size() == 0) {
      bad("\"timeline\" needs a non-empty \"probes\" array");
    }
    for (const util::json& p : probes->array_items()) {
      if (!p.is_string()) bad("\"timeline\" probes must be strings");
      spec.timeline.probes.push_back(p.as_string());
    }
  }
  spec.validate();
  return spec;
}

namespace {

util::json axis_to_json(const spec_axis& axis) {
  util::json j = util::json::object();
  j["axis"] = axis.key;
  if (!axis.header.empty()) j["header"] = axis.header;
  if (!axis.cell_key.empty()) j["cell_key"] = axis.cell_key;
  util::json values = util::json::array();
  for (const std::string& v : axis.values) values.push_back(v);
  j["values"] = std::move(values);
  return j;
}

util::json settings_to_json(const std::vector<spec_setting>& settings) {
  util::json j = util::json::object();
  for (const auto& [key, token] : settings) j[key] = token;
  return j;
}

util::json lines_to_json(const std::vector<std::string>& lines) {
  util::json j = util::json::array();
  for (const std::string& line : lines) j.push_back(line);
  return j;
}

}  // namespace

util::json spec_to_json(const experiment_spec& spec) {
  util::json doc = util::json::object();
  doc["name"] = spec.name;
  if (!spec.title.empty()) doc["title"] = spec.title;
  if (!spec.preamble.empty()) doc["preamble"] = lines_to_json(spec.preamble);
  if (!spec.footer.empty()) doc["footer"] = lines_to_json(spec.footer);
  if (!spec.base.empty()) doc["base"] = settings_to_json(spec.base);
  if (!spec.warmup.empty()) doc["warmup"] = spec.warmup;
  if (spec.static_eval) doc["static"] = true;
  if (spec.single_seed) doc["single_seed"] = true;
  if (spec.split.has_value()) {
    util::json split = axis_to_json(spec.split->axis);
    if (!spec.split->section.empty()) split["section"] = spec.split->section;
    split["table_key"] = spec.split->table_key;
    doc["split"] = std::move(split);
  }
  util::json rows = util::json::array();
  for (const spec_axis& axis : spec.rows) rows.push_back(axis_to_json(axis));
  doc["rows"] = std::move(rows);
  if (!spec.columns.empty()) {
    util::json columns = util::json::array();
    for (const spec_column& col : spec.columns) {
      util::json c = util::json::object();
      c["header"] = col.header;
      switch (col.k) {
        case spec_column::kind::probe:
          c["probe"] = col.probe;
          if (!col.cls.empty()) c["class"] = col.cls;
          if (!col.stat.empty()) c["stat"] = col.stat;
          if (!col.set.empty()) c["set"] = settings_to_json(col.set);
          if (!col.cell_key.empty()) {
            c["cell_key"] = col.cell_key;
            c["cell_value"] = col.cell_token;
          }
          break;
        case spec_column::kind::ratio: {
          util::json ratio = util::json::array();
          ratio.push_back(col.ratio_num);
          ratio.push_back(col.ratio_den);
          c["ratio"] = std::move(ratio);
          break;
        }
        case spec_column::kind::row_value:
          c["row_value"] = true;
          break;
      }
      if (col.precision != 1) c["precision"] = col.precision;
      columns.push_back(std::move(c));
    }
    doc["columns"] = std::move(columns);
  }
  if (!spec.probes.empty()) {
    util::json probes = util::json::array();
    for (const spec_probe& p : spec.probes) {
      util::json entry = util::json::object();
      if (p.ratio_num >= 0) {
        entry["header"] = p.header;
        util::json ratio = util::json::array();
        ratio.push_back(p.ratio_num);
        ratio.push_back(p.ratio_den);
        entry["ratio"] = std::move(ratio);
      } else {
        entry["probe"] = p.probe;
        entry["header"] = p.header;
        if (!p.cls.empty()) entry["class"] = p.cls;
        if (!p.stat.empty()) entry["stat"] = p.stat;
      }
      if (p.precision != 1) entry["precision"] = p.precision;
      probes.push_back(std::move(entry));
    }
    doc["probes"] = std::move(probes);
  }
  if (!spec.checks.empty()) {
    util::json checks = util::json::array();
    for (const spec_check& c : spec.checks) {
      util::json entry = util::json::object();
      entry["probe"] = c.probe;
      if (c.name != c.probe) entry["name"] = c.name;
      checks.push_back(std::move(entry));
    }
    doc["checks"] = std::move(checks);
  }
  if (spec.verdict.has_value()) {
    util::json verdict = util::json::object();
    verdict["pass"] = spec.verdict->pass;
    verdict["fail"] = spec.verdict->fail;
    doc["verdict"] = std::move(verdict);
  }
  if (!spec.profiles.empty()) {
    util::json profiles = util::json::object();
    for (const auto& [name, prof] : spec.profiles) {
      util::json body = util::json::object();
      if (prof.peers) body["peers"] = *prof.peers;
      if (prof.seeds) body["seeds"] = *prof.seeds;
      if (prof.rounds) body["rounds"] = *prof.rounds;
      if (prof.view_a) body["view_a"] = *prof.view_a;
      if (prof.view_b) body["view_b"] = *prof.view_b;
      if (!prof.vars.empty()) body["vars"] = settings_to_json(prof.vars);
      profiles[name] = std::move(body);
    }
    doc["profiles"] = std::move(profiles);
  }
  if (!spec.report_params.empty()) {
    util::json params = util::json::array();
    for (const std::string& p : spec.report_params) params.push_back(p);
    doc["report_params"] = std::move(params);
  }
  if (spec.workload.has_value()) doc["workload"] = *spec.workload;
  if (spec.trajectories) doc["trajectories"] = true;
  if (spec.cells) doc["cells"] = true;
  if (spec.distributions) doc["distributions"] = true;
  if (spec.trajectory_sample_periods != 0) {
    doc["trajectory_sample_periods"] = spec.trajectory_sample_periods;
  }
  if (spec.timeline.enabled) {
    util::json t = util::json::object();
    t["period_s"] = spec.timeline.period_s;
    util::json probes = util::json::array();
    for (const std::string& p : spec.timeline.probes) probes.push_back(p);
    t["probes"] = std::move(probes);
    doc["timeline"] = std::move(t);
  }
  return doc;
}

experiment_spec load_spec_file(const std::string& path) {
  return spec_from_json(util::load_json_file(path));
}

bool all_checks_passed(const util::json& report) {
  const util::json* checks = report.find("checks");
  if (checks == nullptr || !checks->is_array()) return true;
  for (const util::json& entry : checks->array_items()) {
    const util::json* passed = entry.find("passed");
    if (passed != nullptr && passed->is_bool() && !passed->as_bool()) {
      return false;
    }
  }
  return true;
}

// --- execution ---------------------------------------------------------------

namespace {

/// Per-run context shared by every cell of the study.
struct spec_execution {
  const experiment_spec& spec;
  const spec_options& opt;  ///< profile-effective options
  int warmup = 0;   ///< warm-up rounds before the traffic reset
  int measure = 0;  ///< measured rounds (rounds - warmup)
  bool capture_traj = false;    ///< per-seed trajectory capture
  bool capture_checks = false;  ///< per-seed check evaluation
  /// Resolved "checks"-list probes, in list order.
  std::vector<const metrics::probe*> check_probes = {};
  /// The cell's workload document with variables resolved (null when the
  /// spec has none); updated by the row loop before each sweep.
  const util::json* workload_doc = nullptr;
  /// Sim-time health timeline (the spec's block, possibly force-enabled
  /// or re-period'd by the driver flags).
  bool capture_timeline = false;
  double timeline_period_s = 0.0;
  /// Column tokens, report order.
  std::vector<std::string> timeline_names = {};
  std::vector<timeline_column> timeline_cols = {};

  [[nodiscard]] bool capturing() const noexcept {
    return capture_traj || capture_checks || capture_timeline;
  }

  /// Simulates one cell at one seed and evaluates `sels` on the final
  /// state. The probe-visible window is the measured span. When
  /// capturing, `capture` receives the per-seed trajectory and/or check
  /// outcomes (trajectory-only capture keeps the bare-array form older
  /// reports used).
  std::vector<double> run_once(experiment_config cfg, std::uint64_t seed,
                               std::span<const metrics::probe_selector> sels,
                               const param_map& params,
                               util::json* capture) const {
    cfg.seed = seed;
    const obs::trace_span cell_span("cell");
    scenario world(cfg);
    sim::sim_time window = 0;
    util::json trajectory;

    // The timeline sampler: ticks interleave into run_until without
    // creating scheduler events (digest-neutral; scenario.h), evaluate
    // the passive columns against the live world and mirror them as
    // Perfetto counter tracks when a trace is recording. `reset_at`
    // keeps rate probes (bytes/s) honest across the warmup traffic
    // reset.
    std::optional<obs::timeline_recorder> recorder;
    std::vector<const char*> tracks;
    sim::sim_time reset_at = 0;
    if (capture_timeline) {
      recorder.emplace(timeline_period_s, timeline_names);
      tracks = obs::counter_track_names(timeline_names);
      const auto period_ms =
          static_cast<sim::sim_time>(std::llround(timeline_period_s * 1000.0));
      world.set_sampler(
          scenario::sampler_timeline, period_ms, [&](sim::sim_time t) {
            std::vector<double> values;
            values.reserve(timeline_cols.size());
            std::optional<metrics::reachability_oracle> oracle;
            std::optional<metrics::probe_context> tick_ctx;
            std::optional<obs::counter_snapshot> snap;
            for (const timeline_column& col : timeline_cols) {
              if (col.sel.p == nullptr) {
                if (!snap.has_value()) snap = obs::read_counters();
                values.push_back(static_cast<double>((*snap)[col.counter]));
                continue;
              }
              if (!tick_ctx.has_value()) {
                oracle.emplace(world.oracle());
                tick_ctx.emplace(world, *oracle, t - reset_at);
                tick_ctx->params = params;
              }
              values.push_back(metrics::eval_scalar(col.sel, *tick_ctx));
            }
            obs::record_counter_samples(tracks, values);
            recorder->append(sim::to_seconds(t), std::move(values));
          });
    }

    if (workload_doc != nullptr) {
      const sim::sim_time period = cfg.gossip.shuffle_period;
      workload::program prog =
          workload::program_from_json(*workload_doc, period);
      window = prog.total_duration();
      workload::engine_options eopt;
      if (spec.trajectory_sample_periods > 0) {
        eopt.sample_interval = spec.trajectory_sample_periods * period;
      }
      workload::engine eng(world, std::move(prog), eopt);
      eng.run();
      if (capture != nullptr && capture_traj) {
        trajectory = workload::to_json(eng.trajectory());
      }
    } else {
      // Matches the hand-rolled benches exactly: a plain
      // run_periods(rounds) without warm-up, or Fig. 7's warm-up +
      // traffic reset + steady-state window.
      if (warmup > 0) {
        world.run_periods(warmup);
        world.transport().reset_traffic();
        reset_at = world.scheduler().now();
      }
      world.run_periods(measure);
      window = measure * cfg.gossip.shuffle_period;
    }
    if (recorder.has_value()) {
      world.clear_sampler(scenario::sampler_timeline);
    }
    const metrics::reachability_oracle oracle = world.oracle();
    metrics::probe_context ctx{world, oracle, window};
    ctx.params = params;
    std::vector<double> out;
    out.reserve(sels.size());
    for (const metrics::probe_selector& sel : sels) {
      const obs::trace_span span(sel.p->name);
      out.push_back(metrics::eval_scalar(sel, ctx));
    }
    if (capture != nullptr) {
      util::json check_results;
      if (capture_checks) {
        // Checks run after the probe columns so battery-building probes
        // keep their legacy rng position.
        check_results = util::json::array();
        for (const metrics::probe* p : check_probes) {
          const obs::trace_span span(p->name);
          const metrics::probe_value v = p->run(ctx);
          util::json& entry = check_results.push_back(util::json::object());
          entry["passed"] = v.check.passed;
          entry["detail"] = v.check.detail;
        }
      }
      if (capture_traj && !capture_checks && !capture_timeline) {
        // Trajectory-only capture keeps the bare-array form older
        // reports used (digest-pinned).
        *capture = std::move(trajectory);
      } else {
        util::json parts = util::json::object();
        if (capture_traj) parts["trajectory"] = std::move(trajectory);
        if (capture_checks) parts["checks"] = std::move(check_results);
        if (capture_timeline) {
          parts["timeline"] = recorder->samples_json();
        }
        *capture = std::move(parts);
      }
    }
    return out;
  }

  /// One multi-seed sweep of a cell; fills `per_seed` with captures when
  /// capturing. `single_seed` specs run exactly once at the raw base
  /// seed (the legacy §5 form — no derive_seed).
  std::vector<seed_aggregate> sweep(
      const experiment_config& cfg,
      std::span<const metrics::probe_selector> sels, const param_map& params,
      util::json* per_seed) const {
    run_options ropt{};
    ropt.threads = opt.threads;
    ropt.shards = cfg.shards;
    if (spec.single_seed) {
      util::json capture;
      const std::vector<double> values =
          run_once(cfg, opt.seed, sels, params,
                   capturing() ? &capture : nullptr);
      std::vector<seed_aggregate> aggs(sels.size());
      for (std::size_t m = 0; m < sels.size(); ++m) {
        aggs[m].values = {values[m]};
        aggs[m].stats = util::summarize(aggs[m].values);
      }
      if (per_seed != nullptr) {
        *per_seed = util::json::array();
        per_seed->push_back(std::move(capture));
      }
      return aggs;
    }
    if (!capturing()) {
      return run_seeds_multi(
          opt.seeds, opt.seed, sels.size(),
          [&](std::uint64_t seed) {
            return run_once(cfg, seed, sels, params, nullptr);
          },
          ropt);
    }
    multi_seed_result result = run_seeds_multi_captured(
        opt.seeds, opt.seed, sels.size(),
        [&](std::uint64_t seed, util::json& capture_slot) {
          return run_once(cfg, seed, sels, params, &capture_slot);
        },
        ropt);
    if (per_seed != nullptr) {
      *per_seed = util::json::array();
      for (util::json& c : result.captures) {
        per_seed->push_back(std::move(c));
      }
    }
    return result.aggregates;
  }
};

/// Iterates the cartesian product of the row axes (last axis fastest,
/// like the nested loops of the hand-rolled benches).
template <typename Fn>
void for_each_row(const std::vector<spec_axis>& axes, Fn&& fn) {
  std::vector<std::size_t> index(axes.size(), 0);
  for (;;) {
    fn(index);
    std::size_t a = axes.size();
    for (;;) {
      if (a == 0) return;
      --a;
      if (++index[a] < axes[a].values.size()) break;
      index[a] = 0;
    }
  }
}

/// The "probes"-mode measurement plan: one metric slot per non-ratio
/// entry plus hidden slots for the full distribution summaries when the
/// spec opts into "distributions".
struct shared_plan {
  std::vector<metrics::probe_selector> selectors;  ///< metric slots
  std::vector<int> entry_metric;  ///< per entry: slot index, -1 = ratio
  struct dist_block {
    std::size_t entry;               ///< spec.probes index
    int base;                        ///< first hidden metric slot
    std::vector<std::string> stats;  ///< hidden stats, slot order
  };
  std::vector<dist_block> dist_blocks;
};

shared_plan build_shared_plan(const experiment_spec& spec) {
  shared_plan plan;
  for (const spec_probe& p : spec.probes) {
    if (p.ratio_num >= 0) {
      plan.entry_metric.push_back(-1);
      continue;
    }
    plan.entry_metric.push_back(static_cast<int>(plan.selectors.size()));
    plan.selectors.push_back(
        metrics::resolve_selector(p.probe, p.cls, p.stat));
  }
  if (spec.distributions) {
    for (std::size_t i = 0; i < spec.probes.size(); ++i) {
      const spec_probe& p = spec.probes[i];
      if (p.ratio_num >= 0) continue;
      const metrics::probe* probe = metrics::find_probe(p.probe);
      if (probe == nullptr ||
          probe->kind != metrics::probe_kind::distribution) {
        continue;
      }
      shared_plan::dist_block block;
      block.entry = i;
      block.base = static_cast<int>(plan.selectors.size());
      block.stats = {"count", "mean", "stddev", "min", "max"};
      if (probe->quantiles) {
        block.stats.insert(block.stats.end(), {"p50", "p90", "p99"});
      }
      for (const std::string& stat : block.stats) {
        plan.selectors.push_back(
            metrics::resolve_selector(p.probe, {}, stat));
      }
      plan.dist_blocks.push_back(std::move(block));
    }
  }
  return plan;
}

/// The preamble's trailing scale hint. The reduced-scale wording is
/// frozen by the byte-identity contract: the pre-port binaries printed
/// it, and their digests pin the spec replacements (--full is now
/// spelled --profile full; see DESIGN.md "Probe taxonomy & profiles").
void print_preamble(const experiment_spec& spec, const spec_options& opt,
                    std::ostream& out) {
  if (!spec.preamble.empty()) {
    for (const std::string& line : spec.preamble) out << line << "\n";
    return;
  }
  out << "# " << spec.title << "\n"
      << "# n=" << opt.peers << " seeds=" << opt.seeds
      << " rounds=" << opt.rounds << " views={" << opt.view_a << ","
      << opt.view_b << "}";
  if (opt.profile.empty()) {
    out << " (reduced scale; --full for paper scale)";
  } else {
    out << " (profile " << opt.profile << ")";
  }
  out << "\n";
}

/// Applies the named profile (when any) over the driver options;
/// explicitly-given command-line flags win.
spec_options effective_options(const experiment_spec& spec,
                               const spec_options& opt,
                               const spec_profile** selected) {
  *selected = nullptr;
  spec_options eff = opt;
  if (opt.profile.empty()) return eff;
  for (const auto& [name, prof] : spec.profiles) {
    if (name == opt.profile) {
      *selected = &prof;
      break;
    }
  }
  if (*selected == nullptr) {
    std::string available;
    for (const auto& [name, prof] : spec.profiles) {
      (void)prof;
      if (!available.empty()) available += ", ";
      available += name;
    }
    bad("unknown profile \"" + opt.profile + "\"" +
        (available.empty() ? " (this spec declares no profiles)"
                           : " (available: " + available + ")"));
  }
  const spec_profile& prof = **selected;
  if (prof.peers && !opt.peers_explicit) {
    eff.peers = static_cast<std::size_t>(*prof.peers);
  }
  if (prof.seeds && !opt.seeds_explicit) {
    eff.seeds = static_cast<int>(*prof.seeds);
  }
  if (prof.rounds && !opt.rounds_explicit) {
    eff.rounds = static_cast<int>(*prof.rounds);
  }
  if (prof.view_a && !opt.view_a_explicit) {
    eff.view_a = static_cast<std::size_t>(*prof.view_a);
  }
  if (prof.view_b && !opt.view_b_explicit) {
    eff.view_b = static_cast<std::size_t>(*prof.view_b);
  }
  return eff;
}

/// Static execution: no simulation, no seeds — every cell is one
/// world-free probe evaluation (the §2.2 traversal table). Check cells
/// render check_result::cell and record verdict entries.
void run_static_spec(const experiment_spec& spec, const spec_options& eff,
                     std::ostream& out, workload::bench_report& report,
                     util::json& checks_json, bool& checks_passed) {
  std::vector<std::string> headers;
  for (const spec_axis& axis : spec.rows) {
    headers.push_back(subst_views(axis.header, eff));
  }
  for (const spec_column& col : spec.columns) {
    headers.push_back(subst_views(col.header, eff));
  }
  for (const spec_probe& p : spec.probes) {
    headers.push_back(subst_views(p.header, eff));
  }
  text_table table(std::move(headers));

  experiment_config scratch;
  for_each_row(spec.rows, [&](const std::vector<std::size_t>& index) {
    var_map vars;
    param_map row_params;
    std::vector<std::string> cells;
    const auto apply = [&](param_map& params, const std::string& key,
                           const std::string& token) -> std::string {
      if (is_workload_var(key)) {
        vars[key.substr(1)] = token;
        return token;
      }
      if (is_param_key(key)) {
        params[key.substr(1)] = token;
        return token;
      }
      return apply_setting(scratch, key, token, eff);
    };
    for (const auto& [key, token] : spec.base) {
      (void)apply(row_params, key, token);
    }
    for (std::size_t a = 0; a < spec.rows.size(); ++a) {
      cells.push_back(
          apply(row_params, spec.rows[a].key, spec.rows[a].values[index[a]]));
    }
    const std::vector<std::string> row_labels = cells;

    const auto record_check = [&](const std::string& column,
                                  const std::string& check_name,
                                  const metrics::check_result& result) {
      util::json& entry = checks_json.push_back(util::json::object());
      util::json row = util::json::array();
      for (const std::string& label : row_labels) row.push_back(label);
      entry["row"] = std::move(row);
      if (!column.empty()) entry["column"] = column;
      entry["check"] = check_name;
      entry["passed"] = result.passed;
      if (!result.detail.empty()) entry["detail"] = result.detail;
      checks_passed = checks_passed && result.passed;
    };

    const auto eval_cell = [&](const std::string& probe_name,
                               const std::string& cls,
                               const std::string& stat, int precision,
                               const param_map& params,
                               const std::string& column) -> std::string {
      const metrics::probe* p = metrics::find_probe(probe_name);
      NYLON_ENSURES(p != nullptr);  // validate() checked
      const metrics::probe_context ctx{params};
      const metrics::probe_value value = p->run(ctx);
      if (value.kind == metrics::probe_kind::check) {
        record_check(column, probe_name, value.check);
        return value.check.cell;
      }
      const metrics::probe_selector sel =
          metrics::resolve_selector(probe_name, cls, stat);
      return fmt(metrics::extract_scalar(sel, value), precision);
    };

    for (const spec_column& col : spec.columns) {
      switch (col.k) {
        case spec_column::kind::probe: {
          param_map params = row_params;
          for (const auto& [key, token] : col.set) {
            (void)apply(params, key, token);
          }
          cells.push_back(eval_cell(col.probe, col.cls, col.stat,
                                    col.precision, params,
                                    subst_views(col.header, eff)));
          break;
        }
        case spec_column::kind::ratio:
          cells.push_back(fmt(0.0, col.precision));  // validate() forbids
          break;
        case spec_column::kind::row_value:
          cells.push_back(row_labels.front());
          break;
      }
    }
    for (const spec_probe& p : spec.probes) {
      cells.push_back(eval_cell(p.probe, p.cls, p.stat, p.precision,
                                row_params, subst_views(p.header, eff)));
    }
    table.add_row(std::move(cells));
  });

  if (eff.csv) {
    table.print_csv(out);
  } else {
    table.print(out);
  }
  report.add("table", workload::to_json(table));
}

/// Long-form timeline CSV: one `cell,seed,t_s,<v>,...` line per sample.
/// `cell` is the row labels joined with '/' (prefixed by the split
/// table key, suffixed by ":<column>" in columns mode).
void write_timeline_csv(const std::string& path,
                        const std::vector<std::string>& columns,
                        const util::json& cells) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    throw std::runtime_error("cannot write timeline CSV \"" + path + "\"");
  }
  obs::timeline_recorder::write_csv_header(file, columns);
  const auto append_double = [](std::string& line, const util::json& v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g",
                  v.is_int() ? static_cast<double>(v.as_int())
                             : v.as_double());
    line += buf;
  };
  for (const util::json& entry : cells.array_items()) {
    std::string label;
    if (const util::json* table = entry.find("table")) {
      label += table->as_string();
      label += '/';
    }
    const util::json& row = entry.at("row");
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) label += '/';
      label += row.at(i).as_string();
    }
    if (const util::json* column = entry.find("column")) {
      label += ':';
      label += column->as_string();
    }
    const util::json& per_seed = entry.at("per_seed");
    for (std::size_t s = 0; s < per_seed.size(); ++s) {
      for (const util::json& sample : per_seed.at(s).array_items()) {
        std::string line = label;
        line += ',';
        line += std::to_string(s);
        for (const util::json& v : sample.array_items()) {
          line += ',';
          append_double(line, v);
        }
        line += '\n';
        file << line;
      }
    }
  }
}

}  // namespace

util::json run_spec(const experiment_spec& spec, const spec_options& opt,
                    std::ostream& out) {
  spec.validate();

  const spec_profile* prof = nullptr;
  const spec_options eff = effective_options(spec, opt, &prof);

  print_preamble(spec, eff, out);

  var_map builtins = builtin_vars(eff);
  if (prof != nullptr) {
    // Explicit flags beat profile values: an explicit --rounds keeps the
    // rounds-derived builtins too, so "--profile full --rounds 16" runs
    // a genuinely reduced-scale workload instead of the paper durations.
    for (const auto& [var, token] : prof->vars) {
      if (opt.rounds_explicit && (var == "rounds" || var == "half_rounds")) {
        continue;
      }
      builtins[var] = token;
    }
  }

  workload::bench_report report(spec.name);
  for (const std::string& p : spec.report_params) {
    if (auto kv = param_override(p, builtins)) {
      report.param(kv->first, std::move(kv->second));
      continue;
    }
    if (p == "peers") {
      report.param("peers", eff.peers);
    } else if (p == "seeds") {
      report.param("seeds", eff.seeds);
    } else if (p == "rounds") {
      report.param("rounds", eff.rounds);
    } else if (p == "seed") {
      report.param("seed", eff.seed);
    } else if (p == "workload") {
      const util::json* name =
          spec.workload.has_value() ? spec.workload->find("name") : nullptr;
      report.param("workload",
                   name != nullptr && name->is_string() ? *name : util::json());
    }
  }

  util::json checks_json = util::json::array();
  bool checks_passed = true;

  if (spec.static_eval) {
    run_static_spec(spec, eff, out, report, checks_json, checks_passed);
  } else {
    spec_execution exec{spec, eff};
    if (spec.warmup == "half") {
      exec.warmup = eff.rounds / 2;
    } else if (!spec.warmup.empty()) {
      exec.warmup = static_cast<int>(count_token("warmup", spec.warmup, eff));
    }
    if (exec.warmup > eff.rounds) exec.warmup = eff.rounds;
    exec.measure = eff.rounds - exec.warmup;
    exec.capture_traj = spec.workload.has_value() &&
                        (spec.trajectories || eff.trajectories);
    exec.capture_checks = !spec.checks.empty();
    for (const spec_check& c : spec.checks) {
      exec.check_probes.push_back(metrics::find_probe(c.probe));
    }

    // Effective timeline: the spec's own block, force-enabled by
    // --timeline (default passive columns when the spec declares none),
    // period overridable by --timeline-period. Resolving here (not just
    // in validate()) also vets flag-supplied columns.
    spec_timeline tl = spec.timeline;
    if (eff.timeline && !tl.enabled) {
      tl.enabled = true;
      tl.probes = default_timeline_columns();
      tl.period_s = 5.0;
    }
    if (tl.enabled && eff.timeline_period_s > 0) {
      tl.period_s = eff.timeline_period_s;
    }
    exec.capture_timeline = tl.enabled;
    exec.timeline_period_s = tl.period_s;
    exec.timeline_names = tl.probes;
    for (const std::string& token : tl.probes) {
      exec.timeline_cols.push_back(resolve_timeline_column(token));
    }

    // Base config: driver options first (exactly bench::base_config), then
    // the spec's own overrides. '$'-keys accumulate as workload variables,
    // '%'-keys as probe parameters, instead of touching the config.
    var_map base_vars = builtins;
    param_map base_params;
    const auto apply_or_var = [&eff](experiment_config& cfg, var_map& vars,
                                     param_map& params,
                                     const std::string& key,
                                     const std::string& token) -> std::string {
      if (is_workload_var(key)) {
        vars[key.substr(1)] = token;
        return token;
      }
      if (is_param_key(key)) {
        params[key.substr(1)] = token;
        return token;
      }
      return apply_setting(cfg, key, token, eff);
    };
    experiment_config base_cfg;
    base_cfg.peer_count = eff.peers;
    base_cfg.gossip.view_size = eff.view_a;
    base_cfg.shards = eff.shards;
    apply_setting(base_cfg, "latency_model", eff.latency_model, eff);
    base_cfg.latency = sim::millis(eff.latency_ms);
    base_cfg.latency_max = sim::millis(eff.latency_max_ms);
    base_cfg.latency_sigma = eff.latency_sigma;
    apply_setting(base_cfg, "transport", eff.transport, eff);
    apply_setting(base_cfg, "window_mode", eff.window_mode, eff);
    if (eff.udp_time_scale > 0) base_cfg.udp_time_scale = eff.udp_time_scale;
    for (const auto& [key, token] : spec.base) {
      apply_or_var(base_cfg, base_vars, base_params, key, token);
    }
    // BENCH docs carry the transport so bench/trend.py can key trends on
    // it (sim and udp numbers must never mix); omitted for plain sim
    // runs so every pre-existing document stays byte-identical.
    if (base_cfg.transport != transport_kind::sim) {
      report.add("transport", std::string(to_string(base_cfg.transport)));
    }
    // Likewise the epoch-width policy, but only for sharded runs — it is
    // meaningless in serial mode and omitting it there keeps every
    // pre-existing serial document byte-identical.
    if (base_cfg.shards > 0) {
      report.add("window_mode",
                 base_cfg.window_mode == sim::window_mode::adaptive
                     ? std::string("adaptive")
                     : std::string("static"));
    }

    // Measurement plan of the shared-run ("probes") mode.
    const shared_plan plan = build_shared_plan(spec);

    util::json trajectories = util::json::array();
    util::json timeline_cells = util::json::array();
    util::json cells_json = util::json::array();
    util::json distributions_json = util::json::array();
    bool msglog_dumped = false;

    const std::vector<std::string> split_tokens =
        spec.split.has_value() ? spec.split->axis.values
                               : std::vector<std::string>{std::string()};
    for (const std::string& split_token : split_tokens) {
      experiment_config split_cfg = base_cfg;
      var_map split_vars = base_vars;
      param_map split_params = base_params;
      std::string split_label;
      std::string table_key;
      if (spec.split.has_value()) {
        split_label = apply_or_var(split_cfg, split_vars, split_params,
                                   spec.split->axis.key, split_token);
        table_key = subst_braces(spec.split->table_key, split_label);
        if (!spec.split->section.empty()) {
          out << "\n" << subst_braces(spec.split->section, split_label)
              << "\n";
        }
      }

      std::vector<std::string> headers;
      for (const spec_axis& axis : spec.rows) {
        headers.push_back(subst_views(axis.header, eff));
      }
      for (const spec_column& col : spec.columns) {
        headers.push_back(subst_views(col.header, eff));
      }
      for (const spec_probe& p : spec.probes) {
        headers.push_back(subst_views(p.header, eff));
      }
      text_table table(std::move(headers));

      for_each_row(spec.rows, [&](const std::vector<std::size_t>& index) {
        experiment_config row_cfg = split_cfg;
        var_map row_vars = split_vars;
        param_map row_params = split_params;
        std::vector<std::string> cells;
        for (std::size_t a = 0; a < spec.rows.size(); ++a) {
          cells.push_back(apply_or_var(row_cfg, row_vars, row_params,
                                       spec.rows[a].key,
                                       spec.rows[a].values[index[a]]));
        }
        const std::vector<std::string> row_labels = cells;

        // The row's workload document, variables resolved; column-level
        // '$' settings are resolved per column below.
        util::json resolved_workload;
        if (spec.workload.has_value()) {
          resolved_workload = resolve_workload_vars(*spec.workload, row_vars);
          exec.workload_doc = &resolved_workload;
        }

        /// `cells` mode: one entry per probe column, carrying each
        /// cell_key'd axis value plus the full multi-seed aggregate.
        const auto record_cell = [&](const spec_column& col,
                                     const std::vector<seed_aggregate>&
                                         aggs) {
          if (!spec.cells) return;
          util::json& entry = cells_json.push_back(util::json::object());
          if (!table_key.empty()) entry["table"] = table_key;
          for (std::size_t a = 0; a < spec.rows.size(); ++a) {
            const spec_axis& axis = spec.rows[a];
            if (axis.cell_key.empty()) continue;
            const std::string& token = axis.values[index[a]];
            entry[axis.cell_key] = var_value(var_numeric(axis.key, token));
          }
          if (!col.cell_key.empty()) {
            entry[col.cell_key] =
                var_value(var_numeric(col.cell_key, col.cell_token));
          }
          std::string metric_key = col.probe;
          if (!col.cls.empty()) {
            metric_key += "." + col.cls;
          } else if (!col.stat.empty()) {
            metric_key += "." + col.stat;
          }
          entry[metric_key] = workload::to_json(aggs[0]);
        };

        /// Appends one {table?, row, column?, per_seed} entry to `sink`
        /// (trajectories and timeline cells share the shape).
        const auto record_series = [&](util::json& sink, util::json per_seed,
                                       const std::string& column) {
          if (per_seed.is_null()) return;
          util::json& entry = sink.push_back(util::json::object());
          if (!table_key.empty()) entry["table"] = table_key;
          util::json row = util::json::array();
          for (const std::string& label : row_labels) row.push_back(label);
          entry["row"] = std::move(row);
          if (!column.empty()) entry["column"] = column;
          entry["per_seed"] = std::move(per_seed);
        };

        /// The trajectory / timeline halves of a captured per-seed
        /// array (null members when that capture is off).
        struct capture_halves {
          util::json traj;
          util::json timeline;
        };

        /// Splits a captured per-seed array into its halves and records
        /// check verdicts. A failed check triggers a one-shot dump of
        /// the message flight recorder (when `nylon_exp --msglog` armed
        /// it) so the hop-by-hop forensics land next to the verdict.
        const auto unwrap_captures =
            [&](util::json per_seed) -> capture_halves {
          capture_halves halves;
          if (per_seed.is_null()) return halves;
          if (!exec.capture_checks && !exec.capture_timeline) {
            halves.traj = std::move(per_seed);  // legacy bare form
            return halves;
          }
          const std::size_t seeds = per_seed.size();
          for (std::size_t j = 0; j < spec.checks.size(); ++j) {
            bool passed = true;
            std::string detail;
            util::json failed_seeds = util::json::array();
            for (std::size_t s = 0; s < seeds; ++s) {
              const util::json& entry =
                  per_seed.at(s).at("checks").at(j);
              const bool seed_passed = entry.at("passed").as_bool();
              if (s == 0) detail = entry.at("detail").as_string();
              if (!seed_passed) {
                passed = false;
                failed_seeds.push_back(static_cast<std::int64_t>(s));
              }
            }
            util::json& entry = checks_json.push_back(util::json::object());
            if (!table_key.empty()) entry["table"] = table_key;
            util::json row = util::json::array();
            for (const std::string& label : row_labels) {
              row.push_back(label);
            }
            entry["row"] = std::move(row);
            entry["check"] = spec.checks[j].name;
            entry["passed"] = passed;
            if (!detail.empty()) entry["detail"] = detail;
            if (failed_seeds.size() > 0) {
              entry["failed_seeds"] = std::move(failed_seeds);
            }
            checks_passed = checks_passed && passed;
            if (!passed && !msglog_dumped && obs::msglog_enabled()) {
              msglog_dumped = true;
              std::cerr << "# check \"" << spec.checks[j].name
                        << "\" failed — sampled message flight records:\n";
              obs::msglog_dump(std::cerr, 40);
            }
          }
          if (exec.capture_traj) {
            halves.traj = util::json::array();
            for (std::size_t s = 0; s < seeds; ++s) {
              halves.traj.push_back(per_seed.at(s).at("trajectory"));
            }
          }
          if (exec.capture_timeline) {
            halves.timeline = util::json::array();
            for (std::size_t s = 0; s < seeds; ++s) {
              halves.timeline.push_back(per_seed.at(s).at("timeline"));
            }
          }
          return halves;
        };

        const auto record_distributions =
            [&](const std::vector<seed_aggregate>& aggs) {
              for (const shared_plan::dist_block& block : plan.dist_blocks) {
                util::json& entry =
                    distributions_json.push_back(util::json::object());
                if (!table_key.empty()) entry["table"] = table_key;
                util::json row = util::json::array();
                for (const std::string& label : row_labels) {
                  row.push_back(label);
                }
                entry["row"] = std::move(row);
                entry["probe"] = spec.probes[block.entry].probe;
                entry["header"] =
                    subst_views(spec.probes[block.entry].header, eff);
                for (std::size_t k = 0; k < block.stats.size(); ++k) {
                  entry[block.stats[k]] = workload::to_json(
                      aggs[static_cast<std::size_t>(block.base) + k]);
                }
              }
            };

        if (!spec.columns.empty()) {
          std::vector<double> means(spec.columns.size(), 0.0);
          for (std::size_t j = 0; j < spec.columns.size(); ++j) {
            const spec_column& col = spec.columns[j];
            switch (col.k) {
              case spec_column::kind::probe: {
                experiment_config cfg = row_cfg;
                var_map col_vars = row_vars;
                param_map col_params = row_params;
                bool col_has_vars = false;
                for (const auto& [key, token] : col.set) {
                  col_has_vars = col_has_vars || is_workload_var(key);
                  apply_or_var(cfg, col_vars, col_params, key, token);
                }
                util::json col_workload;
                if (col_has_vars && spec.workload.has_value()) {
                  col_workload =
                      resolve_workload_vars(*spec.workload, col_vars);
                  exec.workload_doc = &col_workload;
                }
                const metrics::probe_selector sel =
                    metrics::resolve_selector(col.probe, col.cls, col.stat);
                util::json per_seed;
                const std::vector<seed_aggregate> aggs = exec.sweep(
                    cfg, std::span<const metrics::probe_selector>{&sel, 1},
                    col_params, exec.capturing() ? &per_seed : nullptr);
                if (col_has_vars && spec.workload.has_value()) {
                  exec.workload_doc = &resolved_workload;
                }
                auto halves = unwrap_captures(std::move(per_seed));
                record_series(trajectories, std::move(halves.traj),
                              subst_views(col.header, eff));
                record_series(timeline_cells, std::move(halves.timeline),
                              subst_views(col.header, eff));
                record_cell(col, aggs);
                means[j] = aggs[0].stats.mean;
                cells.push_back(fmt(means[j], col.precision));
                break;
              }
              case spec_column::kind::ratio: {
                const double num =
                    means[static_cast<std::size_t>(col.ratio_num)];
                const double den =
                    means[static_cast<std::size_t>(col.ratio_den)];
                cells.push_back(fmt(den > 0 ? num / den : 0.0,
                                    col.precision));
                break;
              }
              case spec_column::kind::row_value:
                cells.push_back(row_labels.front());
                break;
            }
          }
        } else {
          util::json per_seed;
          const std::vector<seed_aggregate> aggs =
              exec.sweep(row_cfg, plan.selectors, row_params,
                         exec.capturing() ? &per_seed : nullptr);
          auto halves = unwrap_captures(std::move(per_seed));
          record_series(trajectories, std::move(halves.traj), std::string());
          record_series(timeline_cells, std::move(halves.timeline),
                        std::string());
          record_distributions(aggs);
          std::vector<double> entry_means(spec.probes.size(), 0.0);
          for (std::size_t k = 0; k < spec.probes.size(); ++k) {
            const spec_probe& p = spec.probes[k];
            if (p.ratio_num >= 0) {
              const int num_slot =
                  plan.entry_metric[static_cast<std::size_t>(p.ratio_num)];
              const int den_slot =
                  plan.entry_metric[static_cast<std::size_t>(p.ratio_den)];
              const double num =
                  aggs[static_cast<std::size_t>(num_slot)].stats.mean;
              const double den =
                  aggs[static_cast<std::size_t>(den_slot)].stats.mean;
              entry_means[k] = den > 0 ? num / den : 0.0;
            } else {
              const int slot = plan.entry_metric[k];
              entry_means[k] =
                  aggs[static_cast<std::size_t>(slot)].stats.mean;
            }
            cells.push_back(fmt(entry_means[k], p.precision));
          }
        }
        table.add_row(std::move(cells));
      });

      if (eff.csv) {
        table.print_csv(out);
      } else {
        table.print(out);
      }
      if (spec.split.has_value()) {
        report.add_table(table_key, table);
      } else {
        report.add("table", workload::to_json(table));
      }
    }

    if (spec.cells) report.add("cells", std::move(cells_json));
    if (distributions_json.size() > 0) {
      report.add("distributions", std::move(distributions_json));
    }
    if (exec.capture_traj && trajectories.size() > 0) {
      report.add("trajectories", std::move(trajectories));
    }
    if (exec.capture_timeline) {
      if (!eff.timeline_csv.empty()) {
        write_timeline_csv(eff.timeline_csv, exec.timeline_names,
                           timeline_cells);
      }
      util::json block = util::json::object();
      block["period_s"] = exec.timeline_period_s;
      util::json cols = util::json::array();
      cols.push_back(std::string("t_s"));
      for (const std::string& name : exec.timeline_names) {
        cols.push_back(name);
      }
      block["columns"] = std::move(cols);
      block["cells"] = std::move(timeline_cells);
      report.add("timeline", std::move(block));
    }
  }

  if (!spec.footer.empty()) {
    out << "\n";
    for (const std::string& line : spec.footer) out << line << "\n";
  }
  if (spec.verdict.has_value()) {
    out << "\n" << (checks_passed ? spec.verdict->pass : spec.verdict->fail)
        << "\n";
  }
  if (checks_json.size() > 0) report.add("checks", std::move(checks_json));
  report.save(eff.json);
  return report.doc();
}

}  // namespace nylon::runtime
