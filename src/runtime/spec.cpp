#include "runtime/spec.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <initializer_list>
#include <map>
#include <ostream>
#include <span>

#include "core/peer_factory.h"
#include "gossip/policies.h"
#include "metrics/probe.h"
#include "runtime/experiment_config.h"
#include "runtime/runner.h"
#include "runtime/scenario.h"
#include "runtime/table_printer.h"
#include "util/contracts.h"
#include "workload/engine.h"
#include "workload/program.h"
#include "workload/report.h"

namespace nylon::runtime {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw contract_error("experiment spec: " + what);
}

/// Rejects unknown keys so a typo runs nothing instead of the wrong study.
void ensure_keys(const util::json& j,
                 std::initializer_list<std::string_view> allowed,
                 const char* what) {
  util::require_known_keys(j, allowed, what, "experiment spec: ");
}

/// The raw token of a JSON scalar, preserving the literal's spelling
/// ("40" stays "40", 0.25 stays "0.25") so it doubles as the row label.
std::string token_of(const util::json& v) {
  if (v.is_string()) return v.as_string();
  if (v.is_int()) return std::to_string(v.as_int());
  if (v.is_double()) {
    char buf[32];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v.as_double());
    NYLON_ENSURES(ec == std::errc{});
    return std::string(buf, end);
  }
  bad("axis / setting values must be numbers or strings");
}

/// Resolves a value token to a number. "$view_a"/"$view_b" refer to the
/// driver options (the legacy --view-a/--view-b flags).
double numeric_token(const std::string& key, const std::string& token,
                     const spec_options& opt) {
  if (token == "$view_a") return static_cast<double>(opt.view_a);
  if (token == "$view_b") return static_cast<double>(opt.view_b);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (token.empty() || end != token.c_str() + token.size() ||
      errno == ERANGE) {
    bad("\"" + key + "\" value \"" + token + "\" is not a number");
  }
  return v;
}

std::size_t count_token(const std::string& key, const std::string& token,
                        const spec_options& opt) {
  const double v = numeric_token(key, token, opt);
  if (v < 0 || v != std::floor(v)) {
    bad("\"" + key + "\" value \"" + token +
        "\" must be a non-negative integer");
  }
  return static_cast<std::size_t>(v);
}

/// Applies one key=value override to a config and returns the table
/// label of the value ("nylon", "40", "pushpull,rand,healer", ...).
std::string apply_setting(experiment_config& cfg, const std::string& key,
                          const std::string& token, const spec_options& opt) {
  const bool symbolic = token == "$view_a" || token == "$view_b";
  if (key == "peers") {
    cfg.peer_count = count_token(key, token, opt);
    return token;
  }
  if (key == "natted_pct") {
    const double v = numeric_token(key, token, opt);
    if (v < 0 || v > 100) bad("\"natted_pct\" must be within [0, 100]");
    cfg.natted_fraction = v / 100.0;
    return token;
  }
  if (key == "natted_fraction") {
    const double v = numeric_token(key, token, opt);
    if (v < 0 || v > 1) bad("\"natted_fraction\" must be within [0, 1]");
    cfg.natted_fraction = v;
    return token;
  }
  if (key == "view_size") {
    const std::size_t v = count_token(key, token, opt);
    if (v == 0) bad("\"view_size\" must be positive");
    cfg.gossip.view_size = v;
    return symbolic ? std::to_string(v) : token;
  }
  if (key == "baseline_config") {
    const std::size_t i = count_token(key, token, opt);
    if (i >= gossip::baseline_config_count()) {
      bad("\"baseline_config\" index out of range");
    }
    cfg.gossip = gossip::baseline_config(static_cast<std::uint8_t>(i),
                                         cfg.gossip.view_size);
    return gossip::config_label(cfg.gossip);
  }
  if (key == "protocol") {
    if (token == "reference") {
      cfg.protocol = core::protocol_kind::reference;
    } else if (token == "nylon") {
      cfg.protocol = core::protocol_kind::nylon;
    } else if (token == "arrg") {
      cfg.protocol = core::protocol_kind::arrg;
    } else {
      bad("unknown protocol \"" + token + "\" (reference | nylon | arrg)");
    }
    return token;
  }
  if (key == "mix") {
    if (token == "paper") {
      cfg.mix = nat::paper_mix();
    } else if (token == "prc_only") {
      cfg.mix = nat::prc_only_mix();
    } else {
      bad("unknown mix \"" + token + "\" (paper | prc_only)");
    }
    return token;
  }
  if (key == "selection") {
    if (token == "rand") {
      cfg.gossip.selection = gossip::selection_policy::rand;
    } else if (token == "tail") {
      cfg.gossip.selection = gossip::selection_policy::tail;
    } else {
      bad("unknown selection \"" + token + "\" (rand | tail)");
    }
    return token;
  }
  if (key == "propagation") {
    if (token == "push") {
      cfg.gossip.propagation = gossip::propagation_policy::push;
    } else if (token == "pushpull") {
      cfg.gossip.propagation = gossip::propagation_policy::pushpull;
    } else {
      bad("unknown propagation \"" + token + "\" (push | pushpull)");
    }
    return token;
  }
  if (key == "merge") {
    if (token == "blind") {
      cfg.gossip.merge = gossip::merge_policy::blind;
    } else if (token == "healer") {
      cfg.gossip.merge = gossip::merge_policy::healer;
    } else if (token == "swapper") {
      cfg.gossip.merge = gossip::merge_policy::swapper;
    } else {
      bad("unknown merge \"" + token + "\" (blind | healer | swapper)");
    }
    return token;
  }
  if (key == "shuffle_period_s") {
    const double v = numeric_token(key, token, opt);
    if (v <= 0) bad("\"shuffle_period_s\" must be positive");
    cfg.gossip.shuffle_period =
        static_cast<sim::sim_time>(std::llround(v * 1000.0));
    return token;
  }
  if (key == "hole_timeout_s") {
    const double v = numeric_token(key, token, opt);
    if (v <= 0) bad("\"hole_timeout_s\" must be positive");
    cfg.hole_timeout = static_cast<sim::sim_time>(std::llround(v * 1000.0));
    return token;
  }
  if (key == "latency_model") {
    if (token == "fixed") {
      cfg.latency_model = experiment_config::latency_kind::fixed;
    } else if (token == "uniform") {
      cfg.latency_model = experiment_config::latency_kind::uniform;
    } else if (token == "lognormal") {
      cfg.latency_model = experiment_config::latency_kind::lognormal;
    } else {
      bad("unknown latency_model \"" + token +
          "\" (fixed | uniform | lognormal)");
    }
    return token;
  }
  if (key == "latency_ms") {
    cfg.latency = static_cast<sim::sim_time>(count_token(key, token, opt));
    return token;
  }
  if (key == "latency_max_ms") {
    cfg.latency_max = static_cast<sim::sim_time>(count_token(key, token, opt));
    return token;
  }
  if (key == "latency_sigma") {
    const double v = numeric_token(key, token, opt);
    if (v <= 0) bad("\"latency_sigma\" must be positive");
    cfg.latency_sigma = v;
    return token;
  }
  if (key == "loss_rate") {
    const double v = numeric_token(key, token, opt);
    if (v < 0 || v > 1) bad("\"loss_rate\" must be within [0, 1]");
    cfg.loss_rate = v;
    return token;
  }
  if (key == "shards") {
    cfg.shards = count_token(key, token, opt);
    return token;
  }
  bad("unknown config key \"" + key + "\"");
}

/// '$'-prefixed keys are workload variables, not config keys: their
/// tokens substitute into the spec's workload JSON instead of touching
/// the experiment_config.
bool is_workload_var(const std::string& key) {
  return !key.empty() && key.front() == '$';
}

/// Leading numeric value of a variable token; tolerates a trailing
/// annotation ("50%" -> 50) so tokens double as table labels.
double var_numeric(const std::string& name, const std::string& token) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || errno == ERANGE) {
    bad("variable \"" + name + "\" value \"" + token + "\" is not numeric");
  }
  return v;
}

/// JSON number for a resolved variable (int when integral, like the
/// literals it replaces).
util::json var_value(double v) {
  const auto as_int = static_cast<std::int64_t>(std::llround(v));
  if (std::abs(v - static_cast<double>(as_int)) < 1e-9) {
    return util::json(as_int);
  }
  return util::json(v);
}

using var_map = std::map<std::string, std::string>;

/// Resolves "$name" / "$name/DIVISOR" string values against `vars`,
/// recursing through objects and arrays; everything else copies through.
util::json resolve_workload_vars(const util::json& j, const var_map& vars) {
  if (j.is_string()) {
    const std::string& s = j.as_string();
    if (s.size() < 2 || s.front() != '$') return j;
    const std::size_t slash = s.find('/');
    const std::string name = s.substr(1, slash == std::string::npos
                                             ? std::string::npos
                                             : slash - 1);
    const auto it = vars.find(name);
    if (it == vars.end()) return j;  // not a variable (e.g. "$view_a")
    double v = var_numeric(name, it->second);
    if (slash != std::string::npos) {
      const double divisor = var_numeric(name, s.substr(slash + 1));
      if (divisor == 0.0) bad("variable \"" + s + "\" divides by zero");
      v /= divisor;
    }
    return var_value(v);
  }
  if (j.is_array()) {
    util::json out = util::json::array();
    for (const util::json& item : j.array_items()) {
      out.push_back(resolve_workload_vars(item, vars));
    }
    return out;
  }
  if (j.is_object()) {
    util::json out = util::json::object();
    for (const auto& [key, value] : j.object_items()) {
      out[key] = resolve_workload_vars(value, vars);
    }
    return out;
  }
  return j;
}

/// The driver-derived builtin variables every spec may reference.
var_map builtin_vars(const spec_options& opt) {
  var_map vars;
  vars["rounds"] = std::to_string(opt.rounds);
  vars["half_rounds"] = std::to_string(opt.rounds / 2);
  return vars;
}

/// Parses a "name=$var" / "name=literal" report-param entry against the
/// builtin variables; nullopt when `p` is a plain builtin param name
/// (no '='). One parser serves validate() and run_spec() so the two can
/// never drift. Throws on unknown variables or non-numeric literals.
std::optional<std::pair<std::string, util::json>> param_override(
    const std::string& p, const var_map& builtins) {
  const std::size_t eq = p.find('=');
  if (eq == std::string::npos) return std::nullopt;
  const std::string name = p.substr(0, eq);
  std::string value = p.substr(eq + 1);
  if (name.empty()) bad("report param \"" + p + "\" has no name");
  if (value.size() > 1 && value.front() == '$') {
    const auto it = builtins.find(value.substr(1));
    if (it == builtins.end()) {
      bad("report param \"" + p + "\" references unknown variable \"" +
          value + "\" ($rounds | $half_rounds)");
    }
    value = it->second;
  }
  return std::make_pair(name, var_value(var_numeric(name, value)));
}

/// Replaces $view_a / $view_b in header text with the resolved sizes.
std::string subst_views(std::string text, const spec_options& opt) {
  for (const auto& [token, value] :
       {std::pair<std::string_view, std::size_t>{"$view_a", opt.view_a},
        std::pair<std::string_view, std::size_t>{"$view_b", opt.view_b}}) {
    for (std::size_t at = text.find(token); at != std::string::npos;
         at = text.find(token, at)) {
      text.replace(at, token.size(), std::to_string(value));
    }
  }
  return text;
}

/// Replaces the first "{}" with `label` (section / table-key patterns).
std::string subst_braces(std::string pattern, const std::string& label) {
  const std::size_t at = pattern.find("{}");
  if (at != std::string::npos) pattern.replace(at, 2, label);
  return pattern;
}

std::vector<spec_setting> settings_from_json(const util::json& j,
                                             const char* what) {
  if (!j.is_object()) bad(std::string(what) + " must be an object");
  std::vector<spec_setting> out;
  out.reserve(j.size());
  for (const auto& [key, value] : j.object_items()) {
    out.emplace_back(key, token_of(value));
  }
  return out;
}

std::vector<std::string> values_from_json(const util::json& j,
                                          const char* what) {
  std::vector<std::string> out;
  if (const util::json* values = j.find("values")) {
    if (j.find("range") != nullptr) {
      bad(std::string(what) + ": \"values\" and \"range\" are exclusive");
    }
    if (!values->is_array() || values->size() == 0) {
      bad(std::string(what) + ": \"values\" must be a non-empty array");
    }
    for (const util::json& v : values->array_items()) {
      out.push_back(token_of(v));
    }
    return out;
  }
  const util::json* range = j.find("range");
  if (range == nullptr) {
    bad(std::string(what) + ": one of \"values\" / \"range\" required");
  }
  ensure_keys(*range, {"from", "to", "step"}, "range");
  const util::json* from = range->find("from");
  const util::json* to = range->find("to");
  const util::json* step = range->find("step");
  if (from == nullptr || to == nullptr || !from->is_int() || !to->is_int()) {
    bad(std::string(what) + ": range needs integer \"from\" / \"to\"");
  }
  std::int64_t stride = 1;
  if (step != nullptr) {
    if (!step->is_int() || step->as_int() <= 0) {
      bad(std::string(what) + ": range \"step\" must be a positive integer");
    }
    stride = step->as_int();
  }
  if (to->as_int() < from->as_int()) {
    bad(std::string(what) + ": range \"to\" below \"from\"");
  }
  for (std::int64_t v = from->as_int(); v <= to->as_int(); v += stride) {
    out.push_back(std::to_string(v));
  }
  return out;
}

spec_axis axis_from_json(const util::json& j, bool needs_header,
                         const char* what) {
  ensure_keys(j, {"axis", "header", "values", "range", "cell_key"}, what);
  spec_axis out;
  const util::json* key = j.find("axis");
  if (key == nullptr || !key->is_string()) {
    bad(std::string(what) + " needs an \"axis\" key name");
  }
  out.key = key->as_string();
  if (const util::json* header = j.find("header")) {
    if (!header->is_string()) bad("axis \"header\" must be a string");
    out.header = header->as_string();
  } else if (needs_header) {
    bad(std::string(what) + " needs a \"header\"");
  }
  if (const util::json* cell_key = j.find("cell_key")) {
    if (!cell_key->is_string()) bad("axis \"cell_key\" must be a string");
    out.cell_key = cell_key->as_string();
  }
  out.values = values_from_json(j, what);
  return out;
}

int precision_from_json(const util::json& j) {
  const util::json* p = j.find("precision");
  if (p == nullptr) return 1;
  if (!p->is_int() || p->as_int() < 0 || p->as_int() > 9) {
    bad("\"precision\" must be an integer in [0, 9]");
  }
  return static_cast<int>(p->as_int());
}

std::vector<spec_column> columns_from_json(const util::json& j) {
  if (!j.is_array() || j.size() == 0) {
    bad("\"columns\" must be a non-empty array");
  }
  std::vector<spec_column> out;
  for (const util::json& c : j.array_items()) {
    if (!c.is_object()) bad("column entries must be objects");

    if (const util::json* sweep = c.find("sweep")) {
      // Sugar: one column per swept value; "{}" in the header pattern
      // becomes the value token.
      ensure_keys(c, {"sweep", "header", "probe", "set", "precision"},
                  "sweep column");
      const spec_axis axis = axis_from_json(*sweep, false, "column sweep");
      const util::json* header = c.find("header");
      const util::json* probe = c.find("probe");
      if (header == nullptr || !header->is_string()) {
        bad("sweep column needs a \"header\" pattern");
      }
      if (probe == nullptr || !probe->is_string()) {
        bad("sweep column needs a \"probe\"");
      }
      for (const std::string& token : axis.values) {
        spec_column col;
        col.k = spec_column::kind::probe;
        col.header = subst_braces(header->as_string(), token);
        if (const util::json* set = c.find("set")) {
          col.set = settings_from_json(*set, "column \"set\"");
        }
        col.set.emplace_back(axis.key, token);
        col.probe = probe->as_string();
        col.precision = precision_from_json(c);
        col.cell_key = axis.cell_key;
        col.cell_token = token;
        out.push_back(std::move(col));
      }
      continue;
    }

    spec_column col;
    const util::json* header = c.find("header");
    if (header == nullptr || !header->is_string()) {
      bad("every column needs a \"header\"");
    }
    col.header = header->as_string();
    col.precision = precision_from_json(c);

    if (const util::json* ratio = c.find("ratio")) {
      ensure_keys(c, {"header", "ratio", "precision"}, "ratio column");
      if (!ratio->is_array() || ratio->size() != 2 ||
          !ratio->at(std::size_t{0}).is_int() ||
          !ratio->at(std::size_t{1}).is_int()) {
        bad("\"ratio\" must be [numerator_index, denominator_index]");
      }
      col.k = spec_column::kind::ratio;
      col.ratio_num = static_cast<int>(ratio->at(std::size_t{0}).as_int());
      col.ratio_den = static_cast<int>(ratio->at(std::size_t{1}).as_int());
    } else if (const util::json* rv = c.find("row_value")) {
      ensure_keys(c, {"header", "row_value", "precision"}, "row_value column");
      if (!rv->is_bool() || !rv->as_bool()) {
        bad("\"row_value\" must be true when present");
      }
      col.k = spec_column::kind::row_value;
    } else {
      ensure_keys(c, {"header", "probe", "set", "precision", "cell_key",
                      "cell_value"},
                  "probe column");
      const util::json* probe = c.find("probe");
      if (probe == nullptr || !probe->is_string()) {
        bad("column \"" + col.header + "\" needs a \"probe\"");
      }
      col.k = spec_column::kind::probe;
      col.probe = probe->as_string();
      if (const util::json* set = c.find("set")) {
        col.set = settings_from_json(*set, "column \"set\"");
      }
      // The expanded (non-sweep) spelling of a cells-mode column.
      if (const util::json* cell_key = c.find("cell_key")) {
        if (!cell_key->is_string()) bad("\"cell_key\" must be a string");
        col.cell_key = cell_key->as_string();
        const util::json* cell_value = c.find("cell_value");
        if (cell_value == nullptr) bad("\"cell_key\" needs a \"cell_value\"");
        col.cell_token = token_of(*cell_value);
      }
    }
    out.push_back(std::move(col));
  }
  return out;
}

std::vector<spec_probe> probes_from_json(const util::json& j) {
  if (!j.is_array() || j.size() == 0) {
    bad("\"probes\" must be a non-empty array");
  }
  std::vector<spec_probe> out;
  for (const util::json& p : j.array_items()) {
    ensure_keys(p, {"probe", "header", "precision"}, "probe entry");
    spec_probe entry;
    const util::json* name = p.find("probe");
    if (name == nullptr || !name->is_string()) {
      bad("probe entries need a \"probe\" name");
    }
    entry.probe = name->as_string();
    const util::json* header = p.find("header");
    entry.header = header != nullptr && header->is_string()
                       ? header->as_string()
                       : entry.probe;
    entry.precision = precision_from_json(p);
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace

void experiment_spec::validate() const {
  if (name.empty()) bad("\"name\" is required");
  if (rows.empty()) bad("at least one row axis is required");
  const bool has_columns = !columns.empty();
  const bool has_probes = !probes.empty();
  if (has_columns == has_probes) {
    bad("exactly one of \"columns\" / \"probes\" is required");
  }

  // Dry-run every override against a scratch config with default driver
  // options: catches unknown keys and malformed tokens up front.
  // '$'-keys are workload variables — they bypass the config but their
  // tokens must carry a numeric value, and they need a workload to
  // substitute into.
  const spec_options defaults;
  experiment_config scratch;
  const auto check_setting = [&](experiment_config& cfg,
                                 const std::string& key,
                                 const std::string& token) {
    if (is_workload_var(key)) {
      if (!workload.has_value()) {
        bad("variable axis \"" + key + "\" requires a \"workload\"");
      }
      (void)var_numeric(key, token);
      return;
    }
    apply_setting(cfg, key, token, defaults);
  };
  for (const auto& [key, token] : base) {
    check_setting(scratch, key, token);
  }
  if (split.has_value()) {
    if (split->axis.values.empty()) bad("split axis needs values");
    if (split->table_key.empty()) bad("split needs a \"table_key\"");
    for (const std::string& token : split->axis.values) {
      check_setting(scratch, split->axis.key, token);
    }
  }
  for (const spec_axis& axis : rows) {
    if (axis.values.empty()) bad("row axis \"" + axis.key + "\" needs values");
    for (const std::string& token : axis.values) {
      check_setting(scratch, axis.key, token);
    }
  }

  for (std::size_t j = 0; j < columns.size(); ++j) {
    const spec_column& col = columns[j];
    switch (col.k) {
      case spec_column::kind::probe: {
        if (metrics::find_probe(col.probe) == nullptr) {
          bad("unknown probe \"" + col.probe + "\"");
        }
        experiment_config cfg = scratch;
        for (const auto& [key, token] : col.set) {
          check_setting(cfg, key, token);
        }
        break;
      }
      case spec_column::kind::ratio: {
        const auto in_range = [&](int i) {
          return i >= 0 && static_cast<std::size_t>(i) < j &&
                 columns[static_cast<std::size_t>(i)].k ==
                     spec_column::kind::probe;
        };
        if (!in_range(col.ratio_num) || !in_range(col.ratio_den)) {
          bad("ratio column \"" + col.header +
              "\" must reference earlier probe columns");
        }
        break;
      }
      case spec_column::kind::row_value:
        break;
    }
  }
  for (const spec_probe& p : probes) {
    if (metrics::find_probe(p.probe) == nullptr) {
      bad("unknown probe \"" + p.probe + "\"");
    }
  }

  if (!warmup.empty() && warmup != "half") {
    const std::size_t v = count_token("warmup", warmup, defaults);
    (void)v;
  }
  const var_map default_builtins = builtin_vars(defaults);
  for (const std::string& p : report_params) {
    if (param_override(p, default_builtins).has_value()) continue;
    if (p != "peers" && p != "seeds" && p != "rounds" && p != "seed" &&
        p != "workload") {
      bad("unknown report param \"" + p + "\"");
    }
  }
  if (cells && columns.empty()) {
    bad("\"cells\" requires \"columns\" mode");
  }
  if (cells) {
    // Cell entries serialize cell_key'd axis values as numbers; reject
    // non-numeric tokens here instead of after the first cell's full
    // multi-seed simulation.
    for (const spec_axis& axis : rows) {
      if (axis.cell_key.empty()) continue;
      for (const std::string& token : axis.values) {
        (void)var_numeric(axis.key, token);
      }
    }
    for (const spec_column& col : columns) {
      if (!col.cell_key.empty()) {
        (void)var_numeric(col.cell_key, col.cell_token);
      }
    }
  }
  if (workload.has_value()) {
    // Validates phases / sessions; the period only scales durations.
    // Variables resolve against builtins plus each '$' axis's first
    // value, so a parameterized program is structurally checked too.
    var_map vars = builtin_vars(defaults);
    const auto add_first_value = [&vars](const spec_axis& axis) {
      if (is_workload_var(axis.key) && !axis.values.empty()) {
        vars[axis.key.substr(1)] = axis.values.front();
      }
    };
    if (split.has_value()) add_first_value(split->axis);
    for (const spec_axis& axis : rows) add_first_value(axis);
    // Column `set` entries can carry '$' variables too (a column sweep
    // over a workload parameter); seed each one's first value so such
    // specs validate.
    for (const spec_column& col : columns) {
      for (const auto& [key, token] : col.set) {
        if (is_workload_var(key)) vars.emplace(key.substr(1), token);
      }
    }
    (void)workload::program_from_json(resolve_workload_vars(*workload, vars),
                                      sim::seconds(5));
    if (!warmup.empty()) {
      bad("\"warmup\" has no effect with a \"workload\" (the program "
          "defines the timeline; add a steady phase instead)");
    }
  } else if (trajectories) {
    bad("\"trajectories\" requires a \"workload\"");
  }
  if (trajectory_sample_periods < 0) {
    bad("\"trajectory_sample_periods\" must be >= 0");
  }
}

experiment_spec spec_from_json(const util::json& doc) {
  ensure_keys(doc,
              {"name", "title", "footer", "base", "split", "rows", "columns",
               "probes", "report_params", "warmup", "workload", "trajectories",
               "trajectory_sample_periods", "cells"},
              "spec");
  experiment_spec spec;
  const util::json* name = doc.find("name");
  if (name == nullptr || !name->is_string()) {
    bad("spec needs a string \"name\"");
  }
  spec.name = name->as_string();
  if (const util::json* title = doc.find("title")) {
    if (!title->is_string()) bad("\"title\" must be a string");
    spec.title = title->as_string();
  }
  if (const util::json* footer = doc.find("footer")) {
    if (!footer->is_array()) bad("\"footer\" must be an array of strings");
    for (const util::json& line : footer->array_items()) {
      if (!line.is_string()) bad("\"footer\" must be an array of strings");
      spec.footer.push_back(line.as_string());
    }
  }
  if (const util::json* base = doc.find("base")) {
    spec.base = settings_from_json(*base, "\"base\"");
  }
  if (const util::json* split = doc.find("split")) {
    ensure_keys(*split,
                {"axis", "values", "range", "section", "table_key"},
                "split");
    spec_split s;
    util::json axis_part = util::json::object();
    for (const auto& [key, value] : split->object_items()) {
      if (key == "axis" || key == "values" || key == "range") {
        axis_part[key] = value;
      }
    }
    s.axis = axis_from_json(axis_part, false, "split");
    if (const util::json* section = split->find("section")) {
      if (!section->is_string()) bad("split \"section\" must be a string");
      s.section = section->as_string();
    }
    const util::json* table_key = split->find("table_key");
    if (table_key == nullptr || !table_key->is_string()) {
      bad("split needs a string \"table_key\"");
    }
    s.table_key = table_key->as_string();
    spec.split = std::move(s);
  }
  const util::json* rows = doc.find("rows");
  if (rows == nullptr || !rows->is_array() || rows->size() == 0) {
    bad("spec needs a non-empty \"rows\" array");
  }
  for (const util::json& axis : rows->array_items()) {
    spec.rows.push_back(axis_from_json(axis, true, "row axis"));
  }
  if (const util::json* columns = doc.find("columns")) {
    spec.columns = columns_from_json(*columns);
  }
  if (const util::json* probes = doc.find("probes")) {
    spec.probes = probes_from_json(*probes);
  }
  if (const util::json* params = doc.find("report_params")) {
    if (!params->is_array()) bad("\"report_params\" must be an array");
    for (const util::json& p : params->array_items()) {
      if (!p.is_string()) bad("\"report_params\" entries must be strings");
      spec.report_params.push_back(p.as_string());
    }
  }
  if (const util::json* warmup = doc.find("warmup")) {
    spec.warmup = warmup->is_string() ? warmup->as_string() : token_of(*warmup);
  }
  if (const util::json* workload = doc.find("workload")) {
    spec.workload = *workload;
  }
  if (const util::json* t = doc.find("trajectories")) {
    if (!t->is_bool()) bad("\"trajectories\" must be a bool");
    spec.trajectories = t->as_bool();
  }
  if (const util::json* c = doc.find("cells")) {
    if (!c->is_bool()) bad("\"cells\" must be a bool");
    spec.cells = c->as_bool();
  }
  if (const util::json* n = doc.find("trajectory_sample_periods")) {
    if (!n->is_int()) bad("\"trajectory_sample_periods\" must be an integer");
    spec.trajectory_sample_periods = static_cast<int>(n->as_int());
  }
  spec.validate();
  return spec;
}

namespace {

util::json axis_to_json(const spec_axis& axis) {
  util::json j = util::json::object();
  j["axis"] = axis.key;
  if (!axis.header.empty()) j["header"] = axis.header;
  if (!axis.cell_key.empty()) j["cell_key"] = axis.cell_key;
  util::json values = util::json::array();
  for (const std::string& v : axis.values) values.push_back(v);
  j["values"] = std::move(values);
  return j;
}

util::json settings_to_json(const std::vector<spec_setting>& settings) {
  util::json j = util::json::object();
  for (const auto& [key, token] : settings) j[key] = token;
  return j;
}

}  // namespace

util::json spec_to_json(const experiment_spec& spec) {
  util::json doc = util::json::object();
  doc["name"] = spec.name;
  if (!spec.title.empty()) doc["title"] = spec.title;
  if (!spec.footer.empty()) {
    util::json footer = util::json::array();
    for (const std::string& line : spec.footer) footer.push_back(line);
    doc["footer"] = std::move(footer);
  }
  if (!spec.base.empty()) doc["base"] = settings_to_json(spec.base);
  if (!spec.warmup.empty()) doc["warmup"] = spec.warmup;
  if (spec.split.has_value()) {
    util::json split = axis_to_json(spec.split->axis);
    if (!spec.split->section.empty()) split["section"] = spec.split->section;
    split["table_key"] = spec.split->table_key;
    doc["split"] = std::move(split);
  }
  util::json rows = util::json::array();
  for (const spec_axis& axis : spec.rows) rows.push_back(axis_to_json(axis));
  doc["rows"] = std::move(rows);
  if (!spec.columns.empty()) {
    util::json columns = util::json::array();
    for (const spec_column& col : spec.columns) {
      util::json c = util::json::object();
      c["header"] = col.header;
      switch (col.k) {
        case spec_column::kind::probe:
          c["probe"] = col.probe;
          if (!col.set.empty()) c["set"] = settings_to_json(col.set);
          if (!col.cell_key.empty()) {
            c["cell_key"] = col.cell_key;
            c["cell_value"] = col.cell_token;
          }
          break;
        case spec_column::kind::ratio: {
          util::json ratio = util::json::array();
          ratio.push_back(col.ratio_num);
          ratio.push_back(col.ratio_den);
          c["ratio"] = std::move(ratio);
          break;
        }
        case spec_column::kind::row_value:
          c["row_value"] = true;
          break;
      }
      if (col.precision != 1) c["precision"] = col.precision;
      columns.push_back(std::move(c));
    }
    doc["columns"] = std::move(columns);
  }
  if (!spec.probes.empty()) {
    util::json probes = util::json::array();
    for (const spec_probe& p : spec.probes) {
      util::json entry = util::json::object();
      entry["probe"] = p.probe;
      entry["header"] = p.header;
      if (p.precision != 1) entry["precision"] = p.precision;
      probes.push_back(std::move(entry));
    }
    doc["probes"] = std::move(probes);
  }
  if (!spec.report_params.empty()) {
    util::json params = util::json::array();
    for (const std::string& p : spec.report_params) params.push_back(p);
    doc["report_params"] = std::move(params);
  }
  if (spec.workload.has_value()) doc["workload"] = *spec.workload;
  if (spec.trajectories) doc["trajectories"] = true;
  if (spec.cells) doc["cells"] = true;
  if (spec.trajectory_sample_periods != 0) {
    doc["trajectory_sample_periods"] = spec.trajectory_sample_periods;
  }
  return doc;
}

experiment_spec load_spec_file(const std::string& path) {
  return spec_from_json(util::load_json_file(path));
}

// --- execution ---------------------------------------------------------------

namespace {

/// Per-run context shared by every cell of the study.
struct spec_execution {
  const experiment_spec& spec;
  const spec_options& opt;
  int warmup = 0;   ///< warm-up rounds before the traffic reset
  int measure = 0;  ///< measured rounds (rounds - warmup)
  bool capture = false;
  /// The cell's workload document with variables resolved (null when the
  /// spec has none); updated by the row loop before each sweep.
  const util::json* workload_doc = nullptr;

  /// Simulates one cell at one seed and evaluates `probe_names` on the
  /// final state. The probe-visible window is the measured span.
  std::vector<double> run_once(experiment_config cfg, std::uint64_t seed,
                               std::span<const std::string> probe_names,
                               util::json* trajectory) const {
    cfg.seed = seed;
    scenario world(cfg);
    sim::sim_time window = 0;
    if (workload_doc != nullptr) {
      const sim::sim_time period = cfg.gossip.shuffle_period;
      workload::program prog =
          workload::program_from_json(*workload_doc, period);
      window = prog.total_duration();
      workload::engine_options eopt;
      if (spec.trajectory_sample_periods > 0) {
        eopt.sample_interval = spec.trajectory_sample_periods * period;
      }
      workload::engine eng(world, std::move(prog), eopt);
      eng.run();
      if (trajectory != nullptr) {
        *trajectory = workload::to_json(eng.trajectory());
      }
    } else {
      // Matches the hand-rolled benches exactly: a plain
      // run_periods(rounds) without warm-up, or Fig. 7's warm-up +
      // traffic reset + steady-state window.
      if (warmup > 0) {
        world.run_periods(warmup);
        world.transport().reset_traffic();
      }
      world.run_periods(measure);
      window = measure * cfg.gossip.shuffle_period;
    }
    const metrics::reachability_oracle oracle = world.oracle();
    const metrics::probe_context ctx{world, oracle, window};
    return metrics::run_probes(probe_names, ctx);
  }

  /// One multi-seed sweep of a cell; fills `per_seed` with trajectories
  /// when capture is on.
  std::vector<seed_aggregate> sweep(const experiment_config& cfg,
                                    std::span<const std::string> probe_names,
                                    util::json* per_seed) const {
    const run_options ropt{opt.threads};
    if (!capture) {
      return run_seeds_multi(
          opt.seeds, opt.seed, probe_names.size(),
          [&](std::uint64_t seed) {
            return run_once(cfg, seed, probe_names, nullptr);
          },
          ropt);
    }
    multi_seed_result result = run_seeds_multi_captured(
        opt.seeds, opt.seed, probe_names.size(),
        [&](std::uint64_t seed, util::json& capture_slot) {
          return run_once(cfg, seed, probe_names, &capture_slot);
        },
        ropt);
    if (per_seed != nullptr) {
      *per_seed = util::json::array();
      for (util::json& c : result.captures) {
        per_seed->push_back(std::move(c));
      }
    }
    return result.aggregates;
  }
};

/// Iterates the cartesian product of the row axes (last axis fastest,
/// like the nested loops of the hand-rolled benches).
template <typename Fn>
void for_each_row(const std::vector<spec_axis>& axes, Fn&& fn) {
  std::vector<std::size_t> index(axes.size(), 0);
  for (;;) {
    fn(index);
    std::size_t a = axes.size();
    for (;;) {
      if (a == 0) return;
      --a;
      if (++index[a] < axes[a].values.size()) break;
      index[a] = 0;
    }
  }
}

}  // namespace

util::json run_spec(const experiment_spec& spec, const spec_options& opt,
                    std::ostream& out) {
  spec.validate();

  out << "# " << spec.title << "\n"
      << "# n=" << opt.peers << " seeds=" << opt.seeds
      << " rounds=" << opt.rounds << " views={" << opt.view_a << ","
      << opt.view_b << "}"
      << (opt.full ? " (paper scale)"
                   : " (reduced scale; --full for paper scale)")
      << "\n";

  const var_map builtins = builtin_vars(opt);

  workload::bench_report report(spec.name);
  for (const std::string& p : spec.report_params) {
    if (auto kv = param_override(p, builtins)) {
      report.param(kv->first, std::move(kv->second));
      continue;
    }
    if (p == "peers") {
      report.param("peers", opt.peers);
    } else if (p == "seeds") {
      report.param("seeds", opt.seeds);
    } else if (p == "rounds") {
      report.param("rounds", opt.rounds);
    } else if (p == "seed") {
      report.param("seed", opt.seed);
    } else if (p == "workload") {
      const util::json* name =
          spec.workload.has_value() ? spec.workload->find("name") : nullptr;
      report.param("workload",
                   name != nullptr && name->is_string() ? *name : util::json());
    }
  }

  spec_execution exec{spec, opt};
  if (spec.warmup == "half") {
    exec.warmup = opt.rounds / 2;
  } else if (!spec.warmup.empty()) {
    exec.warmup = static_cast<int>(count_token("warmup", spec.warmup, opt));
  }
  if (exec.warmup > opt.rounds) exec.warmup = opt.rounds;
  exec.measure = opt.rounds - exec.warmup;
  exec.capture = spec.workload.has_value() &&
                 (spec.trajectories || opt.trajectories);

  // Base config: driver options first (exactly bench::base_config), then
  // the spec's own overrides. '$'-keys accumulate as workload variables
  // instead of touching the config.
  var_map base_vars = builtins;
  const auto apply_or_var = [&opt](experiment_config& cfg, var_map& vars,
                                   const std::string& key,
                                   const std::string& token) -> std::string {
    if (is_workload_var(key)) {
      vars[key.substr(1)] = token;
      return token;
    }
    return apply_setting(cfg, key, token, opt);
  };
  experiment_config base_cfg;
  base_cfg.peer_count = opt.peers;
  base_cfg.gossip.view_size = opt.view_a;
  base_cfg.shards = opt.shards;
  apply_setting(base_cfg, "latency_model", opt.latency_model, opt);
  base_cfg.latency = sim::millis(opt.latency_ms);
  base_cfg.latency_max = sim::millis(opt.latency_max_ms);
  base_cfg.latency_sigma = opt.latency_sigma;
  for (const auto& [key, token] : spec.base) {
    apply_or_var(base_cfg, base_vars, key, token);
  }

  // Probe-name list of the shared-run ("probes") mode.
  std::vector<std::string> shared_probes;
  for (const spec_probe& p : spec.probes) shared_probes.push_back(p.probe);

  util::json trajectories = util::json::array();
  util::json cells_json = util::json::array();

  const std::vector<std::string> split_tokens =
      spec.split.has_value() ? spec.split->axis.values
                             : std::vector<std::string>{std::string()};
  for (const std::string& split_token : split_tokens) {
    experiment_config split_cfg = base_cfg;
    var_map split_vars = base_vars;
    std::string split_label;
    std::string table_key;
    if (spec.split.has_value()) {
      split_label = apply_or_var(split_cfg, split_vars, spec.split->axis.key,
                                 split_token);
      table_key = subst_braces(spec.split->table_key, split_label);
      if (!spec.split->section.empty()) {
        out << "\n" << subst_braces(spec.split->section, split_label) << "\n";
      }
    }

    std::vector<std::string> headers;
    for (const spec_axis& axis : spec.rows) {
      headers.push_back(subst_views(axis.header, opt));
    }
    for (const spec_column& col : spec.columns) {
      headers.push_back(subst_views(col.header, opt));
    }
    for (const spec_probe& p : spec.probes) {
      headers.push_back(subst_views(p.header, opt));
    }
    text_table table(std::move(headers));

    for_each_row(spec.rows, [&](const std::vector<std::size_t>& index) {
      experiment_config row_cfg = split_cfg;
      var_map row_vars = split_vars;
      std::vector<std::string> cells;
      for (std::size_t a = 0; a < spec.rows.size(); ++a) {
        cells.push_back(apply_or_var(row_cfg, row_vars, spec.rows[a].key,
                                     spec.rows[a].values[index[a]]));
      }
      const std::vector<std::string> row_labels = cells;

      // The row's workload document, variables resolved; column-level
      // '$' settings would need per-column resolution, which no spec
      // uses yet — rows and split are the sweepable workload dimensions.
      util::json resolved_workload;
      if (spec.workload.has_value()) {
        resolved_workload = resolve_workload_vars(*spec.workload, row_vars);
        exec.workload_doc = &resolved_workload;
      }

      /// `cells` mode: one entry per probe column, carrying each
      /// cell_key'd axis value plus the full multi-seed aggregate.
      const auto record_cell = [&](const spec_column& col,
                                   const std::vector<seed_aggregate>& aggs) {
        if (!spec.cells) return;
        util::json& entry = cells_json.push_back(util::json::object());
        if (!table_key.empty()) entry["table"] = table_key;
        for (std::size_t a = 0; a < spec.rows.size(); ++a) {
          const spec_axis& axis = spec.rows[a];
          if (axis.cell_key.empty()) continue;
          const std::string& token = axis.values[index[a]];
          entry[axis.cell_key] = var_value(var_numeric(axis.key, token));
        }
        if (!col.cell_key.empty()) {
          entry[col.cell_key] =
              var_value(var_numeric(col.cell_key, col.cell_token));
        }
        entry[col.probe] = workload::to_json(aggs[0]);
      };

      const auto record_trajectory = [&](util::json per_seed,
                                         const std::string& column) {
        if (per_seed.is_null()) return;
        util::json& entry = trajectories.push_back(util::json::object());
        if (!table_key.empty()) entry["table"] = table_key;
        util::json row = util::json::array();
        for (const std::string& label : row_labels) row.push_back(label);
        entry["row"] = std::move(row);
        if (!column.empty()) entry["column"] = column;
        entry["per_seed"] = std::move(per_seed);
      };

      if (!spec.columns.empty()) {
        std::vector<double> means(spec.columns.size(), 0.0);
        for (std::size_t j = 0; j < spec.columns.size(); ++j) {
          const spec_column& col = spec.columns[j];
          switch (col.k) {
            case spec_column::kind::probe: {
              experiment_config cfg = row_cfg;
              var_map col_vars = row_vars;
              bool col_has_vars = false;
              for (const auto& [key, token] : col.set) {
                col_has_vars = col_has_vars || is_workload_var(key);
                apply_or_var(cfg, col_vars, key, token);
              }
              util::json col_workload;
              if (col_has_vars && spec.workload.has_value()) {
                col_workload = resolve_workload_vars(*spec.workload, col_vars);
                exec.workload_doc = &col_workload;
              }
              const std::vector<std::string> names{col.probe};
              util::json per_seed;
              const std::vector<seed_aggregate> aggs =
                  exec.sweep(cfg, names, exec.capture ? &per_seed : nullptr);
              if (col_has_vars && spec.workload.has_value()) {
                exec.workload_doc = &resolved_workload;
              }
              record_trajectory(std::move(per_seed),
                                subst_views(col.header, opt));
              record_cell(col, aggs);
              means[j] = aggs[0].stats.mean;
              cells.push_back(fmt(means[j], col.precision));
              break;
            }
            case spec_column::kind::ratio: {
              const double num = means[static_cast<std::size_t>(col.ratio_num)];
              const double den = means[static_cast<std::size_t>(col.ratio_den)];
              cells.push_back(fmt(den > 0 ? num / den : 0.0, col.precision));
              break;
            }
            case spec_column::kind::row_value:
              cells.push_back(row_labels.front());
              break;
          }
        }
      } else {
        util::json per_seed;
        const std::vector<seed_aggregate> aggs = exec.sweep(
            row_cfg, shared_probes, exec.capture ? &per_seed : nullptr);
        record_trajectory(std::move(per_seed), std::string());
        for (std::size_t k = 0; k < spec.probes.size(); ++k) {
          cells.push_back(fmt(aggs[k].stats.mean, spec.probes[k].precision));
        }
      }
      table.add_row(std::move(cells));
    });

    if (opt.csv) {
      table.print_csv(out);
    } else {
      table.print(out);
    }
    if (spec.split.has_value()) {
      report.add_table(table_key, table);
    } else {
      report.add("table", workload::to_json(table));
    }
  }

  if (!spec.footer.empty()) {
    out << "\n";
    for (const std::string& line : spec.footer) out << line << "\n";
  }
  if (spec.cells) report.add("cells", std::move(cells_json));
  if (exec.capture && trajectories.size() > 0) {
    report.add("trajectories", std::move(trajectories));
  }
  report.save(opt.json);
  return report.doc();
}

}  // namespace nylon::runtime
