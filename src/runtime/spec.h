// "Experiment as data": a runtime::experiment_spec declares a whole
// figure-style study — base experiment_config overrides, swept axes
// (natted fraction, view size, protocol, latency model, hole TTL, NAT
// mix, ...), which metrics::probe measurements to record, an optional
// named workload::program, and how the result tables / BENCH_*.json
// documents are laid out. One driver (bench/nylon_exp.cpp) executes any
// spec via the multi-seed runner; specs are buildable programmatically or
// loadable from JSON files (examples/specs/*.json). The ported figure
// benches (fig2/fig3/fig4/fig7/fig8/fig9/fig10, the ablations, the §2.2
// traversal table and the §5 correctness study) are pinned byte-identical
// to their hand-rolled pre-spec mains by tests/integration/
// spec_equivalence_test.cpp.
//
// Probe taxonomy (metrics::probe): scalar probes fill cells directly;
// per_class probes need a "class" key, distribution probes a "stat";
// check probes render verdict cells in static specs or ride a "checks"
// list, with verdicts emitted under "checks" in the BENCH json and an
// optional pass/fail "verdict" line on stdout.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/json.h"

namespace nylon::runtime {

/// One key=value configuration override, kept as raw tokens: values
/// resolve at run time, so "$view_a"/"$view_b" can refer to the options
/// the driver was launched with (matching the legacy --view-a/--view-b
/// flags). Keys starting with '$' are workload variables; keys starting
/// with '%' are probe parameters (passed to the probes via
/// probe_context::params instead of touching the config).
using spec_setting = std::pair<std::string, std::string>;

/// One swept dimension of a study. Keys are either config keys
/// ("natted_pct", "protocol", ...) or — when they start with '$' —
/// *workload variables*: the axis value does not touch the config but is
/// substituted into the spec's workload JSON wherever a string value
/// references it ("$departures", optionally "$departures/100" to scale),
/// which is how a row axis can sweep a workload parameter like Fig. 10's
/// departure fraction. '%'-keys sweep a probe parameter the same way
/// (the §2.2 table's NAT-type axes).
struct spec_axis {
  std::string key;                  ///< e.g. "natted_pct", "$departures"
  std::string header;               ///< row-label column header
  std::vector<std::string> values;  ///< raw tokens ("40", "$view_a", "nylon")
  /// When set, the axis contributes a `cell_key: <numeric value>` field
  /// to each entry of the per-cell aggregate table (`cells` mode).
  std::string cell_key;
};

/// One table column in "columns" mode (each probe column is its own
/// scenario sweep, like the hand-rolled benches that ran run_seeds once
/// per column).
struct spec_column {
  enum class kind : std::uint8_t {
    probe,      ///< run a scenario per row and evaluate one probe
    ratio,      ///< earlier probe column divided by another (e.g. Fig. 7)
    row_value,  ///< echo the first row label (Fig. 4's "uniform (ideal)")
  };
  kind k = kind::probe;
  std::string header;              ///< may reference $view_a / $view_b
  std::vector<spec_setting> set;   ///< config overrides for this column
  std::string probe;               ///< probe name (kind::probe)
  std::string cls;                 ///< per_class selection ("class")
  std::string stat;                ///< distribution stat selection
  int ratio_num = -1;              ///< numerator column index (kind::ratio)
  int ratio_den = -1;              ///< denominator column index
  int precision = 1;               ///< table cell decimals
  /// `cells` mode: the column's contribution to each cell entry
  /// (populated by a sweep column's axis `cell_key` + value token).
  std::string cell_key;
  std::string cell_token;
};

/// One probe column in "probes" mode: all probes of a row share a single
/// scenario run (like the hand-rolled run_seeds_multi benches). Entries
/// with `ratio_num >= 0` are computed from earlier entries' means (the
/// Fig. 8 public/natted column) and run nothing themselves.
struct spec_probe {
  std::string probe;  ///< empty for ratio entries
  std::string header;
  std::string cls;    ///< per_class selection ("class")
  std::string stat;   ///< distribution stat selection
  int ratio_num = -1;
  int ratio_den = -1;
  int precision = 1;
};

/// One entry of the "checks" list: a check probe evaluated on the shared
/// run of every row (probes mode), verdicts recorded under "checks" in
/// the JSON report without touching the printed table.
struct spec_check {
  std::string probe;
  std::string name;  ///< report label; defaults to the probe name
};

/// Pass/fail stdout line printed after the footer when the spec carries
/// checks (the §2.2 table's "verification: ..." line).
struct spec_verdict {
  std::string pass;
  std::string fail;
};

/// A named per-spec override set ("profiles": {"full": ...}), selected
/// by `nylon_exp --profile NAME`. Replaces the old global --full flag:
/// each spec declares its own paper-scale parameters, including
/// overrides of the builtin workload variables ($rounds/$half_rounds) —
/// Fig. 10's paper run is warmup 500 / heal 1500, which no global
/// rounds value can express. Explicitly-given command-line flags beat
/// profile values.
struct spec_profile {
  std::optional<std::int64_t> peers;
  std::optional<std::int64_t> seeds;
  std::optional<std::int64_t> rounds;
  std::optional<std::int64_t> view_a;
  std::optional<std::int64_t> view_b;
  /// Workload/builtin variable overrides, e.g. {"half_rounds", "500"}.
  std::vector<spec_setting> vars;
};

/// Emits one table per axis value (Fig. 2's per-view-size tables).
struct spec_split {
  spec_axis axis;         ///< header unused
  std::string section;    ///< stdout heading; "{}" replaced by the value
  std::string table_key;  ///< JSON key under "tables"; "{}" replaced
};

/// Sim-time health timeline ("timeline" key): selected probe columns
/// evaluated every `period_s` of *simulated* time on every cell run,
/// recorded per seed and emitted under "timeline" in the JSON report
/// (plus CSV / Perfetto counter tracks via the driver flags). Columns
/// are selector tokens — "alive_count", "drop_count.nat_filtered"
/// (per_class probes take ".<class>"), "in_degree.cv" (distribution
/// probes take ".<stat>") — or "obs.<counter>" for a runtime telemetry
/// counter ("obs.arena_bytes_peak"). Only passive (rng-free) probes
/// may ride a timeline; sampling is observation-only and digest-neutral
/// (DESIGN.md "Observability & the determinism contract").
struct spec_timeline {
  bool enabled = false;
  double period_s = 0.0;
  std::vector<std::string> probes;
};

/// A full declarative study.
struct experiment_spec {
  std::string name;                  ///< bench_report name ("fig3_stale")
  std::string title;                 ///< preamble line
  /// Literal preamble lines replacing the standard "# title / # n=..."
  /// preamble entirely (the §2.2 table's custom header). Exclusive with
  /// `title`.
  std::vector<std::string> preamble;
  std::vector<std::string> footer;   ///< comment lines printed after tables
  std::vector<spec_setting> base;    ///< config overrides under every cell
  std::optional<spec_split> split;
  std::vector<spec_axis> rows;       ///< cartesian row axes, outer first
  std::vector<spec_column> columns;  ///< exclusive with `probes`
  std::vector<spec_probe> probes;
  /// Check probes evaluated on each row's shared run (probes mode).
  std::vector<spec_check> checks;
  std::optional<spec_verdict> verdict;
  /// Named override sets selectable with --profile.
  std::vector<std::pair<std::string, spec_profile>> profiles;
  /// Run parameters echoed under "params" in the JSON report, in order.
  /// Either a builtin (peers, seeds, rounds, seed, workload) or a
  /// "name=$var" / "name=literal" entry ("warmup_periods=$half_rounds"),
  /// where $var is a builtin workload variable ($rounds, $half_rounds,
  /// or a profile-defined variable).
  std::vector<std::string> report_params;
  /// Emit a per-cell aggregate table under "cells" in the JSON report
  /// (columns mode): one entry per (row, probe-column) cell carrying the
  /// axes' `cell_key` values plus the full multi-seed aggregate — the
  /// Fig. 10 per-cell form.
  bool cells = false;
  /// Emit full distribution summaries (count/mean/stddev/min/max and
  /// quantiles when retained) under "distributions" for every
  /// distribution-probe entry (probes mode; each summary field is
  /// seed-aggregated like any metric).
  bool distributions = false;
  /// No simulation at all: every cell is a world-free probe evaluation
  /// (probes with needs_world == false — the §2.2 traversal table).
  bool static_eval = false;
  /// One run at the raw base seed per cell, no multi-seed derivation —
  /// the legacy §5 correctness form (--seeds is ignored).
  bool single_seed = false;
  /// "": no warm-up. "half": rounds/2 warm-up + traffic reset (Fig. 7's
  /// steady-state window). An integer literal: that many warm-up rounds.
  std::string warmup;
  /// Optional workload::program (program_from_json form). When set, it
  /// replaces the plain run_periods(rounds) simulation of each cell.
  std::optional<util::json> workload;
  /// Record per-seed workload trajectories into the JSON report
  /// (requires `workload`; heavy, so opt-in).
  bool trajectories = false;
  /// > 0: trajectory snapshots every N periods inside phases (otherwise
  /// phase boundaries only).
  int trajectory_sample_periods = 0;
  /// Sim-time health timeline (see spec_timeline).
  spec_timeline timeline;

  /// Structural validation (axis keys, probe names and selector
  /// kinds, ratio references, warmup literal, workload shape, profile
  /// values, static/check constraints). Throws nylon::contract_error.
  void validate() const;
};

/// Parses a spec document; unknown keys and malformed entries throw
/// nylon::contract_error with the offending key in the message. The
/// returned spec is already validate()d.
[[nodiscard]] experiment_spec spec_from_json(const util::json& doc);

/// Serializes a spec back to JSON (column sweeps and value ranges are
/// emitted in expanded form). spec_from_json(spec_to_json(s)) is
/// equivalent to s.
[[nodiscard]] util::json spec_to_json(const experiment_spec& spec);

/// Loads and parses a spec file (throws std::runtime_error on I/O
/// failure, json_parse_error / contract_error on bad content).
[[nodiscard]] experiment_spec load_spec_file(const std::string& path);

/// Execution knobs, mirroring the legacy bench command line.
struct spec_options {
  std::size_t peers = 600;
  int seeds = 1;
  int rounds = 100;
  std::size_t view_a = 8;   ///< resolves $view_a (paper: 15)
  std::size_t view_b = 15;  ///< resolves $view_b (paper: 27)
  bool csv = false;
  std::uint64_t seed = 1;
  int threads = 0;          ///< seed-level parallelism (0 = all cores)
  std::size_t shards = 0;   ///< per-universe shards (0 = serial engine)
  std::string window_mode = "adaptive";  ///< static | adaptive (sharded)
  std::string json;         ///< write BENCH_*.json here ("" = off)
  std::string transport = "sim";  ///< sim | sim-frames | udp
  double udp_time_scale = 0.0;    ///< udp pacing (0 = config default)
  std::string latency_model = "fixed";  ///< fixed | uniform | lognormal
  std::int64_t latency_ms = 50;
  std::int64_t latency_max_ms = 50;
  double latency_sigma = 0.25;
  bool trajectories = false;  ///< force-enable trajectory capture
  /// Force-enable the sim-time health timeline even when the spec does
  /// not declare one (a default passive column set is used then).
  bool timeline = false;
  /// Overrides the timeline sampling period in sim seconds (0 = the
  /// spec's own period, or 5 s when force-enabled without one).
  double timeline_period_s = 0.0;
  /// Writes the timeline as long-form CSV here ("" = off):
  /// `cell,seed,t_s,<col>,...`, one line per sample.
  std::string timeline_csv;
  /// Name of the spec profile to apply ("" = none). Unknown names throw.
  std::string profile;
  /// Explicitly-given command-line flags beat profile values; the
  /// driver marks which scale options the user actually set. An
  /// explicit --rounds also disables profile overrides of the
  /// rounds-derived builtins ($rounds / $half_rounds).
  bool peers_explicit = false;
  bool seeds_explicit = false;
  bool rounds_explicit = false;
  bool view_a_explicit = false;
  bool view_b_explicit = false;
};

/// Executes the spec: prints the preamble, tables (or CSV) and footer to
/// `out` exactly like the hand-rolled benches did, writes the JSON report
/// to opt.json when set, and returns the report document. Check verdicts
/// (when the spec has any) land under "checks"; all_checks_passed() says
/// whether the driver should exit non-zero.
util::json run_spec(const experiment_spec& spec, const spec_options& opt,
                    std::ostream& out);

/// True when `report` (a run_spec result) has no failed check entries.
[[nodiscard]] bool all_checks_passed(const util::json& report);

}  // namespace nylon::runtime
