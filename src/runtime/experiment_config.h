// All knobs of one simulated deployment, defaulted to the paper's §5
// experimental settings.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/peer_factory.h"
#include "gossip/policies.h"
#include "nat/deployment.h"
#include "sim/shard_engine.h"
#include "sim/time.h"

namespace nylon::runtime {

/// How datagrams physically travel between peers.
enum class transport_kind : std::uint8_t {
  sim,         ///< in-memory payload structs through the event queue
  sim_frames,  ///< serialized wire frames through the event queue
               ///< (byte-identical digests to `sim` — the round trip is
               ///< lossless and encode/decode consume no randomness)
  udp,         ///< real loopback UDP sockets, wall-clock paced
               ///< (serial engine only; its own timing stream)
};

[[nodiscard]] std::string_view to_string(transport_kind k) noexcept;

/// Configuration of one experiment run (one seed).
struct experiment_config {
  /// Population size (paper: 10,000; benches default lower — see flags).
  std::size_t peer_count = 10000;
  /// Fraction of peers behind NATs (the x-axis of most figures).
  double natted_fraction = 0.5;
  /// NAT-type mix among natted peers (paper: 50/40/10 RC/PRC/SYM for the
  /// Nylon experiments, 100% PRC for the §3 baselines).
  nat::nat_mix mix = nat::paper_mix();
  /// Which protocol the peers run.
  core::protocol_kind protocol = core::protocol_kind::nylon;
  /// Gossip dimensions: view size, selection, propagation, merge, period.
  gossip::protocol_config gossip;
  /// Shape of the one-way delay distribution. `fixed` is the paper's
  /// model; `uniform` draws from [latency, latency_max]; `lognormal`
  /// uses `latency` as the median with log-space shape `latency_sigma`
  /// (heavy-tailed, the empirical internet shape).
  enum class latency_kind : std::uint8_t { fixed, uniform, lognormal };
  latency_kind latency_model = latency_kind::fixed;
  /// One-way message latency (paper: 50 ms). Fixed value, uniform lower
  /// bound, or lognormal median depending on `latency_model`.
  sim::sim_time latency = sim::millis(50);
  /// Upper bound of the uniform latency model (ignored otherwise).
  sim::sim_time latency_max = sim::millis(50);
  /// Log-space sigma of the lognormal model (ignored otherwise).
  double latency_sigma = 0.25;
  /// NAT mapping / rule lifetime (paper: 90 s).
  sim::sim_time hole_timeout = sim::seconds(90);
  /// Optional packet loss (paper: 0).
  double loss_rate = 0.0;
  /// Master seed of this run.
  std::uint64_t seed = 1;
  /// 0 (default): the classic serial engine — one scheduler, one shared
  /// rng, golden-digest pinned. K >= 1: the sharded universe engine —
  /// peers partitioned across K shards by node_id, per-peer rng streams,
  /// K worker threads in lockstep epochs. Output is byte-identical for
  /// every K >= 1 (its own deterministic stream, distinct from the
  /// serial engine's — see DESIGN.md "Sharded determinism contract").
  /// Requires a latency model with min_delay() >= 1 ms.
  std::size_t shards = 0;
  /// Epoch-width policy of the sharded engine (ignored when shards == 0).
  /// `adaptive` sizes each epoch from the earliest pending event across
  /// shards plus the transport's live lookahead, so quiet stretches cross
  /// in one stride; `static_window` is the fixed min-latency stride. The
  /// two produce byte-identical digests (DESIGN.md "Sharded determinism
  /// contract") — this knob is performance-only.
  sim::window_mode window_mode = sim::window_mode::adaptive;
  /// Which carrier moves the datagrams (see transport_kind). `udp`
  /// requires shards == 0.
  transport_kind transport = transport_kind::sim;
  /// UDP pacing: wall seconds per simulated second (net/udp_backend.h).
  double udp_time_scale = 0.02;

  /// Throws nylon::contract_error on invalid combinations.
  void validate() const;
};

}  // namespace nylon::runtime
