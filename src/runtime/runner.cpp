#include "runtime/runner.h"

#include "util/contracts.h"
#include "util/rng.h"

namespace nylon::runtime {

seed_aggregate run_seeds(
    int seed_count, std::uint64_t base_seed,
    const std::function<double(std::uint64_t seed)>& experiment) {
  NYLON_EXPECTS(seed_count > 0);
  seed_aggregate out;
  out.values.reserve(static_cast<std::size_t>(seed_count));
  for (int i = 0; i < seed_count; ++i) {
    out.values.push_back(
        experiment(util::derive_seed(base_seed, static_cast<std::uint64_t>(i))));
  }
  out.stats = util::summarize(out.values);
  return out;
}

std::vector<seed_aggregate> run_seeds_multi(
    int seed_count, std::uint64_t base_seed, std::size_t metric_count,
    const std::function<std::vector<double>(std::uint64_t seed)>& experiment) {
  NYLON_EXPECTS(seed_count > 0);
  NYLON_EXPECTS(metric_count > 0);
  std::vector<seed_aggregate> out(metric_count);
  for (int i = 0; i < seed_count; ++i) {
    const std::vector<double> metrics =
        experiment(util::derive_seed(base_seed, static_cast<std::uint64_t>(i)));
    NYLON_EXPECTS(metrics.size() == metric_count);
    for (std::size_t m = 0; m < metric_count; ++m) {
      out[m].values.push_back(metrics[m]);
    }
  }
  for (seed_aggregate& agg : out) agg.stats = util::summarize(agg.values);
  return out;
}

}  // namespace nylon::runtime
