#include "runtime/runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/trace.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace nylon::runtime {

namespace {

/// Runs `body(i)` for every i in [0, count), either inline or across a
/// worker pool claiming indices from a shared counter. The first
/// exception (by completion order) is rethrown after all workers join.
void for_each_index(int count, int threads,
                    const std::function<void(int)>& body) {
  if (threads <= 1) {
    for (int i = 0; i < count; ++i) {
      const obs::trace_span span("seed");
      body(i);
    }
    return;
  }
  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        const obs::trace_span span("seed");
        body(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace

int resolve_threads(const run_options& opt, int seed_count) {
  NYLON_EXPECTS(opt.threads >= 0);
  int threads = opt.threads;
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  // A sharded universe spawns `shards` workers of its own; budget the
  // concurrent seeds so seeds × shards stays within the thread target
  // (one sharded seed always gets to run, even over budget).
  const int per_seed =
      static_cast<int>(std::max<std::size_t>(std::size_t{1}, opt.shards));
  const int workers = std::max(1, threads / per_seed);
  return std::min(workers, seed_count);
}

seed_aggregate run_seeds(
    int seed_count, std::uint64_t base_seed,
    const std::function<double(std::uint64_t seed)>& experiment,
    run_options opt) {
  NYLON_EXPECTS(seed_count > 0);
  seed_aggregate out;
  out.values.resize(static_cast<std::size_t>(seed_count));
  for_each_index(seed_count, resolve_threads(opt, seed_count), [&](int i) {
    out.values[static_cast<std::size_t>(i)] =
        experiment(util::derive_seed(base_seed, static_cast<std::uint64_t>(i)));
  });
  out.stats = util::summarize(out.values);
  return out;
}

std::vector<seed_aggregate> run_seeds_multi(
    int seed_count, std::uint64_t base_seed, std::size_t metric_count,
    const std::function<std::vector<double>(std::uint64_t seed)>& experiment,
    run_options opt) {
  NYLON_EXPECTS(seed_count > 0);
  NYLON_EXPECTS(metric_count > 0);
  std::vector<seed_aggregate> out(metric_count);
  for (seed_aggregate& agg : out) {
    agg.values.resize(static_cast<std::size_t>(seed_count));
  }
  for_each_index(seed_count, resolve_threads(opt, seed_count), [&](int i) {
    const std::vector<double> metrics =
        experiment(util::derive_seed(base_seed, static_cast<std::uint64_t>(i)));
    NYLON_EXPECTS(metrics.size() == metric_count);
    for (std::size_t m = 0; m < metric_count; ++m) {
      out[m].values[static_cast<std::size_t>(i)] = metrics[m];
    }
  });
  for (seed_aggregate& agg : out) agg.stats = util::summarize(agg.values);
  return out;
}

multi_seed_result run_seeds_multi_captured(
    int seed_count, std::uint64_t base_seed, std::size_t metric_count,
    const std::function<std::vector<double>(std::uint64_t seed,
                                            util::json& capture)>& experiment,
    run_options opt) {
  NYLON_EXPECTS(seed_count > 0);
  NYLON_EXPECTS(metric_count > 0);
  multi_seed_result out;
  out.aggregates.resize(metric_count);
  for (seed_aggregate& agg : out.aggregates) {
    agg.values.resize(static_cast<std::size_t>(seed_count));
  }
  out.captures.resize(static_cast<std::size_t>(seed_count));
  for_each_index(seed_count, resolve_threads(opt, seed_count), [&](int i) {
    const std::vector<double> metrics = experiment(
        util::derive_seed(base_seed, static_cast<std::uint64_t>(i)),
        out.captures[static_cast<std::size_t>(i)]);
    NYLON_EXPECTS(metrics.size() == metric_count);
    for (std::size_t m = 0; m < metric_count; ++m) {
      out.aggregates[m].values[static_cast<std::size_t>(i)] = metrics[m];
    }
  });
  for (seed_aggregate& agg : out.aggregates) {
    agg.stats = util::summarize(agg.values);
  }
  return out;
}

}  // namespace nylon::runtime
