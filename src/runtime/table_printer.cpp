#include "runtime/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/contracts.h"

namespace nylon::runtime {

text_table::text_table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  NYLON_EXPECTS(!headers_.empty());
}

void text_table::add_row(std::vector<std::string> cells) {
  NYLON_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void text_table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void text_table::print_csv(std::ostream& os) const {
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace nylon::runtime
