// Spec-vs-legacy equivalence guard: the six figure/ablation benches that
// were ported from hand-rolled mains to declarative specs
// (examples/specs/*.json + nylon_exp) must keep byte-identical stdout and
// BENCH_*.json output. The digests below were captured by running the
// *pre-port binaries* (bench_fig2_partition et al., commit 7f283d4) at
// the exact options used here; the spec executor must reproduce every
// byte — table layout, preamble, section headings, footers and the JSON
// document. If a digest changes, either the executor regressed or
// simulation semantics changed; both must be explicit, reviewed
// decisions (see DESIGN.md, "Determinism contract").
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>

#include "runtime/spec.h"
#include "util/json.h"

namespace nylon {
namespace {

std::uint64_t fnv1a(const std::string& data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Runs a shipped spec at the capture options (n=120, rounds=20, seed=1,
/// serial) and digests stdout and the JSON document (as its file bytes).
void expect_digests(const char* spec_name, int seeds,
                    const char* stdout_digest, const char* json_digest) {
  const runtime::experiment_spec spec = runtime::load_spec_file(
      std::string(NYLON_SOURCE_DIR) + "/examples/specs/" + spec_name +
      ".json");
  runtime::spec_options opt;
  opt.peers = 120;
  opt.rounds = 20;
  opt.seeds = seeds;
  opt.seed = 1;
  opt.threads = 1;
  std::ostringstream out;
  const util::json doc = runtime::run_spec(spec, opt, out);
  EXPECT_EQ(hex(fnv1a(out.str())), stdout_digest)
      << spec_name << ": stdout diverged from the pre-port bench";
  EXPECT_EQ(hex(fnv1a(doc.dump_string(2) + "\n")), json_digest)
      << spec_name << ": BENCH json diverged from the pre-port bench";
}

TEST(spec_equivalence, fig2_partition) {
  expect_digests("fig2_partition", 1, "6e903e6d7c2137d0",
                 "6a84bed1de81de43");
}

TEST(spec_equivalence, fig3_stale) {
  expect_digests("fig3_stale", 2, "41acd0e9dc16f640", "697f55f3b2d3dda7");
}

/// fig4 gained three randomness-battery columns (runs / serial /
/// birthday-spacings over the sampled-id stream) after the port; the
/// digests were re-captured from the extended spec. The first four
/// columns still print byte-identically to the pre-port binary.
TEST(spec_equivalence, fig4_randomness) {
  expect_digests("fig4_randomness", 1, "113645413349f877",
                 "240346f2262f4d1a");
}

/// fig10 was ported *in* this revision: digests captured by running the
/// legacy bench_fig10_churn binary at these exact options and verified
/// byte-identical against the spec before the binary was retired.
TEST(spec_equivalence, fig10_churn) {
  expect_digests("fig10_churn", 2, "1fb6f4a2d98d8f84", "db8b4c09c628933d");
}

TEST(spec_equivalence, fig7_bandwidth) {
  expect_digests("fig7_bandwidth", 1, "c4faf8728bb8168d",
                 "3648838fdc7bb171");
}

TEST(spec_equivalence, ablation_protocols) {
  expect_digests("ablation_protocols", 1, "e627b035398f467d",
                 "91630b4822366f83");
}

TEST(spec_equivalence, ablation_ttl) {
  expect_digests("ablation_ttl", 1, "5a12b6a2a01018a6",
                 "975829d593abf498");
}

/// fig8/fig9 were ported in the probe-taxonomy revision: stdout AND
/// BENCH-json digests captured by running the legacy
/// bench_fig8_load_balance / bench_fig9_rvp_chain binaries at these
/// exact options (n=120, rounds=20, seeds=2, seed=1, serial) and
/// verified byte-identical against the specs before the binaries were
/// retired. fig8 exercises the per_class probe + probes-mode ratio
/// entry, fig9 the distribution probe's "mean" stat in sweep columns.
TEST(spec_equivalence, fig8_load_balance) {
  expect_digests("fig8_load_balance", 2, "33abb627f37bf638",
                 "1939ec24e69a91f3");
}

TEST(spec_equivalence, fig9_rvp_chain) {
  expect_digests("fig9_rvp_chain", 2, "8a4321d142873f81",
                 "d3d55c31dc624f10");
}

/// table1/sec5: the legacy binaries printed stdout only (no --json), so
/// the stdout digests come from the pre-port binaries while the JSON
/// digests pin the spec's own first emission (table + check verdicts) —
/// a regression pin, not a legacy-equivalence pin. table1 is a static
/// spec (no simulation; '%' NAT-type axes into the check probe), sec5 a
/// single_seed spec (one run at the raw base seed, the legacy §5 form).
TEST(spec_equivalence, table1_traversal) {
  expect_digests("table1_traversal", 1, "4beb3f6541c5c902",
                 "97751492b8e4aec0");
}

TEST(spec_equivalence, sec5_correctness) {
  expect_digests("sec5_correctness", 1, "df6280e4e16c37ac",
                 "ea904954e3a7f104");
}

/// The multi-seed parallel path must not change a single byte either.
TEST(spec_equivalence, parallel_execution_is_byte_identical) {
  const runtime::experiment_spec spec = runtime::load_spec_file(
      std::string(NYLON_SOURCE_DIR) + "/examples/specs/fig3_stale.json");
  runtime::spec_options opt;
  opt.peers = 80;
  opt.rounds = 10;
  opt.seeds = 4;
  opt.seed = 3;
  opt.threads = 1;
  std::ostringstream serial;
  const util::json doc_serial = runtime::run_spec(spec, opt, serial);
  opt.threads = 4;
  std::ostringstream parallel;
  const util::json doc_parallel = runtime::run_spec(spec, opt, parallel);
  EXPECT_EQ(serial.str(), parallel.str());
  EXPECT_EQ(doc_serial.dump_string(0), doc_parallel.dump_string(0));
}

/// The ROADMAP latency-sensitivity study runs end-to-end and emits its
/// BENCH_latency_sensitivity.json.
TEST(spec_equivalence, latency_sensitivity_emits_bench_json) {
  const runtime::experiment_spec spec = runtime::load_spec_file(
      std::string(NYLON_SOURCE_DIR) +
      "/examples/specs/latency_sensitivity.json");
  runtime::spec_options opt;
  opt.peers = 60;
  opt.rounds = 6;
  opt.seeds = 1;
  opt.threads = 1;
  opt.json = ::testing::TempDir() + "BENCH_latency_sensitivity.json";
  std::ostringstream out;
  const util::json doc = runtime::run_spec(spec, opt, out);
  EXPECT_EQ(doc.at("bench").as_string(), "latency_sensitivity");
  // 3 sigmas x 4 TTLs = 12 rows, 2 label + 4 probe columns.
  EXPECT_EQ(doc.at("table").at("rows").size(), 12u);
  EXPECT_EQ(doc.at("table").at("headers").size(), 6u);
  const util::json loaded = util::load_json_file(opt.json);
  EXPECT_EQ(loaded.dump_string(0), doc.dump_string(0));
  std::remove(opt.json.c_str());
}

}  // namespace
}  // namespace nylon
