// Golden-digest determinism guard: runs a mid-size churn scenario and
// hashes the full per-round metric trajectory. The digests below were
// produced by the pre-optimization simulator; any hot-path rework (event
// pooling, flat NAT tables, O(1) routing, view merge indexing) must keep
// them bit-identical. If a digest changes, either a bug crept into an
// optimization or simulation *semantics* changed — both must be explicit,
// reviewed decisions, never silent fallout (see DESIGN.md, "Determinism
// contract").
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "runtime/scenario.h"
#include "workload/engine.h"
#include "workload/report.h"

namespace nylon {
namespace {

/// FNV-1a 64-bit over the serialized trajectory. Stable across platforms
/// as long as the simulation itself is deterministic (integer sim_time,
/// fixed IEEE-754 formatting in util::json).
std::uint64_t fnv1a(const std::string& data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// The scenario under digest: every dynamic the workload engine supports
/// (mass departure, NAT rebind, partition + heal, Poisson churn with
/// heavy-tailed sessions), sampled every shuffle period with full metric
/// measurement, so the digest pins view merges, NAT state transitions,
/// packet routing and drop accounting all at once.
std::string run_digest(core::protocol_kind protocol, std::uint64_t seed) {
  runtime::experiment_config cfg;
  cfg.peer_count = 250;
  cfg.natted_fraction = 0.6;
  cfg.protocol = protocol;
  cfg.gossip.view_size = 10;
  cfg.seed = seed;

  runtime::scenario world(cfg);
  const sim::sim_time period = cfg.gossip.shuffle_period;

  workload::session_distribution sessions;
  sessions.k = workload::session_distribution::kind::pareto;
  sessions.mean = 8 * period;

  auto prog = workload::program{}
                  .then(workload::steady(10 * period))
                  .then(workload::mass_departure(0.25))
                  .then(workload::steady(5 * period))
                  .then(workload::nat_rebind(0.5))
                  .then(workload::steady(5 * period))
                  .then(workload::partition(0.4))
                  .then(workload::steady(5 * period))
                  .then(workload::heal())
                  .then(workload::poisson_churn(10 * period, 2.0, sessions))
                  .then(workload::steady(5 * period));

  workload::engine_options opt;
  opt.sample_interval = period;
  workload::engine eng(world, std::move(prog), opt);
  eng.run();

  util::json doc = workload::to_json(eng.trajectory());
  doc.push_back(static_cast<std::int64_t>(
      world.scheduler().events_executed()));
  doc.push_back(static_cast<std::int64_t>(world.transport().total_drops()));
  return hex(fnv1a(doc.dump_string(0)));
}

TEST(golden_digest, nylon_trajectory) {
  EXPECT_EQ(run_digest(core::protocol_kind::nylon, 2026),
            "dc4291eba722db2d");
}

TEST(golden_digest, reference_trajectory) {
  EXPECT_EQ(run_digest(core::protocol_kind::reference, 7),
            "d88f229aa583e61f");
}

}  // namespace
}  // namespace nylon
