// Arrival-side and continuous churn: peers keep joining and leaving while
// the overlay must keep providing a usable sample (the paper's §1 setting
// of "high rate of peers arrivals, departures and failures"; its
// evaluation covers only departures — this extends it).
#include <gtest/gtest.h>

#include "metrics/graph_analysis.h"
#include "runtime/scenario.h"
#include "workload/engine.h"

namespace nylon {
namespace {

runtime::experiment_config base(double natted, std::uint64_t seed) {
  runtime::experiment_config cfg;
  cfg.peer_count = 200;
  cfg.natted_fraction = natted;
  cfg.protocol = core::protocol_kind::nylon;
  cfg.gossip.view_size = 8;
  cfg.seed = seed;
  return cfg;
}

TEST(joins, new_peer_integrates_into_overlay) {
  runtime::scenario world(base(0.6, 3));
  world.run_periods(20);
  const net::node_id rookie = world.add_peer();
  EXPECT_EQ(rookie, 200u);
  EXPECT_EQ(world.alive_count(), 201u);
  world.run_periods(15);
  // The rookie gossips...
  EXPECT_GT(world.peer_at(rookie).stats().initiated, 0u);
  EXPECT_GT(world.peer_at(rookie).stats().responses_received, 0u);
  // ...and becomes known to others.
  std::size_t appearances = 0;
  for (const auto& p : world.peers()) {
    if (p->id() != rookie && p->current_view().contains(rookie)) {
      ++appearances;
    }
  }
  EXPECT_GT(appearances, 0u);
  // And it is reachable despite (possibly) being natted.
  const auto oracle = world.oracle();
  const gossip::node_descriptor rookie_desc =
      world.peer_at(rookie).self();
  std::size_t reachable_from = 0;
  for (const auto& p : world.peers()) {
    if (p->id() == rookie) continue;
    if (p->current_view().contains(rookie) &&
        oracle.can_shuffle(p->id(), rookie_desc)) {
      ++reachable_from;
    }
  }
  EXPECT_GT(reachable_from, 0u);
}

TEST(joins, natted_join_works_without_any_public_contact_in_view) {
  runtime::scenario world(base(0.5, 5));
  world.run_periods(10);
  const net::node_id rookie =
      world.add_peer(nat::nat_type::port_restricted_cone);
  world.run_periods(15);
  EXPECT_GT(world.peer_at(rookie).stats().responses_received, 0u);
}

TEST(joins, forced_type_is_respected) {
  runtime::scenario world(base(0.0, 7));
  const net::node_id a = world.add_peer(nat::nat_type::symmetric);
  const net::node_id b = world.add_peer(nat::nat_type::open);
  EXPECT_EQ(world.transport().type_of(a), nat::nat_type::symmetric);
  EXPECT_EQ(world.transport().type_of(b), nat::nat_type::open);
}

TEST(continuous_churn, overlay_survives_steady_turnover) {
  runtime::scenario world(base(0.6, 11));
  const sim::sim_time period = world.config().gossip.shuffle_period;
  // 5% of the population replaced every period for 30 periods — an
  // aggressive, Gnutella-like session turnover — then 20 periods to
  // settle, all as one workload program.
  auto prog = workload::program{}
                  .then(workload::steady(20 * period))
                  .then(workload::turnover(30 * period, 10, period,
                                           /*rng_seed=*/99))
                  .then(workload::steady(20 * period));
  workload::engine eng(world, std::move(prog));
  eng.run();

  // Victims are drawn with replacement, so a tick can remove fewer than
  // it adds — never more.
  EXPECT_LE(eng.departed(), eng.joined());
  EXPECT_EQ(eng.joined(), 300u);
  const workload::snapshot& end = eng.final();
  EXPECT_GT(end.clusters.biggest_cluster_pct, 90.0);
  EXPECT_LT(end.views.stale_pct, 12.0);
}

TEST(continuous_churn, duplicate_removals_are_harmless) {
  runtime::scenario world(base(0.5, 13));
  world.run_periods(5);
  world.remove_peer(3);
  world.remove_peer(3);  // removing a dead peer again must be a no-op
  EXPECT_EQ(world.alive_count(), 199u);
}

}  // namespace
}  // namespace nylon
