// Sharded-engine determinism guard (DESIGN.md "Sharded determinism
// contract"): one universe executed on K shards must produce the
// identical simulation — state digest, trajectory, event count, drop
// accounting — for every K, because peer->shard assignment, worker
// interleaving and channel placement are all invisible to the canonical
// event stream. The scenario below exercises every dynamic at once
// (Poisson churn with heavy-tailed sessions, mass departure, partition +
// heal, NAT rebind, in-place NAT migration) so a single digest pins view
// merges, per-peer rng streams, cross-shard packet ordering and the
// rebound-IP handoff together.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/scenario.h"
#include "util/contracts.h"
#include "workload/engine.h"
#include "workload/report.h"

namespace nylon {
namespace {

struct shard_run {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t drops = 0;
  std::size_t alive = 0;
  std::string trajectory;
};

shard_run run_world(core::protocol_kind protocol, std::size_t shards,
                    std::uint64_t seed) {
  runtime::experiment_config cfg;
  cfg.peer_count = 200;
  cfg.natted_fraction = 0.6;
  cfg.protocol = protocol;
  cfg.gossip.view_size = 8;
  cfg.seed = seed;
  cfg.shards = shards;

  runtime::scenario world(cfg);
  const sim::sim_time period = cfg.gossip.shuffle_period;

  workload::session_distribution sessions;
  sessions.k = workload::session_distribution::kind::pareto;
  sessions.mean = 6 * period;

  auto prog = workload::program{}
                  .then(workload::steady(6 * period))
                  .then(workload::mass_departure(0.2))
                  .then(workload::steady(3 * period))
                  .then(workload::nat_rebind(0.4))
                  .then(workload::steady(3 * period))
                  .then(workload::nat_migration(0.3))
                  .then(workload::steady(3 * period))
                  .then(workload::partition(0.4))
                  .then(workload::steady(3 * period))
                  .then(workload::heal())
                  .then(workload::poisson_churn(6 * period, 3.0, sessions))
                  .then(workload::steady(3 * period));

  workload::engine_options opt;
  opt.sample_interval = period;
  workload::engine eng(world, std::move(prog), opt);
  eng.run();

  shard_run out;
  out.digest = world.state_digest();
  out.events = world.events_executed();
  out.drops = world.transport().total_drops();
  out.alive = world.alive_count();
  out.trajectory = workload::to_json(eng.trajectory()).dump_string(0);
  return out;
}

/// K = 1 is the reference stream; every other K must reproduce it bit
/// for bit — trajectory (full per-period metrics), digest, counters.
void expect_equal_across_shards(core::protocol_kind protocol,
                                std::uint64_t seed) {
  const shard_run reference = run_world(protocol, 1, seed);
  EXPECT_GT(reference.alive, 0u);
  EXPECT_GT(reference.events, 0u);
  for (const std::size_t k : {std::size_t{2}, std::size_t{3},
                              std::size_t{8}}) {
    const shard_run run = run_world(protocol, k, seed);
    EXPECT_EQ(run.digest, reference.digest) << "shards=" << k;
    EXPECT_EQ(run.events, reference.events) << "shards=" << k;
    EXPECT_EQ(run.drops, reference.drops) << "shards=" << k;
    EXPECT_EQ(run.alive, reference.alive) << "shards=" << k;
    EXPECT_EQ(run.trajectory, reference.trajectory) << "shards=" << k;
  }
}

TEST(shard_determinism, nylon_identical_for_k_1_2_3_8) {
  expect_equal_across_shards(core::protocol_kind::nylon, 2026);
}

TEST(shard_determinism, reference_identical_for_k_1_2_3_8) {
  expect_equal_across_shards(core::protocol_kind::reference, 7);
}

/// Same config, same shard count, run twice: the sharded engine is also
/// deterministic against itself (worker scheduling is invisible).
TEST(shard_determinism, repeat_runs_are_identical) {
  const shard_run a = run_world(core::protocol_kind::nylon, 4, 11);
  const shard_run b = run_world(core::protocol_kind::nylon, 4, 11);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.trajectory, b.trajectory);
}

/// The serial engine (shards = 0) is untouched by shard mode: its golden
/// digests live in golden_digest_test.cpp; here we only pin that shard
/// mode is a *different* stream (per-peer rngs), so nobody mistakes one
/// for the other when re-capturing digests.
TEST(shard_determinism, shard_mode_is_its_own_stream) {
  const shard_run serial = run_world(core::protocol_kind::nylon, 0, 2026);
  const shard_run sharded = run_world(core::protocol_kind::nylon, 1, 2026);
  EXPECT_NE(serial.digest, sharded.digest);
}

/// Shard mode needs lookahead: a zero-latency model has none.
TEST(shard_determinism, zero_latency_floor_is_rejected) {
  runtime::experiment_config cfg;
  cfg.peer_count = 10;
  cfg.gossip.view_size = 4;
  cfg.latency = 0;
  cfg.shards = 2;
  EXPECT_THROW(cfg.validate(), nylon::contract_error);
}

}  // namespace
}  // namespace nylon
