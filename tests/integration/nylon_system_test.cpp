// System-level assertions on Nylon's headline claims, at small scale:
// connectivity, (near-)zero staleness, bounded chains, balanced load.
#include <gtest/gtest.h>

#include "core/nylon_peer.h"
#include "metrics/bandwidth.h"
#include "metrics/graph_analysis.h"
#include "metrics/randomness.h"
#include "runtime/scenario.h"

namespace nylon {
namespace {

runtime::experiment_config nylon_config(double natted, std::uint64_t seed) {
  runtime::experiment_config cfg;
  cfg.peer_count = 250;
  cfg.natted_fraction = natted;
  cfg.protocol = core::protocol_kind::nylon;
  cfg.gossip.view_size = 8;
  cfg.seed = seed;
  return cfg;
}

class nylon_nat_sweep : public ::testing::TestWithParam<int> {};

TEST_P(nylon_nat_sweep, overlay_stays_connected_and_views_clean) {
  const double natted = GetParam() / 100.0;
  runtime::scenario world(nylon_config(natted, 11));
  world.run_periods(60);

  const auto oracle = world.oracle();
  const auto clusters =
      metrics::measure_clusters(world.transport(), world.peers(), oracle);
  EXPECT_GT(clusters.biggest_cluster_pct, 97.0) << "natted=" << natted;

  const auto views =
      metrics::measure_views(world.transport(), world.peers(), oracle);
  EXPECT_LT(views.stale_pct, 6.0) << "natted=" << natted;
}

INSTANTIATE_TEST_SUITE_P(nat_percentages, nylon_nat_sweep,
                         ::testing::Values(0, 40, 60, 80, 90));

TEST(nylon_system, punch_chains_stay_short) {
  runtime::scenario world(nylon_config(0.8, 13));
  world.run_periods(60);
  util::running_stats chains;
  for (const auto& p : world.peers()) {
    const auto* np = dynamic_cast<const core::nylon_peer*>(p.get());
    ASSERT_NE(np, nullptr);
    chains.merge(np->nat_stats().punch_chain_hops);
  }
  ASSERT_GT(chains.count(), 0u);
  // Paper Fig. 9: 1-3 RVPs on average; generously bound the small-scale
  // equivalent.
  EXPECT_LT(chains.mean(), 5.0);
  EXPECT_GE(chains.mean(), 1.0);
}

TEST(nylon_system, shuffles_mostly_succeed) {
  runtime::scenario world(nylon_config(0.9, 17));
  world.run_periods(60);
  std::uint64_t initiated = 0;
  std::uint64_t responses = 0;
  for (const auto& p : world.peers()) {
    initiated += p->stats().initiated;
    responses += p->stats().responses_received;
  }
  EXPECT_GT(initiated, 0u);
  EXPECT_GT(responses, initiated * 85 / 100);
}

TEST(nylon_system, load_is_balanced_between_classes) {
  runtime::scenario world(nylon_config(0.6, 19));
  world.run_periods(20);
  world.transport().reset_traffic();
  world.run_periods(40);
  const auto report = metrics::measure_bandwidth(
      world.transport(), world.peers(), 40 * sim::seconds(5));
  // Paper Fig. 8: public peers within ~10-20% of natted peers.
  EXPECT_GT(report.public_bytes_per_s, report.natted_bytes_per_s * 0.6);
  EXPECT_LT(report.public_bytes_per_s, report.natted_bytes_per_s * 1.5);
}

TEST(nylon_system, bandwidth_overhead_is_bounded_vs_reference) {
  auto run = [](core::protocol_kind kind) {
    runtime::experiment_config cfg = nylon_config(0.8, 23);
    cfg.protocol = kind;
    runtime::scenario world(cfg);
    world.run_periods(10);
    world.transport().reset_traffic();
    world.run_periods(30);
    return metrics::measure_bandwidth(world.transport(), world.peers(),
                                      30 * sim::seconds(5))
        .all_bytes_per_s;
  };
  const double nylon_bw = run(core::protocol_kind::nylon);
  const double reference_bw = run(core::protocol_kind::reference);
  EXPECT_GT(nylon_bw, reference_bw * 0.8);
  // Paper Fig. 7: Nylon's overhead is moderate (well under 2x at 80%).
  EXPECT_LT(nylon_bw, reference_bw * 2.5);
}

TEST(nylon_system, sampling_stream_passes_runs_and_serial_tests) {
  runtime::scenario world(nylon_config(0.7, 29));
  world.run_periods(60);
  // One sample per peer per pass: consecutive stream elements then come
  // from different views, as a consumer of the sampling service would
  // observe (drawing several samples from one 8-entry view back-to-back
  // is trivially correlated and tests nothing about the protocol).
  std::vector<std::uint32_t> sampled;
  for (int k = 0; k < 4; ++k) {
    for (const auto& p : world.peers()) {
      if (const auto s = p->sample()) sampled.push_back(s->id);
    }
  }
  const auto battery = metrics::run_battery(sampled, 250);
  // Composition is slightly public-biased (see EXPERIMENTS.md), but the
  // stream must be independent and well-spread.
  EXPECT_GT(battery.runs.p_value, 0.001);
  EXPECT_LT(std::abs(battery.serial), 0.1);
}

}  // namespace
}  // namespace nylon
