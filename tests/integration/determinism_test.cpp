// Bit-level reproducibility: identical seeds give identical simulations;
// different seeds give different ones.
#include <gtest/gtest.h>

#include <vector>

#include "metrics/graph_analysis.h"
#include "runtime/scenario.h"

namespace nylon {
namespace {

struct snapshot {
  std::vector<std::vector<net::node_id>> views;
  std::uint64_t events;
  std::uint64_t drops;

  bool operator==(const snapshot&) const = default;
};

snapshot run(core::protocol_kind kind, std::uint64_t seed) {
  runtime::experiment_config cfg;
  cfg.peer_count = 120;
  cfg.natted_fraction = 0.7;
  cfg.protocol = kind;
  cfg.gossip.view_size = 6;
  cfg.seed = seed;
  runtime::scenario world(cfg);
  world.run_periods(25);
  snapshot s;
  for (const auto& p : world.peers()) {
    std::vector<net::node_id> ids;
    for (const auto& e : p->current_view().entries()) ids.push_back(e.peer.id);
    s.views.push_back(std::move(ids));
  }
  s.events = world.scheduler().events_executed();
  s.drops = world.transport().total_drops();
  return s;
}

class determinism_test
    : public ::testing::TestWithParam<core::protocol_kind> {};

TEST_P(determinism_test, same_seed_bit_identical) {
  EXPECT_EQ(run(GetParam(), 5), run(GetParam(), 5));
}

TEST_P(determinism_test, different_seed_differs) {
  EXPECT_NE(run(GetParam(), 5), run(GetParam(), 6));
}

INSTANTIATE_TEST_SUITE_P(protocols, determinism_test,
                         ::testing::Values(core::protocol_kind::reference,
                                           core::protocol_kind::nylon,
                                           core::protocol_kind::arrg),
                         [](const auto& info) {
                           return std::string(core::to_string(info.param));
                         });

TEST(determinism, metric_oracle_does_not_perturb_the_run) {
  // Interleaving oracle queries with the simulation must not change its
  // trajectory (the oracle is strictly const).
  runtime::experiment_config cfg;
  cfg.peer_count = 80;
  cfg.natted_fraction = 0.8;
  cfg.gossip.view_size = 6;
  cfg.seed = 9;

  runtime::scenario plain(cfg);
  plain.run_periods(20);

  runtime::scenario probed(cfg);
  for (int i = 0; i < 20; ++i) {
    probed.run_periods(1);
    const auto oracle = probed.oracle();
    (void)metrics::measure_views(probed.transport(), probed.peers(), oracle);
  }

  EXPECT_EQ(plain.scheduler().events_executed(),
            probed.scheduler().events_executed());
  EXPECT_EQ(plain.transport().total_drops(), probed.transport().total_drops());
  for (std::size_t i = 0; i < plain.peers().size(); ++i) {
    EXPECT_EQ(plain.peers()[i]->stats().responses_received,
              probed.peers()[i]->stats().responses_received);
  }
}

}  // namespace
}  // namespace nylon
