// System-level reproduction of §3's qualitative findings at small scale:
// the NAT-oblivious baselines accumulate stale references, under-sample
// natted peers, and partition at high NAT percentages — while Nylon does
// not, under identical conditions.
#include <gtest/gtest.h>

#include "metrics/graph_analysis.h"
#include "runtime/scenario.h"

namespace nylon {
namespace {

runtime::experiment_config baseline_config(double natted, std::uint64_t seed,
                                           core::protocol_kind kind =
                                               core::protocol_kind::reference) {
  runtime::experiment_config cfg;
  cfg.peer_count = 250;
  cfg.natted_fraction = natted;
  cfg.mix = nat::prc_only_mix();  // §3 uses PRC-only NATs
  cfg.protocol = kind;
  cfg.gossip.view_size = 8;
  cfg.seed = seed;
  return cfg;
}

TEST(baseline_system, stale_references_grow_with_nat_percentage) {
  double previous = -1.0;
  for (const double natted : {0.2, 0.5, 0.8}) {
    runtime::scenario world(baseline_config(natted, 31));
    world.run_periods(60);
    const auto oracle = world.oracle();
    const auto views =
        metrics::measure_views(world.transport(), world.peers(), oracle);
    EXPECT_GT(views.stale_pct, previous)
        << "staleness should grow with NAT% (Fig. 3)";
    previous = views.stale_pct;
  }
  EXPECT_GT(previous, 25.0);  // at 80% NATs a large share is stale
}

TEST(baseline_system, natted_peers_are_undersampled) {
  // Fig. 4: at 40% natted peers the baseline's usable references contain
  // far fewer than 40% natted entries.
  runtime::scenario world(baseline_config(0.4, 37));
  world.run_periods(60);
  const auto oracle = world.oracle();
  const auto views =
      metrics::measure_views(world.transport(), world.peers(), oracle);
  EXPECT_LT(views.fresh_natted_pct, 25.0);
}

TEST(baseline_system, partitions_at_high_nat_percentage) {
  // Fig. 2: with small views and ~90% NATs the baseline overlay shatters.
  runtime::experiment_config cfg = baseline_config(0.9, 41);
  cfg.gossip.view_size = 5;
  runtime::scenario world(cfg);
  world.run_periods(80);
  const auto oracle = world.oracle();
  const auto clusters =
      metrics::measure_clusters(world.transport(), world.peers(), oracle);
  EXPECT_LT(clusters.biggest_cluster_pct, 75.0);
  EXPECT_GT(clusters.cluster_count, 1u);
}

TEST(baseline_system, nylon_beats_baseline_under_identical_conditions) {
  const double natted = 0.85;
  double baseline_cluster = 0.0;
  double nylon_cluster = 0.0;
  double baseline_stale = 0.0;
  double nylon_stale = 0.0;
  for (const auto kind :
       {core::protocol_kind::reference, core::protocol_kind::nylon}) {
    runtime::experiment_config cfg = baseline_config(natted, 43, kind);
    cfg.gossip.view_size = 5;
    runtime::scenario world(cfg);
    world.run_periods(80);
    const auto oracle = world.oracle();
    const auto clusters =
        metrics::measure_clusters(world.transport(), world.peers(), oracle);
    const auto views =
        metrics::measure_views(world.transport(), world.peers(), oracle);
    if (kind == core::protocol_kind::reference) {
      baseline_cluster = clusters.biggest_cluster_pct;
      baseline_stale = views.stale_pct;
    } else {
      nylon_cluster = clusters.biggest_cluster_pct;
      nylon_stale = views.stale_pct;
    }
  }
  EXPECT_GT(nylon_cluster, baseline_cluster + 10.0);
  EXPECT_LT(nylon_stale, baseline_stale / 4.0);
}

TEST(baseline_system, arrg_cache_does_not_fix_sampling_quality) {
  // The paper's related-work argument: a fallback cache keeps individual
  // peers talking (at this scale it even preserves weak connectivity by
  // leaning on the public hubs) but it cannot repair the *sampling*: the
  // views stay full of stale entries and natted peers stay invisible.
  runtime::experiment_config cfg =
      baseline_config(0.9, 47, core::protocol_kind::arrg);
  cfg.gossip.view_size = 5;
  runtime::scenario world(cfg);
  world.run_periods(80);
  const auto oracle = world.oracle();
  const auto views =
      metrics::measure_views(world.transport(), world.peers(), oracle);
  EXPECT_GT(views.stale_pct, 20.0);
  // 90% of peers are natted, yet they make up a minority of the usable
  // references.
  EXPECT_LT(views.fresh_natted_pct, 55.0);
}

TEST(baseline_system, increasing_view_size_delays_partition) {
  // Fig. 2 top vs bottom: larger views keep the biggest cluster larger.
  auto cluster_at = [](std::size_t view_size) {
    runtime::experiment_config cfg = baseline_config(0.9, 53);
    cfg.gossip.view_size = view_size;
    runtime::scenario world(cfg);
    world.run_periods(60);
    const auto oracle = world.oracle();
    return metrics::measure_clusters(world.transport(), world.peers(),
                                     oracle)
        .biggest_cluster_pct;
  };
  EXPECT_GE(cluster_at(12) + 5.0, cluster_at(4));
}

}  // namespace
}  // namespace nylon
