// Window-policy neutrality guard (DESIGN.md "Sharded determinism
// contract"): the epoch-width policy is a *performance* knob, never a
// semantics knob. One universe executed under static conservative
// windows and under adaptive lookahead windows must produce the
// identical simulation — state digest, trajectory, event count, drop
// accounting — for every shard count, because the canonical staging
// lane makes delivery order a function of (time, sender, send_seq)
// alone, independent of which epoch barrier a message crossed at.
// The workload exercises every dynamic at once (churn, partition,
// rebind, migration) so a digest mismatch anywhere in the pipeline
// shows up here.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "runtime/scenario.h"
#include "sim/shard_engine.h"
#include "workload/engine.h"
#include "workload/report.h"

namespace nylon {
namespace {

struct mode_run {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t drops = 0;
  std::size_t alive = 0;
  std::uint64_t epochs = 0;
  std::string trajectory;
};

mode_run run_world(std::size_t shards, sim::window_mode mode,
                   std::uint64_t seed) {
  runtime::experiment_config cfg;
  cfg.peer_count = 150;
  cfg.natted_fraction = 0.6;
  cfg.protocol = core::protocol_kind::nylon;
  cfg.gossip.view_size = 8;
  cfg.seed = seed;
  cfg.shards = shards;
  cfg.window_mode = mode;

  runtime::scenario world(cfg);
  const sim::sim_time period = cfg.gossip.shuffle_period;

  workload::session_distribution sessions;
  sessions.k = workload::session_distribution::kind::pareto;
  sessions.mean = 6 * period;

  auto prog = workload::program{}
                  .then(workload::steady(4 * period))
                  .then(workload::mass_departure(0.2))
                  .then(workload::steady(2 * period))
                  .then(workload::nat_rebind(0.4))
                  .then(workload::partition(0.4))
                  .then(workload::steady(2 * period))
                  .then(workload::heal())
                  .then(workload::nat_migration(0.3))
                  .then(workload::poisson_churn(4 * period, 3.0, sessions))
                  .then(workload::steady(2 * period));

  workload::engine_options opt;
  opt.sample_interval = period;
  workload::engine eng(world, std::move(prog), opt);
  eng.run();

  mode_run out;
  out.digest = world.state_digest();
  out.events = world.events_executed();
  out.drops = world.transport().total_drops();
  out.alive = world.alive_count();
  out.epochs = world.shard_profile().epochs;
  out.trajectory = workload::to_json(eng.trajectory()).dump_string(0);
  return out;
}

/// Full-workload equality, per shard count: static is the reference
/// stream, adaptive must reproduce it bit for bit while (for K >= 1
/// with real gaps in the schedule) running strictly fewer epochs.
TEST(adaptive_static_equality, identical_for_k_1_2_3_4_8) {
  for (const std::size_t k :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4},
        std::size_t{8}}) {
    const mode_run fixed =
        run_world(k, sim::window_mode::static_window, 2026);
    const mode_run adaptive = run_world(k, sim::window_mode::adaptive, 2026);
    EXPECT_GT(fixed.alive, 0u) << "shards=" << k;
    EXPECT_EQ(adaptive.digest, fixed.digest) << "shards=" << k;
    EXPECT_EQ(adaptive.events, fixed.events) << "shards=" << k;
    EXPECT_EQ(adaptive.drops, fixed.drops) << "shards=" << k;
    EXPECT_EQ(adaptive.alive, fixed.alive) << "shards=" << k;
    EXPECT_EQ(adaptive.trajectory, fixed.trajectory) << "shards=" << k;
    // The point of the policy: same simulation, fewer barriers.
    EXPECT_LT(adaptive.epochs, fixed.epochs) << "shards=" << k;
  }
}

/// Adaptive runs are deterministic against themselves (epoch widths are
/// a pure function of queue state, not of thread timing).
TEST(adaptive_static_equality, adaptive_repeat_runs_are_identical) {
  const mode_run a = run_world(4, sim::window_mode::adaptive, 11);
  const mode_run b = run_world(4, sim::window_mode::adaptive, 11);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.trajectory, b.trajectory);
}

}  // namespace
}  // namespace nylon
