// Fig. 10 in miniature: Nylon tolerates massive simultaneous departures.
#include <gtest/gtest.h>

#include "metrics/graph_analysis.h"
#include "runtime/scenario.h"

namespace nylon {
namespace {

runtime::experiment_config churn_config(double natted, std::uint64_t seed) {
  runtime::experiment_config cfg;
  // Churn is the most scale-sensitive experiment: a momentary split at
  // departure time can never re-merge (no rendezvous survives a clean
  // partition, in the paper's protocol as much as here), and the split
  // probability vanishes with population size. 500 peers keeps single
  // seeds stable.
  cfg.peer_count = 500;
  cfg.natted_fraction = natted;
  cfg.protocol = core::protocol_kind::nylon;
  cfg.gossip.view_size = 8;
  cfg.seed = seed;
  return cfg;
}

class churn_sweep : public ::testing::TestWithParam<int> {};

TEST_P(churn_sweep, survives_mass_departure) {
  const double departures = GetParam() / 100.0;
  runtime::scenario world(churn_config(0.6, 61));
  world.run_periods(40);  // warm up
  const std::size_t removed = world.remove_fraction(departures);
  EXPECT_GT(removed, 0u);
  world.run_periods(120);  // heal (paper: 1500 shuffles)
  const auto oracle = world.oracle();
  const auto clusters =
      metrics::measure_clusters(world.transport(), world.peers(), oracle);
  // Paper Fig. 10 (at 10k peers): no partition up to 50% departures,
  // graceful degradation beyond. At this test's 500-peer scale the
  // >=70% cases genuinely fragment sometimes (see EXPERIMENTS.md), so
  // beyond 50% only survival-with-degradation is asserted.
  const double expectation = departures <= 0.5 ? 85.0 : 20.0;
  EXPECT_GT(clusters.biggest_cluster_pct, expectation)
      << "departures=" << departures;
}

INSTANTIATE_TEST_SUITE_P(departure_fractions, churn_sweep,
                         ::testing::Values(30, 50, 70));

TEST(churn, dead_references_age_out_of_views) {
  runtime::scenario world(churn_config(0.5, 67));
  world.run_periods(30);
  world.remove_fraction(0.5);
  world.run_periods(60);
  const auto oracle = world.oracle();
  const auto views =
      metrics::measure_views(world.transport(), world.peers(), oracle);
  // After healing, references to departed peers are mostly gone.
  EXPECT_LT(100.0 * static_cast<double>(views.dead_entries) /
                static_cast<double>(views.total_entries),
            10.0);
}

TEST(churn, survivors_keep_gossiping) {
  runtime::scenario world(churn_config(0.7, 71));
  world.run_periods(30);
  world.remove_fraction(0.6);
  std::vector<std::uint64_t> before;
  for (const auto& p : world.peers()) before.push_back(p->stats().initiated);
  world.run_periods(20);
  std::size_t active = 0;
  for (std::size_t i = 0; i < world.peers().size(); ++i) {
    if (!world.transport().alive(static_cast<net::node_id>(i))) continue;
    if (world.peers()[i]->stats().initiated > before[i]) ++active;
  }
  EXPECT_EQ(active, world.alive_count());
}

TEST(churn, natted_survivors_remain_reachable) {
  runtime::scenario world(churn_config(0.8, 73));
  world.run_periods(40);
  world.remove_fraction(0.5);
  world.run_periods(60);
  const auto oracle = world.oracle();
  const auto views =
      metrics::measure_views(world.transport(), world.peers(), oracle);
  EXPECT_GT(views.fresh_natted_pct, 20.0);
}

}  // namespace
}  // namespace nylon
