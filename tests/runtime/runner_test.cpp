#include "runtime/runner.h"

#include <gtest/gtest.h>

#include <set>

#include "util/contracts.h"

namespace nylon::runtime {
namespace {

TEST(runner, runs_requested_seed_count) {
  int calls = 0;
  const auto agg = run_seeds(5, 42, [&](std::uint64_t) {
    ++calls;
    return 1.0;
  });
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(agg.values.size(), 5u);
  EXPECT_DOUBLE_EQ(agg.stats.mean, 1.0);
  EXPECT_DOUBLE_EQ(agg.stats.stddev, 0.0);
}

TEST(runner, seeds_are_distinct_and_deterministic) {
  std::vector<std::uint64_t> seen1;
  (void)run_seeds(4, 7, [&](std::uint64_t seed) {
    seen1.push_back(seed);
    return 0.0;
  });
  std::vector<std::uint64_t> seen2;
  (void)run_seeds(4, 7, [&](std::uint64_t seed) {
    seen2.push_back(seed);
    return 0.0;
  });
  EXPECT_EQ(seen1, seen2);
  EXPECT_EQ(std::set<std::uint64_t>(seen1.begin(), seen1.end()).size(), 4u);
}

TEST(runner, aggregates_values_in_seed_order) {
  int i = 0;
  const auto agg = run_seeds(3, 1, [&](std::uint64_t) {
    return static_cast<double>(i++);
  });
  EXPECT_EQ(agg.values, (std::vector<double>{0.0, 1.0, 2.0}));
  EXPECT_DOUBLE_EQ(agg.stats.mean, 1.0);
  EXPECT_EQ(agg.stats.min, 0.0);
  EXPECT_EQ(agg.stats.max, 2.0);
}

TEST(runner, rejects_nonpositive_seed_count) {
  EXPECT_THROW(run_seeds(0, 1, [](std::uint64_t) { return 0.0; }),
               nylon::contract_error);
}

TEST(runner, multi_metric_aggregation) {
  const auto aggs = run_seeds_multi(3, 9, 2, [](std::uint64_t) {
    return std::vector<double>{1.0, 10.0};
  });
  ASSERT_EQ(aggs.size(), 2u);
  EXPECT_DOUBLE_EQ(aggs[0].stats.mean, 1.0);
  EXPECT_DOUBLE_EQ(aggs[1].stats.mean, 10.0);
  EXPECT_EQ(aggs[0].values.size(), 3u);
}

TEST(runner, multi_rejects_wrong_metric_count) {
  EXPECT_THROW(run_seeds_multi(
                   2, 1, 3,
                   [](std::uint64_t) { return std::vector<double>{1.0}; }),
               nylon::contract_error);
}

}  // namespace
}  // namespace nylon::runtime
