#include "runtime/experiment_config.h"

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace nylon::runtime {
namespace {

TEST(experiment_config, defaults_match_paper) {
  const experiment_config cfg;
  EXPECT_EQ(cfg.peer_count, 10000u);
  EXPECT_EQ(cfg.gossip.view_size, 15u);
  EXPECT_EQ(cfg.gossip.shuffle_period, sim::seconds(5));
  EXPECT_EQ(cfg.latency, sim::millis(50));
  EXPECT_EQ(cfg.hole_timeout, sim::seconds(90));
  EXPECT_EQ(cfg.loss_rate, 0.0);
  EXPECT_EQ(cfg.protocol, core::protocol_kind::nylon);
  // Paper mix: 50% RC, 40% PRC, 10% SYM among natted peers.
  EXPECT_DOUBLE_EQ(cfg.mix.restricted_cone, 0.5);
  EXPECT_DOUBLE_EQ(cfg.mix.port_restricted_cone, 0.4);
  EXPECT_DOUBLE_EQ(cfg.mix.symmetric, 0.1);
  EXPECT_NO_THROW(cfg.validate());
}

TEST(experiment_config, rejects_tiny_population) {
  experiment_config cfg;
  cfg.peer_count = 1;
  EXPECT_THROW(cfg.validate(), nylon::contract_error);
}

TEST(experiment_config, rejects_bad_fraction) {
  experiment_config cfg;
  cfg.natted_fraction = 1.5;
  EXPECT_THROW(cfg.validate(), nylon::contract_error);
}

TEST(experiment_config, rejects_view_larger_than_population) {
  experiment_config cfg;
  cfg.peer_count = 10;
  cfg.gossip.view_size = 10;
  EXPECT_THROW(cfg.validate(), nylon::contract_error);
}

TEST(experiment_config, rejects_latency_beyond_period) {
  experiment_config cfg;
  cfg.latency = cfg.gossip.shuffle_period;
  EXPECT_THROW(cfg.validate(), nylon::contract_error);
}

TEST(experiment_config, rejects_bad_loss) {
  experiment_config cfg;
  cfg.loss_rate = -0.1;
  EXPECT_THROW(cfg.validate(), nylon::contract_error);
}

TEST(experiment_config, transport_names_are_stable) {
  // Wire into spec files and BENCH json — renames break both.
  EXPECT_EQ(to_string(transport_kind::sim), "sim");
  EXPECT_EQ(to_string(transport_kind::sim_frames), "sim-frames");
  EXPECT_EQ(to_string(transport_kind::udp), "udp");
}

TEST(experiment_config, udp_transport_requires_serial_engine) {
  experiment_config cfg;
  cfg.transport = transport_kind::udp;
  cfg.shards = 2;
  EXPECT_THROW(cfg.validate(), nylon::contract_error);
  cfg.shards = 0;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(experiment_config, sim_frames_allows_sharding) {
  experiment_config cfg;
  cfg.transport = transport_kind::sim_frames;
  cfg.shards = 4;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(experiment_config, rejects_nonpositive_udp_time_scale) {
  experiment_config cfg;
  cfg.udp_time_scale = 0.0;
  EXPECT_THROW(cfg.validate(), nylon::contract_error);
  cfg.udp_time_scale = -0.5;
  EXPECT_THROW(cfg.validate(), nylon::contract_error);
}

}  // namespace
}  // namespace nylon::runtime
