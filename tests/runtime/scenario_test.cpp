#include "runtime/scenario.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace nylon::runtime {
namespace {

experiment_config tiny(core::protocol_kind kind = core::protocol_kind::nylon) {
  experiment_config cfg;
  cfg.peer_count = 50;
  cfg.natted_fraction = 0.6;
  cfg.protocol = kind;
  cfg.gossip.view_size = 5;
  cfg.seed = 2;
  return cfg;
}

TEST(scenario, builds_population_with_requested_mix) {
  scenario world(tiny());
  EXPECT_EQ(world.peers().size(), 50u);
  EXPECT_EQ(world.alive_count(), 50u);
  std::size_t natted = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    if (nat::is_natted(world.transport().type_of(
            static_cast<net::node_id>(i)))) {
      ++natted;
    }
  }
  EXPECT_EQ(natted, 30u);
}

TEST(scenario, peer_ids_match_indices) {
  scenario world(tiny());
  for (std::size_t i = 0; i < world.peers().size(); ++i) {
    EXPECT_EQ(world.peers()[i]->id(), static_cast<net::node_id>(i));
  }
}

TEST(scenario, bootstrap_views_are_public_only) {
  scenario world(tiny());
  for (const auto& p : world.peers()) {
    EXPECT_GT(p->current_view().size(), 0u);
    for (const auto& e : p->current_view().entries()) {
      EXPECT_EQ(e.peer.type, nat::nat_type::open);
    }
  }
}

TEST(scenario, run_periods_advances_time) {
  scenario world(tiny());
  world.run_periods(3);
  EXPECT_EQ(world.scheduler().now(), 3 * sim::seconds(5));
}

TEST(scenario, gossip_happens) {
  scenario world(tiny());
  world.run_periods(5);
  std::uint64_t initiated = 0;
  for (const auto& p : world.peers()) initiated += p->stats().initiated;
  // Every alive peer fires once per period (minus the bootstrap phase
  // offset round).
  EXPECT_GE(initiated, 4u * 50u);
}

TEST(scenario, remove_peer_is_fail_stop) {
  scenario world(tiny());
  world.run_periods(2);
  world.remove_peer(7);
  EXPECT_FALSE(world.transport().alive(7));
  EXPECT_FALSE(world.peer_at(7).running());
  EXPECT_EQ(world.alive_count(), 49u);
  const auto initiated = world.peer_at(7).stats().initiated;
  world.run_periods(3);
  EXPECT_EQ(world.peer_at(7).stats().initiated, initiated);
}

TEST(scenario, remove_fraction_is_proportional) {
  scenario world(tiny());
  const std::size_t removed = world.remove_fraction(0.5);
  EXPECT_EQ(removed, 25u);
  std::size_t alive_public = 0;
  std::size_t alive_natted = 0;
  for (std::size_t i = 0; i < 50; ++i) {
    const auto id = static_cast<net::node_id>(i);
    if (!world.transport().alive(id)) continue;
    if (nat::is_natted(world.transport().type_of(id))) {
      ++alive_natted;
    } else {
      ++alive_public;
    }
  }
  EXPECT_EQ(alive_public, 10u);  // half of 20
  EXPECT_EQ(alive_natted, 15u);  // half of 30
}

TEST(scenario, remove_fraction_zero_and_full) {
  scenario world(tiny());
  EXPECT_EQ(world.remove_fraction(0.0), 0u);
  EXPECT_EQ(world.remove_fraction(1.0), 50u);
  EXPECT_EQ(world.alive_count(), 0u);
}

TEST(scenario, oracle_is_usable) {
  scenario world(tiny());
  world.run_periods(5);
  const auto oracle = world.oracle();
  const auto& p = world.peers()[0];
  for (const auto& e : p->current_view().entries()) {
    (void)oracle.can_shuffle(p->id(), e.peer);  // must not throw
  }
}

TEST(scenario, different_protocols_run) {
  for (const auto kind :
       {core::protocol_kind::reference, core::protocol_kind::nylon,
        core::protocol_kind::arrg}) {
    scenario world(tiny(kind));
    world.run_periods(3);
    std::uint64_t initiated = 0;
    for (const auto& p : world.peers()) initiated += p->stats().initiated;
    EXPECT_GT(initiated, 0u) << core::to_string(kind);
  }
}

}  // namespace
}  // namespace nylon::runtime
