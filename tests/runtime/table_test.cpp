#include "runtime/table_printer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "util/contracts.h"

namespace nylon::runtime {
namespace {

TEST(text_table, renders_header_and_rows) {
  text_table t({"a", "bbbb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("bbbb"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(text_table, aligns_columns) {
  text_table t({"x", "y"});
  t.add_row({"longvalue", "1"});
  std::ostringstream os;
  t.print(os);
  // The y column of the header starts after the widest x cell.
  const std::string first_line = os.str().substr(0, os.str().find('\n'));
  EXPECT_GE(first_line.find('y'), std::string("longvalue").size());
}

TEST(text_table, csv_output) {
  text_table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(text_table, rejects_mismatched_row) {
  text_table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), nylon::contract_error);
}

TEST(text_table, rejects_empty_header) {
  EXPECT_THROW(text_table({}), nylon::contract_error);
}

TEST(text_table, row_count) {
  text_table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(fmt, fixed_precision) {
  EXPECT_EQ(fmt(3.14159), "3.1");
  EXPECT_EQ(fmt(3.14159, 3), "3.142");
  EXPECT_EQ(fmt(100.0, 0), "100");
  EXPECT_EQ(fmt(-2.5, 1), "-2.5");
}

}  // namespace
}  // namespace nylon::runtime
