// The declarative experiment-spec API: JSON parse / validate /
// round-trip, bad-input contract errors, axis resolution and a small
// end-to-end run.
#include "runtime/spec.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "util/contracts.h"
#include "util/json.h"

namespace nylon::runtime {
namespace {

experiment_spec parse(const std::string& text) {
  return spec_from_json(util::json::parse(text));
}

const char* kMinimalSpec = R"({
  "name": "mini",
  "title": "a tiny study",
  "rows": [{"axis": "natted_pct", "header": "%NAT", "values": [0, 50]}],
  "probes": [{"probe": "stale_pct", "header": "stale %"}]
})";

TEST(experiment_spec, parses_a_minimal_spec) {
  const experiment_spec spec = parse(kMinimalSpec);
  EXPECT_EQ(spec.name, "mini");
  ASSERT_EQ(spec.rows.size(), 1u);
  EXPECT_EQ(spec.rows[0].key, "natted_pct");
  EXPECT_EQ(spec.rows[0].values, (std::vector<std::string>{"0", "50"}));
  ASSERT_EQ(spec.probes.size(), 1u);
  EXPECT_EQ(spec.probes[0].probe, "stale_pct");
}

TEST(experiment_spec, range_sugar_expands_inclusively) {
  const experiment_spec spec = parse(R"({
    "name": "r",
    "rows": [{"axis": "natted_pct", "header": "%NAT",
              "range": {"from": 0, "to": 100, "step": 25}}],
    "probes": [{"probe": "stale_pct"}]
  })");
  EXPECT_EQ(spec.rows[0].values,
            (std::vector<std::string>{"0", "25", "50", "75", "100"}));
}

TEST(experiment_spec, column_sweep_sugar_expands_headers_and_sets) {
  const experiment_spec spec = parse(R"({
    "name": "s",
    "rows": [{"axis": "view_size", "header": "view", "values": [8]}],
    "columns": [{
      "sweep": {"axis": "natted_pct", "values": [40, 90]},
      "header": "{}%",
      "probe": "biggest_cluster_pct"
    }]
  })");
  ASSERT_EQ(spec.columns.size(), 2u);
  EXPECT_EQ(spec.columns[0].header, "40%");
  EXPECT_EQ(spec.columns[1].header, "90%");
  ASSERT_EQ(spec.columns[1].set.size(), 1u);
  EXPECT_EQ(spec.columns[1].set[0],
            (spec_setting{"natted_pct", std::string("90")}));
}

TEST(experiment_spec, bad_inputs_throw_contract_errors) {
  // name missing
  EXPECT_THROW(parse(R"({"rows":[{"axis":"natted_pct","header":"x",
    "values":[1]}],"probes":[{"probe":"stale_pct"}]})"),
               contract_error);
  // no rows
  EXPECT_THROW(parse(R"({"name":"x","probes":[{"probe":"stale_pct"}]})"),
               contract_error);
  // both columns and probes
  EXPECT_THROW(parse(R"({"name":"x",
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "probes":[{"probe":"stale_pct"}],
    "columns":[{"header":"c","probe":"stale_pct"}]})"),
               contract_error);
  // unknown probe
  EXPECT_THROW(parse(R"({"name":"x",
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "probes":[{"probe":"not_a_probe"}]})"),
               contract_error);
  // unknown axis key
  EXPECT_THROW(parse(R"({"name":"x",
    "rows":[{"axis":"coolness","header":"h","values":[1]}],
    "probes":[{"probe":"stale_pct"}]})"),
               contract_error);
  // unknown top-level key (typo safety)
  EXPECT_THROW(parse(R"({"name":"x","colums":[],
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "probes":[{"probe":"stale_pct"}]})"),
               contract_error);
  // natted_pct out of range
  EXPECT_THROW(parse(R"({"name":"x",
    "rows":[{"axis":"natted_pct","header":"h","values":[150]}],
    "probes":[{"probe":"stale_pct"}]})"),
               contract_error);
  // ratio referencing a later column
  EXPECT_THROW(parse(R"({"name":"x",
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "columns":[{"header":"r","ratio":[1,0]},
               {"header":"c","probe":"stale_pct"}]})"),
               contract_error);
  // bad warmup literal
  EXPECT_THROW(parse(R"({"name":"x","warmup":"soon",
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "probes":[{"probe":"stale_pct"}]})"),
               contract_error);
  // trajectories without a workload
  EXPECT_THROW(parse(R"({"name":"x","trajectories":true,
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "probes":[{"probe":"stale_pct"}]})"),
               contract_error);
  // warmup is meaningless (and silently ignored) under a workload
  EXPECT_THROW(parse(R"({"name":"x","warmup":"half",
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "probes":[{"probe":"stale_pct"}],
    "workload":{"phases":[{"kind":"steady","periods":2}]}})"),
               contract_error);
  // malformed workload phase
  EXPECT_THROW(parse(R"({"name":"x",
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "probes":[{"probe":"stale_pct"}],
    "workload":{"phases":[{"kind":"warp_drive"}]}})"),
               contract_error);
}

TEST(experiment_spec, round_trips_through_json) {
  for (const char* text : {kMinimalSpec, R"({
         "name": "full",
         "title": "t",
         "footer": ["# a", "# b"],
         "base": {"protocol": "nylon", "natted_pct": 80},
         "warmup": "half",
         "split": {"axis": "view_size", "values": ["$view_a", "$view_b"],
                   "section": "== view {} ==", "table_key": "view_{}"},
         "rows": [{"axis": "hole_timeout_s", "header": "ttl",
                   "values": [15, 90]}],
         "columns": [
           {"header": "a", "set": {"protocol": "reference"},
            "probe": "all_bytes_per_s"},
           {"header": "b", "probe": "all_bytes_per_s"},
           {"header": "a/b", "ratio": [0, 1], "precision": 2},
           {"header": "ttl", "row_value": true}
         ],
         "report_params": ["peers", "seeds"]
       })"}) {
    const experiment_spec once = parse(text);
    const util::json dumped = spec_to_json(once);
    const experiment_spec twice = spec_from_json(dumped);
    EXPECT_EQ(dumped.dump_string(0), spec_to_json(twice).dump_string(0))
        << "spec: " << text;
  }
}

TEST(experiment_spec, runs_end_to_end_and_is_deterministic) {
  const experiment_spec spec = parse(R"({
    "name": "tiny",
    "title": "tiny end-to-end",
    "rows": [{"axis": "natted_pct", "header": "%NAT", "values": [0, 60]}],
    "columns": [
      {"header": "stale view=$view_a", "set": {"view_size": "$view_a"},
       "probe": "stale_pct"},
      {"header": "%NAT again", "row_value": true}
    ],
    "footer": ["# done"]
  })");
  spec_options opt;
  opt.peers = 40;
  opt.rounds = 4;
  opt.seeds = 2;
  opt.threads = 1;
  std::ostringstream out_a;
  const util::json doc_a = run_spec(spec, opt, out_a);
  std::ostringstream out_b;
  const util::json doc_b = run_spec(spec, opt, out_b);
  EXPECT_EQ(out_a.str(), out_b.str());
  EXPECT_EQ(doc_a.dump_string(0), doc_b.dump_string(0));

  // Structure: preamble + resolved headers + one row per axis value.
  const std::string text = out_a.str();
  EXPECT_NE(text.find("# tiny end-to-end"), std::string::npos);
  EXPECT_NE(text.find("stale view=8"), std::string::npos);
  EXPECT_NE(text.find("# done"), std::string::npos);
  const util::json& table = doc_a.at("table");
  EXPECT_EQ(table.at("rows").size(), 2u);
  // row_value column echoes the row label.
  EXPECT_EQ(table.at("rows").at(std::size_t{1}).at(std::size_t{2}).as_string(),
            "60");
}

TEST(experiment_spec, csv_mode_renders_csv) {
  const experiment_spec spec = parse(kMinimalSpec);
  spec_options opt;
  opt.peers = 30;
  opt.rounds = 2;
  opt.csv = true;
  opt.threads = 1;
  std::ostringstream out;
  (void)run_spec(spec, opt, out);
  EXPECT_NE(out.str().find("%NAT,stale %"), std::string::npos);
}

TEST(experiment_spec, workload_variables_and_cells_run_end_to_end) {
  // A miniature fig10 shape: a '$' row axis sweeping a workload
  // parameter, a cell_key'd sweep column, builtin $rounds/$half_rounds
  // durations, extended report params, and the per-cell aggregate table.
  const experiment_spec spec = parse(R"({
    "name": "cells_demo",
    "title": "cells demo",
    "base": {"protocol": "nylon"},
    "workload": {
      "phases": [
        {"kind": "steady", "periods": "$half_rounds"},
        {"kind": "mass_departure", "fraction": "$departures/100"},
        {"kind": "steady", "periods": "$rounds"}
      ]
    },
    "rows": [{"axis": "$departures", "header": "dep", "cell_key": "departures_pct",
              "values": ["20%", "40%"]}],
    "columns": [
      {"sweep": {"axis": "natted_pct", "cell_key": "nat_pct", "values": [0, 50]},
       "header": "{}", "probe": "alive_count", "precision": 0}
    ],
    "cells": true,
    "report_params": ["peers", "warmup_periods=$half_rounds", "heal_periods=$rounds"]
  })");
  spec_options opt;
  opt.peers = 40;
  opt.rounds = 4;
  opt.seeds = 2;
  opt.threads = 1;
  std::ostringstream out;
  const util::json doc = run_spec(spec, opt, out);

  EXPECT_EQ(doc.at("params").at("warmup_periods").as_int(), 2);
  EXPECT_EQ(doc.at("params").at("heal_periods").as_int(), 4);
  const util::json& cells = doc.at("cells");
  ASSERT_EQ(cells.size(), 4u);  // 2 rows x 2 sweep columns
  const util::json& first = cells.at(std::size_t{0});
  EXPECT_EQ(first.at("departures_pct").as_int(), 20);
  EXPECT_EQ(first.at("nat_pct").as_int(), 0);
  // The aggregate carries per-seed values plus summary stats.
  EXPECT_EQ(first.at("alive_count").at("values").size(), 2u);
  // 20% of 40 peers depart -> 32 alive, deterministically.
  EXPECT_DOUBLE_EQ(first.at("alive_count").at("mean").as_double(), 32.0);
  const util::json& last = cells.at(std::size_t{3});
  EXPECT_EQ(last.at("departures_pct").as_int(), 40);
  EXPECT_EQ(last.at("nat_pct").as_int(), 50);
  EXPECT_DOUBLE_EQ(last.at("alive_count").at("mean").as_double(), 24.0);
}

TEST(experiment_spec, workload_variable_misuse_throws) {
  // '$' axes need a workload to substitute into.
  EXPECT_THROW(parse(R"({
    "name": "x", "title": "t",
    "rows": [{"axis": "$frac", "header": "f", "values": [1, 2]}],
    "probes": [{"probe": "stale_pct", "header": "s"}]
  })"),
               contract_error);
  // Variable tokens must be numeric.
  EXPECT_THROW(parse(R"({
    "name": "x", "title": "t",
    "workload": {"phases": [{"kind": "mass_departure", "fraction": "$frac"}]},
    "rows": [{"axis": "$frac", "header": "f", "values": ["lots"]}],
    "probes": [{"probe": "stale_pct", "header": "s"}]
  })"),
               contract_error);
  // "cells" is a columns-mode feature.
  EXPECT_THROW(parse(R"({
    "name": "x", "title": "t", "cells": true,
    "rows": [{"axis": "natted_pct", "header": "n", "values": [0]}],
    "probes": [{"probe": "stale_pct", "header": "s"}]
  })"),
               contract_error);
  // Report params only resolve builtin variables.
  EXPECT_THROW(parse(R"({
    "name": "x", "title": "t",
    "rows": [{"axis": "natted_pct", "header": "n", "values": [0]}],
    "probes": [{"probe": "stale_pct", "header": "s"}],
    "report_params": ["warmup=$bogus"]
  })"),
               contract_error);
  // cells serializes cell_key'd axis values as numbers: non-numeric
  // tokens are rejected at validation, not after the first cell ran.
  EXPECT_THROW(parse(R"({
    "name": "x", "title": "t", "cells": true,
    "rows": [{"axis": "protocol", "header": "p", "cell_key": "proto",
              "values": ["nylon", "reference"]}],
    "columns": [{"header": "c", "probe": "alive_count"}]
  })"),
               contract_error);
}

TEST(experiment_spec, column_sweep_can_drive_a_workload_variable) {
  // The swept '$' variable lives in the *columns*, not the rows; the
  // validator must seed it into the workload resolution all the same.
  const experiment_spec spec = parse(R"({
    "name": "colvar", "title": "column-swept workload",
    "workload": {"phases": [
      {"kind": "mass_departure", "fraction": "$dep/100"},
      {"kind": "steady", "periods": 1}
    ]},
    "rows": [{"axis": "natted_pct", "header": "n", "values": [0]}],
    "columns": [
      {"sweep": {"axis": "$dep", "values": ["20", "60"]},
       "header": "dep {}", "probe": "alive_count", "precision": 0}
    ]
  })");
  spec_options opt;
  opt.peers = 40;
  opt.rounds = 2;
  opt.seeds = 1;
  opt.threads = 1;
  std::ostringstream out;
  const util::json doc = run_spec(spec, opt, out);
  const util::json& row = doc.at("table").at("rows").at(std::size_t{0});
  // 20% vs 60% departures of 40 peers: the per-column workloads differ.
  EXPECT_EQ(row.at(std::size_t{1}).as_string(), "32");
  EXPECT_EQ(row.at(std::size_t{2}).as_string(), "16");
}

TEST(experiment_spec, example_spec_files_parse_and_validate) {
  const std::string dir = std::string(NYLON_SOURCE_DIR) + "/examples/specs/";
  for (const char* name :
       {"fig2_partition", "fig3_stale", "fig4_randomness", "fig7_bandwidth",
        "fig10_churn", "ablation_protocols", "ablation_ttl",
        "latency_sensitivity", "churn_recovery"}) {
    const experiment_spec spec = load_spec_file(dir + name + ".json");
    EXPECT_EQ(spec.name, name);
    // Round-trip stability for every shipped spec.
    const util::json dumped = spec_to_json(spec);
    EXPECT_EQ(spec_to_json(spec_from_json(dumped)).dump_string(0),
              dumped.dump_string(0))
        << name;
  }
}

}  // namespace
}  // namespace nylon::runtime
