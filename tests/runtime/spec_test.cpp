// The declarative experiment-spec API: JSON parse / validate /
// round-trip, bad-input contract errors, axis resolution and a small
// end-to-end run.
#include "runtime/spec.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "metrics/probe.h"
#include "runtime/scenario.h"
#include "util/contracts.h"
#include "util/json.h"

namespace nylon::runtime {
namespace {

experiment_spec parse(const std::string& text) {
  return spec_from_json(util::json::parse(text));
}

const char* kMinimalSpec = R"({
  "name": "mini",
  "title": "a tiny study",
  "rows": [{"axis": "natted_pct", "header": "%NAT", "values": [0, 50]}],
  "probes": [{"probe": "stale_pct", "header": "stale %"}]
})";

TEST(experiment_spec, parses_a_minimal_spec) {
  const experiment_spec spec = parse(kMinimalSpec);
  EXPECT_EQ(spec.name, "mini");
  ASSERT_EQ(spec.rows.size(), 1u);
  EXPECT_EQ(spec.rows[0].key, "natted_pct");
  EXPECT_EQ(spec.rows[0].values, (std::vector<std::string>{"0", "50"}));
  ASSERT_EQ(spec.probes.size(), 1u);
  EXPECT_EQ(spec.probes[0].probe, "stale_pct");
}

TEST(experiment_spec, range_sugar_expands_inclusively) {
  const experiment_spec spec = parse(R"({
    "name": "r",
    "rows": [{"axis": "natted_pct", "header": "%NAT",
              "range": {"from": 0, "to": 100, "step": 25}}],
    "probes": [{"probe": "stale_pct"}]
  })");
  EXPECT_EQ(spec.rows[0].values,
            (std::vector<std::string>{"0", "25", "50", "75", "100"}));
}

TEST(experiment_spec, column_sweep_sugar_expands_headers_and_sets) {
  const experiment_spec spec = parse(R"({
    "name": "s",
    "rows": [{"axis": "view_size", "header": "view", "values": [8]}],
    "columns": [{
      "sweep": {"axis": "natted_pct", "values": [40, 90]},
      "header": "{}%",
      "probe": "biggest_cluster_pct"
    }]
  })");
  ASSERT_EQ(spec.columns.size(), 2u);
  EXPECT_EQ(spec.columns[0].header, "40%");
  EXPECT_EQ(spec.columns[1].header, "90%");
  ASSERT_EQ(spec.columns[1].set.size(), 1u);
  EXPECT_EQ(spec.columns[1].set[0],
            (spec_setting{"natted_pct", std::string("90")}));
}

TEST(experiment_spec, bad_inputs_throw_contract_errors) {
  // name missing
  EXPECT_THROW(parse(R"({"rows":[{"axis":"natted_pct","header":"x",
    "values":[1]}],"probes":[{"probe":"stale_pct"}]})"),
               contract_error);
  // no rows
  EXPECT_THROW(parse(R"({"name":"x","probes":[{"probe":"stale_pct"}]})"),
               contract_error);
  // both columns and probes
  EXPECT_THROW(parse(R"({"name":"x",
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "probes":[{"probe":"stale_pct"}],
    "columns":[{"header":"c","probe":"stale_pct"}]})"),
               contract_error);
  // unknown probe
  EXPECT_THROW(parse(R"({"name":"x",
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "probes":[{"probe":"not_a_probe"}]})"),
               contract_error);
  // unknown axis key
  EXPECT_THROW(parse(R"({"name":"x",
    "rows":[{"axis":"coolness","header":"h","values":[1]}],
    "probes":[{"probe":"stale_pct"}]})"),
               contract_error);
  // unknown top-level key (typo safety)
  EXPECT_THROW(parse(R"({"name":"x","colums":[],
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "probes":[{"probe":"stale_pct"}]})"),
               contract_error);
  // natted_pct out of range
  EXPECT_THROW(parse(R"({"name":"x",
    "rows":[{"axis":"natted_pct","header":"h","values":[150]}],
    "probes":[{"probe":"stale_pct"}]})"),
               contract_error);
  // ratio referencing a later column
  EXPECT_THROW(parse(R"({"name":"x",
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "columns":[{"header":"r","ratio":[1,0]},
               {"header":"c","probe":"stale_pct"}]})"),
               contract_error);
  // bad warmup literal
  EXPECT_THROW(parse(R"({"name":"x","warmup":"soon",
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "probes":[{"probe":"stale_pct"}]})"),
               contract_error);
  // trajectories without a workload
  EXPECT_THROW(parse(R"({"name":"x","trajectories":true,
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "probes":[{"probe":"stale_pct"}]})"),
               contract_error);
  // warmup is meaningless (and silently ignored) under a workload
  EXPECT_THROW(parse(R"({"name":"x","warmup":"half",
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "probes":[{"probe":"stale_pct"}],
    "workload":{"phases":[{"kind":"steady","periods":2}]}})"),
               contract_error);
  // malformed workload phase
  EXPECT_THROW(parse(R"({"name":"x",
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "probes":[{"probe":"stale_pct"}],
    "workload":{"phases":[{"kind":"warp_drive"}]}})"),
               contract_error);
}

TEST(experiment_spec, taxonomy_fields_round_trip_through_json) {
  // class/stat selectors, probes-mode ratio entries, checks, verdict,
  // profiles, preamble/static and single_seed all survive a round trip.
  for (const char* text : {R"({
         "name": "tax",
         "title": "taxonomy",
         "single_seed": true,
         "rows": [{"axis": "natted_pct", "header": "n", "values": [0, 50]}],
         "probes": [
           {"probe": "class_bytes_per_s", "class": "public", "header": "pub"},
           {"probe": "class_bytes_per_s", "class": "natted", "header": "nat"},
           {"header": "pub/nat", "ratio": [0, 1], "precision": 2},
           {"probe": "in_degree", "stat": "cv", "header": "disp"}
         ],
         "checks": [
           {"probe": "check_connected"},
           {"probe": "check_no_dead_refs", "name": "freshness"}
         ],
         "verdict": {"pass": "ok", "fail": "FAILED"},
         "profiles": {
           "full": {"peers": 10000, "seeds": 30, "rounds": 600,
                    "view_a": 15, "view_b": 27},
           "quick": {"peers": 100, "vars": {"half_rounds": 2}}
         },
         "distributions": true
       })",
                           R"({
         "name": "static_tax",
         "preamble": ["# custom header", ""],
         "static": true,
         "rows": [{"axis": "%src_nat", "header": "src",
                   "values": ["public", "SYM"]}],
         "columns": [
           {"header": "public", "set": {"%dst_nat": "public"},
            "probe": "traversal_prescribed"},
           {"header": "SYM", "set": {"%dst_nat": "SYM"},
            "probe": "traversal_prescribed"}
         ],
         "verdict": {"pass": "all good", "fail": "broken"}
       })"}) {
    const experiment_spec once = parse(text);
    const util::json dumped = spec_to_json(once);
    const experiment_spec twice = spec_from_json(dumped);
    EXPECT_EQ(dumped.dump_string(0), spec_to_json(twice).dump_string(0))
        << "spec: " << text;
  }
}

TEST(experiment_spec, round_trips_through_json) {
  for (const char* text : {kMinimalSpec, R"({
         "name": "full",
         "title": "t",
         "footer": ["# a", "# b"],
         "base": {"protocol": "nylon", "natted_pct": 80},
         "warmup": "half",
         "split": {"axis": "view_size", "values": ["$view_a", "$view_b"],
                   "section": "== view {} ==", "table_key": "view_{}"},
         "rows": [{"axis": "hole_timeout_s", "header": "ttl",
                   "values": [15, 90]}],
         "columns": [
           {"header": "a", "set": {"protocol": "reference"},
            "probe": "all_bytes_per_s"},
           {"header": "b", "probe": "all_bytes_per_s"},
           {"header": "a/b", "ratio": [0, 1], "precision": 2},
           {"header": "ttl", "row_value": true}
         ],
         "report_params": ["peers", "seeds"]
       })"}) {
    const experiment_spec once = parse(text);
    const util::json dumped = spec_to_json(once);
    const experiment_spec twice = spec_from_json(dumped);
    EXPECT_EQ(dumped.dump_string(0), spec_to_json(twice).dump_string(0))
        << "spec: " << text;
  }
}

TEST(experiment_spec, runs_end_to_end_and_is_deterministic) {
  const experiment_spec spec = parse(R"({
    "name": "tiny",
    "title": "tiny end-to-end",
    "rows": [{"axis": "natted_pct", "header": "%NAT", "values": [0, 60]}],
    "columns": [
      {"header": "stale view=$view_a", "set": {"view_size": "$view_a"},
       "probe": "stale_pct"},
      {"header": "%NAT again", "row_value": true}
    ],
    "footer": ["# done"]
  })");
  spec_options opt;
  opt.peers = 40;
  opt.rounds = 4;
  opt.seeds = 2;
  opt.threads = 1;
  std::ostringstream out_a;
  const util::json doc_a = run_spec(spec, opt, out_a);
  std::ostringstream out_b;
  const util::json doc_b = run_spec(spec, opt, out_b);
  EXPECT_EQ(out_a.str(), out_b.str());
  EXPECT_EQ(doc_a.dump_string(0), doc_b.dump_string(0));

  // Structure: preamble + resolved headers + one row per axis value.
  const std::string text = out_a.str();
  EXPECT_NE(text.find("# tiny end-to-end"), std::string::npos);
  EXPECT_NE(text.find("stale view=8"), std::string::npos);
  EXPECT_NE(text.find("# done"), std::string::npos);
  const util::json& table = doc_a.at("table");
  EXPECT_EQ(table.at("rows").size(), 2u);
  // row_value column echoes the row label.
  EXPECT_EQ(table.at("rows").at(std::size_t{1}).at(std::size_t{2}).as_string(),
            "60");
}

TEST(experiment_spec, timeline_parses_round_trips_and_validates) {
  const char* text = R"({
    "name": "tl",
    "rows": [{"axis": "natted_pct", "header": "%NAT", "values": [50]}],
    "probes": [{"probe": "stale_pct"}],
    "timeline": {"period_s": 2.5,
                 "probes": ["alive_count", "drop_count.nat_filtered",
                            "in_degree.cv", "obs.arena_bytes_peak"]}
  })";
  const experiment_spec spec = parse(text);
  EXPECT_TRUE(spec.timeline.enabled);
  EXPECT_DOUBLE_EQ(spec.timeline.period_s, 2.5);
  ASSERT_EQ(spec.timeline.probes.size(), 4u);
  const util::json dumped = spec_to_json(spec);
  EXPECT_EQ(dumped.dump_string(0),
            spec_to_json(spec_from_json(dumped)).dump_string(0));
}

TEST(experiment_spec, timeline_misuse_is_a_validation_error) {
  const auto tl_spec = [](const char* timeline) {
    return std::string(R"({"name":"x",
      "rows":[{"axis":"natted_pct","header":"h","values":[50]}],
      "probes":[{"probe":"stale_pct"}],
      "timeline":)") + timeline + "}";
  };
  // Non-passive probe: the randomness battery consumes peer rngs, so it
  // must never ride a mid-run timeline.
  EXPECT_THROW(
      parse(tl_spec(R"({"period_s":5,"probes":["sample_birthday_p"]})")),
      contract_error);
  // Check probes have no scalar view.
  EXPECT_THROW(
      parse(tl_spec(R"({"period_s":5,"probes":["check_connected"]})")),
      contract_error);
  // Selector misuse and unknown names surface at validation.
  EXPECT_THROW(parse(tl_spec(R"({"period_s":5,"probes":["drop_count"]})")),
               contract_error);
  EXPECT_THROW(parse(tl_spec(R"({"period_s":5,"probes":["no_such"]})")),
               contract_error);
  EXPECT_THROW(parse(tl_spec(R"({"period_s":5,"probes":["obs.bogus"]})")),
               contract_error);
  // A positive period and at least one column are required.
  EXPECT_THROW(parse(tl_spec(R"({"period_s":0,"probes":["alive_count"]})")),
               contract_error);
  EXPECT_THROW(parse(tl_spec(R"({"period_s":5,"probes":[]})")),
               contract_error);
  // Static specs have no sim time to sample.
  EXPECT_THROW(parse(R"({"name":"x","static":true,
    "rows":[{"axis":"%a","header":"h","values":["open"]}],
    "probes":[{"probe":"traversal_prescribed"}],
    "timeline":{"period_s":5,"probes":["alive_count"]}})"),
               contract_error);
}

TEST(experiment_spec, timeline_records_per_seed_series_only_when_enabled) {
  const char* base = R"({
    "name": "tl_run",
    "rows": [{"axis": "natted_pct", "header": "%NAT", "values": [0, 60]}],
    "probes": [{"probe": "alive_count", "precision": 0}],
    "workload": {"phases": [{"kind": "steady", "periods": 4}]}
  })";
  spec_options opt;
  opt.peers = 30;
  opt.rounds = 2;
  opt.seeds = 2;
  opt.threads = 1;
  std::ostringstream plain_out;
  const util::json plain = run_spec(parse(base), opt, plain_out);
  EXPECT_EQ(plain.find("timeline"), nullptr);

  // Force-enabled via the driver flag (no spec block): default columns,
  // identical table output — sampling is observation-only.
  spec_options tl_opt = opt;
  tl_opt.timeline = true;
  tl_opt.timeline_period_s = 5.0;
  std::ostringstream tl_out;
  const util::json doc = run_spec(parse(base), tl_opt, tl_out);
  EXPECT_EQ(plain_out.str(), tl_out.str());
  ASSERT_NE(doc.find("timeline"), nullptr);
  const util::json& block = doc.at("timeline");
  EXPECT_DOUBLE_EQ(block.at("period_s").as_double(), 5.0);
  EXPECT_EQ(block.at("columns").at(0).as_string(), "t_s");
  ASSERT_EQ(block.at("cells").size(), 2u);  // one per row
  const util::json& cell = block.at("cells").at(0);
  EXPECT_EQ(cell.at("row").at(std::size_t{0}).as_string(), "0");
  ASSERT_EQ(cell.at("per_seed").size(), 2u);  // one series per seed
  const util::json& series = cell.at("per_seed").at(0);
  ASSERT_GT(series.size(), 0u);
  // Sim time advances monotonically and each sample carries one value
  // per column.
  double last_t = 0.0;
  for (const util::json& sample : series.array_items()) {
    ASSERT_EQ(sample.size(), block.at("columns").size());
    EXPECT_GT(sample.at(0).as_double(), last_t);
    last_t = sample.at(0).as_double();
  }
  // Everything else in the report is unchanged by sampling.
  util::json stripped = util::json::object();
  for (const auto& [key, value] : doc.object_items()) {
    if (key != "timeline") stripped[key] = value;
  }
  EXPECT_EQ(stripped.dump_string(0), plain.dump_string(0));
}

TEST(experiment_spec, csv_mode_renders_csv) {
  const experiment_spec spec = parse(kMinimalSpec);
  spec_options opt;
  opt.peers = 30;
  opt.rounds = 2;
  opt.csv = true;
  opt.threads = 1;
  std::ostringstream out;
  (void)run_spec(spec, opt, out);
  EXPECT_NE(out.str().find("%NAT,stale %"), std::string::npos);
}

TEST(experiment_spec, workload_variables_and_cells_run_end_to_end) {
  // A miniature fig10 shape: a '$' row axis sweeping a workload
  // parameter, a cell_key'd sweep column, builtin $rounds/$half_rounds
  // durations, extended report params, and the per-cell aggregate table.
  const experiment_spec spec = parse(R"({
    "name": "cells_demo",
    "title": "cells demo",
    "base": {"protocol": "nylon"},
    "workload": {
      "phases": [
        {"kind": "steady", "periods": "$half_rounds"},
        {"kind": "mass_departure", "fraction": "$departures/100"},
        {"kind": "steady", "periods": "$rounds"}
      ]
    },
    "rows": [{"axis": "$departures", "header": "dep", "cell_key": "departures_pct",
              "values": ["20%", "40%"]}],
    "columns": [
      {"sweep": {"axis": "natted_pct", "cell_key": "nat_pct", "values": [0, 50]},
       "header": "{}", "probe": "alive_count", "precision": 0}
    ],
    "cells": true,
    "report_params": ["peers", "warmup_periods=$half_rounds", "heal_periods=$rounds"]
  })");
  spec_options opt;
  opt.peers = 40;
  opt.rounds = 4;
  opt.seeds = 2;
  opt.threads = 1;
  std::ostringstream out;
  const util::json doc = run_spec(spec, opt, out);

  EXPECT_EQ(doc.at("params").at("warmup_periods").as_int(), 2);
  EXPECT_EQ(doc.at("params").at("heal_periods").as_int(), 4);
  const util::json& cells = doc.at("cells");
  ASSERT_EQ(cells.size(), 4u);  // 2 rows x 2 sweep columns
  const util::json& first = cells.at(std::size_t{0});
  EXPECT_EQ(first.at("departures_pct").as_int(), 20);
  EXPECT_EQ(first.at("nat_pct").as_int(), 0);
  // The aggregate carries per-seed values plus summary stats.
  EXPECT_EQ(first.at("alive_count").at("values").size(), 2u);
  // 20% of 40 peers depart -> 32 alive, deterministically.
  EXPECT_DOUBLE_EQ(first.at("alive_count").at("mean").as_double(), 32.0);
  const util::json& last = cells.at(std::size_t{3});
  EXPECT_EQ(last.at("departures_pct").as_int(), 40);
  EXPECT_EQ(last.at("nat_pct").as_int(), 50);
  EXPECT_DOUBLE_EQ(last.at("alive_count").at("mean").as_double(), 24.0);
}

TEST(experiment_spec, workload_variable_misuse_throws) {
  // '$' axes need a workload to substitute into.
  EXPECT_THROW(parse(R"({
    "name": "x", "title": "t",
    "rows": [{"axis": "$frac", "header": "f", "values": [1, 2]}],
    "probes": [{"probe": "stale_pct", "header": "s"}]
  })"),
               contract_error);
  // Variable tokens must be numeric.
  EXPECT_THROW(parse(R"({
    "name": "x", "title": "t",
    "workload": {"phases": [{"kind": "mass_departure", "fraction": "$frac"}]},
    "rows": [{"axis": "$frac", "header": "f", "values": ["lots"]}],
    "probes": [{"probe": "stale_pct", "header": "s"}]
  })"),
               contract_error);
  // "cells" is a columns-mode feature.
  EXPECT_THROW(parse(R"({
    "name": "x", "title": "t", "cells": true,
    "rows": [{"axis": "natted_pct", "header": "n", "values": [0]}],
    "probes": [{"probe": "stale_pct", "header": "s"}]
  })"),
               contract_error);
  // Report params only resolve builtin variables.
  EXPECT_THROW(parse(R"({
    "name": "x", "title": "t",
    "rows": [{"axis": "natted_pct", "header": "n", "values": [0]}],
    "probes": [{"probe": "stale_pct", "header": "s"}],
    "report_params": ["warmup=$bogus"]
  })"),
               contract_error);
  // cells serializes cell_key'd axis values as numbers: non-numeric
  // tokens are rejected at validation, not after the first cell ran.
  EXPECT_THROW(parse(R"({
    "name": "x", "title": "t", "cells": true,
    "rows": [{"axis": "protocol", "header": "p", "cell_key": "proto",
              "values": ["nylon", "reference"]}],
    "columns": [{"header": "c", "probe": "alive_count"}]
  })"),
               contract_error);
}

TEST(experiment_spec, column_sweep_can_drive_a_workload_variable) {
  // The swept '$' variable lives in the *columns*, not the rows; the
  // validator must seed it into the workload resolution all the same.
  const experiment_spec spec = parse(R"({
    "name": "colvar", "title": "column-swept workload",
    "workload": {"phases": [
      {"kind": "mass_departure", "fraction": "$dep/100"},
      {"kind": "steady", "periods": 1}
    ]},
    "rows": [{"axis": "natted_pct", "header": "n", "values": [0]}],
    "columns": [
      {"sweep": {"axis": "$dep", "values": ["20", "60"]},
       "header": "dep {}", "probe": "alive_count", "precision": 0}
    ]
  })");
  spec_options opt;
  opt.peers = 40;
  opt.rounds = 2;
  opt.seeds = 1;
  opt.threads = 1;
  std::ostringstream out;
  const util::json doc = run_spec(spec, opt, out);
  const util::json& row = doc.at("table").at("rows").at(std::size_t{0});
  // 20% vs 60% departures of 40 peers: the per-column workloads differ.
  EXPECT_EQ(row.at(std::size_t{1}).as_string(), "32");
  EXPECT_EQ(row.at(std::size_t{2}).as_string(), "16");
}

TEST(experiment_spec, selector_misuse_is_a_validation_error) {
  // A per_class probe in a scalar column without a class selection.
  try {
    (void)parse(R"({
      "name": "x", "title": "t",
      "rows": [{"axis": "natted_pct", "header": "n", "values": [0]}],
      "probes": [{"probe": "class_bytes_per_s", "header": "B/s"}]
    })");
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("per_class"), std::string::npos) << what;
    EXPECT_NE(what.find("class"), std::string::npos) << what;
  }
  // A distribution probe without a stat.
  EXPECT_THROW((void)parse(R"({
    "name": "x", "title": "t",
    "rows": [{"axis": "natted_pct", "header": "n", "values": [0]}],
    "columns": [{"header": "c", "probe": "rvp_chain"}]
  })"),
               contract_error);
  // A quantile stat on a stream-only distribution probe.
  EXPECT_THROW((void)parse(R"({
    "name": "x", "title": "t",
    "rows": [{"axis": "natted_pct", "header": "n", "values": [0]}],
    "columns": [{"header": "c", "probe": "rvp_chain", "stat": "p90"}]
  })"),
               contract_error);
  // A check probe outside a static spec / checks list.
  EXPECT_THROW((void)parse(R"({
    "name": "x", "title": "t",
    "rows": [{"axis": "natted_pct", "header": "n", "values": [0]}],
    "columns": [{"header": "c", "probe": "check_connected"}]
  })"),
               contract_error);
  // checks must name check probes...
  EXPECT_THROW((void)parse(R"({
    "name": "x", "title": "t",
    "rows": [{"axis": "natted_pct", "header": "n", "values": [0]}],
    "probes": [{"probe": "stale_pct", "header": "s"}],
    "checks": [{"probe": "stale_pct"}]
  })"),
               contract_error);
  // ... and ride probes mode, not columns mode.
  EXPECT_THROW((void)parse(R"({
    "name": "x", "title": "t",
    "rows": [{"axis": "natted_pct", "header": "n", "values": [0]}],
    "columns": [{"header": "c", "probe": "stale_pct"}],
    "checks": [{"probe": "check_connected"}]
  })"),
               contract_error);
  // A verdict needs check probes somewhere.
  EXPECT_THROW((void)parse(R"({
    "name": "x", "title": "t",
    "rows": [{"axis": "natted_pct", "header": "n", "values": [0]}],
    "probes": [{"probe": "stale_pct", "header": "s"}],
    "verdict": {"pass": "ok", "fail": "bad"}
  })"),
               contract_error);
  // Static specs cannot reference world-needing probes or workloads.
  EXPECT_THROW((void)parse(R"({
    "name": "x", "title": "t", "static": true,
    "rows": [{"axis": "%src_nat", "header": "s", "values": ["SYM"]}],
    "columns": [{"header": "c", "probe": "stale_pct"}]
  })"),
               contract_error);
  EXPECT_THROW((void)parse(R"({
    "name": "x", "title": "t", "static": true,
    "rows": [{"axis": "%src_nat", "header": "s", "values": ["SYM"]}],
    "columns": [{"header": "c", "probe": "traversal_prescribed",
                 "set": {"%dst_nat": "SYM"}}],
    "workload": {"phases": [{"kind": "steady", "periods": 2}]}
  })"),
               contract_error);
  // preamble replaces title, not both.
  EXPECT_THROW((void)parse(R"({
    "name": "x", "title": "t", "preamble": ["# p"],
    "rows": [{"axis": "natted_pct", "header": "n", "values": [0]}],
    "probes": [{"probe": "stale_pct", "header": "s"}]
  })"),
               contract_error);
  // Ratio probe entries need seed aggregates: rejected in static specs
  // at validation, not via an internal postcondition at execution.
  EXPECT_THROW((void)parse(R"({
    "name": "x", "title": "t", "static": true,
    "rows": [{"axis": "%src_nat", "header": "s", "values": ["SYM"]}],
    "probes": [
      {"probe": "traversal_prescribed", "header": "a"},
      {"probe": "traversal_prescribed", "header": "b"},
      {"header": "r", "ratio": [0, 1]}
    ]
  })"),
               contract_error);
  // Report params must resolve without a profile: profile vars override
  // builtin *values*, they do not introduce report-param names.
  EXPECT_THROW((void)parse(R"({
    "name": "x", "title": "t",
    "rows": [{"axis": "natted_pct", "header": "n", "values": [0]}],
    "probes": [{"probe": "stale_pct", "header": "s"}],
    "profiles": {"full": {"vars": {"foo": 5}}},
    "report_params": ["x=$foo"]
  })"),
               contract_error);
}

TEST(experiment_spec, per_class_and_ratio_probes_share_one_run) {
  // The Fig. 8 shape: two classes of one per_class probe plus a ratio
  // entry, all riding a single scenario per row.
  const experiment_spec spec = parse(R"({
    "name": "classes", "title": "per-class",
    "warmup": "half",
    "base": {"protocol": "nylon"},
    "rows": [{"axis": "natted_pct", "header": "%NAT", "values": [40]}],
    "probes": [
      {"probe": "class_bytes_per_s", "class": "public", "header": "public B/s"},
      {"probe": "class_bytes_per_s", "class": "natted", "header": "natted B/s"},
      {"header": "public/natted", "ratio": [0, 1], "precision": 2}
    ]
  })");
  spec_options opt;
  opt.peers = 60;
  opt.rounds = 8;
  opt.seeds = 2;
  opt.threads = 1;
  std::ostringstream out;
  const util::json doc = run_spec(spec, opt, out);
  const util::json& row = doc.at("table").at("rows").at(std::size_t{0});
  const double pub = std::stod(row.at(std::size_t{1}).as_string());
  const double nat = std::stod(row.at(std::size_t{2}).as_string());
  const double ratio = std::stod(row.at(std::size_t{3}).as_string());
  EXPECT_GT(pub, 0.0);
  EXPECT_GT(nat, 0.0);
  EXPECT_NEAR(ratio, pub / nat, 0.01);  // table-precision rounding
}

TEST(experiment_spec, checks_emit_verdicts_and_exit_status) {
  const experiment_spec spec = parse(R"({
    "name": "checked", "title": "with checks",
    "base": {"protocol": "nylon"},
    "rows": [{"axis": "natted_pct", "header": "%NAT", "values": [0, 50]}],
    "probes": [{"probe": "biggest_cluster_pct", "header": "cluster %"}],
    "checks": [
      {"probe": "check_connected"},
      {"probe": "check_no_dead_refs", "name": "freshness"}
    ],
    "verdict": {"pass": "verification: ok", "fail": "verification: FAILED"}
  })");
  spec_options opt;
  opt.peers = 50;
  opt.rounds = 8;
  opt.seeds = 2;
  opt.threads = 1;
  std::ostringstream out;
  const util::json doc = run_spec(spec, opt, out);

  // The table itself is untouched by checks; verdicts land in JSON.
  EXPECT_EQ(doc.at("table").at("headers").size(), 2u);
  const util::json& checks = doc.at("checks");
  ASSERT_EQ(checks.size(), 4u);  // 2 rows x 2 checks
  EXPECT_EQ(checks.at(std::size_t{0}).at("check").as_string(),
            "check_connected");
  EXPECT_EQ(checks.at(std::size_t{1}).at("check").as_string(), "freshness");
  for (const util::json& entry : checks.array_items()) {
    EXPECT_TRUE(entry.at("passed").as_bool());
    EXPECT_EQ(entry.at("row").size(), 1u);
  }
  EXPECT_TRUE(all_checks_passed(doc));
  EXPECT_NE(out.str().find("verification: ok"), std::string::npos);

  // Determinism: a second run is byte-identical, checks included.
  std::ostringstream again;
  const util::json doc2 = run_spec(spec, opt, again);
  EXPECT_EQ(out.str(), again.str());
  EXPECT_EQ(doc.dump_string(0), doc2.dump_string(0));
}

TEST(experiment_spec, single_seed_runs_at_the_raw_base_seed) {
  // The legacy §5 form: one run per cell at cfg.seed = opt.seed, no
  // derive_seed. --seeds must not change a byte.
  const char* text = R"({
    "name": "raw_seed", "title": "single seed",
    "single_seed": true,
    "rows": [{"axis": "natted_pct", "header": "%NAT", "values": [30]}],
    "probes": [{"probe": "stale_pct", "header": "stale %", "precision": 4}]
  })";
  const experiment_spec spec = parse(text);
  spec_options opt;
  opt.peers = 50;
  opt.rounds = 6;
  opt.seed = 42;
  opt.threads = 1;
  std::ostringstream one;
  (void)run_spec(spec, opt, one);
  opt.seeds = 7;  // ignored by single_seed
  std::ostringstream many;
  (void)run_spec(spec, opt, many);
  // Only the preamble's "seeds=" echo may differ.
  const auto body = [](const std::string& s) {
    return s.substr(s.find('\n', s.find("seeds=")));
  };
  EXPECT_EQ(body(one.str()), body(many.str()));

  // And the value really is the raw-seed run's measurement.
  experiment_config cfg;
  cfg.peer_count = 50;
  cfg.gossip.view_size = 8;
  cfg.natted_fraction = 0.3;
  cfg.seed = 42;
  scenario world(cfg);
  world.run_periods(6);
  const metrics::reachability_oracle oracle = world.oracle();
  const metrics::probe_context ctx{world, oracle, 0};
  const double expected =
      metrics::find_probe("stale_pct")->run(ctx).scalar;
  const util::json doc = [&] {
    std::ostringstream sink;
    return run_spec(spec, opt, sink);
  }();
  const std::string cell = doc.at("table")
                               .at("rows")
                               .at(std::size_t{0})
                               .at(std::size_t{1})
                               .as_string();
  EXPECT_NEAR(std::stod(cell), expected, 1e-4);
}

TEST(experiment_spec, profiles_select_override_and_yield_to_explicit_flags) {
  const experiment_spec spec = parse(R"({
    "name": "profiled", "title": "profiles",
    "workload": {
      "phases": [
        {"kind": "steady", "periods": "$half_rounds"},
        {"kind": "mass_departure", "fraction": 0.5},
        {"kind": "steady", "periods": "$rounds"}
      ]
    },
    "rows": [{"axis": "natted_pct", "header": "%NAT", "values": [0]}],
    "columns": [{"header": "alive", "probe": "alive_count", "precision": 0}],
    "profiles": {
      "full": {"peers": 200, "seeds": 4, "rounds": 40,
               "vars": {"half_rounds": 3, "rounds": 5}}
    },
    "report_params": ["peers", "seeds",
                      "warmup_periods=$half_rounds", "heal_periods=$rounds"]
  })");
  spec_options opt;
  opt.peers = 40;
  opt.rounds = 4;
  opt.seeds = 1;
  opt.threads = 1;

  // No profile: builtins derive from --rounds.
  {
    std::ostringstream out;
    const util::json doc = run_spec(spec, opt, out);
    EXPECT_EQ(doc.at("params").at("peers").as_int(), 40);
    EXPECT_EQ(doc.at("params").at("warmup_periods").as_int(), 2);
    EXPECT_EQ(doc.at("params").at("heal_periods").as_int(), 4);
    EXPECT_NE(out.str().find("(reduced scale"), std::string::npos);
  }
  // Profile applies scale and variable overrides.
  opt.profile = "full";
  {
    std::ostringstream out;
    const util::json doc = run_spec(spec, opt, out);
    EXPECT_EQ(doc.at("params").at("peers").as_int(), 200);
    EXPECT_EQ(doc.at("params").at("seeds").as_int(), 4);
    EXPECT_EQ(doc.at("params").at("warmup_periods").as_int(), 3);
    EXPECT_EQ(doc.at("params").at("heal_periods").as_int(), 5);
    EXPECT_NE(out.str().find("(profile full)"), std::string::npos);
  }
  // Explicitly-given flags beat the profile; its vars still apply.
  opt.peers_explicit = true;
  opt.seeds_explicit = true;
  {
    std::ostringstream out;
    const util::json doc = run_spec(spec, opt, out);
    EXPECT_EQ(doc.at("params").at("peers").as_int(), 40);
    EXPECT_EQ(doc.at("params").at("seeds").as_int(), 1);
    EXPECT_EQ(doc.at("params").at("warmup_periods").as_int(), 3);
  }
  // An explicit --rounds also wins over the profile's overrides of the
  // rounds-derived builtins: "--profile full --rounds 4" must run a
  // genuinely reduced-scale workload, not the paper durations.
  opt.rounds_explicit = true;
  {
    std::ostringstream out;
    const util::json doc = run_spec(spec, opt, out);
    EXPECT_EQ(doc.at("params").at("warmup_periods").as_int(), 2);  // 4/2
    EXPECT_EQ(doc.at("params").at("heal_periods").as_int(), 4);
  }
  opt.rounds_explicit = false;
  // Unknown profiles throw with the available names.
  opt.profile = "overnight";
  std::ostringstream sink;
  try {
    (void)run_spec(spec, opt, sink);
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("full"), std::string::npos);
  }
}

TEST(experiment_spec, fig10_full_profile_pins_paper_scale_workload) {
  // The acceptance shape: --profile full on fig10 must reproduce the
  // paper's warmup-500 / heal-1500 run (ROADMAP "sharded --full fig10").
  const experiment_spec spec = load_spec_file(
      std::string(NYLON_SOURCE_DIR) + "/examples/specs/fig10_churn.json");
  const spec_profile* full = nullptr;
  for (const auto& [name, prof] : spec.profiles) {
    if (name == "full") full = &prof;
  }
  ASSERT_NE(full, nullptr);
  EXPECT_EQ(full->peers.value(), 10000);
  EXPECT_EQ(full->seeds.value(), 30);
  std::map<std::string, std::string> vars(full->vars.begin(),
                                          full->vars.end());
  EXPECT_EQ(vars.at("half_rounds"), "500");
  EXPECT_EQ(vars.at("rounds"), "1500");
}

TEST(experiment_spec, distributions_section_aggregates_summaries) {
  const experiment_spec spec = parse(R"({
    "name": "dists", "title": "distribution summaries",
    "base": {"protocol": "nylon"},
    "rows": [{"axis": "natted_pct", "header": "%NAT", "values": [50]}],
    "probes": [
      {"probe": "in_degree", "stat": "mean", "header": "in-deg"},
      {"probe": "rvp_chain", "stat": "mean", "header": "RVPs", "precision": 2}
    ],
    "distributions": true
  })");
  spec_options opt;
  opt.peers = 50;
  opt.rounds = 8;
  opt.seeds = 2;
  opt.threads = 1;
  std::ostringstream out;
  const util::json doc = run_spec(spec, opt, out);
  const util::json& dists = doc.at("distributions");
  ASSERT_EQ(dists.size(), 2u);  // one per distribution entry
  const util::json& in_deg = dists.at(std::size_t{0});
  EXPECT_EQ(in_deg.at("probe").as_string(), "in_degree");
  // Seed-aggregated moment stats, quantiles only where retained.
  EXPECT_EQ(in_deg.at("count").at("values").size(), 2u);
  EXPECT_GT(in_deg.at("mean").at("mean").as_double(), 0.0);
  EXPECT_NE(in_deg.find("p90"), nullptr);
  const util::json& chains = dists.at(std::size_t{1});
  EXPECT_EQ(chains.at("probe").as_string(), "rvp_chain");
  EXPECT_EQ(chains.find("p90"), nullptr);  // stream-only probe
}

TEST(experiment_spec, static_spec_runs_without_simulation) {
  const experiment_spec spec = parse(R"({
    "name": "static_mini",
    "preamble": ["# tiny traversal check"],
    "static": true,
    "rows": [{"axis": "%src_nat", "header": "src", "values": ["RC", "SYM"]}],
    "columns": [
      {"header": "to public", "set": {"%dst_nat": "public"},
       "probe": "traversal_prescribed"},
      {"header": "to SYM", "set": {"%dst_nat": "SYM"},
       "probe": "traversal_prescribed"}
    ],
    "verdict": {"pass": "all pass", "fail": "some fail"}
  })");
  spec_options opt;
  opt.threads = 1;
  std::ostringstream out;
  const util::json doc = run_spec(spec, opt, out);
  EXPECT_NE(out.str().find("# tiny traversal check"), std::string::npos);
  EXPECT_EQ(out.str().find("# n="), std::string::npos);  // no std preamble
  EXPECT_NE(out.str().find("all pass"), std::string::npos);
  const util::json& checks = doc.at("checks");
  ASSERT_EQ(checks.size(), 4u);  // 2 rows x 2 check columns
  for (const util::json& entry : checks.array_items()) {
    EXPECT_TRUE(entry.at("passed").as_bool());
    EXPECT_NE(entry.find("column"), nullptr);
    EXPECT_NE(entry.find("detail"), nullptr);
  }
  // Cells carry the technique text, e.g. SYM -> SYM relays.
  EXPECT_EQ(doc.at("table")
                .at("rows")
                .at(std::size_t{1})
                .at(std::size_t{2})
                .as_string(),
            "relaying");
}

TEST(experiment_spec, sim_frames_transport_is_output_invariant) {
  // The codec transparency guarantee at the spec level: the same study
  // through serialized frames prints byte-identical tables and reports
  // (minus the "transport" marker non-sim runs add to the JSON).
  const experiment_spec spec = parse(kMinimalSpec);
  spec_options opt;
  opt.peers = 40;
  opt.rounds = 4;
  opt.seeds = 2;
  opt.threads = 1;
  std::ostringstream plain_out;
  const util::json plain = run_spec(spec, opt, plain_out);
  // Default transport leaves no marker, keeping pre-existing BENCH
  // documents byte-identical.
  EXPECT_EQ(plain.find("transport"), nullptr);

  opt.transport = "sim-frames";
  std::ostringstream framed_out;
  const util::json framed = run_spec(spec, opt, framed_out);
  EXPECT_EQ(framed_out.str(), plain_out.str());
  ASSERT_NE(framed.find("transport"), nullptr);
  EXPECT_EQ(framed.at("transport").as_string(), "sim-frames");
}

TEST(experiment_spec, transport_can_come_from_the_spec_base) {
  const experiment_spec spec = parse(R"({
    "name": "framed", "title": "t",
    "base": {"transport": "sim-frames"},
    "rows": [{"axis": "natted_pct", "header": "%NAT", "values": [0]}],
    "probes": [{"probe": "stale_pct", "header": "stale %"}]
  })");
  spec_options opt;
  opt.peers = 30;
  opt.rounds = 2;
  opt.threads = 1;
  std::ostringstream out;
  const util::json doc = run_spec(spec, opt, out);
  ASSERT_NE(doc.find("transport"), nullptr);
  EXPECT_EQ(doc.at("transport").as_string(), "sim-frames");
}

TEST(experiment_spec, bad_transport_token_throws) {
  const experiment_spec spec = parse(kMinimalSpec);
  spec_options opt;
  opt.peers = 30;
  opt.rounds = 2;
  opt.threads = 1;
  opt.transport = "carrier-pigeon";
  std::ostringstream out;
  EXPECT_THROW((void)run_spec(spec, opt, out), contract_error);
  // The same guard fires at parse time when the token sits in the spec.
  EXPECT_THROW(parse(R"({
    "name": "bad", "title": "t",
    "base": {"transport": "quantum"},
    "rows": [{"axis": "natted_pct", "header": "%NAT", "values": [0]}],
    "probes": [{"probe": "stale_pct", "header": "stale %"}]
  })"),
               contract_error);
}

TEST(experiment_spec, example_spec_files_parse_and_validate) {
  const std::string dir = std::string(NYLON_SOURCE_DIR) + "/examples/specs/";
  for (const char* name :
       {"fig2_partition", "fig3_stale", "fig4_randomness", "fig7_bandwidth",
        "fig8_load_balance", "fig9_rvp_chain", "fig10_churn",
        "table1_traversal", "sec5_correctness", "ablation_protocols",
        "ablation_ttl", "latency_sensitivity", "churn_recovery",
        "udp_smoke"}) {
    const experiment_spec spec = load_spec_file(dir + name + ".json");
    EXPECT_EQ(spec.name, name);
    // Round-trip stability for every shipped spec.
    const util::json dumped = spec_to_json(spec);
    EXPECT_EQ(spec_to_json(spec_from_json(dumped)).dump_string(0),
              dumped.dump_string(0))
        << name;
  }
}

}  // namespace
}  // namespace nylon::runtime
