// The declarative experiment-spec API: JSON parse / validate /
// round-trip, bad-input contract errors, axis resolution and a small
// end-to-end run.
#include "runtime/spec.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "util/contracts.h"
#include "util/json.h"

namespace nylon::runtime {
namespace {

experiment_spec parse(const std::string& text) {
  return spec_from_json(util::json::parse(text));
}

const char* kMinimalSpec = R"({
  "name": "mini",
  "title": "a tiny study",
  "rows": [{"axis": "natted_pct", "header": "%NAT", "values": [0, 50]}],
  "probes": [{"probe": "stale_pct", "header": "stale %"}]
})";

TEST(experiment_spec, parses_a_minimal_spec) {
  const experiment_spec spec = parse(kMinimalSpec);
  EXPECT_EQ(spec.name, "mini");
  ASSERT_EQ(spec.rows.size(), 1u);
  EXPECT_EQ(spec.rows[0].key, "natted_pct");
  EXPECT_EQ(spec.rows[0].values, (std::vector<std::string>{"0", "50"}));
  ASSERT_EQ(spec.probes.size(), 1u);
  EXPECT_EQ(spec.probes[0].probe, "stale_pct");
}

TEST(experiment_spec, range_sugar_expands_inclusively) {
  const experiment_spec spec = parse(R"({
    "name": "r",
    "rows": [{"axis": "natted_pct", "header": "%NAT",
              "range": {"from": 0, "to": 100, "step": 25}}],
    "probes": [{"probe": "stale_pct"}]
  })");
  EXPECT_EQ(spec.rows[0].values,
            (std::vector<std::string>{"0", "25", "50", "75", "100"}));
}

TEST(experiment_spec, column_sweep_sugar_expands_headers_and_sets) {
  const experiment_spec spec = parse(R"({
    "name": "s",
    "rows": [{"axis": "view_size", "header": "view", "values": [8]}],
    "columns": [{
      "sweep": {"axis": "natted_pct", "values": [40, 90]},
      "header": "{}%",
      "probe": "biggest_cluster_pct"
    }]
  })");
  ASSERT_EQ(spec.columns.size(), 2u);
  EXPECT_EQ(spec.columns[0].header, "40%");
  EXPECT_EQ(spec.columns[1].header, "90%");
  ASSERT_EQ(spec.columns[1].set.size(), 1u);
  EXPECT_EQ(spec.columns[1].set[0],
            (spec_setting{"natted_pct", std::string("90")}));
}

TEST(experiment_spec, bad_inputs_throw_contract_errors) {
  // name missing
  EXPECT_THROW(parse(R"({"rows":[{"axis":"natted_pct","header":"x",
    "values":[1]}],"probes":[{"probe":"stale_pct"}]})"),
               contract_error);
  // no rows
  EXPECT_THROW(parse(R"({"name":"x","probes":[{"probe":"stale_pct"}]})"),
               contract_error);
  // both columns and probes
  EXPECT_THROW(parse(R"({"name":"x",
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "probes":[{"probe":"stale_pct"}],
    "columns":[{"header":"c","probe":"stale_pct"}]})"),
               contract_error);
  // unknown probe
  EXPECT_THROW(parse(R"({"name":"x",
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "probes":[{"probe":"not_a_probe"}]})"),
               contract_error);
  // unknown axis key
  EXPECT_THROW(parse(R"({"name":"x",
    "rows":[{"axis":"coolness","header":"h","values":[1]}],
    "probes":[{"probe":"stale_pct"}]})"),
               contract_error);
  // unknown top-level key (typo safety)
  EXPECT_THROW(parse(R"({"name":"x","colums":[],
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "probes":[{"probe":"stale_pct"}]})"),
               contract_error);
  // natted_pct out of range
  EXPECT_THROW(parse(R"({"name":"x",
    "rows":[{"axis":"natted_pct","header":"h","values":[150]}],
    "probes":[{"probe":"stale_pct"}]})"),
               contract_error);
  // ratio referencing a later column
  EXPECT_THROW(parse(R"({"name":"x",
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "columns":[{"header":"r","ratio":[1,0]},
               {"header":"c","probe":"stale_pct"}]})"),
               contract_error);
  // bad warmup literal
  EXPECT_THROW(parse(R"({"name":"x","warmup":"soon",
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "probes":[{"probe":"stale_pct"}]})"),
               contract_error);
  // trajectories without a workload
  EXPECT_THROW(parse(R"({"name":"x","trajectories":true,
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "probes":[{"probe":"stale_pct"}]})"),
               contract_error);
  // warmup is meaningless (and silently ignored) under a workload
  EXPECT_THROW(parse(R"({"name":"x","warmup":"half",
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "probes":[{"probe":"stale_pct"}],
    "workload":{"phases":[{"kind":"steady","periods":2}]}})"),
               contract_error);
  // malformed workload phase
  EXPECT_THROW(parse(R"({"name":"x",
    "rows":[{"axis":"natted_pct","header":"h","values":[1]}],
    "probes":[{"probe":"stale_pct"}],
    "workload":{"phases":[{"kind":"warp_drive"}]}})"),
               contract_error);
}

TEST(experiment_spec, round_trips_through_json) {
  for (const char* text : {kMinimalSpec, R"({
         "name": "full",
         "title": "t",
         "footer": ["# a", "# b"],
         "base": {"protocol": "nylon", "natted_pct": 80},
         "warmup": "half",
         "split": {"axis": "view_size", "values": ["$view_a", "$view_b"],
                   "section": "== view {} ==", "table_key": "view_{}"},
         "rows": [{"axis": "hole_timeout_s", "header": "ttl",
                   "values": [15, 90]}],
         "columns": [
           {"header": "a", "set": {"protocol": "reference"},
            "probe": "all_bytes_per_s"},
           {"header": "b", "probe": "all_bytes_per_s"},
           {"header": "a/b", "ratio": [0, 1], "precision": 2},
           {"header": "ttl", "row_value": true}
         ],
         "report_params": ["peers", "seeds"]
       })"}) {
    const experiment_spec once = parse(text);
    const util::json dumped = spec_to_json(once);
    const experiment_spec twice = spec_from_json(dumped);
    EXPECT_EQ(dumped.dump_string(0), spec_to_json(twice).dump_string(0))
        << "spec: " << text;
  }
}

TEST(experiment_spec, runs_end_to_end_and_is_deterministic) {
  const experiment_spec spec = parse(R"({
    "name": "tiny",
    "title": "tiny end-to-end",
    "rows": [{"axis": "natted_pct", "header": "%NAT", "values": [0, 60]}],
    "columns": [
      {"header": "stale view=$view_a", "set": {"view_size": "$view_a"},
       "probe": "stale_pct"},
      {"header": "%NAT again", "row_value": true}
    ],
    "footer": ["# done"]
  })");
  spec_options opt;
  opt.peers = 40;
  opt.rounds = 4;
  opt.seeds = 2;
  opt.threads = 1;
  std::ostringstream out_a;
  const util::json doc_a = run_spec(spec, opt, out_a);
  std::ostringstream out_b;
  const util::json doc_b = run_spec(spec, opt, out_b);
  EXPECT_EQ(out_a.str(), out_b.str());
  EXPECT_EQ(doc_a.dump_string(0), doc_b.dump_string(0));

  // Structure: preamble + resolved headers + one row per axis value.
  const std::string text = out_a.str();
  EXPECT_NE(text.find("# tiny end-to-end"), std::string::npos);
  EXPECT_NE(text.find("stale view=8"), std::string::npos);
  EXPECT_NE(text.find("# done"), std::string::npos);
  const util::json& table = doc_a.at("table");
  EXPECT_EQ(table.at("rows").size(), 2u);
  // row_value column echoes the row label.
  EXPECT_EQ(table.at("rows").at(std::size_t{1}).at(std::size_t{2}).as_string(),
            "60");
}

TEST(experiment_spec, csv_mode_renders_csv) {
  const experiment_spec spec = parse(kMinimalSpec);
  spec_options opt;
  opt.peers = 30;
  opt.rounds = 2;
  opt.csv = true;
  opt.threads = 1;
  std::ostringstream out;
  (void)run_spec(spec, opt, out);
  EXPECT_NE(out.str().find("%NAT,stale %"), std::string::npos);
}

TEST(experiment_spec, example_spec_files_parse_and_validate) {
  const std::string dir = std::string(NYLON_SOURCE_DIR) + "/examples/specs/";
  for (const char* name :
       {"fig2_partition", "fig3_stale", "fig4_randomness", "fig7_bandwidth",
        "ablation_protocols", "ablation_ttl", "latency_sensitivity",
        "churn_recovery"}) {
    const experiment_spec spec = load_spec_file(dir + name + ".json");
    EXPECT_EQ(spec.name, name);
    // Round-trip stability for every shipped spec.
    const util::json dumped = spec_to_json(spec);
    EXPECT_EQ(spec_to_json(spec_from_json(dumped)).dump_string(0),
              dumped.dump_string(0))
        << name;
  }
}

}  // namespace
}  // namespace nylon::runtime
