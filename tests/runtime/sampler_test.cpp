// The scenario's sim-time sampler slots: tick cadence and anchoring,
// slot independence, and — the load-bearing property — digest
// neutrality: run_until splits at tick times without creating scheduler
// events, so a sampled run is byte-identical to an unsampled one on the
// serial engine and on every shard count (DESIGN.md "Observability &
// the determinism contract").
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/scenario.h"
#include "sim/time.h"

namespace nylon::runtime {
namespace {

experiment_config world_config(std::size_t shards) {
  experiment_config cfg;
  cfg.peer_count = 60;
  cfg.natted_fraction = 0.5;
  cfg.protocol = core::protocol_kind::nylon;
  cfg.gossip.view_size = 8;
  cfg.seed = 21;
  cfg.shards = shards;
  return cfg;
}

TEST(scenario_sampler, ticks_fire_on_the_period_grid_from_install_time) {
  scenario world(world_config(0));
  const sim::sim_time P = world.config().gossip.shuffle_period;
  world.run_until(3 * P);  // anchor somewhere past zero
  std::vector<sim::sim_time> ticks;
  world.set_sampler(scenario::sampler_timeline, 2 * P,
                    [&](sim::sim_time t) { ticks.push_back(t); });
  world.run_until(10 * P);
  // First tick one period after install, then every period, including a
  // tick landing exactly on the run_until deadline.
  const std::vector<sim::sim_time> want = {5 * P, 7 * P, 9 * P};
  EXPECT_EQ(ticks, want);
  EXPECT_EQ(world.scheduler().now(), 10 * P);

  // Re-installing re-anchors; clearing stops ticks entirely.
  world.set_sampler(scenario::sampler_timeline, 2 * P,
                    [&](sim::sim_time t) { ticks.push_back(t); });
  world.clear_sampler(scenario::sampler_timeline);
  ticks.clear();
  world.run_until(14 * P);
  EXPECT_TRUE(ticks.empty());
}

TEST(scenario_sampler, slots_tick_independently_and_in_slot_order) {
  scenario world(world_config(0));
  const sim::sim_time P = world.config().gossip.shuffle_period;
  std::vector<std::pair<int, sim::sim_time>> ticks;
  world.set_sampler(scenario::sampler_timeline, 3 * P,
                    [&](sim::sim_time t) { ticks.emplace_back(0, t); });
  world.set_sampler(scenario::sampler_workload, 2 * P,
                    [&](sim::sim_time t) { ticks.emplace_back(1, t); });
  world.run_until(6 * P);
  // Workload at 2P and 4P, both slots due at 6P — timeline (slot 0)
  // fires first there.
  const std::vector<std::pair<int, sim::sim_time>> want = {
      {1, 2 * P}, {0, 3 * P}, {1, 4 * P}, {0, 6 * P}, {1, 6 * P}};
  EXPECT_EQ(ticks, want);
}

void expect_sampling_is_digest_neutral(std::size_t shards) {
  scenario plain(world_config(shards));
  scenario sampled(world_config(shards));
  const sim::sim_time P = plain.config().gossip.shuffle_period;
  std::size_t ticks = 0;
  // An off-grid period so ticks split run_until at awkward times.
  sampled.set_sampler(scenario::sampler_timeline, P / 3 + 1,
                      [&](sim::sim_time) { ++ticks; });
  for (int leg = 0; leg < 4; ++leg) {
    plain.run_periods(5);
    sampled.run_periods(5);
  }
  EXPECT_GT(ticks, 0u);
  EXPECT_EQ(plain.events_executed(), sampled.events_executed());
  EXPECT_EQ(plain.state_digest(), sampled.state_digest());
}

TEST(scenario_sampler, sampling_is_digest_neutral_serial) {
  expect_sampling_is_digest_neutral(0);
}

TEST(scenario_sampler, sampling_is_digest_neutral_sharded) {
  expect_sampling_is_digest_neutral(4);
}

}  // namespace
}  // namespace nylon::runtime
