// The parallel multi-seed executor must be invisible in the results:
// bit-identical per-seed values and aggregates, any thread count.
#include "runtime/runner.h"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>

#include "metrics/graph_analysis.h"
#include "runtime/scenario.h"
#include "util/rng.h"

namespace nylon::runtime {
namespace {

// A real (small) simulation per seed: proves each worker gets a fully
// independent scheduler + transport + rng universe.
double sim_experiment(std::uint64_t seed) {
  experiment_config cfg;
  cfg.peer_count = 60;
  cfg.natted_fraction = 0.6;
  cfg.protocol = core::protocol_kind::nylon;
  cfg.gossip.view_size = 8;
  cfg.seed = seed;
  scenario world(cfg);
  world.run_periods(12);
  const auto oracle = world.oracle();
  return metrics::measure_views(world.transport(), world.peers(), oracle)
      .stale_pct;
}

TEST(parallel_runner, bit_identical_to_serial) {
  const int seeds = 12;
  const seed_aggregate serial =
      run_seeds(seeds, 1, sim_experiment, run_options{1});
  for (const int threads : {2, 4, 8}) {
    const seed_aggregate parallel =
        run_seeds(seeds, 1, sim_experiment, run_options{threads});
    ASSERT_EQ(serial.values.size(), parallel.values.size());
    for (int i = 0; i < seeds; ++i) {
      EXPECT_EQ(serial.values[i], parallel.values[i])
          << "seed index " << i << " with " << threads << " threads";
    }
    EXPECT_EQ(serial.stats.mean, parallel.stats.mean);
    EXPECT_EQ(serial.stats.stddev, parallel.stats.stddev);
    EXPECT_EQ(serial.stats.median, parallel.stats.median);
  }
}

TEST(parallel_runner, multi_metric_bit_identical_to_serial) {
  const auto experiment = [](std::uint64_t seed) {
    experiment_config cfg;
    cfg.peer_count = 50;
    cfg.natted_fraction = 0.5;
    cfg.protocol = core::protocol_kind::nylon;
    cfg.gossip.view_size = 8;
    cfg.seed = seed;
    scenario world(cfg);
    world.run_periods(8);
    const auto oracle = world.oracle();
    const auto views =
        metrics::measure_views(world.transport(), world.peers(), oracle);
    const auto clusters =
        metrics::measure_clusters(world.transport(), world.peers(), oracle);
    return std::vector<double>{views.stale_pct,
                               clusters.biggest_cluster_pct};
  };
  const auto serial = run_seeds_multi(10, 5, 2, experiment, run_options{1});
  const auto parallel = run_seeds_multi(10, 5, 2, experiment, run_options{4});
  ASSERT_EQ(serial.size(), 2u);
  for (std::size_t m = 0; m < 2; ++m) {
    EXPECT_EQ(serial[m].values, parallel[m].values);
    EXPECT_EQ(serial[m].stats.mean, parallel[m].stats.mean);
  }
}

TEST(parallel_runner, captured_variant_bit_identical_and_in_seed_order) {
  // The capture channel must behave exactly like the plain multi-metric
  // runner, with per-seed JSON stored by seed index on any thread count.
  const auto experiment = [](std::uint64_t seed, util::json& capture) {
    capture = util::json::object();
    capture["seed"] = seed;
    return std::vector<double>{static_cast<double>(seed),
                               static_cast<double>(seed % 7)};
  };
  const multi_seed_result serial =
      run_seeds_multi_captured(12, 9, 2, experiment, run_options{1});
  const multi_seed_result parallel =
      run_seeds_multi_captured(12, 9, 2, experiment, run_options{4});
  ASSERT_EQ(serial.aggregates.size(), 2u);
  ASSERT_EQ(serial.captures.size(), 12u);
  for (std::size_t m = 0; m < 2; ++m) {
    EXPECT_EQ(serial.aggregates[m].values, parallel.aggregates[m].values);
  }
  for (int i = 0; i < 12; ++i) {
    const std::uint64_t expected =
        util::derive_seed(9, static_cast<std::uint64_t>(i));
    const auto at = static_cast<std::size_t>(i);
    EXPECT_EQ(serial.captures[at].at("seed").as_int(),
              static_cast<std::int64_t>(expected));
    EXPECT_EQ(serial.captures[at].dump_string(0),
              parallel.captures[at].dump_string(0));
    EXPECT_EQ(serial.aggregates[0].values[at],
              static_cast<double>(expected));
  }
}

TEST(parallel_runner, captured_variant_leaves_capture_null_when_unused) {
  const auto experiment = [](std::uint64_t seed, util::json&) {
    return std::vector<double>{static_cast<double>(seed)};
  };
  const multi_seed_result result =
      run_seeds_multi_captured(3, 1, 1, experiment, run_options{1});
  for (const util::json& c : result.captures) EXPECT_TRUE(c.is_null());
}

TEST(parallel_runner, values_stay_in_seed_order) {
  // The experiment returns its own seed, so results index == stream id.
  const auto experiment = [](std::uint64_t seed) {
    return static_cast<double>(seed);
  };
  const seed_aggregate agg = run_seeds(16, 3, experiment, run_options{8});
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(agg.values[static_cast<std::size_t>(i)],
              static_cast<double>(
                  util::derive_seed(3, static_cast<std::uint64_t>(i))));
  }
}

TEST(parallel_runner, worker_exception_propagates) {
  const auto experiment = [](std::uint64_t seed) -> double {
    if (seed == util::derive_seed(1, 5)) {
      throw std::runtime_error("seed 5 exploded");
    }
    return 0.0;
  };
  EXPECT_THROW(run_seeds(8, 1, experiment, run_options{4}),
               std::runtime_error);
  EXPECT_THROW(run_seeds(8, 1, experiment, run_options{1}),
               std::runtime_error);
}

TEST(parallel_runner, multicore_speedup) {
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "single-core box: nothing to overlap";
  }
  const int seeds = 8;
  const auto t0 = std::chrono::steady_clock::now();
  const auto serial = run_seeds(seeds, 2, sim_experiment, run_options{1});
  const auto t1 = std::chrono::steady_clock::now();
  const auto parallel = run_seeds(seeds, 2, sim_experiment, run_options{0});
  const auto t2 = std::chrono::steady_clock::now();
  EXPECT_EQ(serial.values, parallel.values);
  // Lenient bound (thread startup, small per-seed work): parallel must
  // at least not be slower than serial by more than 10%.
  const double serial_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double parallel_ms =
      std::chrono::duration<double, std::milli>(t2 - t1).count();
  EXPECT_LT(parallel_ms, serial_ms * 1.1)
      << "serial " << serial_ms << " ms vs parallel " << parallel_ms << " ms";
}

TEST(parallel_runner, resolve_threads_clamps) {
  EXPECT_EQ(resolve_threads(run_options{1}, 30), 1);
  EXPECT_EQ(resolve_threads(run_options{64}, 30), 30);  // never > seeds
  EXPECT_GE(resolve_threads(run_options{0}, 30), 1);    // auto >= 1
}

TEST(parallel_runner, resolve_threads_budgets_sharded_seeds) {
  // Each sharded seed spawns its own `shards` workers; the concurrent
  // seed count shrinks so seeds × shards stays within the budget.
  EXPECT_EQ(resolve_threads(run_options{8, 4}, 30), 2);   // 2 × 4 = 8
  EXPECT_EQ(resolve_threads(run_options{8, 2}, 30), 4);   // 4 × 2 = 8
  EXPECT_EQ(resolve_threads(run_options{8, 3}, 30), 2);   // floor(8/3)
  EXPECT_EQ(resolve_threads(run_options{4, 8}, 30), 1);   // over budget: 1
  EXPECT_EQ(resolve_threads(run_options{1, 4}, 30), 1);   // serial seeds
  EXPECT_EQ(resolve_threads(run_options{8, 0}, 30), 8);   // serial engine
  EXPECT_EQ(resolve_threads(run_options{8, 1}, 30), 8);   // 1-shard = 1 thread
  EXPECT_EQ(resolve_threads(run_options{8, 4}, 1), 1);    // still <= seeds
}

TEST(parallel_runner, sharded_seed_budget_is_bit_identical_to_serial) {
  // The budget only throttles concurrency: a sharded multi-seed sweep
  // under a tight thread budget matches the fully serial result.
  const auto experiment = [](std::uint64_t seed) {
    return static_cast<double>(seed % 1009) + 0.25;
  };
  run_options serial;
  serial.threads = 1;
  const seed_aggregate a = run_seeds(12, 99, experiment, serial);
  run_options budgeted;
  budgeted.threads = 4;
  budgeted.shards = 3;  // -> 1 concurrent seed
  const seed_aggregate b = run_seeds(12, 99, experiment, budgeted);
  run_options wide;
  wide.threads = 8;
  wide.shards = 2;  // -> 4 concurrent seeds
  const seed_aggregate c = run_seeds(12, 99, experiment, wide);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.values, c.values);
  EXPECT_EQ(a.stats.mean, b.stats.mean);
  EXPECT_EQ(a.stats.mean, c.stats.mean);
}

}  // namespace
}  // namespace nylon::runtime
