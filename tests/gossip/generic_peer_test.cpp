#include "gossip/generic_peer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gossip/bootstrap.h"
#include "net/latency.h"
#include "net/transport.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace nylon::gossip {
namespace {

/// Tiny hand-wired world of generic peers (no runtime::scenario, to test
/// the gossip layer in isolation).
class world {
 public:
  explicit world(protocol_config cfg = {})
      : rng_(1),
        transport_(sched_, rng_, net::paper_latency()),
        cfg_(cfg) {}

  generic_peer& add(nat::nat_type type) {
    auto p = std::make_unique<generic_peer>(transport_, rng_, cfg_);
    const net::node_id id = transport_.add_node(type, *p);
    p->attach(id);
    peers_.push_back(std::move(p));
    return *peers_.back();
  }

  void bootstrap_and_start() {
    std::vector<peer*> raw;
    for (const auto& p : peers_) raw.push_back(p.get());
    bootstrap_with_public_peers(raw, rng_);
    for (const auto& p : peers_) p->start(0);
  }

  void run_periods(int n) { sched_.run_for(n * cfg_.shuffle_period); }

  sim::scheduler sched_;
  util::rng rng_;
  net::transport transport_;
  protocol_config cfg_;
  std::vector<std::unique_ptr<generic_peer>> peers_;
};

protocol_config small_config() {
  protocol_config cfg;
  cfg.view_size = 4;
  return cfg;
}

TEST(generic_peer, attach_builds_self_descriptor) {
  world w(small_config());
  generic_peer& p = w.add(nat::nat_type::open);
  EXPECT_EQ(p.self().id, 0u);
  EXPECT_EQ(p.self().type, nat::nat_type::open);
  EXPECT_EQ(p.self().addr, w.transport_.advertised_endpoint(0));
}

TEST(generic_peer, empty_view_skips_shuffle) {
  world w(small_config());
  generic_peer& p = w.add(nat::nat_type::open);
  p.start(0);
  w.run_periods(3);
  EXPECT_EQ(p.stats().initiated, 0u);
  EXPECT_GE(p.stats().empty_view_skips, 3u);
}

TEST(generic_peer, two_public_peers_exchange_views) {
  world w(small_config());
  generic_peer& a = w.add(nat::nat_type::open);
  generic_peer& b = w.add(nat::nat_type::open);
  w.bootstrap_and_start();
  w.run_periods(2);
  EXPECT_GT(a.stats().initiated, 0u);
  EXPECT_GT(b.stats().requests_received, 0u);
  EXPECT_GT(a.stats().responses_received, 0u);
  // After one exchange each knows the other.
  EXPECT_TRUE(a.current_view().contains(b.id()));
  EXPECT_TRUE(b.current_view().contains(a.id()));
}

TEST(generic_peer, push_mode_sends_no_responses) {
  protocol_config cfg = small_config();
  cfg.propagation = propagation_policy::push;
  world w(cfg);
  generic_peer& a = w.add(nat::nat_type::open);
  generic_peer& b = w.add(nat::nat_type::open);
  w.bootstrap_and_start();
  w.run_periods(3);
  EXPECT_GT(b.stats().requests_received, 0u);
  EXPECT_EQ(a.stats().responses_received, 0u);
  EXPECT_EQ(b.stats().responses_received, 0u);
}

TEST(generic_peer, self_descriptor_spreads_through_gossip) {
  world w(small_config());
  for (int i = 0; i < 6; ++i) w.add(nat::nat_type::open);
  w.bootstrap_and_start();
  w.run_periods(10);
  // Every peer should appear in someone's view (self-injection works).
  for (const auto& target : w.peers_) {
    int appearances = 0;
    for (const auto& p : w.peers_) {
      if (p->id() != target->id() &&
          p->current_view().contains(target->id())) {
        ++appearances;
      }
    }
    EXPECT_GT(appearances, 0) << "peer " << target->id();
  }
}

TEST(generic_peer, natted_peer_can_gossip_out_but_not_be_reached) {
  world w(small_config());
  generic_peer& pub = w.add(nat::nat_type::open);
  generic_peer& natted = w.add(nat::nat_type::port_restricted_cone);
  w.bootstrap_and_start();
  w.run_periods(2);
  // The natted peer initiates towards the public one and gets responses.
  EXPECT_GT(natted.stats().initiated, 0u);
  EXPECT_GT(natted.stats().responses_received, 0u);
  EXPECT_GT(pub.stats().requests_received, 0u);
}

TEST(generic_peer, stale_references_emerge_behind_nats) {
  // One public hub and many PRC peers: the hub learns natted references
  // but its unsolicited REQUESTs towards them are filtered.
  world w(small_config());
  w.add(nat::nat_type::open);
  for (int i = 0; i < 5; ++i) w.add(nat::nat_type::port_restricted_cone);
  w.bootstrap_and_start();
  w.run_periods(30);
  EXPECT_GT(w.transport_.drops(net::drop_reason::nat_filtered), 0u);
}

TEST(generic_peer, view_never_contains_self_or_duplicates) {
  world w(small_config());
  for (int i = 0; i < 8; ++i) w.add(nat::nat_type::open);
  w.bootstrap_and_start();
  w.run_periods(20);
  for (const auto& p : w.peers_) {
    std::set<net::node_id> seen;
    for (const view_entry& e : p->current_view().entries()) {
      EXPECT_NE(e.peer.id, p->id());
      EXPECT_TRUE(seen.insert(e.peer.id).second);
    }
    EXPECT_LE(p->current_view().size(), w.cfg_.view_size);
  }
}

TEST(generic_peer, sample_returns_view_member) {
  world w(small_config());
  generic_peer& a = w.add(nat::nat_type::open);
  w.add(nat::nat_type::open);
  w.bootstrap_and_start();
  w.run_periods(2);
  const auto sampled = a.sample();
  ASSERT_TRUE(sampled.has_value());
  EXPECT_TRUE(a.current_view().contains(sampled->id));
}

TEST(generic_peer, known_peers_matches_view) {
  world w(small_config());
  generic_peer& a = w.add(nat::nat_type::open);
  w.add(nat::nat_type::open);
  w.bootstrap_and_start();
  w.run_periods(2);
  const auto known = a.known_peers();
  EXPECT_EQ(known.size(), a.current_view().size());
}

TEST(generic_peer, stop_halts_gossip) {
  world w(small_config());
  generic_peer& a = w.add(nat::nat_type::open);
  w.add(nat::nat_type::open);
  w.bootstrap_and_start();
  w.run_periods(2);
  const auto initiated = a.stats().initiated;
  a.stop();
  EXPECT_FALSE(a.running());
  w.run_periods(5);
  EXPECT_EQ(a.stats().initiated, initiated);
}

TEST(generic_peer, double_start_rejected) {
  world w(small_config());
  generic_peer& a = w.add(nat::nat_type::open);
  a.start(0);
  EXPECT_THROW(a.start(0), nylon::contract_error);
}

TEST(generic_peer, ages_increase_per_period) {
  world w(small_config());
  generic_peer& a = w.add(nat::nat_type::open);
  generic_peer& b = w.add(nat::nat_type::open);
  (void)b;
  w.bootstrap_and_start();
  const auto before = a.current_view().entries().front().age;
  w.run_periods(1);
  // a initiated one shuffle (age +1) and possibly received one request.
  EXPECT_GT(a.current_view().entries().front().age + 0u, before);
}

}  // namespace
}  // namespace nylon::gossip
