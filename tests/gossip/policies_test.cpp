#include "gossip/policies.h"

#include <gtest/gtest.h>

#include <set>

#include "util/contracts.h"

namespace nylon::gossip {
namespace {

TEST(policies, names) {
  EXPECT_EQ(to_string(selection_policy::rand), "rand");
  EXPECT_EQ(to_string(selection_policy::tail), "tail");
  EXPECT_EQ(to_string(propagation_policy::push), "push");
  EXPECT_EQ(to_string(propagation_policy::pushpull), "pushpull");
  EXPECT_EQ(to_string(merge_policy::blind), "blind");
  EXPECT_EQ(to_string(merge_policy::healer), "healer");
  EXPECT_EQ(to_string(merge_policy::swapper), "swapper");
}

TEST(policies, config_label_format) {
  protocol_config cfg;
  EXPECT_EQ(config_label(cfg), "pushpull,rand,healer");
  cfg.selection = selection_policy::tail;
  cfg.merge = merge_policy::swapper;
  EXPECT_EQ(config_label(cfg), "pushpull,tail,swapper");
}

TEST(policies, defaults_match_paper) {
  const protocol_config cfg;
  EXPECT_EQ(cfg.view_size, 15u);
  EXPECT_EQ(cfg.shuffle_period, sim::seconds(5));
  EXPECT_EQ(cfg.propagation, propagation_policy::pushpull);
}

TEST(policies, six_baseline_configs_are_distinct_and_pushpull) {
  std::set<std::string> labels;
  for (std::uint8_t i = 0; i < baseline_config_count(); ++i) {
    const protocol_config cfg = baseline_config(i, 15);
    EXPECT_EQ(cfg.propagation, propagation_policy::pushpull);
    EXPECT_EQ(cfg.view_size, 15u);
    labels.insert(config_label(cfg));
  }
  EXPECT_EQ(labels.size(), 6u);
}

TEST(policies, baseline_config_covers_both_selections) {
  int rand_count = 0;
  for (std::uint8_t i = 0; i < baseline_config_count(); ++i) {
    if (baseline_config(i, 15).selection == selection_policy::rand) {
      ++rand_count;
    }
  }
  EXPECT_EQ(rand_count, 3);
}

TEST(policies, baseline_config_out_of_range_throws) {
  EXPECT_THROW((void)baseline_config(6, 15), nylon::contract_error);
}

}  // namespace
}  // namespace nylon::gossip
