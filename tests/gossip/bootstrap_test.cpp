#include "gossip/bootstrap.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "gossip/generic_peer.h"
#include "net/latency.h"
#include "net/transport.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace nylon::gossip {
namespace {

struct fixture {
  fixture() : rng(1), transport(sched, rng, net::paper_latency()) {}

  generic_peer& add(nat::nat_type type, std::size_t view_size = 3) {
    protocol_config cfg;
    cfg.view_size = view_size;
    auto p = std::make_unique<generic_peer>(transport, rng, cfg);
    p->attach(transport.add_node(type, *p));
    peers.push_back(std::move(p));
    return *peers.back();
  }

  std::vector<peer*> raw() {
    std::vector<peer*> out;
    for (const auto& p : peers) out.push_back(p.get());
    return out;
  }

  sim::scheduler sched;
  util::rng rng;
  net::transport transport;
  std::vector<std::unique_ptr<generic_peer>> peers;
};

TEST(bootstrap, views_filled_with_public_peers_only) {
  fixture f;
  for (int i = 0; i < 5; ++i) f.add(nat::nat_type::open);
  for (int i = 0; i < 10; ++i) f.add(nat::nat_type::port_restricted_cone);
  auto raw = f.raw();
  bootstrap_with_public_peers(raw, f.rng);
  for (const auto& p : f.peers) {
    EXPECT_EQ(p->current_view().size(), 3u);
    for (const view_entry& e : p->current_view().entries()) {
      EXPECT_EQ(e.peer.type, nat::nat_type::open);
      EXPECT_EQ(e.age, 0u);
      EXPECT_NE(e.peer.id, p->id());
    }
  }
}

TEST(bootstrap, entries_are_distinct) {
  fixture f;
  for (int i = 0; i < 8; ++i) f.add(nat::nat_type::open);
  auto raw = f.raw();
  bootstrap_with_public_peers(raw, f.rng);
  for (const auto& p : f.peers) {
    std::set<net::node_id> ids;
    for (const view_entry& e : p->current_view().entries()) {
      EXPECT_TRUE(ids.insert(e.peer.id).second);
    }
  }
}

TEST(bootstrap, fewer_publics_than_view_size) {
  fixture f;
  f.add(nat::nat_type::open);
  f.add(nat::nat_type::open);
  f.add(nat::nat_type::port_restricted_cone);
  auto raw = f.raw();
  bootstrap_with_public_peers(raw, f.rng);
  // Natted peer can use both publics; publics can only use each other.
  EXPECT_EQ(f.peers[2]->current_view().size(), 2u);
  EXPECT_EQ(f.peers[0]->current_view().size(), 1u);
}

TEST(bootstrap, all_natted_falls_back_to_everyone) {
  fixture f;
  for (int i = 0; i < 4; ++i) f.add(nat::nat_type::restricted_cone);
  auto raw = f.raw();
  bootstrap_with_public_peers(raw, f.rng);
  for (const auto& p : f.peers) {
    EXPECT_EQ(p->current_view().size(), 3u);
  }
}

TEST(bootstrap, deterministic_given_seed) {
  auto run = [] {
    fixture f;
    for (int i = 0; i < 6; ++i) f.add(nat::nat_type::open);
    auto raw = f.raw();
    bootstrap_with_public_peers(raw, f.rng);
    std::vector<std::vector<net::node_id>> views;
    for (const auto& p : f.peers) {
      std::vector<net::node_id> ids;
      for (const view_entry& e : p->current_view().entries()) {
        ids.push_back(e.peer.id);
      }
      views.push_back(ids);
    }
    return views;
  };
  EXPECT_EQ(run(), run());
}

TEST(messages, wire_sizes) {
  gossip_message m;
  m.kind = message_kind::ping;
  EXPECT_EQ(m.wire_size(), message_header_bytes);
  m.kind = message_kind::request;
  const std::vector<view_entry> buffer(16);
  m.entries = buffer;
  EXPECT_EQ(m.wire_size(), message_header_bytes + 16 * entry_wire_bytes);
}

TEST(messages, type_names) {
  gossip_message m;
  m.kind = message_kind::request;
  EXPECT_EQ(m.type_name(), "REQUEST");
  m.kind = message_kind::open_hole;
  EXPECT_EQ(m.type_name(), "OPEN_HOLE");
  m.kind = message_kind::pong;
  EXPECT_EQ(m.type_name(), "PONG");
}

}  // namespace
}  // namespace nylon::gossip
