#include "gossip/view.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/contracts.h"

namespace nylon::gossip {
namespace {

node_descriptor desc(net::node_id id) {
  return node_descriptor{id, net::endpoint{net::ip_address{id + 1}, 4000},
                         nat::nat_type::open};
}

view_entry entry(net::node_id id, std::uint32_t age = 0) {
  return view_entry{desc(id), age, 0};
}

std::set<net::node_id> ids_of(const view& v) {
  std::set<net::node_id> ids;
  for (const view_entry& e : v.entries()) ids.insert(e.peer.id);
  return ids;
}

TEST(view, starts_empty) {
  view v(5);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 5u);
}

TEST(view, zero_capacity_rejected) {
  EXPECT_THROW(view(0), nylon::contract_error);
}

TEST(view, assign_and_lookup) {
  view v(5);
  v.assign({entry(1), entry(2, 7)}, 99);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_TRUE(v.contains(1));
  EXPECT_TRUE(v.contains(2));
  EXPECT_FALSE(v.contains(3));
  ASSERT_NE(v.find(2), nullptr);
  EXPECT_EQ(v.find(2)->age, 7u);
  EXPECT_EQ(v.find(3), nullptr);
}

TEST(view, assign_rejects_self) {
  view v(5);
  EXPECT_THROW(v.assign({entry(1)}, 1), nylon::contract_error);
}

TEST(view, assign_rejects_duplicates) {
  view v(5);
  EXPECT_THROW(v.assign({entry(1), entry(1)}, 99), nylon::contract_error);
}

TEST(view, assign_rejects_overflow) {
  view v(2);
  EXPECT_THROW(v.assign({entry(1), entry(2), entry(3)}, 99),
               nylon::contract_error);
}

TEST(view, remove_entry) {
  view v(5);
  v.assign({entry(1), entry(2)}, 99);
  EXPECT_TRUE(v.remove(1));
  EXPECT_FALSE(v.contains(1));
  EXPECT_FALSE(v.remove(1));
  EXPECT_EQ(v.size(), 1u);
}

TEST(view, increase_age_ages_everything) {
  view v(5);
  v.assign({entry(1, 0), entry(2, 5)}, 99);
  v.increase_age();
  EXPECT_EQ(v.find(1)->age, 1u);
  EXPECT_EQ(v.find(2)->age, 6u);
}

TEST(view, oldest_picks_max_age_first_on_tie) {
  view v(5);
  v.assign({entry(1, 3), entry(2, 9), entry(3, 9)}, 99);
  EXPECT_EQ(v.oldest().peer.id, 2u);  // first of the two age-9 entries
}

TEST(view, oldest_on_empty_throws) {
  view v(5);
  EXPECT_THROW((void)v.oldest(), nylon::contract_error);
}

TEST(view, random_selection_uniform_over_entries) {
  view v(5);
  v.assign({entry(1), entry(2), entry(3)}, 99);
  util::rng rng(1);
  std::map<net::node_id, int> counts;
  for (int i = 0; i < 3000; ++i) ++counts[v.random(rng).peer.id];
  for (const auto& [id, count] : counts) EXPECT_GT(count, 800);
}

TEST(view, select_respects_policy) {
  view v(5);
  v.assign({entry(1, 0), entry(2, 10)}, 99);
  util::rng rng(1);
  EXPECT_EQ(v.select(selection_policy::tail, rng).peer.id, 2u);
}

// --- merge ------------------------------------------------------------------

TEST(view, merge_skips_self) {
  view v(5);
  v.assign({entry(1)}, 99);
  util::rng rng(1);
  v.merge(std::vector<view_entry>{entry(99), entry(2)}, {},
          merge_policy::healer, 99, rng);
  EXPECT_FALSE(v.contains(99));
  EXPECT_TRUE(v.contains(2));
}

TEST(view, merge_deduplicates_keeping_fresher) {
  view v(5);
  v.assign({entry(1, 8)}, 99);
  util::rng rng(1);
  // Received copy is younger: it must replace the stored one (and carry
  // its payload: address, ttl).
  view_entry fresh = entry(1, 2);
  fresh.route_ttl = 1234;
  v.merge(std::vector<view_entry>{fresh}, {}, merge_policy::healer, 99, rng);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.find(1)->age, 2u);
  EXPECT_EQ(v.find(1)->route_ttl, 1234);
}

TEST(view, merge_deduplicates_keeping_existing_when_fresher) {
  view v(5);
  v.assign({entry(1, 2)}, 99);
  util::rng rng(1);
  v.merge(std::vector<view_entry>{entry(1, 8)}, {}, merge_policy::healer, 99,
          rng);
  EXPECT_EQ(v.find(1)->age, 2u);
}

TEST(view, merge_healer_keeps_youngest) {
  view v(3);
  v.assign({entry(1, 9), entry(2, 1), entry(3, 5)}, 99);
  util::rng rng(1);
  v.merge(std::vector<view_entry>{entry(4, 0), entry(5, 2)}, {},
          merge_policy::healer, 99, rng);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(ids_of(v), (std::set<net::node_id>{2, 4, 5}));
}

TEST(view, merge_swapper_keeps_received) {
  view v(3);
  v.assign({entry(1, 0), entry(2, 0), entry(3, 0)}, 99);
  util::rng rng(1);
  const std::vector<view_entry> sent{entry(1), entry(2), entry(3)};
  const std::vector<view_entry> received{entry(4, 9), entry(5, 9),
                                         entry(6, 9)};
  v.merge(received, sent, merge_policy::swapper, 99, rng);
  // All received survive even though they are older: swapper prefers the
  // partner's entries, dropping what we handed over.
  EXPECT_EQ(ids_of(v), (std::set<net::node_id>{4, 5, 6}));
}

TEST(view, merge_swapper_drops_sent_before_other_entries) {
  view v(4);
  v.assign({entry(1), entry(2), entry(3), entry(7)}, 99);
  util::rng rng(1);
  const std::vector<view_entry> sent{entry(1), entry(2)};
  const std::vector<view_entry> received{entry(4), entry(5)};
  v.merge(received, sent, merge_policy::swapper, 99, rng);
  EXPECT_EQ(v.size(), 4u);
  // The two sent-and-not-received entries (1, 2) must be the casualties.
  EXPECT_FALSE(v.contains(1));
  EXPECT_FALSE(v.contains(2));
  EXPECT_TRUE(v.contains(4));
  EXPECT_TRUE(v.contains(5));
}

TEST(view, merge_blind_respects_capacity) {
  view v(3);
  v.assign({entry(1), entry(2), entry(3)}, 99);
  util::rng rng(1);
  v.merge(std::vector<view_entry>{entry(4), entry(5)}, {},
          merge_policy::blind, 99, rng);
  EXPECT_EQ(v.size(), 3u);
}

class merge_policy_test : public ::testing::TestWithParam<merge_policy> {};

TEST_P(merge_policy_test, never_exceeds_capacity) {
  util::rng rng(7);
  view v(4);
  v.assign({entry(1), entry(2), entry(3), entry(4)}, 99);
  for (int round = 0; round < 50; ++round) {
    std::vector<view_entry> received;
    for (int k = 0; k < 6; ++k) {
      received.push_back(
          entry(static_cast<net::node_id>(rng.uniform(1, 30)),
                static_cast<std::uint32_t>(rng.uniform(0, 10))));
    }
    v.merge(received, {}, GetParam(), 99, rng);
    EXPECT_LE(v.size(), 4u);
    // No duplicates, never self.
    EXPECT_EQ(ids_of(v).size(), v.size());
    EXPECT_FALSE(v.contains(99));
  }
}

TEST_P(merge_policy_test, merge_into_empty_view_adopts_received) {
  util::rng rng(7);
  view v(4);
  v.merge(std::vector<view_entry>{entry(1), entry(2)}, {}, GetParam(), 99,
          rng);
  EXPECT_EQ(ids_of(v), (std::set<net::node_id>{1, 2}));
}

INSTANTIATE_TEST_SUITE_P(policies, merge_policy_test,
                         ::testing::Values(merge_policy::blind,
                                           merge_policy::healer,
                                           merge_policy::swapper),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace nylon::gossip
