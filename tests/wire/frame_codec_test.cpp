// Round-trip property tests for the v1 wire format: every message kind,
// entry counts from empty to full view buffers, wide-field extensions,
// and the frame-size honesty contract (serialized length == wire_size()
// + header whenever no wide flag is needed).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gossip/messages.h"
#include "gossip/view.h"
#include "nat/nat_type.h"
#include "util/contracts.h"
#include "wire/codec.h"
#include "wire/frame.h"

namespace nylon {
namespace {

gossip::node_descriptor make_descriptor(net::node_id id, std::uint32_t ip,
                                        std::uint32_t port,
                                        nat::nat_type type) {
  gossip::node_descriptor d;
  d.id = id;
  d.addr = net::endpoint{net::ip_address{ip}, port};
  d.type = type;
  return d;
}

std::vector<gossip::view_entry> make_entries(std::size_t count) {
  std::vector<gossip::view_entry> entries;
  for (std::size_t i = 0; i < count; ++i) {
    gossip::view_entry e;
    e.peer = make_descriptor(
        static_cast<net::node_id>(100 + i), 0x0A000000u + 100 + i,
        4000 + static_cast<std::uint32_t>(i),
        i % 2 == 0 ? nat::nat_type::port_restricted_cone : nat::nat_type::open);
    e.age = static_cast<std::uint32_t>(i * 3);
    e.route_ttl = static_cast<sim::sim_time>(i * 10);
    entries.push_back(e);
  }
  return entries;
}

gossip::gossip_message make_msg(gossip::message_kind kind,
                                std::span<const gossip::view_entry> entries) {
  gossip::gossip_message msg;
  msg.kind = kind;
  msg.sender = make_descriptor(1, 0x0A000002, 4000, nat::nat_type::open);
  msg.src = make_descriptor(2, 0x0A000003, 61234,
                            nat::nat_type::restricted_cone);
  msg.dest = make_descriptor(3, 0x0A000004, 0, nat::nat_type::symmetric);
  msg.entries = entries;
  msg.hops = 2;
  return msg;
}

void expect_same_descriptor(const gossip::node_descriptor& a,
                            const gossip::node_descriptor& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.addr, b.addr);
  EXPECT_EQ(a.type, b.type);
}

void expect_round_trip(const gossip::gossip_message& msg) {
  const auto frame = wire::encode(msg);
  const wire::decode_result result = wire::decode(frame->bytes());
  ASSERT_EQ(result.error, wire::decode_error::none)
      << wire::to_string(result.error);
  ASSERT_NE(result.message, nullptr);
  const gossip::gossip_message& got = *result.message;
  EXPECT_EQ(got.kind, msg.kind);
  expect_same_descriptor(got.sender, msg.sender);
  expect_same_descriptor(got.src, msg.src);
  expect_same_descriptor(got.dest, msg.dest);
  EXPECT_EQ(got.hops, msg.hops);
  ASSERT_EQ(got.entries.size(), msg.entries.size());
  for (std::size_t i = 0; i < msg.entries.size(); ++i) {
    expect_same_descriptor(got.entries[i].peer, msg.entries[i].peer);
    EXPECT_EQ(got.entries[i].age, msg.entries[i].age) << i;
    EXPECT_EQ(got.entries[i].route_ttl, msg.entries[i].route_ttl) << i;
  }
  // Re-encoding the decoded message reproduces the frame bit for bit
  // (the encoding is canonical).
  const auto again = wire::encode(got);
  ASSERT_EQ(again->bytes().size(), frame->bytes().size());
  EXPECT_TRUE(std::equal(frame->bytes().begin(), frame->bytes().end(),
                         again->bytes().begin()));
}

TEST(frame_codec, round_trips_every_kind) {
  const std::vector<gossip::view_entry> entries = make_entries(8);
  for (const gossip::message_kind kind :
       {gossip::message_kind::request, gossip::message_kind::response,
        gossip::message_kind::open_hole, gossip::message_kind::ping,
        gossip::message_kind::pong}) {
    expect_round_trip(make_msg(kind, entries));
  }
}

TEST(frame_codec, round_trips_entry_counts_zero_to_view_size) {
  // REQUEST/RESPONSE carry 0..view_size entries (paper: c = 15 or 27);
  // PING/PONG/OPEN_HOLE ride with none.
  for (std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{15},
                            std::size_t{27}}) {
    const std::vector<gossip::view_entry> entries = make_entries(count);
    expect_round_trip(make_msg(gossip::message_kind::request, entries));
    expect_round_trip(make_msg(gossip::message_kind::response, entries));
  }
  expect_round_trip(make_msg(gossip::message_kind::open_hole, {}));
  expect_round_trip(make_msg(gossip::message_kind::ping, {}));
  expect_round_trip(make_msg(gossip::message_kind::pong, {}));
}

TEST(frame_codec, honest_frame_size_without_flags) {
  // No value exceeds a nominal field -> no flags, and the body is
  // exactly wire_size(): the transport's bandwidth books equal real
  // bytes on the wire.
  for (std::size_t count : {std::size_t{0}, std::size_t{5}, std::size_t{27}}) {
    const std::vector<gossip::view_entry> entries = make_entries(count);
    const gossip::gossip_message msg =
        make_msg(gossip::message_kind::response, entries);
    ASSERT_EQ(wire::frame_flags_for(msg), 0);
    const auto frame = wire::encode(msg);
    EXPECT_EQ(frame->bytes().size(),
              wire::frame_header_bytes + msg.wire_size());
    EXPECT_EQ(wire::encoded_body_size(msg), msg.wire_size());
  }
}

TEST(frame_codec, accounting_is_invariant_under_serialization) {
  const std::vector<gossip::view_entry> entries = make_entries(10);
  const gossip::gossip_message msg =
      make_msg(gossip::message_kind::request, entries);
  const auto frame = wire::encode(msg);
  // The frame payload bills the *inner* message's nominal size and kind,
  // so per-kind byte counters and fig7/fig8 columns cannot drift when a
  // run switches transports.
  EXPECT_EQ(frame->wire_size(), msg.wire_size());
  EXPECT_EQ(frame->wire_kind(), msg.wire_kind());
  EXPECT_EQ(frame->type_name(), msg.type_name());
  ASSERT_NE(frame->as_frame(), nullptr);
}

TEST(frame_codec, wide_route_ttl_round_trips) {
  // Nylon stamps fresh routes with the 90 s hole timeout — 90000 ms
  // overflows the nominal u16 TTL field, so real traffic exercises the
  // wide-TTL path constantly.
  std::vector<gossip::view_entry> entries = make_entries(4);
  entries[2].route_ttl = sim::seconds(90);
  const gossip::gossip_message msg =
      make_msg(gossip::message_kind::request, entries);
  EXPECT_EQ(wire::frame_flags_for(msg), wire::flag_wide_ttl);
  EXPECT_EQ(wire::encoded_body_size(msg),
            msg.wire_size() + 2 * entries.size());
  expect_round_trip(msg);
}

TEST(frame_codec, wide_ports_and_age_round_trip) {
  // The simulator's monotonic port allocator exceeds 16 bits on long
  // runs; ages can too under extreme staleness.
  std::vector<gossip::view_entry> entries = make_entries(3);
  entries[0].peer.addr.port = 70000;
  entries[1].age = 1u << 20;
  const gossip::gossip_message msg =
      make_msg(gossip::message_kind::response, entries);
  EXPECT_EQ(wire::frame_flags_for(msg),
            wire::flag_wide_ports | wire::flag_wide_age);
  expect_round_trip(msg);
}

TEST(frame_codec, wide_port_in_header_descriptor_round_trips) {
  std::vector<gossip::view_entry> entries = make_entries(2);
  gossip::gossip_message msg = make_msg(gossip::message_kind::ping, entries);
  msg.src.addr.port = 0x12345678;
  EXPECT_EQ(wire::frame_flags_for(msg), wire::flag_wide_ports);
  expect_round_trip(msg);
}

TEST(frame_codec, all_wide_flags_together_round_trip) {
  std::vector<gossip::view_entry> entries = make_entries(6);
  entries[0].peer.addr.port = 1u << 17;
  entries[3].route_ttl = sim::seconds(90);
  entries[5].age = 0x10000;
  const gossip::gossip_message msg =
      make_msg(gossip::message_kind::request, entries);
  EXPECT_EQ(wire::frame_flags_for(msg),
            wire::flag_wide_ports | wire::flag_wide_ttl | wire::flag_wide_age);
  expect_round_trip(msg);
}

TEST(frame_codec, checksum_covers_header_and_body) {
  const std::vector<gossip::view_entry> entries = make_entries(3);
  const auto frame =
      wire::encode(make_msg(gossip::message_kind::request, entries));
  const std::span<const std::byte> bytes = frame->bytes();
  // The stored checksum (offset 8, little-endian) equals the FNV pass
  // over the frame with that field zeroed.
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(
                  std::to_integer<std::uint8_t>(bytes[8 + i]))
              << (8 * i);
  }
  EXPECT_EQ(stored, wire::frame_checksum(bytes));
}

TEST(frame_codec, rejects_untransportable_route_ttl) {
  std::vector<gossip::view_entry> entries = make_entries(1);
  entries[0].route_ttl = sim::sim_time{1} << 33;  // exceeds even wide u32
  const gossip::gossip_message msg =
      make_msg(gossip::message_kind::request, entries);
  EXPECT_THROW((void)wire::encode(msg), nylon::contract_error);
}

TEST(frame_codec, gossip_codec_round_trips_via_interface) {
  const std::vector<gossip::view_entry> entries = make_entries(5);
  const gossip::gossip_message msg =
      make_msg(gossip::message_kind::response, entries);
  const net::frame_codec& codec = wire::gossip_codec();
  const net::payload_ptr frame = codec.encode(*gossip::make_message(msg));
  ASSERT_NE(frame, nullptr);
  ASSERT_NE(frame->as_frame(), nullptr);
  const net::payload_ptr decoded = codec.decode(frame->as_frame()->bytes());
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->wire_kind(), net::message_kind::response);
  EXPECT_EQ(decoded->wire_size(), msg.wire_size());
}

}  // namespace
}  // namespace nylon
