// The sim-frames determinism guard: routing every datagram through its
// serialized wire frame (encode at send, decode at deliver) must leave
// the simulation bit-identical to the in-memory sim transport — same
// state digest, trajectory, event count and drop accounting — on the
// serial engine and on every shard count. The workload exercises every
// dynamic at once (churn, mass departure, partition + heal, NAT rebind
// and migration) so one digest pins the codec's transparency across the
// whole protocol surface.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "runtime/scenario.h"
#include "workload/engine.h"
#include "workload/report.h"

namespace nylon {
namespace {

struct transport_run {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
  std::uint64_t drops = 0;
  std::size_t alive = 0;
  std::string trajectory;
};

transport_run run_world(runtime::transport_kind transport, std::size_t shards,
                        std::uint64_t seed) {
  runtime::experiment_config cfg;
  cfg.peer_count = 200;
  cfg.natted_fraction = 0.6;
  cfg.protocol = core::protocol_kind::nylon;
  cfg.gossip.view_size = 8;
  cfg.seed = seed;
  cfg.shards = shards;
  cfg.transport = transport;

  runtime::scenario world(cfg);
  const sim::sim_time period = cfg.gossip.shuffle_period;

  workload::session_distribution sessions;
  sessions.k = workload::session_distribution::kind::pareto;
  sessions.mean = 6 * period;

  auto prog = workload::program{}
                  .then(workload::steady(6 * period))
                  .then(workload::mass_departure(0.2))
                  .then(workload::steady(3 * period))
                  .then(workload::nat_rebind(0.4))
                  .then(workload::steady(3 * period))
                  .then(workload::nat_migration(0.3))
                  .then(workload::steady(3 * period))
                  .then(workload::partition(0.4))
                  .then(workload::steady(3 * period))
                  .then(workload::heal())
                  .then(workload::poisson_churn(6 * period, 3.0, sessions))
                  .then(workload::steady(3 * period));

  workload::engine_options opt;
  opt.sample_interval = period;
  workload::engine eng(world, std::move(prog), opt);
  eng.run();

  transport_run out;
  out.digest = world.state_digest();
  out.events = world.events_executed();
  out.drops = world.transport().total_drops();
  out.alive = world.alive_count();
  out.trajectory = workload::to_json(eng.trajectory()).dump_string(0);
  return out;
}

/// sim is the reference; sim-frames must reproduce it bit for bit on
/// the same engine.
void expect_frames_transparent(std::size_t shards, std::uint64_t seed) {
  const transport_run plain =
      run_world(runtime::transport_kind::sim, shards, seed);
  EXPECT_GT(plain.alive, 0u);
  EXPECT_GT(plain.events, 0u);
  const transport_run framed =
      run_world(runtime::transport_kind::sim_frames, shards, seed);
  EXPECT_EQ(framed.digest, plain.digest) << "shards=" << shards;
  EXPECT_EQ(framed.events, plain.events) << "shards=" << shards;
  EXPECT_EQ(framed.drops, plain.drops) << "shards=" << shards;
  EXPECT_EQ(framed.alive, plain.alive) << "shards=" << shards;
  EXPECT_EQ(framed.trajectory, plain.trajectory) << "shards=" << shards;
}

TEST(frames_digest, serial_engine_identical) {
  expect_frames_transparent(0, 2026);
}

TEST(frames_digest, sharded_engine_identical_k1) {
  expect_frames_transparent(1, 2026);
}

TEST(frames_digest, sharded_engine_identical_k4) {
  expect_frames_transparent(4, 11);
}

/// sim-frames is deterministic against itself across repeat runs (the
/// codec introduces no hidden state).
TEST(frames_digest, repeat_runs_are_identical) {
  const transport_run a = run_world(runtime::transport_kind::sim_frames, 0, 7);
  const transport_run b = run_world(runtime::transport_kind::sim_frames, 0, 7);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.trajectory, b.trajectory);
}

}  // namespace
}  // namespace nylon
