// Decode hardening: every class of malformed frame maps to its typed
// decode_error, and a randomized mutation loop (the in-tree fuzz
// corpus) confirms that no corruption of a valid frame can crash the
// decoder or slip through as a different message.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gossip/messages.h"
#include "gossip/view.h"
#include "nat/nat_type.h"
#include "util/rng.h"
#include "wire/codec.h"
#include "wire/frame.h"

namespace nylon {
namespace {

gossip::gossip_message make_msg(std::size_t entry_count) {
  static std::vector<gossip::view_entry> entries;
  entries.clear();
  for (std::size_t i = 0; i < entry_count; ++i) {
    gossip::view_entry e;
    e.peer.id = static_cast<net::node_id>(50 + i);
    e.peer.addr =
        net::endpoint{net::ip_address{static_cast<std::uint32_t>(0x0A000032u + i)},
                      5000 + static_cast<std::uint32_t>(i)};
    e.peer.type = nat::nat_type::full_cone;
    e.age = static_cast<std::uint32_t>(i);
    e.route_ttl = static_cast<sim::sim_time>(i * 100);
    entries.push_back(e);
  }
  gossip::gossip_message msg;
  msg.kind = gossip::message_kind::response;
  msg.sender = {net::node_id{7}, net::endpoint{net::ip_address{0x0A000007}, 4000},
                nat::nat_type::open};
  msg.src = msg.sender;
  msg.dest = {net::node_id{9}, net::endpoint{net::ip_address{0x0A000009}, 4001},
              nat::nat_type::restricted_cone};
  msg.entries = entries;
  msg.hops = 1;
  return msg;
}

std::vector<std::byte> encode_to_vector(const gossip::gossip_message& msg) {
  const auto frame = wire::encode(msg);
  return {frame->bytes().begin(), frame->bytes().end()};
}

/// Re-stamps the checksum so a deliberate body corruption is tested
/// against the *body* validators, not caught earlier by the checksum.
void fix_checksum(std::vector<std::byte>& frame) {
  const std::uint32_t sum = wire::frame_checksum(frame);
  for (int i = 0; i < 4; ++i) {
    frame[8 + i] = static_cast<std::byte>((sum >> (8 * i)) & 0xFF);
  }
}

wire::decode_error decode_error_of(const std::vector<std::byte>& frame) {
  return wire::decode(frame).error;
}

TEST(frame_fuzz, rejects_every_truncation_length) {
  const std::vector<std::byte> frame = encode_to_vector(make_msg(4));
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const std::vector<std::byte> cut(frame.begin(),
                                     frame.begin() + static_cast<long>(len));
    EXPECT_EQ(decode_error_of(cut), wire::decode_error::truncated) << len;
  }
}

TEST(frame_fuzz, rejects_bad_magic) {
  std::vector<std::byte> frame = encode_to_vector(make_msg(2));
  frame[0] = std::byte{0x00};
  EXPECT_EQ(decode_error_of(frame), wire::decode_error::bad_magic);
}

TEST(frame_fuzz, rejects_unknown_version) {
  std::vector<std::byte> frame = encode_to_vector(make_msg(2));
  frame[2] = std::byte{2};
  fix_checksum(frame);
  EXPECT_EQ(decode_error_of(frame), wire::decode_error::bad_version);
}

TEST(frame_fuzz, rejects_bad_kind) {
  std::vector<std::byte> frame = encode_to_vector(make_msg(2));
  frame[3] = std::byte{0xFF};
  fix_checksum(frame);
  EXPECT_EQ(decode_error_of(frame), wire::decode_error::bad_kind);
}

TEST(frame_fuzz, rejects_flipped_checksum_bits) {
  const std::vector<std::byte> frame = encode_to_vector(make_msg(3));
  for (int bit = 0; bit < 32; ++bit) {
    std::vector<std::byte> bad = frame;
    bad[8 + bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
    EXPECT_EQ(decode_error_of(bad), wire::decode_error::bad_checksum) << bit;
  }
}

TEST(frame_fuzz, rejects_corrupt_body_via_checksum) {
  // Without a checksum repair, any body flip is caught by the checksum
  // long before the body validators run.
  const std::vector<std::byte> frame = encode_to_vector(make_msg(3));
  for (std::size_t i = wire::frame_header_bytes; i < frame.size(); ++i) {
    std::vector<std::byte> bad = frame;
    bad[i] ^= std::byte{0x01};
    EXPECT_EQ(decode_error_of(bad), wire::decode_error::bad_checksum) << i;
  }
}

TEST(frame_fuzz, rejects_trailing_bytes) {
  std::vector<std::byte> frame = encode_to_vector(make_msg(2));
  frame.push_back(std::byte{0});
  EXPECT_EQ(decode_error_of(frame), wire::decode_error::trailing_bytes);
}

TEST(frame_fuzz, rejects_length_field_lies) {
  // Shrinking `length` orphans real bytes after the declared body ->
  // trailing_bytes; growing it claims bytes that are not there ->
  // truncated. Both before any checksum work.
  std::vector<std::byte> shrunk = encode_to_vector(make_msg(2));
  const std::uint16_t body =
      static_cast<std::uint16_t>(shrunk.size() - wire::frame_header_bytes);
  shrunk[6] = static_cast<std::byte>((body - 1) & 0xFF);
  shrunk[7] = static_cast<std::byte>((body - 1) >> 8);
  EXPECT_EQ(decode_error_of(shrunk), wire::decode_error::trailing_bytes);

  std::vector<std::byte> grown = encode_to_vector(make_msg(2));
  grown[6] = static_cast<std::byte>((body + 1) & 0xFF);
  grown[7] = static_cast<std::byte>((body + 1) >> 8);
  EXPECT_EQ(decode_error_of(grown), wire::decode_error::truncated);
}

TEST(frame_fuzz, rejects_inconsistent_entry_count) {
  // A count that disagrees with `length` (checksum repaired so the body
  // validators see it) is a bad_length, not a read out of bounds.
  std::vector<std::byte> frame = encode_to_vector(make_msg(3));
  const std::size_t count_off =
      wire::frame_header_bytes + 1 + 3 * gossip::descriptor_wire_bytes;
  frame[count_off] = std::byte{9};
  fix_checksum(frame);
  EXPECT_EQ(decode_error_of(frame), wire::decode_error::bad_length);
}

TEST(frame_fuzz, rejects_kind_echo_mismatch) {
  std::vector<std::byte> frame = encode_to_vector(make_msg(1));
  frame[wire::frame_header_bytes] = std::byte{0};  // header says response
  fix_checksum(frame);
  EXPECT_EQ(decode_error_of(frame), wire::decode_error::bad_body);
}

TEST(frame_fuzz, rejects_bad_nat_type_and_pad) {
  // sender descriptor starts right after the kind echo:
  // id u32, ip u32, port u16, nat u8, pad u8.
  const std::size_t nat_off = wire::frame_header_bytes + 1 + 10;
  std::vector<std::byte> bad_nat = encode_to_vector(make_msg(1));
  bad_nat[nat_off] = std::byte{0x77};
  fix_checksum(bad_nat);
  EXPECT_EQ(decode_error_of(bad_nat), wire::decode_error::bad_body);

  std::vector<std::byte> bad_pad = encode_to_vector(make_msg(1));
  bad_pad[nat_off + 1] = std::byte{1};
  fix_checksum(bad_pad);
  EXPECT_EQ(decode_error_of(bad_pad), wire::decode_error::bad_body);
}

TEST(frame_fuzz, rejects_nonzero_reserved_and_unknown_flags) {
  std::vector<std::byte> reserved = encode_to_vector(make_msg(1));
  reserved[5] = std::byte{1};
  fix_checksum(reserved);
  EXPECT_EQ(decode_error_of(reserved), wire::decode_error::bad_body);

  std::vector<std::byte> unknown = encode_to_vector(make_msg(1));
  unknown[4] = std::byte{0x80};
  fix_checksum(unknown);
  EXPECT_EQ(decode_error_of(unknown), wire::decode_error::bad_body);
}

TEST(frame_fuzz, rejects_non_canonical_wide_flags) {
  // A frame claiming wide TTLs whose values all fit in u16 decodes the
  // fields fine but is not the canonical encoding — the decoder rejects
  // it so encode(decode(f)) == f always holds. Build it by hand:
  // widen every TTL of a narrow frame to u32 and set the flag.
  const std::vector<std::byte> narrow = encode_to_vector(make_msg(2));
  std::vector<std::byte> wide;
  const std::size_t entries_off = wire::frame_header_bytes + 1 +
                                  3 * gossip::descriptor_wire_bytes + 2 + 1;
  wide.assign(narrow.begin(),
              narrow.begin() + static_cast<long>(entries_off));
  for (std::size_t e = 0; e < 2; ++e) {
    const std::size_t entry = entries_off + e * gossip::entry_wire_bytes;
    // descriptor + age stay as-is...
    for (std::size_t i = 0; i < gossip::descriptor_wire_bytes + 2; ++i) {
      wide.push_back(narrow[entry + i]);
    }
    // ...ttl u16 -> u32 with zero high bytes.
    wide.push_back(narrow[entry + gossip::descriptor_wire_bytes + 2]);
    wide.push_back(narrow[entry + gossip::descriptor_wire_bytes + 3]);
    wide.push_back(std::byte{0});
    wide.push_back(std::byte{0});
  }
  wide[4] = std::byte{wire::flag_wide_ttl};
  const std::uint16_t body =
      static_cast<std::uint16_t>(wide.size() - wire::frame_header_bytes);
  wide[6] = static_cast<std::byte>(body & 0xFF);
  wide[7] = static_cast<std::byte>(body >> 8);
  fix_checksum(wide);
  EXPECT_EQ(decode_error_of(wide), wire::decode_error::bad_body);
}

TEST(frame_fuzz, random_mutations_never_crash_or_leak_through) {
  // The fuzz corpus: thousands of random corruptions of valid frames.
  // Every decode must return a typed result; on the rare none (a
  // mutation can cancel itself or hit only ignored semantics), the
  // re-encoded message must itself be a canonical frame.
  util::rng rng(0x5EEDF00Du);
  std::uint64_t rejected = 0;
  std::uint64_t accepted = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    const std::size_t entries = rng.uniform(0, 8);
    std::vector<std::byte> frame = encode_to_vector(make_msg(entries));
    const std::size_t flips = 1 + rng.uniform(0, 3);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos = rng.uniform(0, frame.size() - 1);
      frame[pos] ^= static_cast<std::byte>(1 + rng.uniform(0, 254));
    }
    if (rng.bernoulli(0.1)) fix_checksum(frame);
    if (rng.bernoulli(0.05)) {
      frame.resize(rng.uniform(0, frame.size()));
    }
    const wire::decode_result result = wire::decode(frame);
    if (result.error == wire::decode_error::none) {
      ASSERT_NE(result.message, nullptr);
      const auto again = wire::encode(*result.message);
      EXPECT_EQ(again->bytes().size(), frame.size());
      ++accepted;
    } else {
      EXPECT_EQ(result.message, nullptr);
      ++rejected;
    }
  }
  // Nearly everything must be rejected; a handful of self-cancelling or
  // checksum-repaired benign mutations may decode.
  EXPECT_GT(rejected, 3500u);
  SUCCEED() << rejected << " rejected, " << accepted << " accepted";
}

TEST(frame_fuzz, random_garbage_never_crashes) {
  util::rng rng(42);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::byte> junk(rng.uniform(0, 256));
    for (std::byte& b : junk) {
      b = static_cast<std::byte>(rng.uniform(0, 255));
    }
    const wire::decode_result result = wire::decode(junk);
    EXPECT_EQ(result.message == nullptr,
              result.error != wire::decode_error::none);
  }
}

}  // namespace
}  // namespace nylon
